"""Tests for the analysis / measurement / reporting layer."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    agent_view_classes,
    best_local_ratio_bound,
    compare_algorithms,
    evaluate_solution,
    format_markdown_table,
    format_table,
    format_value,
    group_rows,
    measured_ratio,
    run_ratio_sweep,
    summarise_column,
    view_signature,
    worst_case_by,
)
from repro.analysis.indistinguishability import build_view
from repro._types import agent_node
from repro.core.lp import solve_maxmin_lp
from repro.core.solution import Solution
from repro.distributed.network import build_network
from repro.generators import (
    cycle_instance,
    indistinguishable_cycle_pair,
    objective_ring_instance,
    random_special_form_instance,
)
from repro.exceptions import SolverError


class TestRatios:
    def test_measured_ratio_cases(self):
        assert measured_ratio(2.0, 1.0) == 2.0
        assert measured_ratio(0.0, 0.0) == 1.0
        assert math.isinf(measured_ratio(1.0, 0.0))

    def test_evaluate_solution_record(self, unit_cycle):
        sol = Solution(unit_cycle, {v: 0.5 for v in unit_cycle.agents})
        record = evaluate_solution(unit_cycle, sol, algorithm="manual", guaranteed_ratio=2.0)
        assert record["feasible"] is True
        assert record["measured_ratio"] == pytest.approx(1.0)
        assert record["within_guarantee"] is True
        assert record["delta_I"] == 2

    def test_compare_algorithms_rows(self, unit_cycle):
        rows = compare_algorithms(unit_cycle, R_values=(2, 3), include_optimum_row=True)
        algorithms = [row["algorithm"] for row in rows]
        assert algorithms == ["local-R2", "local-R3", "safe-degree", "lp-optimum"]
        assert all(row["within_guarantee"] for row in rows)


class TestSweeps:
    def test_run_ratio_sweep_and_worst_case(self):
        instances = [cycle_instance(4, seed=1), cycle_instance(6, seed=2)]
        rows = run_ratio_sweep(
            instances,
            R_values=(2,),
            extra_fields={"family": lambda inst: "cycle", "segments": lambda inst: inst.num_constraints},
        )
        assert len(rows) == len(instances) * 2  # local-R2 + safe per instance
        assert all(row["family"] == "cycle" for row in rows)
        summary = worst_case_by(rows, keys=("algorithm",))
        assert {row["algorithm"] for row in summary} == {"local-R2", "safe-degree"}
        for row in summary:
            assert row["worst_measured_ratio"] >= row["mean_measured_ratio"] - 1e-12
            assert row["within_guarantee"]

    def test_group_rows(self):
        rows = [{"a": 1, "b": "x"}, {"a": 1, "b": "y"}, {"a": 2, "b": "x"}]
        groups = group_rows(rows, ["a"])
        assert len(groups[(1,)]) == 2
        assert len(groups[(2,)]) == 1


class TestReporting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(1.23456) == "1.2346"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "nan"
        assert format_value("text") == "text"

    def test_format_table(self):
        rows = [{"x": 1.0, "y": "a"}, {"x": 2.5, "y": "b", "z": 3}]
        text = format_table(rows, title="demo")
        assert "demo" in text and "x" in text and "2.5000" in text
        assert format_table([], title="empty").endswith("(no rows)")

    def test_format_markdown(self):
        rows = [{"x": 1.0, "y": "a"}]
        text = format_markdown_table(rows)
        assert text.splitlines()[0] == "| x | y |"
        assert "| 1.0000 | a |" in text

    def test_summarise_column(self):
        rows = [{"v": 1.0}, {"v": 3.0}, {"other": 1}]
        summary = summarise_column(rows, "v")
        assert summary["count"] == 2
        assert summary["mean"] == pytest.approx(2.0)
        assert math.isnan(summarise_column(rows, "missing")["mean"])


class TestIndistinguishability:
    def test_view_classes_independent_of_cycle_length(self):
        # The number of view classes on a unit cycle depends only on the local
        # structure (and the deterministic port numbering), not on n: agents
        # far apart share classes, which is exactly what the lower-bound
        # machinery exploits.
        small = agent_view_classes([cycle_instance(8)], depth=4)
        large = agent_view_classes([cycle_instance(20)], depth=4)
        assert len(set(small.values())) == len(set(large.values()))
        assert len(set(large.values())) < 2 * 20  # strictly fewer classes than agents

    def test_view_signature_distinguishes_coefficients(self):
        instance = cycle_instance(8, coefficient_range=(0.5, 2.0), seed=3)
        uniform = cycle_instance(8)
        assert len(set(agent_view_classes([instance], depth=2).values())) > len(
            set(agent_view_classes([uniform], depth=2).values())
        )

    def test_signature_deterministic_and_sensitive(self):
        instance = cycle_instance(5)
        network = build_network(instance)
        sig_a = view_signature(build_view(network, agent_node("v0"), 3))
        sig_b = view_signature(build_view(network, agent_node("v0"), 3))
        assert sig_a == sig_b  # deterministic
        from repro.generators import perturb_coefficient

        perturbed = perturb_coefficient(instance, "i0", "v0", 2.0)
        sig_p = view_signature(build_view(build_network(perturbed), agent_node("v0"), 3))
        assert sig_p != sig_a  # sensitive to the local input

    def test_single_symmetric_instance_bound_is_achievable(self):
        # The unit cycle's optimum is symmetric, so view-constrained
        # assignments lose nothing: t* = 1 and the bound is 1.
        instance = cycle_instance(10)
        result = best_local_ratio_bound([instance], horizon=2)
        assert result.t_star == pytest.approx(1.0, abs=1e-6)
        assert result.ratio_lower_bound == pytest.approx(1.0, abs=1e-6)

    def test_defect_pair_forces_a_gap(self):
        """Far from the defect a local algorithm cannot adapt: bound > 1."""
        pair = indistinguishable_cycle_pair(12, defect_coefficient=4.0)
        result = best_local_ratio_bound(list(pair), horizon=4)
        assert result.ratio_lower_bound > 1.0 + 1e-6
        assert result.num_classes >= 2
        assert len(result.optima) == 2

    def test_gap_shrinks_with_horizon(self):
        """With a larger horizon more agents can see the defect and adapt."""
        pair = list(indistinguishable_cycle_pair(10, defect_coefficient=4.0))
        small = best_local_ratio_bound(pair, horizon=2)
        large = best_local_ratio_bound(pair, horizon=10)
        assert large.ratio_lower_bound <= small.ratio_lower_bound + 1e-9

    def test_requires_instances(self):
        with pytest.raises(SolverError):
            best_local_ratio_bound([], horizon=2)

    def test_ring_pair_classes(self):
        instance = objective_ring_instance(4, 3)
        classes = agent_view_classes([instance], depth=3)
        # Shared agents and inner agents have different degrees, hence at
        # least two classes.
        assert len(set(classes.values())) >= 2
