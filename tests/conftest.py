"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math
import sys
from pathlib import Path

import pytest

# Make the benchmark harness (benchmarks/_harness.py and friends) importable
# from tests, mirroring how pytest resolves it when the benchmarks themselves
# run (rootdir-relative, no package).
_BENCHMARKS_DIR = str(Path(__file__).resolve().parents[1] / "benchmarks")
if _BENCHMARKS_DIR not in sys.path:
    sys.path.insert(0, _BENCHMARKS_DIR)

from repro.core.builder import InstanceBuilder
from repro.core.instance import MaxMinInstance
from repro.core.lp import solve_maxmin_lp
from repro.core.solution import Solution
from repro.generators import (
    cycle_instance,
    objective_ring_instance,
    random_instance,
    random_special_form_instance,
    regular_special_form_instance,
    sensor_network_instance,
    torus_instance,
)

# ----------------------------------------------------------------------
# Tiny hand-built instances
# ----------------------------------------------------------------------


def build_tiny_instance() -> MaxMinInstance:
    """Two agents sharing one constraint and one objective (optimum 1)."""
    builder = InstanceBuilder(name="tiny")
    builder.add_constraint_term("i1", "a", 1.0)
    builder.add_constraint_term("i1", "b", 1.0)
    builder.add_objective_term("k1", "a", 1.0)
    builder.add_objective_term("k1", "b", 1.0)
    return builder.build()


def build_general_instance() -> MaxMinInstance:
    """A small general instance with ΔI = 3, ΔK = 2 and |K_v| up to 2."""
    builder = InstanceBuilder(name="small-general")
    builder.add_packing_constraint("i0", {"v0": 1.0, "v1": 2.0, "v2": 1.0})
    builder.add_packing_constraint("i1", {"v1": 1.0, "v3": 1.0})
    builder.add_packing_constraint("i2", {"v2": 0.5, "v4": 1.5})
    builder.add_covering_objective("k0", {"v0": 1.0, "v3": 0.5})
    builder.add_covering_objective("k1", {"v1": 2.0, "v2": 1.0})
    builder.add_covering_objective("k2", {"v2": 1.0, "v4": 1.0})
    return builder.build()


def build_degenerate_instance() -> MaxMinInstance:
    """An instance with every kind of degeneracy §4 mentions."""
    builder = InstanceBuilder(name="degenerate")
    # Normal core.
    builder.add_constraint_term("i_core", "a", 1.0)
    builder.add_constraint_term("i_core", "b", 1.0)
    builder.add_objective_term("k_core", "a", 1.0)
    builder.add_objective_term("k_core", "b", 1.0)
    # Isolated constraint and isolated objective.
    builder.add_constraint("i_isolated")
    builder.add_objective("k_isolated")
    # Non-contributing agent (constraint but no objective).
    builder.add_constraint_term("i_nc", "c", 1.0)
    builder.add_constraint_term("i_nc", "a", 1.0)
    # Unconstrained agent (objective but no constraint).
    builder.add_objective_term("k_unc", "d", 2.0)
    return builder.build()


# ----------------------------------------------------------------------
# Pytest fixtures
# ----------------------------------------------------------------------


@pytest.fixture
def tiny_instance() -> MaxMinInstance:
    return build_tiny_instance()


@pytest.fixture
def general_instance() -> MaxMinInstance:
    return build_general_instance()


@pytest.fixture
def degenerate_instance() -> MaxMinInstance:
    return build_degenerate_instance()


@pytest.fixture
def special_form_cycle() -> MaxMinInstance:
    return cycle_instance(6, coefficient_range=(0.5, 2.0), seed=11)


@pytest.fixture
def unit_cycle() -> MaxMinInstance:
    return cycle_instance(6)


@pytest.fixture
def ring_instance() -> MaxMinInstance:
    return objective_ring_instance(4, 3)


@pytest.fixture
def random_general() -> MaxMinInstance:
    return random_instance(18, delta_I=3, delta_K=3, extra_constraints=2, extra_objectives=2, seed=7)


@pytest.fixture
def random_special() -> MaxMinInstance:
    return random_special_form_instance(14, delta_K=3, constraint_rounds=2, seed=9)


def special_form_family():
    """A small family of special-form instances used by several test modules."""
    return [
        cycle_instance(5, coefficient_range=(0.5, 2.0), seed=1),
        cycle_instance(8),
        random_special_form_instance(12, delta_K=3, constraint_rounds=1, seed=3),
        random_special_form_instance(16, delta_K=4, constraint_rounds=2, seed=4),
        regular_special_form_instance(4, 3, constraint_rounds=2, seed=5),
        objective_ring_instance(4, 3),
    ]


def general_family():
    """A small family of general instances used by several test modules."""
    return [
        build_general_instance(),
        random_instance(15, delta_I=3, delta_K=2, extra_constraints=2, extra_objectives=1, seed=21),
        random_instance(20, delta_I=4, delta_K=3, extra_constraints=3, extra_objectives=3, seed=22),
        torus_instance(3, 4, seed=23),
        sensor_network_instance(12, 4, seed=24).instance,
        objective_ring_instance(3, 4),
    ]


# ----------------------------------------------------------------------
# Assertion helpers
# ----------------------------------------------------------------------


def assert_feasible(solution: Solution, tol: float = 1e-8) -> None:
    report = solution.check_feasibility(tol)
    assert report.feasible, (
        f"solution {solution.label!r} infeasible: max violation {report.max_violation}, "
        f"violated={report.violated_constraints[:3]}, negative={report.negative_agents[:3]}"
    )


def assert_within_guarantee(
    instance: MaxMinInstance,
    solution: Solution,
    guaranteed_ratio: float,
    optimum: float | None = None,
    tol: float = 1e-6,
) -> float:
    """Assert ``optimum ≤ guaranteed_ratio · utility`` and return the measured ratio."""
    if optimum is None:
        optimum = solve_maxmin_lp(instance).optimum
    utility = solution.utility()
    if optimum <= tol:
        return 1.0
    assert utility > 0.0, f"zero utility against positive optimum {optimum} on {instance.name}"
    measured = optimum / utility
    assert measured <= guaranteed_ratio * (1.0 + tol), (
        f"guarantee violated on {instance.name}: measured {measured:.6f} > "
        f"guaranteed {guaranteed_ratio:.6f} (opt={optimum:.6f}, util={utility:.6f})"
    )
    return measured
