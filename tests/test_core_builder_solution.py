"""Unit tests for the instance builder and the solution objects."""

from __future__ import annotations

import math

import pytest

from repro.core.builder import InstanceBuilder
from repro.core.solution import Solution
from repro.exceptions import InfeasibleSolutionError, InvalidInstanceError


class TestInstanceBuilder:
    def test_fluent_chaining(self):
        builder = (
            InstanceBuilder("chain")
            .add_agent("a")
            .add_agents(["b", "c"])
            .add_constraint("i")
            .add_objective("k")
        )
        assert builder.num_agents == 3
        assert builder.num_constraints == 1
        assert builder.num_objectives == 1

    def test_terms_declare_nodes(self):
        builder = InstanceBuilder()
        builder.add_constraint_term("i", "a", 2.0)
        builder.add_objective_term("k", "a", 1.0)
        inst = builder.build()
        assert inst.num_agents == 1 and inst.num_constraints == 1 and inst.num_objectives == 1
        assert inst.a("i", "a") == 2.0

    def test_row_helpers(self):
        builder = InstanceBuilder()
        builder.add_packing_constraint("i", {"a": 1.0, "b": 2.0})
        builder.add_covering_objective("k", {"a": 1.0, "b": 1.0})
        inst = builder.build()
        assert set(inst.agents_of_constraint("i")) == {"a", "b"}
        assert set(inst.agents_of_objective("k")) == {"a", "b"}

    def test_duplicate_term_rejected(self):
        builder = InstanceBuilder()
        builder.add_constraint_term("i", "a", 1.0)
        with pytest.raises(InvalidInstanceError):
            builder.add_constraint_term("i", "a", 2.0)
        builder.add_objective_term("k", "a", 1.0)
        with pytest.raises(InvalidInstanceError):
            builder.add_objective_term("k", "a", 2.0)

    def test_nonpositive_rejected(self):
        builder = InstanceBuilder()
        with pytest.raises(InvalidInstanceError):
            builder.add_constraint_term("i", "a", 0.0)
        with pytest.raises(InvalidInstanceError):
            builder.add_objective_term("k", "a", -1.0)

    def test_declaration_order_is_canonical_order(self):
        builder = InstanceBuilder()
        builder.add_objective_term("k", "z", 1.0)
        builder.add_constraint_term("i", "a", 1.0)
        builder.add_constraint_term("i", "z", 1.0)
        inst = builder.build()
        assert inst.agents == ("z", "a")

    def test_build_is_repeatable(self):
        builder = InstanceBuilder()
        builder.add_constraint_term("i", "a", 1.0)
        builder.add_objective_term("k", "a", 1.0)
        first = builder.build()
        builder.add_objective_term("k2", "a", 1.0)
        second = builder.build()
        assert first.num_objectives == 1
        assert second.num_objectives == 2


class TestSolution:
    def test_defaults_missing_agents_to_zero(self, tiny_instance):
        sol = Solution(tiny_instance, {"a": 0.25})
        assert sol["a"] == 0.25
        assert sol["b"] == 0.0
        assert len(sol) == 2
        assert list(iter(sol)) == list(tiny_instance.agents)

    def test_unknown_agent_rejected(self, tiny_instance):
        with pytest.raises(InvalidInstanceError):
            Solution(tiny_instance, {"zzz": 1.0})

    def test_objective_and_utility(self, tiny_instance):
        sol = Solution(tiny_instance, {"a": 0.25, "b": 0.5})
        assert sol.objective_value("k1") == pytest.approx(0.75)
        assert sol.utility() == pytest.approx(0.75)
        assert sol.objective_values() == {"k1": pytest.approx(0.75)}

    def test_utility_without_objectives_is_inf(self):
        from repro.core.instance import MaxMinInstance

        inst = MaxMinInstance(["a"], ["i"], [], {("i", "a"): 1.0}, {})
        assert math.isinf(Solution(inst, {"a": 1.0}).utility())

    def test_constraint_load_and_slack(self, general_instance):
        sol = Solution(general_instance, {"v0": 0.5, "v1": 0.25, "v2": 0.0})
        assert sol.constraint_load("i0") == pytest.approx(0.5 + 0.5)
        assert sol.constraint_slack("i0") == pytest.approx(0.0)

    def test_feasibility_report(self, tiny_instance):
        good = Solution(tiny_instance, {"a": 0.5, "b": 0.5})
        assert good.is_feasible()
        bad = Solution(tiny_instance, {"a": 0.9, "b": 0.9})
        report = bad.check_feasibility()
        assert not report
        assert report.max_violation == pytest.approx(0.8)
        assert report.violated_constraints[0][0] == "i1"

    def test_negative_values_flagged(self, tiny_instance):
        sol = Solution(tiny_instance, {"a": -0.5})
        report = sol.check_feasibility()
        assert not report.feasible
        assert report.negative_agents == (("a", -0.5),)

    def test_require_feasible(self, tiny_instance):
        Solution(tiny_instance, {"a": 0.5, "b": 0.5}).require_feasible()
        with pytest.raises(InfeasibleSolutionError):
            Solution(tiny_instance, {"a": 2.0}).require_feasible()

    def test_bottleneck_objectives(self, general_instance):
        sol = Solution(general_instance, {"v0": 0.1, "v1": 0.1, "v2": 0.1, "v3": 0.1, "v4": 0.1})
        bottlenecks = sol.bottleneck_objectives()
        values = sol.objective_values()
        best = min(values.values())
        assert all(values[k] == pytest.approx(best) for k in bottlenecks)

    def test_scaling_and_average(self, tiny_instance):
        first = Solution(tiny_instance, {"a": 1.0, "b": 0.0})
        second = Solution(tiny_instance, {"a": 0.0, "b": 1.0})
        scaled = first.scaled(0.5)
        assert scaled["a"] == 0.5
        avg = Solution.average([first, second])
        assert avg["a"] == pytest.approx(0.5)
        assert avg["b"] == pytest.approx(0.5)
        # Convexity: the average of feasible solutions is feasible.
        assert avg.is_feasible()

    def test_average_requires_same_instance(self, tiny_instance, general_instance):
        with pytest.raises(InvalidInstanceError):
            Solution.average(
                [Solution(tiny_instance, {}), Solution(general_instance, {})]
            )
        with pytest.raises(InvalidInstanceError):
            Solution.average([])

    def test_clipped_nonnegative(self, tiny_instance):
        sol = Solution(tiny_instance, {"a": -1e-15, "b": 0.5}).clipped_nonnegative()
        assert sol["a"] == 0.0
        assert sol["b"] == 0.5

    def test_as_dict_copy(self, tiny_instance):
        sol = Solution(tiny_instance, {"a": 0.5})
        values = sol.as_dict()
        values["a"] = 99.0
        assert sol["a"] == 0.5
