"""Equivalence suite for the CSR-backed safe baseline and message plane.

Pins three contracts introduced with the vectorized runtime:

* the safe baseline's two backends agree exactly (identical arithmetic per
  edge), centralized and distributed, across every generator family;
* the vectorized runtime reproduces the dict-based oracle for the E5 local
  protocol — outputs, round counts and per-round message statistics;
* a protocol whose agents fail to produce output raises instead of silently
  yielding a "feasible" all-zero solution (regression).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._types import NodeType
from repro.algo.local_solver import SpecialFormLocalSolver
from repro.algo.safe_algorithm import SafeAlgorithm, safe_solution
from repro.core.solution import Solution
from repro.distributed import (
    DistributedLocalSolver,
    DistributedSafeSolver,
    MessagePlane,
    SynchronousRuntime,
    build_network,
)
from repro.distributed import agents as agents_mod
from repro.distributed import safe_agents as safe_agents_mod
from repro.exceptions import InvalidInstanceError, SimulationError
from repro.generators import cycle_instance, random_special_form_instance

from conftest import general_family, special_form_family


def _nondegenerate_general_family():
    return [inst for inst in general_family() if not inst.is_degenerate()]


class TestSafeBackendEquivalence:
    @pytest.mark.parametrize("variant", ["degree", "delta"])
    def test_centralized_backends_agree_exactly(self, variant):
        for instance in special_form_family() + _nondegenerate_general_family():
            ref = safe_solution(instance, variant=variant, backend="reference")
            vec = safe_solution(instance, variant=variant, backend="vectorized")
            for v in instance.agents:
                assert vec[v] == ref[v]  # identical arithmetic, not just close

    def test_delta_override_agrees(self):
        instance = cycle_instance(6, coefficient_range=(0.5, 2.0), seed=3)
        ref = safe_solution(instance, variant="delta", delta_I=7, backend="reference")
        vec = safe_solution(instance, variant="delta", delta_I=7, backend="vectorized")
        for v in instance.agents:
            assert vec[v] == ref[v]

    def test_delta_I_with_wrong_variant_raises(self):
        # Regression: the override used to be silently ignored.
        instance = cycle_instance(4)
        with pytest.raises(ValueError, match="delta_I"):
            safe_solution(instance, variant="degree", delta_I=5)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            safe_solution(cycle_instance(4), backend="gpu")
        with pytest.raises(ValueError):
            SafeAlgorithm(backend="gpu")
        with pytest.raises(ValueError):
            DistributedSafeSolver(backend="gpu")
        with pytest.raises(ValueError):
            DistributedLocalSolver(backend="gpu")

    def test_safe_algorithm_wrapper_backends_agree(self):
        for instance in _nondegenerate_general_family():
            ref = SafeAlgorithm(backend="reference").solve(instance)
            vec = SafeAlgorithm(backend="vectorized").solve(instance)
            for v in instance.agents:
                assert vec[v] == ref[v]

    def test_distributed_matches_centralized_all_families(self):
        for backend in ("vectorized", "reference"):
            solver = DistributedSafeSolver(backend=backend)
            for instance in special_form_family() + _nondegenerate_general_family():
                central = safe_solution(instance, variant="degree", backend=backend)
                distributed, run = solver.solve(instance)
                assert run.rounds == safe_agents_mod.SAFE_ALGORITHM_ROUNDS
                for v in instance.agents:
                    assert distributed[v] == central[v]


class TestMessagePlane:
    def test_reverse_matches_port_numbering(self):
        """The plane's slot scheme is pinned to PortNumbering's convention."""
        instance = random_special_form_instance(12, delta_K=3, constraint_rounds=2, seed=2)
        plane = MessagePlane(instance)
        network = build_network(instance)
        comp = instance.compiled()

        def slot_of(node, port):
            kind, name = node
            if kind is NodeType.AGENT:
                return int(plane.agent_indptr[comp.agent_index[name]]) + port - 1
            if kind is NodeType.CONSTRAINT:
                return plane.con_base + int(comp.cagents_indptr[comp.constraint_index[name]]) + port - 1
            return plane.obj_base + int(comp.oagents_indptr[comp.objective_index[name]]) + port - 1

        for node in network.nodes():
            for port in network.ports.ports(node):
                neighbour, remote_port = network.endpoint(node, port)
                assert plane.reverse[slot_of(node, port)] == slot_of(neighbour, remote_port)

    def test_reverse_is_involution(self):
        instance = cycle_instance(7, coefficient_range=(0.5, 2.0), seed=1)
        plane = MessagePlane(instance)
        assert np.array_equal(plane.reverse[plane.reverse], np.arange(plane.num_slots))

    def test_runtime_requires_network_or_plane(self):
        with pytest.raises(SimulationError):
            SynchronousRuntime()

    def test_vectorized_rejects_byte_accounting(self):
        instance = cycle_instance(4)
        runtime = SynchronousRuntime(plane=MessagePlane(instance), measure_bytes=True)
        with pytest.raises(SimulationError, match="byte accounting"):
            runtime.run_vectorized(safe_agents_mod.VectorizedSafeProtocol(), rounds=2)

    def test_measure_bytes_falls_back_to_reference_path(self):
        instance = cycle_instance(4)
        _solution, run = DistributedSafeSolver(measure_bytes=True).solve(instance)
        assert run.total_bytes > 0
        _solution, run = DistributedLocalSolver(R=2, measure_bytes=True).solve(instance)
        assert run.total_bytes > 0


class TestRuntimeEquivalence:
    """Vectorized vs reference runtime for the E5 local protocol."""

    @pytest.mark.parametrize("R", [2, 3, 4])
    def test_outputs_and_statistics_match_oracle(self, R):
        for instance in special_form_family()[:4]:
            ref_solution, ref_run = DistributedLocalSolver(R=R, backend="reference").solve(instance)
            vec_solution, vec_run = DistributedLocalSolver(R=R, backend="vectorized").solve(instance)
            assert vec_run.rounds == ref_run.rounds == 12 * (R - 2) + 7
            assert vec_run.total_messages == ref_run.total_messages
            assert [s.messages for s in vec_run.per_round] == [
                s.messages for s in ref_run.per_round
            ]
            for v in instance.agents:
                assert vec_solution[v] == pytest.approx(ref_solution[v], abs=1e-9)

    def test_vectorized_matches_centralized_solver(self):
        for R in (2, 3):
            for instance in special_form_family():
                central = SpecialFormLocalSolver(R=R, backend="vectorized").solve(instance)
                distributed, _run = DistributedLocalSolver(R=R, backend="vectorized").solve(instance)
                for v in instance.agents:
                    assert distributed[v] == pytest.approx(central.solution[v], abs=1e-9)

    def test_vectorized_safe_statistics_match_oracle(self):
        instance = cycle_instance(5)
        _s, ref_run = DistributedSafeSolver(backend="reference").solve(instance)
        _s, vec_run = DistributedSafeSolver(backend="vectorized").solve(instance)
        assert vec_run.total_messages == ref_run.total_messages == 2 * instance.num_constraints
        assert [s.messages for s in vec_run.per_round] == [s.messages for s in ref_run.per_round]


class TestMissingOutputRegression:
    """A broken protocol must raise, not backfill zeros into a Solution."""

    def test_solution_require_complete(self, tiny_instance):
        # Default behaviour: missing agents are backfilled with 0.0 ...
        assert Solution(tiny_instance, {"a": 0.5})["b"] == 0.0
        # ... but protocol solvers opt into completeness.
        with pytest.raises(InvalidInstanceError, match="require_complete"):
            Solution(tiny_instance, {"a": 0.5}, require_complete=True)

    def test_solution_from_agent_array(self, tiny_instance):
        sol = Solution.from_agent_array(tiny_instance, [0.5, 0.25], label="arr")
        assert sol["a"] == 0.5 and sol["b"] == 0.25
        with pytest.raises(InvalidInstanceError):
            Solution.from_agent_array(tiny_instance, [0.5], label="short")

    def test_safe_solver_raises_on_silent_agents(self, monkeypatch):
        monkeypatch.setattr(safe_agents_mod.SafeAgentNode, "output", lambda self: None)
        with pytest.raises(SimulationError, match="no\\s+output"):
            DistributedSafeSolver(backend="reference").solve(cycle_instance(4))

    def test_local_solver_raises_on_silent_agents(self, monkeypatch):
        monkeypatch.setattr(agents_mod.MaxMinAgentNode, "output", lambda self: None)
        with pytest.raises(SimulationError, match="no\\s+output"):
            DistributedLocalSolver(R=2, backend="reference").solve(cycle_instance(4))

    def test_partial_outputs_also_rejected(self):
        """Even one silent agent out of many must fail the run."""
        instance = cycle_instance(4)
        outputs = {v: 1.0 for v in instance.agents[:-1]}
        with pytest.raises(InvalidInstanceError, match="missing"):
            Solution(instance, outputs, require_complete=True)
