"""Allocation-server contracts: admission, deadlines, degradation, batching.

The resilience contract under chaos is the headline: with faults injected
into server-side solves, **every** client gets a response — an exact
answer, a degraded safe-baseline answer, or a structured error — with zero
client-visible hangs and zero transport errors.  The correctness contract
rides along: coalesced (micro-batched) responses are bitwise-equal to solo
solves, and degraded responses are still feasible allocations.
"""

from __future__ import annotations

import asyncio
import collections
import json
import time

import pytest

from repro.algo.general_solver import LocalMaxMinSolver
from repro.engine.resilience import call_with_timeout, leaked_timeout_threads
from repro.exceptions import JobTimeoutError
from repro.faults import FaultPlan
from repro.faults.plan import hang, transient
from repro.generators import random_special_form_instance
from repro.io.serialization import instance_digest, instance_to_json
from repro.serve import (
    CircuitBreaker,
    InstanceRegistry,
    ServeConfig,
    ServeError,
    ServerHandle,
    chaos_barrage,
    classify_response,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import ERROR_STATUS, parse_body


def make_instances(count, *, size=10, seed0=100):
    return [
        random_special_form_instance(size, seed=seed0 + i) for i in range(count)
    ]


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_error_codes_are_a_closed_vocabulary(self):
        assert set(ERROR_STATUS) == {
            "bad_request",
            "not_found",
            "overloaded",
            "draining",
            "deadline_exceeded",
            "internal",
        }
        with pytest.raises(ValueError):
            ServeError("nonsense", "nope")

    def test_parse_body(self):
        assert parse_body(b"") == {}
        assert parse_body(b'{"a": 1}') == {"a": 1}
        with pytest.raises(ServeError) as excinfo:
            parse_body(b"{not json")
        assert excinfo.value.code == "bad_request"
        with pytest.raises(ServeError):
            parse_body(b"[1, 2]")


# ----------------------------------------------------------------------
# Instance registry (hot tier)
# ----------------------------------------------------------------------


class TestInstanceRegistry:
    def test_lru_eviction_and_not_found(self):
        registry = InstanceRegistry(capacity=2)
        a, b, c = make_instances(3, size=6)
        ea = registry.admit_instance(a)
        registry.admit_instance(b)
        registry.get(ea.digest)  # touch a: b becomes least-recently used
        registry.admit_instance(c)  # evicts b
        assert len(registry) == 2
        assert registry.evictions == 1
        digest_b = instance_digest(instance_to_json(b))
        with pytest.raises(ServeError) as excinfo:
            registry.get(digest_b)
        assert excinfo.value.code == "not_found"
        assert "re-send" in str(excinfo.value)

    def test_admit_is_idempotent_and_canonical(self):
        registry = InstanceRegistry(capacity=4)
        (inst,) = make_instances(1, size=6)
        entry = registry.admit_instance(inst)
        # Client-side formatting must not split one instance into two
        # digests: a re-indented document admits to the same entry.
        doc = json.loads(instance_to_json(inst))
        again = registry.admit_json(instance_to_json(inst))
        assert again.digest == entry.digest and len(registry) == 1
        assert json.dumps(doc)  # the pretty-printed form exists
        assert registry.digests() == [entry.digest]


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_closed_open_halfopen_cycle(self):
        now = [0.0]
        breaker = CircuitBreaker(
            "vectorized", failure_threshold=2, cooldown_s=5.0, clock=lambda: now[0]
        )
        assert breaker.state() == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state() == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state() == "open" and breaker.opens == 1
        assert not breaker.allow()
        now[0] = 5.1  # cooldown elapsed: one trial passes
        assert breaker.state() == "half-open"
        assert breaker.allow()
        assert not breaker.allow()  # only one trial at a time
        breaker.record_failure()  # failed trial re-opens
        assert breaker.state() == "open" and breaker.opens == 2
        now[0] = 10.3
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state() == "closed" and breaker.allow()

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker("reference", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state() == "closed"
        snap = breaker.snapshot()
        assert snap["state"] == "closed" and snap["consecutive_failures"] == 2


# ----------------------------------------------------------------------
# Micro-batcher
# ----------------------------------------------------------------------


class TestMicroBatcher:
    def test_window_coalesces_concurrent_submits(self):
        async def run():
            calls = []

            async def flush(key, items):
                calls.append((key, list(items)))
                return [item * 10 for item in items]

            batcher = MicroBatcher(flush, window_s=0.05, max_batch=16)
            results = await asyncio.gather(*(batcher.submit("k", i) for i in range(5)))
            assert results == [0, 10, 20, 30, 40]
            assert len(calls) == 1 and calls[0][1] == [0, 1, 2, 3, 4]

        asyncio.run(run())

    def test_max_batch_splits_and_keys_separate(self):
        async def run():
            calls = []

            async def flush(key, items):
                calls.append((key, len(items)))
                return items

            batcher = MicroBatcher(flush, window_s=0.05, max_batch=3)
            await asyncio.gather(
                *(batcher.submit("a", i) for i in range(7)),
                *(batcher.submit("b", i) for i in range(2)),
            )
            sizes = collections.Counter(calls)
            assert sum(n for (k, n) in calls if k == "a") == 7
            assert all(n <= 3 for (_, n) in calls)
            assert sum(n for (k, n) in calls if k == "b") == 2
            assert sizes  # flushed at least once per key

        asyncio.run(run())

    def test_flush_failure_reaches_every_waiter(self):
        async def run():
            async def flush(key, items):
                raise RuntimeError("kernel exploded")

            batcher = MicroBatcher(flush, window_s=0.01, max_batch=8)
            outcomes = await asyncio.gather(
                *(batcher.submit("k", i) for i in range(4)), return_exceptions=True
            )
            assert len(outcomes) == 4
            assert all(isinstance(o, RuntimeError) for o in outcomes)

        asyncio.run(run())


# ----------------------------------------------------------------------
# Leaked-timeout-thread accounting (the call_with_timeout leak, surfaced)
# ----------------------------------------------------------------------


class TestLeakedThreadGauge:
    def test_abandoned_thread_is_counted_then_pruned(self):
        before = leaked_timeout_threads()
        with pytest.raises(JobTimeoutError):
            call_with_timeout(lambda: time.sleep(0.4), 0.05)
        assert leaked_timeout_threads() >= before + 1
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if leaked_timeout_threads() <= before:
                break
            time.sleep(0.05)
        # The abandoned sleeper finished and was pruned from the gauge.
        assert leaked_timeout_threads() <= before


# ----------------------------------------------------------------------
# The server, end to end (in-process, real sockets)
# ----------------------------------------------------------------------


class TestServerBasics:
    def test_ops_and_admin_endpoints(self, tmp_path):
        (inst,) = make_instances(1)
        config = ServeConfig(workers=2, cache_dir=str(tmp_path / "cache"))
        with ServerHandle(config) as handle:
            client = handle.client(timeout_s=20)
            status, health = client.healthz()
            assert status == 200 and health["ok"] and health["status"] == "serving"
            assert client.readyz()[0] == 200

            status, payload = client.solve(instance=inst, include_values=True)
            assert status == 200 and payload["ok"] and not payload["degraded"]
            assert payload["result"]["feasible"]
            digest = payload["digest"]

            # Digest addressing hits the resident entry.
            status, again = client.solve(digest=digest, include_values=True)
            assert status == 200
            assert again["result"]["utility"] == payload["result"]["utility"]

            # Identical parameters now come from the persistent cache tier.
            status, cached = client.solve(digest=digest, include_values=True)
            assert status == 200 and cached["cached"]
            assert cached["result"] == payload["result"]

            status, ratio = client.ratio(digest=digest)
            assert status == 200 and ratio["result"]["measured_ratio"] >= 1.0
            assert ratio["result"]["optimum"] is not None

            values = payload["result"]["values"]
            status, util = client.utility(values, digest=digest)
            assert status == 200
            assert util["result"]["utility"] == payload["result"]["utility"]
            # The list form (canonical agent order) must agree with the dict.
            listed = [values[a] for a in inst.agents]
            status, util_list = client.utility(listed, digest=digest)
            assert status == 200
            assert util_list["result"]["utility"] == util["result"]["utility"]

            status, info = client.info(digest=digest)
            assert status == 200 and info["result"]["agents"] == inst.num_agents

            status, metrics = client.metrics()
            assert status == 200
            counters = metrics["counters"]
            assert counters["serve.requests"] >= 6
            assert counters["serve.admitted"] >= 6
            assert counters["serve.cache_stores"] >= 1
            assert counters["serve.cache_hits"] >= 1
            assert metrics["cache"]["entries"] >= 1
            assert set(metrics["breakers"]) == {"vectorized", "reference"}
            assert metrics["registry"]["capacity"] == config.registry_capacity
            assert isinstance(metrics["leaked_timeout_threads"], int)

    def test_structured_bad_requests(self):
        (inst,) = make_instances(1)
        with ServerHandle(ServeConfig(workers=1)) as handle:
            client = handle.client(timeout_s=10)
            status, payload = client.solve(digest="0000")
            assert status == 404 and payload["error"]["code"] == "not_found"
            status, payload = client.op("solve", {"instance": {"nonsense": 1}})
            assert status == 400 and payload["error"]["code"] == "bad_request"
            status, payload = client.solve(instance=inst, R=1)
            assert status == 400 and "R" in payload["error"]["message"]
            status, payload = client.solve(instance=inst, algorithm="quantum")
            assert status == 400
            status, payload = client.request("POST", "/v1/frobnicate", {})
            assert status == 404 and payload["error"]["code"] == "not_found"
            status, payload = client.request("GET", "/nope")
            assert status == 404
            status, payload = client.utility("nope", instance=inst)
            assert status == 400

    def test_cache_tier_survives_restart(self, tmp_path):
        (inst,) = make_instances(1)
        cache_dir = str(tmp_path / "cache")
        with ServerHandle(ServeConfig(workers=1, cache_dir=cache_dir)) as handle:
            client = handle.client(timeout_s=10)
            status, first = client.solve(instance=inst)
            assert status == 200 and not first["cached"]
        with ServerHandle(ServeConfig(workers=1, cache_dir=cache_dir)) as handle:
            client = handle.client(timeout_s=10)
            status, second = client.solve(instance=inst)
            assert status == 200 and second["cached"]
            assert second["result"] == first["result"]

    def test_drain_stops_serving(self):
        handle = ServerHandle(ServeConfig(workers=1))
        handle.start()
        client = handle.client(timeout_s=5)
        assert client.healthz()[0] == 200
        handle.stop()
        with pytest.raises(OSError):
            client.healthz()

    def test_drain_is_idempotent(self):
        async def run():
            from repro.serve import AllocationServer

            server = AllocationServer(ServeConfig(workers=1))
            await server.start()
            await server.drain()
            await server.drain()
            await server.wait_closed()

        asyncio.run(run())


class TestCoalescing:
    def test_coalesced_responses_bitwise_equal_solo(self):
        instances = make_instances(12, size=10)
        config = ServeConfig(workers=4, coalesce_window_s=0.05, coalesce_max_batch=16)
        with ServerHandle(config) as handle:
            client = handle.client(timeout_s=30)
            solo = {}
            for inst in instances:
                status, payload = client.solve(
                    instance=inst, include_values=True, coalesce=False
                )
                assert status == 200 and not payload["coalesced"]
                solo[payload["digest"]] = payload["result"]

            doc_requests = [
                (
                    "solve",
                    {
                        "instance": json.loads(instance_to_json(inst)),
                        "include_values": True,
                    },
                )
                for inst in instances
            ]
            outcomes = chaos_barrage(client, doc_requests, concurrency=12)
            statuses = [classify_response(o) for o in outcomes]
            assert statuses == ["ok"] * 12
            coalesced_flags = []
            for status, payload in outcomes:
                assert status == 200
                # Bitwise equality: coalescing must be invisible in the result.
                assert payload["result"] == solo[payload["digest"]]
                coalesced_flags.append(payload["coalesced"])
            assert any(coalesced_flags), "no request coalesced despite the window"

            status, metrics = client.metrics()
            assert metrics["counters"].get("serve.coalesced_batches", 0) >= 1
            assert metrics["counters"].get("serve.coalesced_requests", 0) >= 2

    def test_solo_matches_direct_solver_bitwise(self):
        (inst,) = make_instances(1, size=12)
        direct = LocalMaxMinSolver(R=3, backend="vectorized").solve(inst)
        with ServerHandle(ServeConfig(workers=2)) as handle:
            client = handle.client(timeout_s=20)
            status, payload = client.solve(instance=inst, include_values=True)
            assert status == 200
            assert payload["result"]["utility"] == direct.utility()
            assert payload["result"]["values"] == {
                k: float(v) for k, v in direct.solution.as_dict().items()
            }


class TestDegradationLadder:
    def test_transient_on_vectorized_degrades_to_reference(self):
        (inst,) = make_instances(1)
        plan = FaultPlan(
            seed=7,
            job_faults=(
                transient(algorithm="local", params=(("backend", "vectorized"),)),
            ),
        )
        with ServerHandle(ServeConfig(workers=2, faults=plan)) as handle:
            client = handle.client(timeout_s=20)
            status, payload = client.solve(instance=inst)
            assert status == 200 and payload["degraded"]
            assert payload["backend"] == "reference"
            assert "FaultInjectionError" in payload["degraded_reason"]
            assert payload["result"]["feasible"]

    def test_hang_degrades_to_safe_within_deadline(self):
        (inst,) = make_instances(1)
        plan = FaultPlan(
            seed=7, job_faults=(hang(2.0, algorithm="local", attempts=None),)
        )
        config = ServeConfig(
            workers=2,
            faults=plan,
            coalesce_window_s=0,
            default_deadline_s=0.4,
            safe_grace_s=3.0,
        )
        with ServerHandle(config) as handle:
            client = handle.client(timeout_s=20)
            started = time.monotonic()
            status, payload = client.solve(instance=inst)
            elapsed = time.monotonic() - started
            assert status == 200 and payload["degraded"]
            assert payload["algorithm"].startswith("safe")
            assert payload["result"]["feasible"]
            assert "timeout" in payload["degraded_reason"]
            assert elapsed < 10.0  # bounded by deadline + grace, not by the hang

    def test_deadline_exceeded_without_degradation(self):
        (inst,) = make_instances(1)
        plan = FaultPlan(
            seed=7, job_faults=(hang(2.0, algorithm="local", attempts=None),)
        )
        config = ServeConfig(
            workers=2, faults=plan, coalesce_window_s=0, default_deadline_s=0.3
        )
        with ServerHandle(config) as handle:
            client = handle.client(timeout_s=20)
            status, payload = client.solve(instance=inst, degrade=False)
            assert status == 504
            assert payload["error"]["code"] == "deadline_exceeded"
            status, metrics = client.metrics()
            assert metrics["counters"]["serve.deadline_exceeded"] == 1

    def test_breaker_opens_after_consecutive_failures(self):
        (inst,) = make_instances(1)
        plan = FaultPlan(
            seed=7,
            job_faults=(
                transient(
                    algorithm="local",
                    params=(("backend", "vectorized"),),
                    attempts=None,  # poison: every vectorized attempt fails
                ),
            ),
        )
        config = ServeConfig(
            workers=1,
            faults=plan,
            coalesce_window_s=0,
            breaker_failure_threshold=2,
            breaker_cooldown_s=60.0,
        )
        with ServerHandle(config) as handle:
            client = handle.client(timeout_s=20)
            for _ in range(3):
                status, payload = client.solve(instance=inst)
                assert status == 200 and payload["degraded"]
            status, metrics = client.metrics()
            assert metrics["breakers"]["vectorized"]["state"] == "open"
            assert metrics["breakers"]["vectorized"]["opens"] >= 1
            # With the breaker open the ladder skips the rung outright.
            status, payload = client.solve(instance=inst)
            assert status == 200 and payload["degraded"]
            assert "breaker_open:vectorized" in payload["degraded_reason"]


class TestAdmissionControl:
    def test_overload_sheds_with_structured_error(self):
        (inst,) = make_instances(1)
        plan = FaultPlan(
            seed=7, job_faults=(hang(0.5, algorithm="local", attempts=None),)
        )
        config = ServeConfig(
            workers=1,
            max_pending=2,
            faults=plan,
            coalesce_window_s=0,
            default_deadline_s=0.6,
            safe_grace_s=1.0,
        )
        with ServerHandle(config) as handle:
            client = handle.client(timeout_s=30)
            # Make the instance resident first so shed requests are cheap.
            status, payload = client.solve(instance=inst)
            assert status == 200
            digest = payload["digest"]
            requests = [("solve", {"digest": digest}) for _ in range(10)]
            outcomes = chaos_barrage(client, requests, concurrency=10)
            labels = collections.Counter(classify_response(o) for o in outcomes)
            assert labels.get("transport_error", 0) == 0
            assert labels.get("overloaded", 0) >= 1, labels
            assert set(labels) <= {"ok", "degraded", "overloaded", "deadline_exceeded"}
            status, metrics = client.metrics()
            assert metrics["counters"]["serve.shed"] >= 1
            assert client.healthz()[1]["ok"]


class TestChaosBarrage:
    """The acceptance criterion: >= 64 concurrent requests under faults."""

    def test_barrage_under_faults_every_client_gets_a_response(self):
        instances = make_instances(8, size=8)
        plan = FaultPlan(
            seed=11,
            job_faults=(
                transient(algorithm="local", params=(("backend", "vectorized"),)),
                hang(0.2, algorithm="local", attempts=(1,)),
            ),
        )
        config = ServeConfig(
            workers=4,
            max_pending=96,
            faults=plan,
            coalesce_window_s=0.005,
            default_deadline_s=8.0,
            safe_grace_s=2.0,
        )
        with ServerHandle(config) as handle:
            client = handle.client(timeout_s=60)
            docs = [json.loads(instance_to_json(inst)) for inst in instances]
            digests = []
            for doc in docs[:2]:
                status, payload = client.op("info", {"instance": doc})
                assert status == 200
                digests.append(payload["digest"])

            requests = []
            for i in range(64):
                doc = docs[i % len(docs)]
                kind = i % 4
                if kind == 0:
                    requests.append(("solve", {"instance": doc}))
                elif kind == 1:
                    requests.append(("solve", {"instance": doc, "deadline_s": 0.75}))
                elif kind == 2:
                    requests.append(("ratio", {"instance": doc}))
                else:
                    requests.append(("info", {"digest": digests[i % 2]}))

            started = time.monotonic()
            outcomes = chaos_barrage(client, requests, concurrency=64)
            elapsed = time.monotonic() - started
            assert len(outcomes) == 64
            labels = collections.Counter(classify_response(o) for o in outcomes)
            # The contract: no hangs, no transport errors — every request is
            # answered exactly, degraded, or with a structured error.
            assert labels.get("transport_error", 0) == 0, labels
            assert set(labels) <= {
                "ok",
                "degraded",
                "overloaded",
                "deadline_exceeded",
            }, labels
            assert labels.get("degraded", 0) >= 1, labels  # the faults really fired
            assert elapsed < 60.0

            status, health = client.healthz()
            assert status == 200 and health["ok"]
            status, metrics = client.metrics()
            assert metrics["counters"]["serve.requests"] >= 66
            assert metrics["counters"]["serve.admitted"] >= 1
            assert client.readyz()[0] == 200


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


class TestServeCLI:
    def test_serve_config_from_args(self):
        from repro.cli import _serve_config_from_args, build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--port",
                "0",
                "--workers",
                "3",
                "--max-pending",
                "17",
                "--deadline-s",
                "5.5",
                "--coalesce-window-ms",
                "4",
                "--registry-capacity",
                "9",
            ]
        )
        config = _serve_config_from_args(args)
        assert config.port == 0 and config.workers == 3
        assert config.max_pending == 17
        assert config.default_deadline_s == 5.5
        assert config.coalesce_window_s == pytest.approx(0.004)
        assert config.registry_capacity == 9

    def test_serve_rejects_bad_flags(self, capsys):
        from repro.cli import main

        assert main(["serve", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--workers" in err

    def test_serve_preload_missing_file_exits_2(self, capsys):
        from repro.cli import main

        assert main(["serve", "--port", "0", "--preload", "/nope/missing.json"]) == 2
        assert "instance file not found" in capsys.readouterr().err
