"""Tests for the §4 local transformations and their composition.

Each transformation is checked for (a) its structural post-condition,
(b) correctness of the back-mapping (feasibility is preserved, utility does
not decrease beyond what the paper allows), and (c) the optimum-preservation
claims (§4.2, §4.4–§4.6 preserve the optimum exactly; §4.3 preserves it up
to the documented ΔI/2 accounting).
"""

from __future__ import annotations

import pytest

from repro.core.builder import InstanceBuilder
from repro.core.lp import solve_maxmin_lp
from repro.core.preprocess import preprocess
from repro.core.solution import Solution
from repro.exceptions import TransformError
from repro.generators import random_instance
from repro.transforms import (
    AugmentSingletonConstraints,
    AugmentSingletonObjectives,
    NormaliseCoefficients,
    ReduceConstraintDegree,
    SplitAgentsByObjective,
    apply_chain,
    canonical_transforms,
    compose,
    to_special_form,
)

from conftest import assert_feasible, build_general_instance, general_family


def _clean(instance):
    pre = preprocess(instance)
    assert not pre.optimum_is_zero and not pre.optimum_is_unbounded
    return pre.instance


class TestAugmentSingletonConstraints:
    def make_instance(self):
        builder = InstanceBuilder("singleton-constraint")
        builder.add_constraint_term("i1", "a", 2.0)          # degree-1 constraint
        builder.add_constraint_term("i2", "a", 1.0)
        builder.add_constraint_term("i2", "b", 1.0)
        builder.add_objective_term("k", "a", 1.0)
        builder.add_objective_term("k", "b", 1.0)
        return builder.build()

    def test_postcondition(self):
        result = AugmentSingletonConstraints().apply(self.make_instance())
        assert all(
            len(result.transformed.agents_of_constraint(i)) >= 2
            for i in result.transformed.constraints
        )
        assert result.ratio_factor == 1.0
        assert result.metadata["augmented_constraints"] == 1

    def test_optimum_preserved(self):
        instance = self.make_instance()
        result = AugmentSingletonConstraints().apply(instance)
        before = solve_maxmin_lp(instance).optimum
        after = solve_maxmin_lp(result.transformed).optimum
        assert after == pytest.approx(before, rel=1e-6)

    def test_back_map_feasible(self):
        instance = self.make_instance()
        result = AugmentSingletonConstraints().apply(instance)
        lp = solve_maxmin_lp(result.transformed)
        mapped = result.map_back(lp.solution)
        assert_feasible(mapped)
        assert mapped.utility() == pytest.approx(lp.optimum, rel=1e-6)

    def test_noop_when_no_singletons(self, tiny_instance):
        result = AugmentSingletonConstraints().apply(tiny_instance)
        assert not result.changed
        sol = Solution(result.transformed, {"a": 0.5, "b": 0.5})
        assert result.map_back(sol)["a"] == 0.5

    def test_rejects_degenerate(self, degenerate_instance):
        with pytest.raises(TransformError):
            AugmentSingletonConstraints().apply(degenerate_instance)


class TestReduceConstraintDegree:
    def test_postcondition_and_factor(self, general_instance):
        clean = _clean(general_instance)
        prepared = AugmentSingletonConstraints().apply(clean).transformed
        result = ReduceConstraintDegree().apply(prepared)
        assert all(
            len(result.transformed.agents_of_constraint(i)) == 2
            for i in result.transformed.constraints
        )
        assert result.ratio_factor == pytest.approx(prepared.delta_I / 2.0)

    def test_wide_constraint_becomes_pairs(self):
        builder = InstanceBuilder()
        builder.add_packing_constraint("i", {"a": 1.0, "b": 2.0, "c": 3.0})
        builder.add_covering_objective("k", {"a": 1.0, "b": 1.0, "c": 1.0})
        result = ReduceConstraintDegree().apply(builder.build())
        assert result.transformed.num_constraints == 3  # C(3, 2)
        # Coefficients are inherited pairwise.
        coeffs = sorted(result.transformed.a_coefficients.values())
        assert coeffs == [1.0, 1.0, 2.0, 2.0, 3.0, 3.0]

    def test_back_map_feasible_and_ratio_accounting(self):
        builder = InstanceBuilder()
        builder.add_packing_constraint("i", {"a": 1.0, "b": 1.0, "c": 1.0})
        builder.add_covering_objective("k1", {"a": 1.0})
        builder.add_covering_objective("k2", {"b": 1.0})
        builder.add_covering_objective("k3", {"c": 1.0})
        instance = builder.build()
        result = ReduceConstraintDegree().apply(instance)
        lp_t = solve_maxmin_lp(result.transformed)
        mapped = result.map_back(lp_t.solution)
        assert_feasible(mapped)
        original_opt = solve_maxmin_lp(instance).optimum
        # α-approximate transformed solution maps to α·ΔI/2 approximate one.
        assert original_opt <= result.ratio_factor * mapped.utility() + 1e-9

    def test_requires_no_singletons(self):
        builder = InstanceBuilder()
        builder.add_constraint_term("i", "a", 1.0)
        builder.add_objective_term("k", "a", 1.0)
        with pytest.raises(TransformError):
            ReduceConstraintDegree().apply(builder.build())

    def test_noop_when_all_degree_two(self, unit_cycle):
        result = ReduceConstraintDegree().apply(unit_cycle)
        assert not result.changed
        assert result.ratio_factor == 1.0


class TestSplitAgentsByObjective:
    def test_postcondition(self, general_instance):
        result = SplitAgentsByObjective().apply(general_instance)
        assert all(
            len(result.transformed.objectives_of_agent(v)) == 1
            for v in result.transformed.agents
        )
        assert result.ratio_factor == 1.0

    def test_optimum_preserved(self, general_instance):
        result = SplitAgentsByObjective().apply(general_instance)
        before = solve_maxmin_lp(general_instance).optimum
        after = solve_maxmin_lp(result.transformed).optimum
        assert after == pytest.approx(before, rel=1e-6)

    def test_back_map_feasible_same_utility(self, general_instance):
        result = SplitAgentsByObjective().apply(general_instance)
        lp = solve_maxmin_lp(result.transformed)
        mapped = result.map_back(lp.solution)
        assert_feasible(mapped)
        assert mapped.utility() >= lp.optimum - 1e-9

    def test_noop(self, unit_cycle):
        assert not SplitAgentsByObjective().apply(unit_cycle).changed


class TestAugmentSingletonObjectives:
    def make_instance(self):
        builder = InstanceBuilder()
        builder.add_constraint_term("i", "a", 1.0)
        builder.add_constraint_term("i", "b", 1.0)
        builder.add_objective_term("k1", "a", 2.0)   # singleton objective
        builder.add_objective_term("k2", "b", 1.0)   # singleton objective
        return builder.build()

    def test_postcondition(self):
        result = AugmentSingletonObjectives().apply(self.make_instance())
        assert all(
            len(result.transformed.agents_of_objective(k)) >= 2
            for k in result.transformed.objectives
        )
        # Each agent was split into two copies.
        assert result.transformed.num_agents == 4

    def test_optimum_preserved(self):
        instance = self.make_instance()
        result = AugmentSingletonObjectives().apply(instance)
        assert solve_maxmin_lp(result.transformed).optimum == pytest.approx(
            solve_maxmin_lp(instance).optimum, rel=1e-6
        )

    def test_back_map(self):
        instance = self.make_instance()
        result = AugmentSingletonObjectives().apply(instance)
        lp = solve_maxmin_lp(result.transformed)
        mapped = result.map_back(lp.solution)
        assert_feasible(mapped)
        assert mapped.utility() >= lp.optimum - 1e-9

    def test_requires_unique_objectives(self, general_instance):
        with pytest.raises(TransformError):
            AugmentSingletonObjectives().apply(general_instance)

    def test_noop(self, unit_cycle):
        assert not AugmentSingletonObjectives().apply(unit_cycle).changed


class TestNormaliseCoefficients:
    def make_instance(self):
        builder = InstanceBuilder()
        builder.add_constraint_term("i", "a", 1.0)
        builder.add_constraint_term("i", "b", 2.0)
        builder.add_objective_term("k", "a", 4.0)
        builder.add_objective_term("k", "b", 0.5)
        return builder.build()

    def test_postcondition(self):
        result = NormaliseCoefficients().apply(self.make_instance())
        assert all(c == pytest.approx(1.0) for c in result.transformed.c_coefficients.values())
        # Graph shape unchanged.
        assert result.transformed.num_edges == 4

    def test_optimum_preserved_and_back_map(self):
        instance = self.make_instance()
        result = NormaliseCoefficients().apply(instance)
        lp_before = solve_maxmin_lp(instance)
        lp_after = solve_maxmin_lp(result.transformed)
        assert lp_after.optimum == pytest.approx(lp_before.optimum, rel=1e-6)
        mapped = result.map_back(lp_after.solution)
        assert_feasible(mapped)
        assert mapped.utility() == pytest.approx(lp_before.optimum, rel=1e-6)

    def test_requires_unique_objectives(self, general_instance):
        with pytest.raises(TransformError):
            NormaliseCoefficients().apply(general_instance)

    def test_noop_when_already_unit(self, unit_cycle):
        assert not NormaliseCoefficients().apply(unit_cycle).changed


class TestPipeline:
    def test_canonical_order(self):
        names = [type(t).__name__ for t in canonical_transforms()]
        assert names == [
            "AugmentSingletonConstraints",
            "ReduceConstraintDegree",
            "SplitAgentsByObjective",
            "AugmentSingletonObjectives",
            "NormaliseCoefficients",
        ]

    def test_full_pipeline_reaches_special_form(self):
        for instance in general_family():
            clean = preprocess(instance).instance
            result = to_special_form(clean)
            assert result.transformed.is_special_form()
            assert result.ratio_factor == pytest.approx(max(clean.delta_I, 2) / 2.0)

    def test_pipeline_back_map_feasible_and_bounded(self):
        for instance in general_family():
            clean = preprocess(instance).instance
            result = to_special_form(clean)
            lp_special = solve_maxmin_lp(result.transformed)
            mapped = result.map_back(lp_special.solution)
            assert_feasible(mapped)
            optimum = solve_maxmin_lp(clean).optimum
            # Optimal transformed solution maps to a ΔI/2-approximation.
            assert optimum <= result.ratio_factor * mapped.utility() + 1e-7
            # And never exceeds the true optimum.
            assert mapped.utility() <= optimum + 1e-7

    def test_pipeline_optimum_relation(self):
        # §4.2, §4.4, §4.5, §4.6 preserve the optimum; §4.3 can only increase
        # it (an optimal original solution stays feasible), by at most ΔI/2.
        instance = _clean(build_general_instance())
        result = to_special_form(instance)
        original = solve_maxmin_lp(instance).optimum
        transformed = solve_maxmin_lp(result.transformed).optimum
        assert transformed >= original - 1e-9
        assert transformed <= result.ratio_factor * original + 1e-7

    def test_compose_validates_chain(self, tiny_instance, general_instance):
        first = SplitAgentsByObjective().apply(general_instance)
        second = SplitAgentsByObjective().apply(tiny_instance)
        with pytest.raises(TransformError):
            compose([first, second])
        with pytest.raises(TransformError):
            compose([])

    def test_map_back_requires_matching_instance(self, general_instance, tiny_instance):
        result = SplitAgentsByObjective().apply(general_instance)
        with pytest.raises(TransformError):
            result.map_back(Solution(tiny_instance, {}))

    def test_apply_chain_matches_to_special_form(self):
        instance = _clean(random_instance(12, delta_I=3, delta_K=3, seed=5))
        via_chain = apply_chain(instance, canonical_transforms())
        via_helper = to_special_form(instance)
        assert via_chain.transformed == via_helper.transformed
