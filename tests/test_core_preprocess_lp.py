"""Tests for degenerate-case preprocessing and the exact LP solver."""

from __future__ import annotations

import math

import pytest

from repro.core.builder import InstanceBuilder
from repro.core.instance import MaxMinInstance
from repro.core.lp import best_response_value, optimum_value, solve_maxmin_lp
from repro.core.preprocess import preprocess
from repro.core.solution import Solution
from repro.core.validation import (
    require_nondegenerate,
    require_special_form,
    validate_instance,
    validation_issues,
)
from repro.exceptions import DegenerateInstanceError, InvalidInstanceError, NotSpecialFormError

from conftest import assert_feasible


class TestValidation:
    def test_clean_instance_has_no_issues(self, tiny_instance):
        assert validation_issues(tiny_instance, require_nondegenerate=True, require_connected=True) == []
        validate_instance(tiny_instance, require_nondegenerate=True)

    def test_degeneracies_reported(self, degenerate_instance):
        issues = validation_issues(degenerate_instance, require_nondegenerate=True)
        assert any("isolated_constraints" in issue for issue in issues)
        with pytest.raises(InvalidInstanceError):
            validate_instance(degenerate_instance, require_nondegenerate=True)

    def test_degree_bound_check(self, general_instance):
        issues = validation_issues(general_instance, max_delta_I=2, max_delta_K=2)
        assert len(issues) == 1 and "delta_I" in issues[0]

    def test_empty_instance_flagged(self):
        inst = MaxMinInstance([], [], [], {}, {})
        assert "no agents" in validation_issues(inst)[0]

    def test_require_nondegenerate(self, degenerate_instance, tiny_instance):
        require_nondegenerate(tiny_instance)
        with pytest.raises(DegenerateInstanceError):
            require_nondegenerate(degenerate_instance)

    def test_require_special_form(self, unit_cycle, general_instance):
        require_special_form(unit_cycle)
        with pytest.raises(NotSpecialFormError):
            require_special_form(general_instance)


class TestPreprocess:
    def test_noop_on_clean_instance(self, tiny_instance):
        pre = preprocess(tiny_instance)
        assert not pre.changed
        assert pre.instance == tiny_instance
        assert not pre.optimum_is_zero and not pre.optimum_is_unbounded

    def test_all_degeneracies_removed(self, degenerate_instance):
        pre = preprocess(degenerate_instance)
        assert pre.changed
        assert not pre.instance.is_degenerate()
        # The isolated objective forces the optimum to zero.
        assert pre.optimum_is_zero
        assert "i_isolated" in pre.removed_constraints
        assert "c" in pre.forced_zero_agents
        assert "d" in pre.unconstrained_agents
        assert "k_unc" in pre.removed_objectives

    def test_lift_preserves_feasibility_and_utility(self):
        builder = InstanceBuilder("lift")
        builder.add_constraint_term("i", "a", 1.0)
        builder.add_constraint_term("i", "b", 1.0)
        builder.add_objective_term("k", "a", 1.0)
        builder.add_objective_term("k", "b", 1.0)
        builder.add_objective_term("k_unc", "free", 1.0)  # unconstrained agent
        inst = builder.build()
        pre = preprocess(inst)
        assert "free" in pre.unconstrained_agents
        inner = Solution(pre.instance, {"a": 0.5, "b": 0.5})
        lifted = pre.lift(inner)
        assert lifted.instance is inst
        assert_feasible(lifted)
        # The unconstrained agent was given enough to keep the removed
        # objective at least at the inner utility.
        assert lifted.utility() == pytest.approx(inner.utility())

    def test_lift_with_explicit_target(self):
        builder = InstanceBuilder("lift2")
        builder.add_constraint_term("i", "a", 1.0)
        builder.add_constraint_term("i", "b", 1.0)
        builder.add_objective_term("k", "a", 1.0)
        builder.add_objective_term("k", "b", 1.0)
        builder.add_objective_term("k_unc", "free", 0.5)
        inst = builder.build()
        pre = preprocess(inst)
        lifted = pre.lift(Solution(pre.instance, {"a": 0.5, "b": 0.5}), target_utility=3.0)
        assert lifted.objective_value("k_unc") >= 3.0 - 1e-9

    def test_lift_rejects_foreign_solution(self, tiny_instance, general_instance):
        pre = preprocess(general_instance)
        with pytest.raises(DegenerateInstanceError):
            pre.lift(Solution(tiny_instance, {}))

    def test_unbounded_detection(self):
        # Single objective whose only agent is unconstrained.
        inst = MaxMinInstance(["a"], [], ["k"], {}, {("k", "a"): 1.0})
        pre = preprocess(inst)
        assert pre.optimum_is_unbounded
        assert not pre.optimum_is_zero

    def test_cascading_removal(self):
        # Agent "b" only contributes to an objective that is removed because
        # of the unconstrained agent "free" -> b becomes non-contributing.
        builder = InstanceBuilder("cascade")
        builder.add_constraint_term("i", "a", 1.0)
        builder.add_objective_term("k1", "a", 1.0)
        builder.add_constraint_term("ib", "b", 1.0)
        builder.add_objective_term("k2", "b", 1.0)
        builder.add_objective_term("k2", "free", 1.0)
        inst = builder.build()
        pre = preprocess(inst)
        assert "free" in pre.unconstrained_agents
        assert "b" in pre.forced_zero_agents
        assert not pre.instance.is_degenerate()


class TestExactLP:
    def test_tiny_optimum(self, tiny_instance):
        result = solve_maxmin_lp(tiny_instance)
        assert result.status == "optimal"
        assert result.optimum == pytest.approx(1.0)
        assert_feasible(result.solution)
        assert result.solution.utility() == pytest.approx(1.0)

    def test_known_general_optimum(self):
        # maximise min(x, y) s.t. x + y <= 1  ->  0.5
        builder = InstanceBuilder()
        builder.add_packing_constraint("i", {"x": 1.0, "y": 1.0})
        builder.add_covering_objective("k1", {"x": 1.0})
        builder.add_covering_objective("k2", {"y": 1.0})
        assert optimum_value(builder.build()) == pytest.approx(0.5)

    def test_weighted_optimum(self):
        # x <= 1/2 (coefficient 2), objective 3x -> 1.5
        builder = InstanceBuilder()
        builder.add_constraint_term("i", "x", 2.0)
        builder.add_objective_term("k", "x", 3.0)
        assert optimum_value(builder.build()) == pytest.approx(1.5)

    def test_cycle_optimum_is_one(self, unit_cycle):
        assert solve_maxmin_lp(unit_cycle).optimum == pytest.approx(1.0)

    def test_ring_optimum(self, ring_instance):
        # objective_ring(m, delta_K): optimum is delta_K - 1.
        assert solve_maxmin_lp(ring_instance).optimum == pytest.approx(2.0)

    def test_zero_optimum(self):
        builder = InstanceBuilder()
        builder.add_constraint_term("i", "a", 1.0)
        builder.add_objective_term("k", "a", 1.0)
        builder.add_objective("k_empty")
        result = solve_maxmin_lp(builder.build())
        assert result.status == "zero"
        assert result.optimum == 0.0

    def test_unbounded_optimum(self):
        inst = MaxMinInstance(["a"], [], ["k"], {}, {("k", "a"): 1.0})
        result = solve_maxmin_lp(inst, unbounded_target=5.0)
        assert result.status == "unbounded"
        assert math.isinf(result.optimum)
        assert result.solution.objective_value("k") >= 5.0

    def test_split_components_matches_joint_solve(self, general_instance):
        joint = solve_maxmin_lp(general_instance)
        split = solve_maxmin_lp(general_instance, split_components=True)
        assert split.optimum == pytest.approx(joint.optimum, rel=1e-6)

    def test_split_components_disconnected(self):
        builder = InstanceBuilder()
        builder.add_constraint_term("i1", "a", 1.0)
        builder.add_objective_term("k1", "a", 1.0)
        builder.add_constraint_term("i2", "b", 2.0)
        builder.add_objective_term("k2", "b", 1.0)
        result = solve_maxmin_lp(builder.build(), split_components=True)
        # Component optima are 1.0 and 0.5 -> overall 0.5.
        assert result.optimum == pytest.approx(0.5)
        assert_feasible(result.solution)

    def test_optimum_upper_bounded_by_trivial_bound(self, random_general):
        assert solve_maxmin_lp(random_general).optimum <= random_general.trivial_upper_bound() + 1e-9

    def test_best_response_value(self, tiny_instance):
        assert best_response_value(tiny_instance, {"b": 0.25}, "a") == pytest.approx(0.75)
        assert best_response_value(tiny_instance, {"b": 2.0}, "a") == 0.0
        inst = MaxMinInstance(["a"], [], ["k"], {}, {("k", "a"): 1.0})
        assert math.isinf(best_response_value(inst, {}, "a"))

    def test_lp_solution_is_optimal_feasible(self, random_general, random_special):
        for inst in (random_general, random_special):
            result = solve_maxmin_lp(inst)
            assert_feasible(result.solution)
            assert result.solution.utility() == pytest.approx(result.optimum, rel=1e-6, abs=1e-9)


class TestCsrNativeLP:
    """The compiled-COO assembly, block-diagonal components and the
    vectorized ``best_response_value``."""

    def test_block_diagonal_components_individual_optima(self):
        # Three disconnected blocks with optima 1.0, 0.5 and 0.25: one
        # linprog call must recover every block's own optimum, not just the
        # binding minimum.
        builder = InstanceBuilder()
        builder.add_constraint_term("i1", "a", 1.0)
        builder.add_objective_term("k1", "a", 1.0)
        builder.add_constraint_term("i2", "b", 2.0)
        builder.add_objective_term("k2", "b", 1.0)
        builder.add_constraint_term("i3", "c", 4.0)
        builder.add_objective_term("k3", "c", 1.0)
        result = solve_maxmin_lp(builder.build(), split_components=True)
        assert result.optimum == pytest.approx(0.25)
        assert_feasible(result.solution)
        assert result.solution.objective_value("k1") == pytest.approx(1.0)
        assert result.solution.objective_value("k2") == pytest.approx(0.5)
        assert result.solution.objective_value("k3") == pytest.approx(0.25)

    def test_split_components_matches_joint_on_connected(self, random_general):
        joint = solve_maxmin_lp(random_general)
        split = solve_maxmin_lp(random_general, split_components=True)
        assert split.optimum == pytest.approx(joint.optimum, rel=1e-9)

    def test_split_components_single_linprog_call(self, monkeypatch):
        import repro.core.lp as lp_mod

        calls = []
        real_linprog = lp_mod.linprog

        def counting_linprog(*args, **kwargs):
            calls.append(1)
            return real_linprog(*args, **kwargs)

        monkeypatch.setattr(lp_mod, "linprog", counting_linprog)
        builder = InstanceBuilder()
        for j in range(4):
            builder.add_constraint_term(f"i{j}", f"a{j}", 1.0 + j)
            builder.add_objective_term(f"k{j}", f"a{j}", 1.0)
        result = solve_maxmin_lp(builder.build(), split_components=True)
        assert len(calls) == 1
        assert result.optimum == pytest.approx(0.25)

    def test_best_response_exact_agreement_with_reference_loop(self):
        """Bit-for-bit agreement with the historical per-constraint loop."""
        import numpy as np

        from repro.generators import random_instance

        def reference(instance, fixed, free_agent):
            best = math.inf
            for i in instance.constraints_of_agent(free_agent):
                load = sum(
                    instance.a(i, w) * fixed.get(w, 0.0)
                    for w in instance.agents_of_constraint(i)
                    if w != free_agent
                )
                cap = (1.0 - load) / instance.a(i, free_agent)
                best = min(best, cap)
            return max(best, 0.0)

        rng = np.random.default_rng(7)
        for seed in (13, 5):
            inst = random_instance(
                40, delta_I=5, delta_K=3, extra_constraints=8, extra_objectives=4, seed=seed
            )
            values = {v: float(rng.uniform(0.0, 0.5)) for v in inst.agents}
            for v in inst.agents:
                fixed = {w: x for w, x in values.items() if w != v}
                assert best_response_value(inst, fixed, v) == reference(inst, fixed, v)

    def test_best_response_unknown_agent_raises(self, tiny_instance):
        with pytest.raises(InvalidInstanceError):
            best_response_value(tiny_instance, {}, "nope")

    def test_best_response_ignores_unknown_fixed_agents(self, tiny_instance):
        assert best_response_value(
            tiny_instance, {"b": 0.25, "ghost": 9.0}, "a"
        ) == pytest.approx(0.75)
