"""Tests for the alternating tree, the f± recursion and the t_u / s_v bounds.

These are the executable versions of Lemmata 1–4 of the paper.
"""

from __future__ import annotations

import math

import pytest

from repro._types import NodeType
from repro.algo.alternating_tree import build_alternating_tree
from repro.algo.tree_recursion import evaluate_recursion, recursion_feasible, recursion_margin
from repro.algo.upper_bound import (
    compute_upper_bounds,
    smooth_upper_bounds,
    tree_optimum,
    tree_optimum_binary_search,
    tree_optimum_lp,
)
from repro.core.lp import solve_maxmin_lp
from repro.exceptions import InvalidInstanceError, NotSpecialFormError
from repro.generators import cycle_instance, objective_ring_instance, random_special_form_instance

from conftest import special_form_family


class TestAlternatingTreeStructure:
    """Lemma 1: A_u is a finite tree with the stated level structure."""

    @pytest.mark.parametrize("r", [0, 1, 2])
    def test_structure_on_cycle(self, r):
        instance = cycle_instance(8, coefficient_range=(0.5, 2.0), seed=1)
        for u in instance.agents[:4]:
            tree = build_alternating_tree(instance, u, r)
            assert tree.check_structure() == []
            assert tree.root.level == -1
            assert tree.levels[0] == -2
            assert tree.levels[-1] == 4 * r + 2

    def test_structure_on_family(self):
        for instance in special_form_family():
            u = instance.agents[0]
            tree = build_alternating_tree(instance, u, 1)
            assert tree.check_structure() == []

    def test_levels_by_kind(self):
        instance = cycle_instance(10)
        tree = build_alternating_tree(instance, instance.agents[0], 2)
        for node in tree.nodes:
            if node.kind is NodeType.OBJECTIVE:
                assert node.level % 4 == 0
            elif node.kind is NodeType.CONSTRAINT:
                assert node.level == -2 or node.level % 4 == 2
            else:
                assert node.level % 2 == 1 or node.level == -1

    def test_leaves_are_constraints(self):
        instance = random_special_form_instance(14, delta_K=3, constraint_rounds=2, seed=3)
        tree = build_alternating_tree(instance, instance.agents[0], 1)
        for node in tree.nodes:
            if not node.children:
                assert node.kind is NodeType.CONSTRAINT
                assert node.level in (-2, tree.max_level)

    def test_objectives_complete(self):
        """Every objective of A_u carries all agents adjacent to it in G."""
        instance = objective_ring_instance(4, 3)
        tree = build_alternating_tree(instance, instance.agents[0], 1)
        for node in tree.nodes:
            if node.kind is NodeType.OBJECTIVE:
                members = {node.parent.name} | {c.name for c in node.children}
                assert members == set(instance.agents_of_objective(node.name))

    def test_unfolding_repeats_nodes_on_short_cycles(self):
        # In a 2-segment cycle (girth 8) with r=2 the walk length 4r+3 = 11
        # exceeds the girth, so the same instance agent appears multiple times
        # in A_u (nodes of A_u are walks of the unfolding, not graph nodes).
        instance = cycle_instance(2)
        tree = build_alternating_tree(instance, instance.agents[0], 2)
        agent_names = [n.name for n in tree.agent_nodes()]
        assert len(agent_names) > len(set(agent_names))

    def test_size_grows_with_r(self):
        instance = cycle_instance(12)
        sizes = [build_alternating_tree(instance, "v0", r).size() for r in range(3)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_invalid_inputs(self):
        instance = cycle_instance(4)
        with pytest.raises(InvalidInstanceError):
            build_alternating_tree(instance, "v0", -1)
        with pytest.raises(InvalidInstanceError):
            build_alternating_tree(instance, "does-not-exist", 1)
        from conftest import build_general_instance

        with pytest.raises(NotSpecialFormError):
            build_alternating_tree(build_general_instance(), "v0", 1)

    def test_as_instance_inherits_coefficients(self):
        instance = cycle_instance(6, coefficient_range=(0.5, 2.0), seed=2)
        tree = build_alternating_tree(instance, "v0", 1)
        tree_instance = tree.as_instance()
        assert tree_instance.num_agents == sum(1 for _ in tree.agent_nodes())
        # Every tree edge's coefficient matches the parent edge in G.
        for node in tree.nodes:
            if node.parent is None or node.kind is not NodeType.AGENT:
                continue
            parent = node.parent
            if parent.kind is NodeType.CONSTRAINT:
                assert tree_instance.a(parent.index, node.index) == pytest.approx(
                    instance.a(parent.name, node.name)
                )
            else:
                assert tree_instance.c(parent.index, node.index) == pytest.approx(
                    instance.c(parent.name, node.name)
                )


class TestRecursion:
    """Lemma 3: the recursion characterises the optimum of A_u."""

    def test_zero_is_always_feasible(self):
        for instance in special_form_family():
            tree = build_alternating_tree(instance, instance.agents[0], 1)
            assert recursion_feasible(tree, 0.0)

    def test_margin_monotone_in_omega(self):
        instance = cycle_instance(6, coefficient_range=(0.5, 2.0), seed=4)
        tree = build_alternating_tree(instance, "v0", 1)
        omegas = [0.0, 0.3, 0.6, 0.9, 1.2, 1.5, 2.0]
        margins = [recursion_margin(tree, w) for w in omegas]
        assert all(a >= b - 1e-12 for a, b in zip(margins, margins[1:]))

    def test_recursion_values_structure(self):
        instance = cycle_instance(6)
        tree = build_alternating_tree(instance, "v0", 1)
        values = evaluate_recursion(tree, 0.5)
        # f+ defined exactly on levels ≡ 1 (mod 4), f− on ≡ 3 (mod 4) and the root.
        for node in tree.agent_nodes():
            if node.level % 4 == 1:
                assert node.index in values.f_plus
            else:
                assert node.index in values.f_minus
        assert tree.root.index in values.f_minus

    def test_depth_indexing(self):
        instance = cycle_instance(8)
        tree = build_alternating_tree(instance, "v0", 2)
        values = evaluate_recursion(tree, 0.2)
        for node in tree.agent_nodes():
            d = values.depth_of[node.index]
            if node.level % 4 == 1:
                assert node.level == 4 * (tree.r - d) + 1
            else:
                assert node.level == 4 * (tree.r - d) - 1

    def test_binary_search_matches_lp(self):
        """The practical binary search and the exact tree LP agree (Lemma 3)."""
        for instance in special_form_family():
            for u in instance.agents[:3]:
                for r in (0, 1):
                    tree = build_alternating_tree(instance, u, r)
                    bs = tree_optimum_binary_search(tree, tol=1e-11)
                    lp = tree_optimum_lp(tree)
                    assert bs == pytest.approx(lp, rel=1e-6, abs=1e-7)

    def test_tree_optimum_dispatch(self):
        instance = cycle_instance(5)
        tree = build_alternating_tree(instance, "v0", 1)
        assert tree_optimum(tree, "recursion") == pytest.approx(tree_optimum(tree, "lp"), abs=1e-7)
        with pytest.raises(ValueError):
            tree_optimum(tree, "nope")


class TestUpperBounds:
    """Lemma 2: t_u (and hence s_v) upper-bounds every feasible utility of G."""

    @pytest.mark.parametrize("r", [0, 1])
    def test_tu_upper_bounds_global_optimum(self, r):
        for instance in special_form_family():
            optimum = solve_maxmin_lp(instance).optimum
            bounds = compute_upper_bounds(instance, r)
            for u, t_u in bounds.items():
                assert t_u >= optimum - 1e-7, f"t_u({u!r}) = {t_u} < opt = {optimum}"

    def test_tu_decreases_with_r(self):
        # Larger r means a bigger tree, hence more constraints and a bound at
        # least as tight (never larger).
        instance = cycle_instance(10, coefficient_range=(0.5, 2.0), seed=6)
        b0 = compute_upper_bounds(instance, 0)
        b1 = compute_upper_bounds(instance, 1)
        for u in instance.agents:
            assert b1[u] <= b0[u] + 1e-9

    def test_smoothing_is_min_over_ball(self):
        instance = cycle_instance(8, coefficient_range=(0.5, 2.0), seed=7)
        r = 1
        bounds = compute_upper_bounds(instance, r)
        smoothed = smooth_upper_bounds(instance, bounds, r)
        # s_v <= t_v and s_v >= global min of t.
        global_min = min(bounds.values())
        for v in instance.agents:
            assert smoothed[v] <= bounds[v] + 1e-12
            assert smoothed[v] >= global_min - 1e-12

    def test_smoothing_radius_covers_everything_on_small_instance(self):
        # On a small instance the 4r+2 ball covers the whole graph, so s_v is
        # the global minimum for every v.
        instance = cycle_instance(3)
        bounds = compute_upper_bounds(instance, 1)
        smoothed = smooth_upper_bounds(instance, bounds, 1)
        global_min = min(bounds.values())
        for v in instance.agents:
            assert smoothed[v] == pytest.approx(global_min)

    def test_bounds_for_subset_of_agents(self):
        instance = cycle_instance(6)
        subset = instance.agents[:2]
        bounds = compute_upper_bounds(instance, 1, agents=subset)
        assert set(bounds) == set(subset)

    def test_lp_method_agrees_with_recursion_method(self):
        instance = random_special_form_instance(12, delta_K=3, seed=8)
        rec = compute_upper_bounds(instance, 1, method="recursion")
        lp = compute_upper_bounds(instance, 1, method="lp")
        for u in instance.agents:
            assert rec[u] == pytest.approx(lp[u], rel=1e-6, abs=1e-7)
