"""Tests for serialization, graph export and the command-line interface."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solution import Solution
from repro.cli import build_parser, main
from repro.exceptions import SerializationError
from repro.generators import cycle_instance, random_instance
from repro.io import (
    from_networkx,
    instance_from_json,
    instance_to_json,
    load_graphml,
    load_instance,
    save_graphml,
    save_instance,
    save_solution,
    solution_to_json,
    to_networkx,
)
from repro.transforms import to_special_form


class TestJsonSerialization:
    def test_roundtrip_simple(self, general_instance, tmp_path):
        path = save_instance(general_instance, tmp_path / "inst.json")
        restored = load_instance(path)
        assert restored == general_instance
        assert restored.name == general_instance.name

    def test_roundtrip_tuple_ids(self, general_instance, tmp_path):
        # The transformation pipeline generates tuple-shaped identifiers.
        transformed = to_special_form(general_instance).transformed
        path = save_instance(transformed, tmp_path / "transformed.json")
        restored = load_instance(path)
        assert restored == transformed

    def test_roundtrip_integer_ids(self):
        from repro.core.instance import MaxMinInstance

        inst = MaxMinInstance([1, 2], [10], [20], {(10, 1): 1.0, (10, 2): 1.0}, {(20, 1): 1.0, (20, 2): 1.0})
        assert instance_from_json(instance_to_json(inst)) == inst

    def test_invalid_documents(self):
        with pytest.raises(SerializationError):
            instance_from_json("not json at all {")
        with pytest.raises(SerializationError):
            instance_from_json(json.dumps({"format": "something-else"}))
        with pytest.raises(SerializationError):
            instance_from_json(json.dumps({"format": "repro.maxmin-lp", "agents": []}))

    def test_solution_serialization(self, tiny_instance, tmp_path):
        sol = Solution(tiny_instance, {"a": 0.5, "b": 0.25}, label="manual")
        text = solution_to_json(sol)
        payload = json.loads(text)
        assert payload["label"] == "manual"
        assert payload["utility"] == pytest.approx(0.75)
        path = save_solution(sol, tmp_path / "sol.json")
        assert path.exists()


class TestNodeIdRoundTrip:
    """Regression: bool/float ids used to degrade to repr strings, so a
    save/load hop changed the instance digest and the engine's result cache
    silently missed forever after."""

    @staticmethod
    def _chain(agents):
        from repro.core.instance import MaxMinInstance

        a = {("c", agents[0]): 1.0, ("c", agents[1]): 2.0}
        c = {("o", v): 1.0 for v in agents}
        return MaxMinInstance(agents, ["c"], ["o"], a, c, name="id-roundtrip")

    def test_bool_ids_roundtrip_by_identity(self):
        inst = self._chain([True, False])
        restored = instance_from_json(instance_to_json(inst))
        assert restored.agents == (True, False)
        assert all(type(v) is bool for v in restored.agents)
        assert restored == inst

    def test_float_ids_roundtrip_by_identity(self):
        inst = self._chain([0.5, -2.25, float("inf")])
        restored = instance_from_json(instance_to_json(inst))
        assert restored.agents == (0.5, -2.25, float("inf"))
        assert all(type(v) is float for v in restored.agents)

    def test_digest_stable_after_save_load_hop(self, tmp_path):
        from repro.io import instance_digest

        inst = self._chain([True, 2, ("nested", False, 1.5)])
        path = save_instance(inst, tmp_path / "exotic.json")
        restored = load_instance(path)
        assert restored == inst
        assert instance_digest(restored) == instance_digest(inst)

    def test_exotic_ids_rejected_instead_of_degraded(self):
        inst = self._chain([frozenset({"x"}), "b"])
        with pytest.raises(SerializationError, match="faithfully"):
            instance_to_json(inst)

    def test_legacy_repr_documents_still_decode(self):
        from repro.io.serialization import _decode_id

        assert _decode_id({"__kind__": "repr", "value": "True"}) == "True"

    @given(
        st.lists(
            st.one_of(
                st.booleans(),
                st.integers(min_value=-(10**6), max_value=10**6),
                st.floats(allow_nan=False),
                st.text(max_size=8),
                st.tuples(st.booleans(), st.integers(), st.text(max_size=4)),
            ),
            min_size=2,
            max_size=6,
            unique=True,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_digest_stability_property(self, agent_ids):
        from repro.io import instance_digest

        inst = self._chain(agent_ids)
        text = instance_to_json(inst)
        restored = instance_from_json(text)
        assert restored == inst
        assert instance_to_json(restored) == text
        assert instance_digest(restored) == instance_digest(inst)


class TestGraphml:
    def test_to_networkx_attributes(self, tiny_instance):
        graph = to_networkx(tiny_instance)
        assert graph.number_of_nodes() == 4
        kinds = {data["kind"] for _n, data in graph.nodes(data=True)}
        assert kinds == {"agent", "constraint", "objective"}

    def test_networkx_roundtrip(self, general_instance):
        graph = to_networkx(general_instance)
        restored = from_networkx(graph)
        assert restored.num_agents == general_instance.num_agents
        assert restored.num_edges == general_instance.num_edges
        assert restored.delta_I == general_instance.delta_I

    def test_graphml_file_roundtrip(self, tmp_path):
        instance = cycle_instance(4, coefficient_range=(0.5, 2.0), seed=1)
        path = save_graphml(instance, tmp_path / "inst.graphml")
        restored = load_graphml(path)
        assert restored.num_agents == instance.num_agents
        assert restored.num_constraints == instance.num_constraints
        assert restored.is_special_form()

    def test_from_networkx_rejects_bad_graphs(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node("x")  # no kind attribute
        with pytest.raises(SerializationError):
            from_networkx(graph)

        graph = nx.Graph()
        graph.add_node("a", kind="agent")
        graph.add_node("b", kind="agent")
        graph.add_edge("a", "b", coeff=1.0)
        with pytest.raises(SerializationError):
            from_networkx(graph)


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "cycle", "out.json", "--size", "4"])
        assert args.command == "generate" and args.family == "cycle"

    def test_generate_info_compare_solve(self, tmp_path, capsys):
        instance_path = str(tmp_path / "inst.json")
        assert main(["generate", "cycle", instance_path, "--size", "4"]) == 0
        assert main(["info", instance_path]) == 0
        out = capsys.readouterr().out
        assert "special form" in out

        assert main(["compare", instance_path, "--r-values", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "local-R2" in out and "lp-optimum" in out

        solution_path = str(tmp_path / "sol.json")
        assert (
            main(
                [
                    "solve",
                    instance_path,
                    "-R",
                    "2",
                    "--with-safe",
                    "--with-optimum",
                    "--output",
                    solution_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "safe-degree" in out
        assert (tmp_path / "sol.json").exists()

    @pytest.mark.parametrize("command", ["solve", "info", "compare"])
    def test_missing_instance_file_is_a_one_line_error(self, command, capsys):
        """A bad path is a usage error: one line on stderr, exit 2, no trace."""
        assert main([command, "/no/such/instance.json"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: instance file not found:")
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("command", ["solve", "info", "compare"])
    def test_malformed_instance_file_is_a_one_line_error(
        self, command, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text("{this is not json", encoding="utf-8")
        assert main([command, str(bad)]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: invalid instance file")
        assert "Traceback" not in captured.err

        # Valid JSON that is not an instance document fails the same way.
        not_instance = tmp_path / "list.json"
        not_instance.write_text('[1, 2, 3]', encoding="utf-8")
        assert main([command, str(not_instance)]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: invalid instance file")

    @pytest.mark.parametrize(
        "family", ["random", "special-form", "torus", "sensor", "ring"]
    )
    def test_generate_all_families(self, family, tmp_path):
        path = str(tmp_path / f"{family}.json")
        assert main(["generate", family, path, "--size", "9", "--seed", "1"]) == 0
        instance = load_instance(path)
        assert instance.num_agents > 0
