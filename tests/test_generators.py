"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.core.lp import solve_maxmin_lp
from repro.exceptions import InvalidInstanceError
from repro.generators import (
    bandwidth_allocation_instance,
    cycle_instance,
    defect_cycle_instance,
    half_half_cycle_pair,
    hard_ring_pair,
    indistinguishable_cycle_pair,
    jitter_coefficients,
    objective_ring_instance,
    perturb_coefficient,
    random_instance,
    random_special_form_instance,
    regular_general_instance,
    regular_special_form_instance,
    sensor_network_instance,
    torus_instance,
)


class TestRandomInstances:
    def test_degree_bounds_and_nondegeneracy(self):
        for seed in range(5):
            inst = random_instance(
                20, delta_I=3, delta_K=4, extra_constraints=4, extra_objectives=4, seed=seed
            )
            assert inst.delta_I <= 3
            assert inst.delta_K <= 4
            assert not inst.is_degenerate()
            assert inst.num_agents == 20

    def test_determinism(self):
        a = random_instance(15, seed=42)
        b = random_instance(15, seed=42)
        c = random_instance(15, seed=43)
        assert a == b
        assert a != c

    def test_zero_one_flag(self):
        inst = random_instance(12, zero_one=True, seed=1)
        assert inst.has_zero_one_coefficients()

    def test_extra_rows_create_multi_objective_agents(self):
        inst = random_instance(20, delta_K=3, extra_objectives=10, seed=3)
        assert any(len(inst.objectives_of_agent(v)) > 1 for v in inst.agents)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            random_instance(1)
        with pytest.raises(ValueError):
            random_instance(10, delta_I=1)

    def test_special_form_generator(self):
        for seed in range(4):
            inst = random_special_form_instance(14, delta_K=3, constraint_rounds=2, seed=seed)
            assert inst.is_special_form()
            assert inst.delta_K <= 3
            assert not inst.is_degenerate()

    def test_special_form_odd_agent_count(self):
        inst = random_special_form_instance(13, delta_K=3, seed=0)
        assert inst.is_special_form()

    def test_special_form_validation(self):
        with pytest.raises(ValueError):
            random_special_form_instance(3)
        with pytest.raises(ValueError):
            random_special_form_instance(10, delta_K=1)
        with pytest.raises(ValueError):
            random_special_form_instance(10, constraint_rounds=0)


class TestCycleAndRegular:
    def test_cycle_structure(self):
        inst = cycle_instance(7)
        assert inst.is_special_form()
        assert inst.num_agents == 14
        assert inst.delta_I == 2 and inst.delta_K == 2
        assert solve_maxmin_lp(inst).optimum == pytest.approx(1.0)

    def test_cycle_explicit_coefficients(self):
        inst = cycle_instance(3, a_coefficients=[(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)])
        assert inst.a("i1", "v2") == 3.0
        assert inst.a("i2", "v5") == 6.0

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_instance(1)

    def test_defect_cycle(self):
        plain = cycle_instance(6)
        defect = defect_cycle_instance(6, defect_index=2, defect_coefficient=2.0)
        assert defect.a("i2", "v4") == 2.0
        assert solve_maxmin_lp(defect).optimum < solve_maxmin_lp(plain).optimum
        with pytest.raises(ValueError):
            defect_cycle_instance(4, defect_index=9)

    def test_regular_special_form(self):
        inst = regular_special_form_instance(4, 3, constraint_rounds=2, seed=1)
        assert inst.is_special_form()
        assert all(len(inst.agents_of_objective(k)) == 3 for k in inst.objectives)
        with pytest.raises(ValueError):
            regular_special_form_instance(3, 3)  # odd agent count
        with pytest.raises(ValueError):
            regular_special_form_instance(4, 1)

    def test_regular_general(self):
        inst = regular_general_instance(12, 3, 4, seed=2)
        assert all(len(inst.agents_of_constraint(i)) == 3 for i in inst.constraints)
        assert all(len(inst.agents_of_objective(k)) == 4 for k in inst.objectives)
        with pytest.raises(ValueError):
            regular_general_instance(10, 3, 4)

    def test_objective_ring_optimum(self):
        for delta_K in (2, 3, 4):
            inst = objective_ring_instance(4, delta_K)
            assert inst.is_special_form()
            assert solve_maxmin_lp(inst).optimum == pytest.approx(delta_K - 1.0)
        with pytest.raises(ValueError):
            objective_ring_instance(1, 3)
        with pytest.raises(ValueError):
            objective_ring_instance(3, 1)


class TestStructuredWorkloads:
    def test_torus(self):
        inst = torus_instance(3, 4, seed=1)
        assert inst.num_agents == 12
        assert inst.num_constraints == 12 and inst.num_objectives == 12
        assert inst.delta_I == 2 and inst.delta_K == 2
        assert not inst.is_degenerate()
        assert all(len(inst.constraints_of_agent(v)) == 2 for v in inst.agents)
        with pytest.raises(ValueError):
            torus_instance(1, 5)

    def test_sensor_network(self):
        net = sensor_network_instance(20, 5, radius=0.3, seed=3)
        inst = net.instance
        assert inst.num_objectives == 20  # one per sensor
        assert not inst.is_degenerate()
        assert len(net.links) == inst.num_agents
        assert net.agent_name(*net.links[0][:2]) in inst.agents
        # Every sensor has at least one relay (possibly its nearest one).
        assert all(len(inst.agents_of_objective(k)) >= 1 for k in inst.objectives)
        with pytest.raises(ValueError):
            sensor_network_instance(0, 3)

    def test_sensor_network_determinism(self):
        a = sensor_network_instance(10, 3, seed=7).instance
        b = sensor_network_instance(10, 3, seed=7).instance
        assert a == b

    def test_bandwidth_workload(self):
        workload = bandwidth_allocation_instance(10, 5, paths_per_customer=2, seed=4)
        inst = workload.instance
        assert inst.num_objectives == 5
        assert not inst.is_degenerate()
        assert len(workload.customers) == 5
        for customer, paths in workload.paths.items():
            assert 1 <= len(paths) <= 2
            assert workload.agent_name(customer, 0) in inst.agents
        with pytest.raises(ValueError):
            bandwidth_allocation_instance(2, 1)
        with pytest.raises(ValueError):
            bandwidth_allocation_instance(5, 0)

    def test_bandwidth_optimum_positive(self):
        workload = bandwidth_allocation_instance(8, 3, seed=5)
        assert solve_maxmin_lp(workload.instance).optimum > 0


class TestLowerBoundPairs:
    def test_indistinguishable_cycle_pair(self):
        plain, defect = indistinguishable_cycle_pair(8)
        assert plain.num_agents == defect.num_agents
        assert plain.has_zero_one_coefficients()
        assert not defect.has_zero_one_coefficients()

    def test_half_half_pair(self):
        uniform, mixed = half_half_cycle_pair(8, tight_coefficient=3.0)
        assert solve_maxmin_lp(mixed).optimum < solve_maxmin_lp(uniform).optimum
        with pytest.raises(ValueError):
            half_half_cycle_pair(2)

    def test_hard_ring_pair(self):
        a, b = hard_ring_pair(3, 3)
        assert a.num_agents == b.num_agents
        assert solve_maxmin_lp(a).optimum == pytest.approx(2.0)


class TestPerturbations:
    def test_perturb_coefficient(self):
        inst = cycle_instance(4)
        changed = perturb_coefficient(inst, "i0", "v0", 5.0)
        assert changed.a("i0", "v0") == 5.0
        assert inst.a("i0", "v0") == 1.0  # original untouched
        with pytest.raises(InvalidInstanceError):
            perturb_coefficient(inst, "i0", "v0", -1.0)
        with pytest.raises(InvalidInstanceError):
            perturb_coefficient(inst, "i0", "v3", 1.0)

    def test_jitter(self):
        inst = cycle_instance(5, coefficient_range=(1.0, 1.0))
        jittered = jitter_coefficients(inst, relative_amplitude=0.1, seed=1)
        assert jittered.num_edges == inst.num_edges
        assert any(
            jittered.a(i, v) != inst.a(i, v) for (i, v) in inst.a_coefficients
        )
        # Objective coefficients untouched by default (stays special form).
        assert jittered.is_special_form()
        with pytest.raises(InvalidInstanceError):
            jitter_coefficients(inst, relative_amplitude=1.5)

    def test_jitter_objectives(self):
        inst = cycle_instance(5)
        jittered = jitter_coefficients(inst, relative_amplitude=0.2, seed=2, jitter_objectives=True)
        assert not jittered.is_special_form()
