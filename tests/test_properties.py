"""Property-based tests (hypothesis) for the core invariants.

These tests generate random max-min LP instances from scratch (not via the
library's own generators, to avoid shared blind spots) and check the
properties the paper proves:

* the local algorithm's output is always feasible (Lemma 11);
* its utility is within the Theorem 1 factor of the exact optimum;
* ``t_u`` upper-bounds the optimum (Lemma 2) and equals the tree optimum
  (Lemma 3);
* the ``g±`` tables are monotone and sign-bounded (Lemmata 5–7);
* the §4 transformations preserve feasibility through the back-mapping and
  reach the special form;
* serialization round-trips.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algo.alternating_tree import build_alternating_tree
from repro.algo.general_solver import LocalMaxMinSolver
from repro.algo.local_solver import SpecialFormLocalSolver
from repro.algo.safe_algorithm import SafeAlgorithm
from repro.algo.upper_bound import tree_optimum_binary_search, tree_optimum_lp
from repro.core.builder import InstanceBuilder
from repro.core.instance import MaxMinInstance
from repro.core.lp import solve_maxmin_lp
from repro.core.preprocess import preprocess
from repro.core.solution import Solution
from repro.io.serialization import instance_from_json, instance_to_json
from repro.transforms import to_special_form

from conftest import assert_feasible, assert_within_guarantee

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

coefficients = st.floats(min_value=0.1, max_value=5.0, allow_nan=False, allow_infinity=False)


@st.composite
def general_instances(draw, max_agents: int = 10):
    """Random connected-ish non-degenerate general instances."""
    n = draw(st.integers(min_value=2, max_value=max_agents))
    agents = [f"v{j}" for j in range(n)]
    builder = InstanceBuilder(name="hypothesis-general")

    # Covering constraints: group consecutive agents (sizes 1..3).
    idx = 0
    constraint_id = 0
    while idx < n:
        size = draw(st.integers(min_value=1, max_value=3))
        group = agents[idx : idx + size]
        for v in group:
            builder.add_constraint_term(f"i{constraint_id}", v, draw(coefficients))
        constraint_id += 1
        idx += size

    # Covering objectives: another random grouping.
    idx = 0
    objective_id = 0
    while idx < n:
        size = draw(st.integers(min_value=1, max_value=3))
        group = agents[idx : idx + size]
        for v in group:
            builder.add_objective_term(f"k{objective_id}", v, draw(coefficients))
        objective_id += 1
        idx += size

    # A few extra random rows to create overlaps and |K_v| > 1.
    extra = draw(st.integers(min_value=0, max_value=3))
    for e in range(extra):
        members = draw(
            st.lists(st.sampled_from(agents), min_size=1, max_size=3, unique=True)
        )
        kind = draw(st.booleans())
        for v in members:
            if kind:
                builder.add_constraint_term(f"ix{e}", v, draw(coefficients))
            else:
                builder.add_objective_term(f"kx{e}", v, draw(coefficients))
    return builder.build()


@st.composite
def special_form_instances(draw, max_pairs: int = 6):
    """Random special-form instances built as cycles with chords of matchings."""
    pairs = draw(st.integers(min_value=2, max_value=max_pairs))
    n = 2 * pairs
    agents = [f"v{j}" for j in range(n)]
    builder = InstanceBuilder(name="hypothesis-special")
    # Objectives: consecutive pairs (degree 2, coefficient 1).
    for j in range(pairs):
        builder.add_objective_term(f"k{j}", agents[2 * j], 1.0)
        builder.add_objective_term(f"k{j}", agents[2 * j + 1], 1.0)
    # Constraints: a shifted pairing so that every agent gets at least one.
    shift = draw(st.integers(min_value=1, max_value=n - 1))
    for j in range(pairs):
        a = agents[(2 * j + shift) % n]
        b = agents[(2 * j + 1 + shift) % n]
        if a == b:  # cannot happen, but stay safe
            b = agents[(2 * j + 2 + shift) % n]
        builder.add_constraint_term(f"i{j}", a, draw(coefficients))
        builder.add_constraint_term(f"i{j}", b, draw(coefficients))
    # Optionally one extra matching round.
    if draw(st.booleans()):
        for j in range(pairs):
            a = agents[2 * j]
            b = agents[(2 * j + 3) % n]
            if a != b:
                builder.add_constraint_term(f"m{j}", a, draw(coefficients))
                builder.add_constraint_term(f"m{j}", b, draw(coefficients))
    instance = builder.build()
    return instance


slow_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# Properties of the core solvers
# ----------------------------------------------------------------------


@slow_settings
@given(general_instances())
def test_local_solver_feasible_and_within_guarantee(instance):
    solver = LocalMaxMinSolver(R=2)
    result = solver.solve(instance)
    assert_feasible(result.solution)
    lp = solve_maxmin_lp(instance)
    if math.isfinite(lp.optimum):
        assert_within_guarantee(
            instance, result.solution, result.certificate.guaranteed_ratio, optimum=lp.optimum
        )


@slow_settings
@given(general_instances())
def test_safe_algorithm_feasible_and_within_delta_I(instance):
    solution = SafeAlgorithm().solve(instance)
    assert_feasible(solution)
    lp = solve_maxmin_lp(instance)
    if math.isfinite(lp.optimum):
        assert_within_guarantee(instance, solution, max(instance.delta_I, 1), optimum=lp.optimum)


@slow_settings
@given(special_form_instances(), st.integers(min_value=2, max_value=4))
def test_special_form_solver_properties(instance, R):
    solver = SpecialFormLocalSolver(R=R)
    result = solver.solve(instance)
    assert_feasible(result.solution)
    optimum = solve_maxmin_lp(instance).optimum
    assert_within_guarantee(instance, result.solution, result.guaranteed_ratio, optimum=optimum)
    # Lemmata 2+3: every smoothed bound dominates the optimum.
    for v in instance.agents:
        assert result.smoothed_bounds[v] >= optimum - 1e-6
    # Lemmata 5–7 on the g tables.
    g = result.g
    for v in instance.agents:
        for d in range(g.r + 1):
            assert g.plus(v, d) >= -1e-9
            assert g.minus(v, d) >= 0.0
            if d >= 1:
                assert g.minus(v, d) >= g.minus(v, d - 1) - 1e-9
                assert g.plus(v, d) <= g.plus(v, d - 1) + 1e-9


@slow_settings
@given(special_form_instances(), st.integers(min_value=0, max_value=1))
def test_tree_optimum_binary_search_equals_lp(instance, r):
    u = instance.agents[0]
    tree = build_alternating_tree(instance, u, r)
    bs = tree_optimum_binary_search(tree, tol=1e-11)
    lp = tree_optimum_lp(tree)
    assert bs == pytest.approx(lp, rel=1e-5, abs=1e-6)
    # Lemma 2: t_u dominates the global optimum.
    assert bs >= solve_maxmin_lp(instance).optimum - 1e-6


# ----------------------------------------------------------------------
# Properties of the transformations and preprocessing
# ----------------------------------------------------------------------


@slow_settings
@given(general_instances())
def test_transform_pipeline_properties(instance):
    pre = preprocess(instance)
    if pre.optimum_is_zero or pre.optimum_is_unbounded or pre.instance.num_agents == 0:
        return
    clean = pre.instance
    result = to_special_form(clean)
    assert result.transformed.is_special_form()
    # Back-mapping an optimal transformed solution stays feasible and within
    # the ΔI/2 accounting of the original optimum.
    lp_t = solve_maxmin_lp(result.transformed)
    mapped = result.map_back(lp_t.solution)
    assert_feasible(mapped)
    original_opt = solve_maxmin_lp(clean).optimum
    assert mapped.utility() <= original_opt + 1e-6
    assert original_opt <= result.ratio_factor * mapped.utility() + 1e-6


@slow_settings
@given(general_instances())
def test_preprocess_lift_preserves_feasibility(instance):
    pre = preprocess(instance)
    assert not pre.instance.is_degenerate()
    if pre.instance.num_agents == 0:
        return
    zero_inner = Solution(pre.instance, {v: 0.0 for v in pre.instance.agents})
    lifted = pre.lift(zero_inner, target_utility=1.0)
    assert_feasible(lifted)


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------


@slow_settings
@given(general_instances())
def test_json_roundtrip(instance):
    assert instance_from_json(instance_to_json(instance)) == instance


@slow_settings
@given(general_instances())
def test_dict_roundtrip(instance):
    assert MaxMinInstance.from_dict(instance.to_dict()) == instance


@slow_settings
@given(special_form_instances())
def test_solution_average_preserves_feasibility(instance):
    # Convexity of the feasible region, exercised through Solution.average.
    lp = solve_maxmin_lp(instance)
    safe = SafeAlgorithm().solve(instance)
    mix = Solution.average([lp.solution, safe])
    assert_feasible(mix)
    assert mix.utility() >= min(lp.optimum, safe.utility()) - 1e-9
