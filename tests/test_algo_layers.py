"""Tests for the §6 layering / shifting analysis machinery.

No *finite* special-form instance admits an exact layering (the paper works
on infinite unfoldings), but layers are only ever used modulo ``4R`` by the
shifting strategy, and cycles whose segment count is a multiple of ``R`` do
admit a consistent mod-``4R`` layering.  On those instances Lemmata 8, 9 and
10 become directly checkable.
"""

from __future__ import annotations

import pytest

from repro._types import NodeType
from repro.algo.layers import (
    LayeringError,
    assign_layers,
    averaged_shifted_solution,
    is_layerable,
    shifted_solution,
)
from repro.algo.local_solver import SpecialFormLocalSolver
from repro.generators import cycle_instance

from conftest import assert_feasible


def layered_cycle(R: int, multiples: int = 2, seed: int = 0):
    """A cycle with ``R * multiples`` segments plus its mod-4R layering."""
    instance = cycle_instance(R * multiples, coefficient_range=(0.8, 1.25), seed=seed)
    layering = assign_layers(instance, modulus=4 * R)
    return instance, layering


class TestLayering:
    def test_exact_layering_of_finite_instance_fails(self):
        # Finite special-form instances always contain an inconsistent cycle.
        instance = cycle_instance(6)
        assert not is_layerable(instance)
        with pytest.raises(LayeringError):
            assign_layers(instance)

    @pytest.mark.parametrize("R", [2, 3])
    def test_mod_layering_exists_when_R_divides_segments(self, R):
        instance, layering = layered_cycle(R)
        assert layering.check() == []

    def test_mod_layering_fails_when_R_does_not_divide(self):
        instance = cycle_instance(5)
        with pytest.raises(LayeringError):
            assign_layers(instance, modulus=8)  # R = 2 does not divide 5

    def test_lemma8_residues(self):
        instance, layering = layered_cycle(3)
        for node, layer in layering.layers.items():
            kind, name = node
            if kind is NodeType.OBJECTIVE:
                assert layer % 4 == 0
            elif kind is NodeType.CONSTRAINT:
                assert layer % 4 == 2
            elif layering.roles[name] == "down":
                assert layer % 4 == 1
            else:
                assert layer % 4 == 3

    def test_role_constraints(self):
        instance, layering = layered_cycle(2, multiples=3)
        for i in instance.constraints:
            roles = [layering.roles[v] for v in instance.agents_of_constraint(i)]
            assert sorted(roles) == ["down", "up"]
        for k in instance.objectives:
            roles = [layering.roles[v] for v in instance.agents_of_objective(k)]
            assert roles.count("up") == 1

    def test_invalid_arguments(self):
        instance = cycle_instance(4)
        with pytest.raises(LayeringError):
            assign_layers(instance, modulus=6)  # not a multiple of 4
        with pytest.raises(LayeringError):
            assign_layers(instance, root_objective="nope", modulus=8)
        with pytest.raises(LayeringError):
            assign_layers(instance, up_agent="v0", root_objective="k2", modulus=8)

    def test_accessors(self):
        instance, layering = layered_cycle(2)
        v = instance.agents[0]
        assert layering.layer_of_agent(v) == layering.layers[(NodeType.AGENT, v)]
        assert layering.layer_of_objective(layering.root_objective) == 0
        assert isinstance(layering.is_up(v), bool)


class TestShiftingStrategy:
    @pytest.mark.parametrize("R", [2, 3])
    def test_lemma9_feasibility_and_objective_bounds(self, R):
        instance, layering = layered_cycle(R)
        result = SpecialFormLocalSolver(R=R).solve(instance)
        for j in range(R):
            y_j = shifted_solution(layering, result.g, R, j)
            assert_feasible(y_j)
            for k in instance.objectives:
                layer = layering.layer_of_objective(k)
                value = y_j.objective_value(k)
                min_s = min(result.smoothed_bounds[v] for v in instance.agents_of_objective(k))
                if layer % (4 * R) == (4 * j - 4) % (4 * R):
                    assert value == pytest.approx(0.0, abs=1e-9)
                else:
                    assert value >= min_s - 1e-8

    @pytest.mark.parametrize("R", [2, 3])
    def test_lemma10_averaged_solution(self, R):
        instance, layering = layered_cycle(R)
        result = SpecialFormLocalSolver(R=R).solve(instance)
        y = averaged_shifted_solution(layering, result.g, R)
        assert_feasible(y)
        for k in instance.objectives:
            min_s = min(result.smoothed_bounds[v] for v in instance.agents_of_objective(k))
            assert y.objective_value(k) >= (1 - 1 / R) * min_s - 1e-8

    def test_eq20_closed_form(self):
        """The average of the y(j) equals the closed form of Eq. 20."""
        R = 3
        instance, layering = layered_cycle(R)
        result = SpecialFormLocalSolver(R=R).solve(instance)
        y = averaged_shifted_solution(layering, result.g, R)
        r = R - 2
        for v in instance.agents:
            if layering.is_up(v):
                expected = sum(result.g.minus(v, d) for d in range(r + 1)) / R
            else:
                expected = sum(result.g.plus(v, d) for d in range(r + 1)) / R
            assert y[v] == pytest.approx(expected, abs=1e-12)

    def test_output_is_average_of_up_and_down_views(self):
        """Eq. 18 is the average of the two role-specific Eq. 20 vectors."""
        R = 2
        instance, layering = layered_cycle(R)
        result = SpecialFormLocalSolver(R=R).solve(instance)
        r = R - 2
        for v in instance.agents:
            up_view = sum(result.g.minus(v, d) for d in range(r + 1)) / R
            down_view = sum(result.g.plus(v, d) for d in range(r + 1)) / R
            assert result.solution[v] == pytest.approx((up_view + down_view) / 2.0, abs=1e-12)

    def test_shift_parameter_validation(self):
        R = 2
        instance, layering = layered_cycle(R)
        result = SpecialFormLocalSolver(R=R).solve(instance)
        with pytest.raises(ValueError):
            shifted_solution(layering, result.g, R, R)  # j out of range
        with pytest.raises(ValueError):
            shifted_solution(layering, result.g, R + 1, 0)  # depth mismatch
