"""Tests for the application layer (packing/covering, linear systems, fairness)."""

from __future__ import annotations

import math

import pytest

from repro.algo.general_solver import LocalMaxMinSolver
from repro.applications import (
    build_equation_instance,
    build_packing_covering_instance,
    jain_index,
    min_mean_ratio,
    service_statistics,
    solve_nonnegative_system,
    solve_packing_covering,
)
from repro.core.lp import solve_maxmin_lp
from repro.core.solution import Solution
from repro.exceptions import InvalidInstanceError
from repro.generators import sensor_network_instance


class TestPackingCovering:
    def test_instance_construction(self):
        inst = build_packing_covering_instance(
            {"p": {"x": 1.0, "y": 1.0}}, {"c": {"x": 2.0, "y": 1.0}}
        )
        assert inst.num_agents == 2
        assert inst.a("p", "x") == 1.0
        assert inst.c("c", "x") == 2.0

    def test_feasible_system(self):
        # x + y <= 1, x + y >= 0.5 is comfortably feasible.
        result = solve_packing_covering(
            {"p": {"x": 1.0, "y": 1.0}},
            {"c": {"x": 2.0, "y": 2.0}},
            solver=LocalMaxMinSolver(R=3),
        )
        assert result.certified_feasible
        assert result.status == "feasible"
        assert result.witness.is_feasible()
        # The witness satisfies the covering side outright.
        assert result.witness.objective_value("c") >= 1.0 - 1e-9

    def test_infeasible_system(self):
        # x <= 1 (coeff 2 -> x <= 0.5) but we need x >= 1: infeasible.
        result = solve_packing_covering({"p": {"x": 2.0}}, {"c": {"x": 1.0}})
        assert not result.certified_feasible
        assert result.omega < 1.0

    def test_approximately_feasible_band(self):
        # Construct a system whose max-min optimum is exactly 1 (tight): the
        # approximation may return omega < 1 but alpha*omega >= 1 can certify.
        result = solve_packing_covering(
            {"p1": {"x": 1.0, "y": 1.0}},
            {"c1": {"x": 1.0, "y": 1.0}},
            solver=LocalMaxMinSolver(R=4),
        )
        assert result.status in ("feasible", "approximately-feasible")
        assert result.alpha >= 1.0

    def test_result_repr(self):
        result = solve_packing_covering({"p": {"x": 2.0}}, {"c": {"x": 1.0}})
        assert "PackingCoveringResult" in repr(result)


class TestLinearEquations:
    def test_instance_construction_and_validation(self):
        inst = build_equation_instance({"e": {"x": 2.0}}, {"e": 4.0})
        assert inst.a(("eq", "e"), "x") == pytest.approx(0.5)
        assert inst.c(("cov", "e"), "x") == pytest.approx(0.5)
        with pytest.raises(InvalidInstanceError):
            build_equation_instance({"e": {"x": 1.0}}, {"e": 0.0})
        with pytest.raises(InvalidInstanceError):
            build_equation_instance({"e": {"x": -1.0}}, {"e": 1.0})

    def test_solvable_diagonal_system(self):
        result = solve_nonnegative_system(
            {"e1": {"x": 2.0}, "e2": {"y": 4.0}},
            {"e1": 1.0, "e2": 2.0},
            solver=LocalMaxMinSolver(R=3),
        )
        # Residual ratios stay within (0, 1]; packing side is never exceeded.
        assert 0.0 < result.residual_low <= result.residual_high <= 1.0 + 1e-9
        assert result.max_relative_error() < 1.0

    def test_coupled_system_quality(self):
        equations = {"e1": {"x": 1.0, "y": 1.0}, "e2": {"y": 2.0}}
        rhs = {"e1": 2.0, "e2": 2.0}
        result = solve_nonnegative_system(equations, rhs, solver=LocalMaxMinSolver(R=4))
        assert result.omega == result.residual_low
        # The guarantee of the solver bounds how far below 1 the residual can be.
        inst = build_equation_instance(equations, rhs)
        optimum = solve_maxmin_lp(inst).optimum
        assert optimum == pytest.approx(1.0, abs=1e-9)  # exactly solvable
        assert result.residual_low >= 1.0 / LocalMaxMinSolver(R=4).guaranteed_ratio(inst) - 1e-6

    def test_zero_coefficients_skipped(self):
        inst = build_equation_instance({"e": {"x": 0.0, "y": 1.0}}, {"e": 1.0})
        assert inst.num_agents == 1


class TestFairnessMetrics:
    def test_jain_index(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_min_mean_ratio(self):
        assert min_mean_ratio([2.0, 2.0]) == pytest.approx(1.0)
        assert min_mean_ratio([1.0, 3.0]) == pytest.approx(0.5)
        assert min_mean_ratio([]) == 1.0
        assert min_mean_ratio([0.0, 0.0]) == 1.0

    def test_service_statistics_on_solution(self):
        network = sensor_network_instance(10, 3, seed=1)
        result = LocalMaxMinSolver(R=3).solve(network.instance)
        stats = service_statistics(result.solution)
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert 0.0 < stats["jain_index"] <= 1.0
        assert stats["min"] == pytest.approx(result.utility())

    def test_service_statistics_no_objectives(self):
        from repro.core.instance import MaxMinInstance

        inst = MaxMinInstance(["a"], ["i"], [], {("i", "a"): 1.0}, {})
        stats = service_statistics(Solution(inst, {"a": 0.0}))
        assert math.isinf(stats["min"])
