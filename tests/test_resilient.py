"""Tests for the fault-tolerant distributed runtime and certified degradation.

Covers the resilience contract end to end: ``AgentFault``/``MessageFault``
plan semantics, retransmit recovery (bitwise-identical under the budget),
locality-bounded degradation beyond it (safe ball, failed agents, exact
outside — spied on with the obs counters), the quiet-stop fix, dict/vectorized
chaos equivalence, and the hypothesis soundness property of the certificate.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.distributed import (
    AGENT_EXACT,
    AGENT_FAILED,
    AGENT_SAFE,
    DistributedLocalSolver,
    DistributedSafeSolver,
    MessagePlane,
    ResilientLocalSolver,
    ResilientRuntime,
    ResilientSafeSolver,
    SynchronousRuntime,
)
from repro.distributed.message import Message
from repro.distributed.network import build_network
from repro.distributed.node import ProtocolNode
from repro.exceptions import EngineError, SimulationError
from repro.faults import AgentFault, FaultPlan, MessageFault
from repro.generators import cycle_instance, random_special_form_instance


@pytest.fixture(scope="module")
def chain80():
    return cycle_instance(80, seed=1)


@pytest.fixture(scope="module")
def chain80_exact(chain80):
    solution, _ = DistributedLocalSolver(R=3).solve(chain80)
    return solution.value_array()


def _counters(fn):
    """Run ``fn`` with obs enabled; return (result, counters delta)."""
    prior = obs.enabled()
    obs.configure(enabled=True)
    try:
        mark = obs.counters_mark()
        result = fn()
        return result, obs.counters_since(mark)
    finally:
        obs.configure(enabled=prior)


# ----------------------------------------------------------------------
# Fault-plan semantics
# ----------------------------------------------------------------------
class TestAgentFaultPlan:
    def test_kind_validation(self):
        with pytest.raises(EngineError):
            AgentFault(kind="explode")
        with pytest.raises(EngineError):
            AgentFault(kind="crash", round_number=0)
        with pytest.raises(EngineError):
            AgentFault(kind="crash", fraction=1.5)

    def test_until_round_only_for_silent(self):
        with pytest.raises(EngineError):
            AgentFault(kind="crash", until_round=5)
        with pytest.raises(EngineError):
            AgentFault(kind="silent", round_number=4, until_round=3)
        fault = AgentFault(kind="silent", round_number=2, until_round=4)
        assert not fault.active_in(1)
        assert fault.active_in(2) and fault.active_in(4)
        assert not fault.active_in(5)

    def test_crash_is_permanent(self):
        fault = AgentFault(kind="crash", round_number=3)
        assert not fault.active_in(2)
        assert fault.active_in(3) and fault.active_in(1000)

    def test_message_fault_attempts_validation(self):
        with pytest.raises(EngineError):
            MessageFault(round_number=1, attempts=(0, -1))
        assert MessageFault(round_number=1).fires_on(0)
        assert not MessageFault(round_number=1).fires_on(1)
        persistent = MessageFault(round_number=1, attempts=None)
        assert persistent.fires_on(0) and persistent.fires_on(7)

    def test_plan_describe_counts_agent_faults(self):
        plan = FaultPlan(agent_faults=(AgentFault(kind="crash"),))
        assert "agents=1" in plan.describe()

    def test_agent_fault_sampling_is_deterministic(self):
        plan = FaultPlan(
            seed=5,
            agent_faults=(AgentFault(kind="crash", round_number=2, fraction=0.3),),
        )
        a = plan.injector().agent_faults(4, 50)
        b = plan.injector().agent_faults(4, 50)
        assert a == b
        assert len(a["crash"]) == 15
        # Stable across rounds: the same agents stay crashed.
        assert plan.injector().agent_faults(9, 50)["crash"] == a["crash"]
        assert plan.injector().agent_faults(1, 50)["crash"] == set()

    def test_persistent_drops_survive_retries(self):
        plan = FaultPlan(
            seed=3,
            message_faults=(MessageFault(round_number=2, fraction=0.2, attempts=None),),
        )
        injector = plan.injector()
        attempt0 = injector.dropped_slots(2, 100, 0)
        assert attempt0 == injector.dropped_slots(2, 100, 3)

    def test_transient_drops_clear_on_retry(self):
        plan = FaultPlan(
            seed=3,
            message_faults=(MessageFault(round_number=2, fraction=0.2),),
        )
        injector = plan.injector()
        assert injector.dropped_slots(2, 100, 0)
        assert injector.dropped_slots(2, 100, 1) is None

    def test_attempt0_key_matches_legacy(self):
        # attempt 0 must reproduce the pre-retransmit sample so existing
        # plans drop the same slots on the plain runtime.
        plan = FaultPlan(
            seed=11,
            message_faults=(MessageFault(round_number=4, fraction=0.1),),
        )
        import random

        rng = random.Random("11:4:200")
        expected = set(rng.sample(range(200), 20))
        assert plan.injector().dropped_slots(4, 200) == expected


# ----------------------------------------------------------------------
# Retransmit recovery: loss under the budget is invisible
# ----------------------------------------------------------------------
class TestRetransmitRecovery:
    def test_transient_loss_recovered_bitwise(self, chain80, chain80_exact):
        plan = FaultPlan(
            seed=7,
            message_faults=(MessageFault(round_number=8, fraction=0.3),),
        )
        solver = ResilientLocalSolver(R=3, faults=plan, retransmit_budget=2)
        (solution, result), seen = _counters(lambda: solver.solve(chain80))
        assert np.array_equal(solution.value_array(), chain80_exact)
        cert = solution.degradation
        assert cert.counts() == {"exact": chain80.num_agents, "safe": 0, "failed": 0}
        assert cert.retransmits > 0
        assert cert.dropped_messages > 0
        assert cert.lost_messages == 0
        assert not cert.clean
        assert seen.get("runtime.retransmits") == cert.retransmits
        assert seen.get("runtime.lost_messages") is None
        assert seen.get("runtime.degraded_agents", 0) == 0

    def test_clean_run_has_clean_certificate(self, chain80, chain80_exact):
        solution, result = ResilientLocalSolver(R=3).solve(chain80)
        assert np.array_equal(solution.value_array(), chain80_exact)
        assert solution.degradation.clean
        assert result.retransmits == 0 and result.events == ()

    def test_zero_budget_loses_every_drop(self, chain80):
        plan = FaultPlan(
            seed=7,
            message_faults=(MessageFault(round_number=8, fraction=0.1),),
        )
        solver = ResilientLocalSolver(R=3, faults=plan, retransmit_budget=0)
        solution, result = solver.solve(chain80)
        assert result.retransmits == 0
        assert result.lost_messages == result.dropped_messages > 0

    def test_negative_budget_rejected(self):
        with pytest.raises(SimulationError):
            ResilientRuntime(plane=None, network=None, retransmit_budget=-1)


# ----------------------------------------------------------------------
# Degradation containment: the (2r+1)-ball pays, nobody else
# ----------------------------------------------------------------------
class TestDegradationContainment:
    def test_persistent_loss_degrades_ball_only(self, chain80, chain80_exact):
        plan = FaultPlan(
            seed=7,
            message_faults=(
                MessageFault(round_number=8, slots=(5,), attempts=None),
            ),
        )
        solver = ResilientLocalSolver(R=3, faults=plan, retransmit_budget=2)
        (solution, result), seen = _counters(lambda: solver.solve(chain80))
        cert = solution.degradation
        values = solution.value_array()

        assert 0 < len(cert.ball) < chain80.num_agents
        safe_pos = cert.positions_with("safe")
        assert np.array_equal(safe_pos, cert.ball)  # no crashes: ball == safe
        outside = np.setdiff1d(np.arange(chain80.num_agents), cert.ball)
        assert np.array_equal(values[outside], chain80_exact[outside])
        assert (cert.statuses[outside] == AGENT_EXACT).all()
        assert solution.check_feasibility().feasible

        # Locality spy: fallback work == ball size, zero outside.
        assert seen.get("resilient.fallback_rows") == len(safe_pos)
        assert seen.get("kernels.confined_safe_rows") == len(safe_pos)
        assert seen.get("runtime.degraded_agents") == len(safe_pos)
        assert seen.get("runtime.lost_messages") == 1
        assert [e.kind for e in cert.events] == ["link_loss"]

    def test_crash_contained_and_failed(self, chain80, chain80_exact):
        plan = FaultPlan(
            seed=1,
            agent_faults=(AgentFault(kind="crash", round_number=2, agents=(10,)),),
        )
        (solution, result), seen = _counters(
            lambda: ResilientLocalSolver(R=3, faults=plan).solve(chain80)
        )
        cert = solution.degradation
        values = solution.value_array()
        assert cert.statuses[10] == AGENT_FAILED
        assert values[10] == 0.0
        assert cert.status_of(chain80.agents[10]) == "failed"
        assert 10 in cert.ball
        outside = np.setdiff1d(np.arange(chain80.num_agents), cert.ball)
        assert len(outside) > 0
        assert np.array_equal(values[outside], chain80_exact[outside])
        assert solution.check_feasibility().feasible
        assert seen.get("runtime.crashed_agents") == 1
        assert [e.kind for e in cert.events] == ["agent_crash"]
        assert result.faulty_agent_positions()["crash"] == (10,)

    def test_babbling_agent_is_quarantined_not_fatal(self, chain80, chain80_exact):
        plan = FaultPlan(
            seed=1,
            agent_faults=(AgentFault(kind="babbling", round_number=3, agents=(20,)),),
        )
        solution, result = ResilientLocalSolver(R=3, faults=plan).solve(chain80)
        cert = solution.degradation
        assert cert.statuses[20] == AGENT_FAILED
        assert solution.value_array()[20] == 0.0
        outside = np.setdiff1d(np.arange(chain80.num_agents), cert.ball)
        assert np.array_equal(solution.value_array()[outside], chain80_exact[outside])
        assert [e.kind for e in cert.events] == ["agent_babbling"]

    def test_silent_agent_degrades_to_safe_not_failed(self, chain80):
        plan = FaultPlan(
            seed=1,
            agent_faults=(
                AgentFault(kind="silent", round_number=7, agents=(30,), until_round=9),
            ),
        )
        solution, _ = ResilientLocalSolver(R=3, faults=plan).solve(chain80)
        cert = solution.degradation
        assert cert.statuses[30] == AGENT_SAFE
        assert cert.counts()["failed"] == 0
        assert solution.check_feasibility().feasible

    def test_certificate_as_dict_is_json_ready(self, chain80):
        import json

        plan = FaultPlan(
            seed=2,
            agent_faults=(AgentFault(kind="crash", round_number=1, agents=(0,)),),
        )
        solution, _ = ResilientLocalSolver(R=3, faults=plan).solve(chain80)
        payload = solution.degradation.as_dict()
        json.dumps(payload)
        assert payload["counts"]["failed"] == 1
        assert payload["events"][0]["kind"] == "agent_crash"
        assert "certificate:" in solution.degradation.summary()

    def test_status_of_unknown_agent_raises(self, chain80):
        solution, _ = ResilientLocalSolver(R=3).solve(chain80)
        with pytest.raises(SimulationError):
            solution.degradation.status_of("no-such-agent")
        with pytest.raises(SimulationError):
            solution.degradation.positions_with("broken")


# ----------------------------------------------------------------------
# Resilient safe baseline
# ----------------------------------------------------------------------
class TestResilientSafeSolver:
    def test_clean_run_matches_safe_protocol(self, chain80):
        base, _ = DistributedSafeSolver().solve(chain80)
        solution, _ = ResilientSafeSolver().solve(chain80)
        assert np.array_equal(solution.value_array(), base.value_array())
        assert solution.degradation.clean

    def test_lost_degree_degrades_receiver_only(self):
        inst = random_special_form_instance(num_agents=40, seed=3)
        base, _ = DistributedSafeSolver().solve(inst)
        plan = FaultPlan(
            seed=2,
            message_faults=(MessageFault(round_number=1, fraction=0.05, attempts=None),),
        )
        solution, result = ResilientSafeSolver(faults=plan).solve(inst)
        cert = solution.degradation
        assert cert.counts()["safe"] > 0
        values = solution.value_array()
        outside = np.setdiff1d(np.arange(inst.num_agents), cert.ball)
        assert np.array_equal(values[outside], base.value_array()[outside])
        # Degraded shares only shrink (Δ_I ≥ |V_i|), so feasibility holds.
        for pos in cert.positions_with("safe"):
            assert values[pos] <= base.value_array()[pos] + 1e-15
        assert solution.check_feasibility().feasible

    def test_crashed_agent_fails_with_zero(self, chain80):
        plan = FaultPlan(
            seed=0,
            agent_faults=(AgentFault(kind="crash", round_number=1, agents=(4,)),),
        )
        solution, _ = ResilientSafeSolver(faults=plan).solve(chain80)
        assert solution.degradation.statuses[4] == AGENT_FAILED
        assert solution.value_array()[4] == 0.0
        assert solution.check_feasibility().feasible

    def test_silent_agent_stays_exact(self, chain80):
        # Agents never send in the safe protocol; silence costs nothing.
        plan = FaultPlan(
            seed=0,
            agent_faults=(AgentFault(kind="silent", round_number=1, agents=(4,)),),
        )
        base, _ = DistributedSafeSolver().solve(chain80)
        solution, _ = ResilientSafeSolver(faults=plan).solve(chain80)
        assert solution.degradation.statuses[4] == AGENT_SAFE or (
            solution.degradation.statuses[4] == AGENT_EXACT
        )
        assert solution.check_feasibility().feasible


# ----------------------------------------------------------------------
# Satellite: stop_when_silent vs dropped rounds
# ----------------------------------------------------------------------
class _PingPongNode(ProtocolNode):
    """Echoes every received message forever; silent only when starved."""

    def compose(self, round_number: int, inbox: Dict[int, Message]) -> Dict[int, Message]:
        if round_number == 1:
            return {p: Message(1.0, phase="ping") for p in range(1, self.degree + 1)}
        return {p: Message(m.payload, phase="ping") for p, m in inbox.items()}


class TestQuietStopFix:
    def _run_dict(self, instance, faults=None):
        network = build_network(instance)
        runtime = SynchronousRuntime(network, faults=faults)
        return runtime.run(
            lambda net, node: _PingPongNode(node, net.local_input(node)),
            rounds=10,
            stop_when_silent=True,
        )

    def test_pingpong_never_stops_without_faults(self, chain80):
        assert self._run_dict(chain80).rounds == 10

    def test_all_dropped_round_does_not_fake_convergence(self, chain80):
        num_slots = MessagePlane(chain80).num_slots
        plan = FaultPlan(
            seed=0,
            message_faults=(MessageFault(round_number=2, fraction=1.0),),
        )
        result, seen = _counters(lambda: self._run_dict(chain80, faults=plan))
        # Round 3 is quiet only because round 2 was eaten; the stop is
        # suppressed once, then round 4's genuine silence ends the run.
        assert result.rounds == 4
        assert seen.get("runtime.suppressed_quiet_stops") == 1
        assert seen.get("faults.dropped_messages") == result.per_round[1].messages

    def test_vectorized_path_suppresses_identically(self, chain80):
        class _VecPingPong:
            def begin(self, plane):
                pass

            def compose(self, round_number, inbox_mask, inbox_values, plane):
                mask, values = plane.empty_round()
                if round_number == 1:
                    mask[:] = True
                    values[:] = 1.0
                else:
                    mask[:] = inbox_mask
                    values[:] = np.where(inbox_mask, inbox_values, 0.0)
                return mask, values

            def outputs(self, plane):
                return np.full(plane.num_agents, np.nan)

        plan = FaultPlan(
            seed=0,
            message_faults=(MessageFault(round_number=2, fraction=1.0),),
        )
        runtime = SynchronousRuntime(plane=MessagePlane(chain80), faults=plan)
        result, seen = _counters(
            lambda: runtime.run_vectorized(_VecPingPong(), 10, stop_when_silent=True)
        )
        assert result.rounds == 4
        assert seen.get("runtime.suppressed_quiet_stops") == 1


# ----------------------------------------------------------------------
# Satellite: dict-path fault injection + chaos equivalence
# ----------------------------------------------------------------------
class TestChaosEquivalence:
    def test_smoothing_drops_identical_on_both_paths(self):
        inst = cycle_instance(24, seed=4)
        plan = FaultPlan(
            seed=9,
            message_faults=(MessageFault(round_number=8, fraction=0.3),),
        )
        solver_ref = DistributedLocalSolver(R=3, backend="reference")
        solver_vec = DistributedLocalSolver(R=3, backend="vectorized")
        # Drive both through runtimes with the same plan (smoothing-phase
        # drops are non-fatal: the min-flood just converges differently).
        network = build_network(inst)
        from repro.distributed.agents import (
            VectorizedMaxMinProtocol,
            maxmin_node_factory,
        )

        rounds = solver_ref.schedule.total_rounds
        ref_rt = SynchronousRuntime(network, faults=plan)
        ref_result, ref_seen = _counters(
            lambda: ref_rt.run(maxmin_node_factory(solver_ref.schedule), rounds)
        )
        vec_rt = SynchronousRuntime(plane=MessagePlane(inst), faults=plan)
        vec_result, vec_seen = _counters(
            lambda: vec_rt.run_vectorized(
                VectorizedMaxMinProtocol(solver_vec.schedule), rounds
            )
        )
        assert ref_result.outputs == vec_result.outputs
        assert ref_seen.get("faults.dropped_messages") == vec_seen.get(
            "faults.dropped_messages"
        )
        assert [s.messages for s in ref_result.per_round] == [
            s.messages for s in vec_result.per_round
        ]

    def test_gphase_drop_raises_with_agent_and_port_on_both_paths(self):
        inst = cycle_instance(24, seed=4)
        schedule_rounds = DistributedLocalSolver(R=3).schedule
        plane = MessagePlane(inst)
        # Drop one objective→agent sibling sum.  The objective sends it in
        # round g_start+1; the agent's offset-2 round then starves.
        g_start = schedule_rounds.g_start
        target = int(plane.agent_obj_slots[3])
        victim_slot = int(plane.reverse[target])  # the objective's send slot
        kind, victim_agent, port = plane.slot_owner(target)
        assert kind == "agent"
        plan = FaultPlan(
            seed=0,
            message_faults=(
                MessageFault(round_number=g_start + 1, slots=(victim_slot,)),
            ),
        )
        from repro.distributed.agents import (
            VectorizedMaxMinProtocol,
            maxmin_node_factory,
        )

        vec_rt = SynchronousRuntime(plane=plane, faults=plan)
        with pytest.raises(SimulationError) as vec_err:
            vec_rt.run_vectorized(
                VectorizedMaxMinProtocol(schedule_rounds),
                schedule_rounds.total_rounds,
            )
        ref_rt = SynchronousRuntime(build_network(inst), faults=plan)
        with pytest.raises(SimulationError) as ref_err:
            ref_rt.run(maxmin_node_factory(schedule_rounds), schedule_rounds.total_rounds)
        # Both errors are diagnosable: they name the starved agent and a port.
        assert repr(victim_agent) in str(vec_err.value)
        assert "port" in str(vec_err.value)
        assert repr(victim_agent) in str(ref_err.value)
        assert "port" in str(ref_err.value)

    def test_safe_protocol_drop_names_agent_on_both_paths(self):
        inst = cycle_instance(16, seed=0)
        plane = MessagePlane(inst)
        target = int(plane.agent_con_slots[0])
        sender_slot = int(plane.reverse[target])
        _, victim_agent, _ = plane.slot_owner(target)
        plan = FaultPlan(
            seed=0,
            message_faults=(MessageFault(round_number=1, slots=(sender_slot,)),),
        )
        from repro.distributed.safe_agents import (
            SAFE_ALGORITHM_ROUNDS,
            VectorizedSafeProtocol,
            _safe_node_factory,
        )

        vec_rt = SynchronousRuntime(plane=plane, faults=plan)
        with pytest.raises(SimulationError) as vec_err:
            vec_rt.run_vectorized(VectorizedSafeProtocol(), SAFE_ALGORITHM_ROUNDS)
        ref_rt = SynchronousRuntime(build_network(inst), faults=plan)
        with pytest.raises(SimulationError) as ref_err:
            ref_rt.run(_safe_node_factory, SAFE_ALGORITHM_ROUNDS)
        assert repr(victim_agent) in str(vec_err.value)
        assert repr(victim_agent) in str(ref_err.value)

    def test_slot_owner_roundtrip(self):
        inst = cycle_instance(12, seed=0)
        plane = MessagePlane(inst)
        kinds = set()
        for slot in range(plane.num_slots):
            kind, node, port = plane.slot_owner(slot)
            kinds.add(kind)
            assert port >= 1
            assert "->" in plane.describe_slot(slot)
        assert kinds == {"agent", "constraint", "objective"}
        with pytest.raises(ValueError):
            plane.slot_owner(plane.num_slots)


# ----------------------------------------------------------------------
# Satellite: hypothesis soundness property of the certificate
# ----------------------------------------------------------------------
@st.composite
def fault_plans(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    message_faults = ()
    if draw(st.booleans()):
        message_faults = (
            MessageFault(
                round_number=draw(st.integers(min_value=1, max_value=19)),
                fraction=draw(
                    st.floats(min_value=0.0, max_value=0.15, allow_nan=False)
                ),
                attempts=draw(st.sampled_from([(0,), (0, 1), None])),
            ),
        )
    agent_faults = ()
    if draw(st.booleans()):
        agent_faults = (
            AgentFault(
                kind=draw(st.sampled_from(["crash", "silent", "babbling"])),
                round_number=draw(st.integers(min_value=1, max_value=19)),
                agents=tuple(
                    draw(
                        st.lists(
                            st.integers(min_value=0, max_value=35),
                            max_size=3,
                            unique=True,
                        )
                    )
                ),
            ),
        )
    return FaultPlan(seed=seed, message_faults=message_faults, agent_faults=agent_faults)


class TestDegradationSoundness:
    INSTANCE = cycle_instance(36, seed=2)
    EXACT = DistributedLocalSolver(R=3).solve(INSTANCE)[0].value_array()

    @settings(max_examples=20, deadline=None)
    @given(plan=fault_plans())
    def test_certificate_is_sound(self, plan):
        solution, result = ResilientLocalSolver(
            R=3, faults=plan, retransmit_budget=1
        ).solve(self.INSTANCE)
        cert = solution.degradation
        values = solution.value_array()
        # 1. exact agents are bitwise-identical to the fault-free run
        exact_pos = cert.positions_with("exact")
        assert np.array_equal(values[exact_pos], self.EXACT[exact_pos])
        # 2. the whole mixed solution is feasible on the original instance
        report = solution.check_feasibility()
        assert report.feasible, report
        # 3. failed agents contribute nothing
        assert (values[cert.positions_with("failed")] == 0.0).all()
        # 4. the certificate partitions the agents
        counts = cert.counts()
        assert len(exact_pos) + counts["safe"] + counts["failed"] == self.INSTANCE.num_agents
