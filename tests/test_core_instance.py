"""Unit tests for :mod:`repro.core.instance`."""

from __future__ import annotations

import math

import pytest

from repro._types import NodeType, agent_node, constraint_node, objective_node
from repro.core.instance import MaxMinInstance
from repro.exceptions import InvalidInstanceError

from conftest import build_general_instance, build_tiny_instance


class TestConstruction:
    def test_basic_counts(self, tiny_instance):
        assert tiny_instance.num_agents == 2
        assert tiny_instance.num_constraints == 1
        assert tiny_instance.num_objectives == 1
        assert tiny_instance.num_nodes == 4
        assert tiny_instance.num_edges == 4

    def test_duplicate_agent_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MaxMinInstance(["a", "a"], [], [], {}, {})

    def test_duplicate_constraint_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MaxMinInstance(["a"], ["i", "i"], [], {}, {})

    def test_duplicate_objective_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MaxMinInstance(["a"], [], ["k", "k"], {}, {})

    def test_nonpositive_coefficient_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MaxMinInstance(["a"], ["i"], ["k"], {("i", "a"): 0.0}, {("k", "a"): 1.0})
        with pytest.raises(InvalidInstanceError):
            MaxMinInstance(["a"], ["i"], ["k"], {("i", "a"): 1.0}, {("k", "a"): -2.0})

    def test_nonfinite_coefficient_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MaxMinInstance(["a"], ["i"], ["k"], {("i", "a"): math.inf}, {("k", "a"): 1.0})

    def test_unknown_node_in_coefficient_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MaxMinInstance(["a"], ["i"], ["k"], {("i", "zzz"): 1.0}, {})
        with pytest.raises(InvalidInstanceError):
            MaxMinInstance(["a"], ["i"], ["k"], {("nope", "a"): 1.0}, {})
        with pytest.raises(InvalidInstanceError):
            MaxMinInstance(["a"], ["i"], ["k"], {}, {("nope", "a"): 1.0})


class TestAccessors:
    def test_coefficient_lookup(self, general_instance):
        assert general_instance.a("i0", "v1") == 2.0
        assert general_instance.a("i0", "v3") == 0.0
        assert general_instance.c("k1", "v1") == 2.0
        assert general_instance.c("k1", "v4") == 0.0

    def test_adjacency(self, general_instance):
        assert set(general_instance.agents_of_constraint("i0")) == {"v0", "v1", "v2"}
        assert set(general_instance.constraints_of_agent("v2")) == {"i0", "i2"}
        assert set(general_instance.objectives_of_agent("v2")) == {"k1", "k2"}
        assert set(general_instance.agents_of_objective("k0")) == {"v0", "v3"}

    def test_adjacency_unknown_node_raises(self, general_instance):
        with pytest.raises(InvalidInstanceError):
            general_instance.agents_of_constraint("nope")
        with pytest.raises(InvalidInstanceError):
            general_instance.constraints_of_agent("nope")

    def test_other_agent(self, tiny_instance):
        assert tiny_instance.other_agent("i1", "a") == "b"
        assert tiny_instance.other_agent("i1", "b") == "a"

    def test_other_agent_requires_degree_two(self, general_instance):
        with pytest.raises(InvalidInstanceError):
            general_instance.other_agent("i0", "v0")

    def test_other_agent_requires_membership(self, tiny_instance):
        with pytest.raises(InvalidInstanceError):
            MaxMinInstance(
                ["a", "b", "c"],
                ["i"],
                ["k"],
                {("i", "a"): 1.0, ("i", "b"): 1.0},
                {("k", "c"): 1.0},
            ).other_agent("i", "c")

    def test_unique_objective(self, tiny_instance, general_instance):
        assert tiny_instance.unique_objective("a") == "k1"
        with pytest.raises(InvalidInstanceError):
            general_instance.unique_objective("v2")

    def test_objective_siblings(self, tiny_instance):
        assert tiny_instance.objective_siblings("a") == ("b",)

    def test_agent_capacity(self, general_instance):
        # v1 appears in i0 (coeff 2) and i1 (coeff 1): capacity = min(1/2, 1/1).
        assert general_instance.agent_capacity("v1") == pytest.approx(0.5)

    def test_capacity_unconstrained_is_infinite(self):
        inst = MaxMinInstance(["a"], [], ["k"], {}, {("k", "a"): 1.0})
        assert math.isinf(inst.agent_capacity("a"))

    def test_trivial_upper_bound(self, tiny_instance):
        assert tiny_instance.trivial_upper_bound() == pytest.approx(2.0)

    def test_membership_predicates(self, tiny_instance):
        assert tiny_instance.has_agent("a")
        assert not tiny_instance.has_agent("i1")
        assert tiny_instance.has_constraint("i1")
        assert tiny_instance.has_objective("k1")


class TestDegreesAndPredicates:
    def test_delta_values(self, general_instance):
        assert general_instance.delta_I == 3
        assert general_instance.delta_K == 2

    def test_delta_empty(self):
        inst = MaxMinInstance(["a"], [], [], {}, {})
        assert inst.delta_I == 0
        assert inst.delta_K == 0

    def test_degree_statistics(self, general_instance):
        stats = general_instance.degree_statistics()
        assert stats.delta_I == 3
        assert stats.delta_K == 2
        assert stats.max_agent_constraint_degree == 2
        assert stats.max_agent_objective_degree == 2
        assert stats.as_dict()["delta_I"] == 3

    def test_special_form_detection(self, tiny_instance, general_instance, unit_cycle):
        assert tiny_instance.is_special_form()
        assert unit_cycle.is_special_form()
        assert not general_instance.is_special_form()
        assert general_instance.special_form_violations()

    def test_zero_one_detection(self, unit_cycle, special_form_cycle):
        assert unit_cycle.has_zero_one_coefficients()
        assert not special_form_cycle.has_zero_one_coefficients()

    def test_bipartite_detection(self, unit_cycle, general_instance):
        assert unit_cycle.is_bipartite_maxmin()
        assert not general_instance.is_bipartite_maxmin()

    def test_degeneracies(self, degenerate_instance, tiny_instance):
        assert not tiny_instance.is_degenerate()
        cats = degenerate_instance.degeneracies()
        assert "isolated_constraints" in cats
        assert "isolated_objectives" in cats
        assert "non_contributing_agents" in cats
        assert "unconstrained_agents" in cats


class TestGraphViews:
    def test_communication_graph(self, tiny_instance):
        graph = tiny_instance.communication_graph()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4
        assert graph.nodes[agent_node("a")]["kind"] is NodeType.AGENT
        assert graph.edges[constraint_node("i1"), agent_node("a")]["coeff"] == 1.0

    def test_neighbours(self, tiny_instance):
        assert set(tiny_instance.neighbours(agent_node("a"))) == {
            constraint_node("i1"),
            objective_node("k1"),
        }
        assert set(tiny_instance.neighbours(constraint_node("i1"))) == {
            agent_node("a"),
            agent_node("b"),
        }
        assert set(tiny_instance.neighbours(objective_node("k1"))) == {
            agent_node("a"),
            agent_node("b"),
        }

    def test_connectivity(self, tiny_instance):
        assert tiny_instance.is_connected()
        two = MaxMinInstance(
            ["a", "b"],
            ["i1", "i2"],
            ["k1", "k2"],
            {("i1", "a"): 1.0, ("i2", "b"): 1.0},
            {("k1", "a"): 1.0, ("k2", "b"): 1.0},
        )
        assert not two.is_connected()
        components = two.connected_components()
        assert len(components) == 2
        assert {c.num_agents for c in components} == {1}

    def test_sub_instance(self, general_instance):
        sub = general_instance.sub_instance(["v0", "v1"], ["i0"], ["k0"])
        assert sub.num_agents == 2
        assert sub.num_constraints == 1
        assert sub.a("i0", "v0") == 1.0
        assert sub.a("i0", "v2") == 0.0  # dropped agent


class TestEqualityAndSerialization:
    def test_equality_and_hash(self):
        first = build_tiny_instance()
        second = build_tiny_instance()
        assert first == second
        assert hash(first) == hash(second)
        assert first != build_general_instance()
        assert first != "not an instance"

    def test_structural_equality_with_tolerance(self, tiny_instance):
        perturbed = MaxMinInstance(
            tiny_instance.agents,
            tiny_instance.constraints,
            tiny_instance.objectives,
            {key: val + 1e-12 for key, val in tiny_instance.a_coefficients.items()},
            tiny_instance.c_coefficients,
        )
        assert tiny_instance.structurally_equal(perturbed, tol=1e-9)
        assert not tiny_instance.structurally_equal(perturbed, tol=0.0)

    def test_dict_roundtrip(self, general_instance):
        restored = MaxMinInstance.from_dict(general_instance.to_dict())
        assert restored == general_instance
        assert restored.name == general_instance.name

    def test_repr(self, general_instance):
        text = repr(general_instance)
        assert "MaxMinInstance" in text and "deltaI=3" in text
