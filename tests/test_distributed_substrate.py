"""Tests for the message-passing substrate: ports, networks, runtime, views."""

from __future__ import annotations

import math
from typing import Dict

import pytest

from repro._types import NodeType, agent_node, constraint_node, objective_node
from repro.analysis.indistinguishability import build_view
from repro.core.builder import InstanceBuilder
from repro.distributed.local_view import ViewTree, view_tree_optimum
from repro.distributed.message import Message, message_size_bytes
from repro.distributed.network import build_network
from repro.distributed.node import LocalInput, ProtocolNode
from repro.distributed.port_numbering import PortNumbering
from repro.distributed.runtime import SynchronousRuntime
from repro.exceptions import SimulationError
from repro.algo.upper_bound import compute_upper_bounds
from repro.generators import cycle_instance, random_special_form_instance


class TestPortNumbering:
    def test_ports_cover_neighbours(self, general_instance):
        ports = PortNumbering(general_instance)
        node = agent_node("v1")
        assert ports.degree(node) == len(general_instance.neighbours(node))
        for port in ports.ports(node):
            neighbour = ports.neighbour_at(node, port)
            assert ports.port_to(neighbour, node) in ports.ports(neighbour)

    def test_agent_ports_order_constraints_before_objectives(self, general_instance):
        ports = PortNumbering(general_instance)
        node = agent_node("v1")
        kinds = [ports.neighbour_at(node, p)[0] for p in ports.ports(node)]
        first_objective = kinds.index(NodeType.OBJECTIVE)
        assert all(k is NodeType.CONSTRAINT for k in kinds[:first_objective])
        assert all(k is NodeType.OBJECTIVE for k in kinds[first_objective:])

    def test_invalid_port_raises(self, tiny_instance):
        ports = PortNumbering(tiny_instance)
        with pytest.raises(SimulationError):
            ports.neighbour_at(agent_node("a"), 99)
        with pytest.raises(SimulationError):
            ports.port_to(agent_node("a"), agent_node("b"))

    def test_container_protocol(self, tiny_instance):
        ports = PortNumbering(tiny_instance)
        assert agent_node("a") in ports
        assert len(ports) == tiny_instance.num_nodes


class TestNetwork:
    def test_local_inputs_follow_paper(self, general_instance):
        network = build_network(general_instance)
        agent_input = network.local_input(agent_node("v1"))
        assert agent_input.kind is NodeType.AGENT
        # The agent knows the coefficient on every incident edge.
        assert set(agent_input.port_coefficients) == set(agent_input.port_kinds)
        # Constraints and objectives know only their degree / ports.
        constraint_input = network.local_input(constraint_node("i0"))
        assert constraint_input.kind is NodeType.CONSTRAINT
        assert constraint_input.port_coefficients == {}
        assert constraint_input.degree == 3

    def test_capacity_from_local_input(self, general_instance):
        network = build_network(general_instance)
        agent_input = network.local_input(agent_node("v1"))
        assert agent_input.capacity() == pytest.approx(general_instance.agent_capacity("v1"))

    def test_endpoint_symmetry(self, unit_cycle):
        network = build_network(unit_cycle)
        for node in network.nodes():
            for port in range(1, network.local_input(node).degree + 1):
                neighbour, remote = network.endpoint(node, port)
                back, back_port = network.endpoint(neighbour, remote)
                assert back == node and back_port == port

    def test_counts(self, unit_cycle):
        network = build_network(unit_cycle)
        assert network.num_nodes == unit_cycle.num_nodes
        assert network.num_edges == unit_cycle.num_edges
        assert len(network.agent_nodes()) == unit_cycle.num_agents


class _EchoNode(ProtocolNode):
    """Test protocol: each agent announces its degree; neighbours echo it back."""

    def __init__(self, graph_node, local_input):
        super().__init__(graph_node, local_input)
        self.received: Dict[int, object] = {}

    def compose(self, round_number, inbox):
        self.received.update({p: m.payload for p, m in inbox.items()})
        if round_number == 1:
            return {p: Message(self.degree, phase="echo") for p in range(1, self.degree + 1)}
        if round_number == 2:
            return {p: Message(("ack", m.payload), phase="echo") for p, m in inbox.items()}
        return {}

    def output(self):
        if self.kind is NodeType.AGENT:
            return sorted(self.received.values(), key=repr)
        return None


class TestRuntime:
    def test_message_counting_and_delivery(self, unit_cycle):
        network = build_network(unit_cycle)
        runtime = SynchronousRuntime(network, measure_bytes=True)
        result = runtime.run(lambda net, node: _EchoNode(node, net.local_input(node)), rounds=3)
        assert result.rounds == 3
        # Round 1: every node sends on every port = 2 * |E| messages; round 2 the same.
        assert result.per_round[0].messages == 2 * unit_cycle.num_edges
        assert result.per_round[1].messages == 2 * unit_cycle.num_edges
        assert result.per_round[2].messages == 0
        assert result.total_bytes > 0
        assert result.messages_per_round == pytest.approx(result.total_messages / 3)
        # Every agent got an ack for its own degree from each neighbour.
        for v, received in result.outputs.items():
            acks = [x for x in received if isinstance(x, tuple)]
            assert all(payload == 2 for _, payload in acks)

    def test_stop_when_silent(self, unit_cycle):
        network = build_network(unit_cycle)
        runtime = SynchronousRuntime(network)
        result = runtime.run(
            lambda net, node: _EchoNode(node, net.local_input(node)), rounds=10, stop_when_silent=True
        )
        assert result.rounds == 3  # round 3 is silent

    def test_invalid_port_send_raises(self, tiny_instance):
        class BadNode(ProtocolNode):
            def compose(self, round_number, inbox):
                return {99: Message("boom")}

        network = build_network(tiny_instance)
        runtime = SynchronousRuntime(network)
        with pytest.raises(SimulationError):
            runtime.run(lambda net, node: BadNode(node, net.local_input(node)), rounds=1)

    def test_bare_payloads_are_wrapped(self, tiny_instance):
        class BareNode(ProtocolNode):
            def __init__(self, graph_node, local_input):
                super().__init__(graph_node, local_input)
                self.seen = None

            def compose(self, round_number, inbox):
                if inbox:
                    self.seen = next(iter(inbox.values()))
                if round_number == 1:
                    return {1: "raw-string"}
                return {}

            def output(self):
                return self.seen

        network = build_network(tiny_instance)
        result = SynchronousRuntime(network).run(
            lambda net, node: BareNode(node, net.local_input(node)), rounds=2
        )
        assert any(isinstance(v, Message) for v in result.node_outputs.values() if v is not None)


class TestViewTrees:
    def test_leaf_and_extend(self, unit_cycle):
        network = build_network(unit_cycle)
        local = network.local_input(agent_node("v0"))
        leaf = ViewTree.leaf(local)
        assert leaf.depth() == 0 and leaf.size() == 1
        view = build_view(network, agent_node("v0"), 3)
        assert view.depth() == 3
        assert view.size() > 1
        assert view.capacity() == pytest.approx(unit_cycle.agent_capacity("v0"))

    def test_view_ports(self, unit_cycle):
        network = build_network(unit_cycle)
        view = build_view(network, agent_node("v0"), 2)
        assert len(view.constraint_ports()) == 1
        assert len(view.objective_ports()) == 1
        child, remote = view.child(view.constraint_ports()[0])
        assert child.kind is NodeType.CONSTRAINT
        with pytest.raises(SimulationError):
            view.child(99)

    def test_message_size_accounting(self):
        small = Message(1.0, phase="x")
        big = Message(list(range(1000)), phase="x")
        assert message_size_bytes(big) > message_size_bytes(small) > 0

    @pytest.mark.parametrize("r", [0, 1])
    def test_view_tu_matches_centralized(self, r):
        """The view-based binary search equals the centralized t_u computation."""
        for seed in (1, 2):
            instance = random_special_form_instance(12, delta_K=3, constraint_rounds=2, seed=seed)
            network = build_network(instance)
            central = compute_upper_bounds(instance, r, method="recursion")
            for v in instance.agents[:5]:
                view = build_view(network, agent_node(v), 4 * r + 2)
                local = view_tree_optimum(view, r)
                assert local == pytest.approx(central[v], abs=1e-7)

    def test_view_tu_requires_special_form_shape(self, general_instance):
        # Agent v2 belongs to two objectives, violating the |K_v| = 1 shape
        # the distributed recursion relies on.
        network = build_network(general_instance)
        view = build_view(network, agent_node("v2"), 4)
        with pytest.raises(SimulationError):
            view_tree_optimum(view, 0)
