"""Tests for the distributed protocols (the paper's algorithm and the safe baseline).

The central claim checked here: the message-passing realisation produces the
same outputs as the centralized reference implementation — i.e. the
algorithm really is computable in ``Θ(R)`` synchronous rounds from local
information only.
"""

from __future__ import annotations

import pytest

from repro.algo.local_solver import SpecialFormLocalSolver
from repro.algo.safe_algorithm import safe_solution
from repro.core.lp import solve_maxmin_lp
from repro.distributed.agents import DistributedLocalSolver, PhaseSchedule
from repro.distributed.dynamics import (
    changed_sites,
    local_horizon_radius,
    measure_change_impact,
)
from repro.distributed.safe_agents import SAFE_ALGORITHM_ROUNDS, DistributedSafeSolver
from repro.exceptions import NotSpecialFormError, SimulationError
from repro.generators import (
    cycle_instance,
    objective_ring_instance,
    perturb_coefficient,
    random_special_form_instance,
    regular_special_form_instance,
)

from conftest import assert_feasible, assert_within_guarantee, special_form_family


class TestPhaseSchedule:
    def test_round_arithmetic(self):
        sched = PhaseSchedule(2)
        assert sched.r == 0
        assert sched.total_rounds == 7
        sched = PhaseSchedule(3)
        assert sched.view_end == 6
        assert sched.smooth_end == 12
        assert sched.g_start == 13
        assert sched.total_rounds == 19  # 12r + 7 with r = 1

    def test_invalid_R(self):
        with pytest.raises(ValueError):
            PhaseSchedule(1)

    def test_total_rounds_formula(self):
        for R in range(2, 7):
            assert PhaseSchedule(R).total_rounds == 12 * (R - 2) + 7


class TestDistributedLocalSolver:
    @pytest.mark.parametrize("R", [2, 3])
    def test_matches_centralized_reference(self, R):
        instances = [
            cycle_instance(6, coefficient_range=(0.5, 2.0), seed=1),
            random_special_form_instance(12, delta_K=3, constraint_rounds=2, seed=2),
            objective_ring_instance(3, 3),
        ]
        for instance in instances:
            central = SpecialFormLocalSolver(R=R).solve(instance)
            distributed_solution, run = DistributedLocalSolver(R=R).solve(instance)
            assert run.rounds == 12 * (R - 2) + 7
            for v in instance.agents:
                assert distributed_solution[v] == pytest.approx(central.solution[v], abs=1e-8)

    def test_output_feasible_and_within_guarantee(self):
        solver = DistributedLocalSolver(R=3)
        for instance in special_form_family()[:4]:
            solution, _run = solver.solve(instance)
            assert_feasible(solution)
            guarantee = 2.0 * (1 - 1 / instance.delta_K) * (1 + 1 / (solver.R - 1))
            assert_within_guarantee(instance, solution, guarantee)

    def test_rejects_general_instances(self, general_instance):
        with pytest.raises(NotSpecialFormError):
            DistributedLocalSolver(R=2).solve(general_instance)

    def test_local_horizon_property(self):
        assert DistributedLocalSolver(R=2).local_horizon == 7
        assert DistributedLocalSolver(R=4).local_horizon == 31

    def test_messages_scale_linearly_with_network_size(self):
        """Constant work per node: total messages grow linearly in n."""
        solver = DistributedLocalSolver(R=2)
        runs = {}
        for segments in (6, 12, 24):
            instance = cycle_instance(segments)
            _solution, run = solver.solve(instance)
            runs[segments] = run
        per_node_small = runs[6].total_messages / cycle_instance(6).num_nodes
        per_node_large = runs[24].total_messages / cycle_instance(24).num_nodes
        assert per_node_large == pytest.approx(per_node_small, rel=0.01)
        # Round count is independent of n.
        assert runs[6].rounds == runs[24].rounds

    def test_byte_accounting_optional(self):
        instance = cycle_instance(4)
        _solution, cheap = DistributedLocalSolver(R=2).solve(instance)
        _solution, measured = DistributedLocalSolver(R=2, measure_bytes=True).solve(instance)
        assert cheap.total_bytes == 0
        assert measured.total_bytes > 0


class TestDistributedSafeSolver:
    def test_matches_centralized_safe(self):
        for instance in special_form_family()[:4]:
            central = safe_solution(instance, variant="degree")
            distributed, run = DistributedSafeSolver().solve(instance)
            assert run.rounds == SAFE_ALGORITHM_ROUNDS
            for v in instance.agents:
                assert distributed[v] == pytest.approx(central[v], abs=1e-12)

    def test_works_on_general_nondegenerate_instances(self, general_instance):
        solution, _run = DistributedSafeSolver().solve(general_instance)
        assert_feasible(solution)

    def test_message_count(self):
        instance = cycle_instance(5)
        _solution, run = DistributedSafeSolver(measure_bytes=True).solve(instance)
        # One message per constraint-agent edge in round 1, nothing in round 2.
        assert run.total_messages == 2 * instance.num_constraints
        assert run.total_bytes > 0


class TestDynamics:
    def test_changed_sites_detection(self):
        before = cycle_instance(8)
        after = perturb_coefficient(before, "i0", "v0", 3.0)
        sites = changed_sites(before, after)
        assert len(sites) == 1

    def test_identical_instances_rejected(self):
        instance = cycle_instance(4)
        with pytest.raises(SimulationError):
            measure_change_impact(instance, instance, lambda inst: None, horizon=1)

    @pytest.mark.parametrize("R", [2, 3])
    def test_output_changes_are_local(self, R):
        """Changing one coefficient only moves outputs within the local horizon."""
        before = cycle_instance(16)
        after = perturb_coefficient(before, "i0", "v0", 4.0)

        def solver(instance):
            return SpecialFormLocalSolver(R=R).solve(instance).solution

        impact = measure_change_impact(
            before, after, solver, horizon=local_horizon_radius(R)
        )
        assert impact.changed_agents, "the perturbation must affect someone"
        assert impact.is_local, (
            f"outputs changed at distance {impact.max_distance} > horizon {impact.horizon}"
        )

    def test_far_agents_unaffected(self):
        """An agent diametrically across a long cycle keeps its exact output."""
        R = 2
        before = cycle_instance(24)
        after = perturb_coefficient(before, "i0", "v0", 4.0)
        sol_before = SpecialFormLocalSolver(R=R).solve(before).solution
        sol_after = SpecialFormLocalSolver(R=R).solve(after).solution
        far_agent = "v24"  # half-way around the 48-agent cycle
        assert sol_before[far_agent] == pytest.approx(sol_after[far_agent], abs=1e-12)
