"""Equivalence property suite for the compiled §4 transformation pipeline.

The contract that lets ``backend="vectorized"`` be the default for
:func:`repro.transforms.to_special_form`:

* the transformed instance is **digest-identical** to the reference
  pipeline's output — same node ids in the same canonical order,
  bitwise-equal coefficients (so ``==`` holds exactly and the engine's
  content-addressed cache keys coincide);
* the composed ratio factor and the per-stage metadata agree;
* back-mapped solutions agree within 1e-12 (the array back-map composes the
  §4.3/§4.6 scales in one product instead of two chained operations, which
  costs at most a few ulp).

Checked across every generator family and over hypothesis-generated
instances that are built from scratch (not via the library's generators, to
avoid shared blind spots).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.algo.general_solver import LocalMaxMinSolver
from repro.algo.local_solver import SpecialFormLocalSolver
from repro.core.builder import InstanceBuilder
from repro.core.lp import solve_maxmin_lp
from repro.core.preprocess import preprocess
from repro.core.solution import Solution
from repro.exceptions import DegenerateInstanceError
from repro.generators import (
    cycle_instance,
    objective_ring_instance,
    random_instance,
    sensor_network_instance,
    torus_instance,
)
from repro.io.serialization import instance_digest, instance_to_json
from repro.transforms import CompiledTransformResult, to_special_form
from repro.transforms.vectorized import vectorized_to_special_form

from conftest import assert_feasible, build_general_instance, general_family

BACKMAP_TOL = 1e-12

coefficients = st.floats(min_value=0.1, max_value=5.0, allow_nan=False, allow_infinity=False)


@st.composite
def general_instances(draw, max_agents: int = 12):
    """Random non-degenerate-ish general instances (grouped rows + overlaps)."""
    n = draw(st.integers(min_value=2, max_value=max_agents))
    agents = [f"v{j}" for j in range(n)]
    builder = InstanceBuilder(name="hypothesis-vectorized")

    idx = 0
    constraint_id = 0
    while idx < n:
        size = draw(st.integers(min_value=1, max_value=4))
        for v in agents[idx : idx + size]:
            builder.add_constraint_term(f"i{constraint_id}", v, draw(coefficients))
        constraint_id += 1
        idx += size

    idx = 0
    objective_id = 0
    while idx < n:
        size = draw(st.integers(min_value=1, max_value=3))
        for v in agents[idx : idx + size]:
            builder.add_objective_term(f"k{objective_id}", v, draw(coefficients))
        objective_id += 1
        idx += size

    extra = draw(st.integers(min_value=0, max_value=4))
    for e in range(extra):
        members = draw(st.lists(st.sampled_from(agents), min_size=1, max_size=4, unique=True))
        kind = draw(st.booleans())
        for v in members:
            if kind:
                builder.add_constraint_term(f"ix{e}", v, draw(coefficients))
            else:
                builder.add_objective_term(f"kx{e}", v, draw(coefficients))
    return builder.build()


def clean_cases():
    """Non-degenerate instances of every general family (id, clean instance)."""
    raw = general_family() + [
        random_instance(40, delta_I=4, delta_K=4, extra_constraints=5, extra_objectives=5, seed=99),
        random_instance(35, delta_I=6, delta_K=5, extra_constraints=10, extra_objectives=6, seed=3),
        sensor_network_instance(16, 5, seed=31).instance,
        torus_instance(4, 4, coefficient_range=(0.5, 2.0), seed=17),
        cycle_instance(9, coefficient_range=(0.5, 2.0), seed=2),  # already special form
        objective_ring_instance(4, 3),
    ]
    cases = []
    for instance in raw:
        pre = preprocess(instance)
        if pre.optimum_is_zero or pre.optimum_is_unbounded or pre.instance.num_agents == 0:
            continue
        cases.append((instance.name, pre.instance))
    return cases


CASES = clean_cases()
CASE_IDS = [case_id for case_id, _ in CASES]


def _both_pipelines(clean):
    ref = to_special_form(clean, backend="reference")
    vec = to_special_form(clean, backend="vectorized")
    return ref, vec


class TestDigestIdentity:
    @pytest.mark.parametrize("case_id,clean", CASES, ids=CASE_IDS)
    def test_instances_digest_identical(self, case_id, clean):
        ref, vec = _both_pipelines(clean)
        assert instance_digest(instance_to_json(vec.transformed)) == instance_digest(
            instance_to_json(ref.transformed)
        )
        # Digest identity implies bitwise structural equality.
        assert vec.transformed == ref.transformed
        assert vec.ratio_factor == ref.ratio_factor
        assert vec.metadata["stages"] == ref.metadata["stages"]
        assert vec.metadata["stage_ratio_factors"] == ref.metadata["stage_ratio_factors"]

    @pytest.mark.parametrize("case_id,clean", CASES, ids=CASE_IDS)
    def test_back_mapped_solutions_agree(self, case_id, clean):
        ref, vec = _both_pipelines(clean)
        lp = solve_maxmin_lp(ref.transformed)
        mapped_ref = ref.map_back(lp.solution)
        mapped_vec = vec.map_back(
            Solution(vec.transformed, lp.solution.as_dict(), label=lp.solution.label)
        )
        assert mapped_ref.label == mapped_vec.label
        for v in clean.agents:
            assert mapped_vec[v] == pytest.approx(mapped_ref[v], abs=BACKMAP_TOL)
        assert_feasible(mapped_vec)

    def test_noop_pipeline_returns_same_instance(self):
        special = cycle_instance(8)
        result = to_special_form(special, backend="vectorized")
        assert result.transformed is special
        assert not result.changed
        sol = Solution(special, {v: 0.1 for v in special.agents}, label="probe")
        assert result.map_back(sol).label == "probe"


class TestHypothesisEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(instance=general_instances())
    def test_pipeline_equivalence(self, instance):
        pre = preprocess(instance)
        assume(not pre.optimum_is_zero and not pre.optimum_is_unbounded)
        assume(pre.instance.num_agents > 0)
        clean = pre.instance
        ref, vec = _both_pipelines(clean)
        assert instance_digest(instance_to_json(vec.transformed)) == instance_digest(
            instance_to_json(ref.transformed)
        )
        lp = solve_maxmin_lp(ref.transformed)
        mapped_ref = ref.map_back(lp.solution)
        mapped_vec = vec.map_back(
            Solution(vec.transformed, lp.solution.as_dict(), label=lp.solution.label)
        )
        for v in clean.agents:
            assert mapped_vec[v] == pytest.approx(mapped_ref[v], abs=BACKMAP_TOL)


class TestCompiledTransformResult:
    def test_map_back_array_matches_map_back(self):
        clean = preprocess(build_general_instance()).instance
        vec = to_special_form(clean, backend="vectorized")
        assert isinstance(vec, CompiledTransformResult)
        lp = solve_maxmin_lp(vec.transformed)
        x = np.asarray([lp.solution[v] for v in vec.transformed.agents])
        mapped_arr = vec.map_back_array(x)
        mapped_sol = vec.map_back(lp.solution)
        for pos, v in enumerate(clean.agents):
            assert mapped_arr[pos] == mapped_sol[v]

    def test_back_map_segments_cover_every_agent(self):
        clean = preprocess(build_general_instance()).instance
        vec = vectorized_to_special_form(clean)
        assert len(vec.bm_indptr) == clean.num_agents + 1
        assert (np.diff(vec.bm_indptr) >= 1).all()
        assert (vec.bm_scale > 0.0).all()
        assert vec.bm_idx.max() < vec.transformed.num_agents

    def test_rejects_degenerate(self, degenerate_instance):
        with pytest.raises(DegenerateInstanceError):
            to_special_form(degenerate_instance, backend="vectorized")

    def test_unknown_backend_rejected(self, general_instance):
        with pytest.raises(ValueError):
            to_special_form(general_instance, backend="turbo")


class TestSolverIntegration:
    @pytest.mark.parametrize("case_id,clean", CASES[:6], ids=CASE_IDS[:6])
    def test_transform_backends_agree_end_to_end(self, case_id, clean):
        ref = LocalMaxMinSolver(R=3, transform_backend="reference").solve(clean)
        vec = LocalMaxMinSolver(R=3, transform_backend="vectorized").solve(clean)
        assert vec.status == ref.status
        assert vec.certificate.guaranteed_ratio == ref.certificate.guaranteed_ratio
        for v in clean.agents:
            assert vec.solution[v] == pytest.approx(ref.solution[v], abs=1e-9)

    def test_solve_many_matches_solve(self):
        instances = [clean for _, clean in CASES[:5]]
        solver = LocalMaxMinSolver(R=3)
        many = solver.solve_many(instances)
        for instance, batched in zip(instances, many):
            solo = solver.solve(instance)
            assert batched.status == solo.status
            for v in instance.agents:
                assert batched.solution[v] == solo.solution[v]

    def test_solve_many_handles_trivial_paths(self):
        builder = InstanceBuilder(name="trivial-dI1")
        builder.add_constraint_term("i", "a", 2.0)
        builder.add_objective_term("k", "a", 1.0)
        trivial = builder.build()
        normal = preprocess(build_general_instance()).instance
        solver = LocalMaxMinSolver(R=3)
        results = solver.solve_many([trivial, normal])
        assert results[0].status == "trivial-delta-I-1"
        assert results[1].status == "local"
        assert results[0].solution["a"] == pytest.approx(0.5)

    def test_solve_batch_bitwise_equal(self):
        instances = [
            cycle_instance(8),
            cycle_instance(9, coefficient_range=(0.5, 2.0), seed=3),
            objective_ring_instance(5, 3),
        ]
        solver = SpecialFormLocalSolver(R=3)
        batch = solver.solve_batch(instances)
        for instance, batched in zip(instances, batch):
            solo = solver.solve(instance)
            for v in instance.agents:
                assert batched.solution[v] == solo.solution[v]
                assert batched.upper_bounds[v] == solo.upper_bounds[v]
                assert batched.smoothed_bounds[v] == solo.smoothed_bounds[v]

    def test_solve_batch_empty(self):
        assert SpecialFormLocalSolver(R=3).solve_batch([]) == []
