"""Tests for :mod:`repro.obs` and its integration with the solve paths.

Covers the ISSUE-mandated guards: the disabled tracer's overhead bound, the
span-nesting / attribute round-trip through the versioned trace JSON, the
deterministic cross-process metric merge under :class:`ParallelExecutor`,
and the counter-value equivalence between the reference and vectorized
bisection kernels.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.algo.kernels import batched_upper_bounds
from repro.algo.local_solver import SpecialFormLocalSolver
from repro.algo.upper_bound import compute_upper_bounds
from repro.engine.batch import ratio_sweep_batch, run_batch
from repro.engine.cache import ResultCache
from repro.engine.executors import ParallelExecutor, SerialExecutor
from repro.generators import cycle_instance, random_special_form_instance


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test leaves tracing disabled and the buffer empty."""
    yield
    obs.configure(enabled=False)
    obs.reset()


# ----------------------------------------------------------------------
# Core collector behaviour
# ----------------------------------------------------------------------


def test_disabled_tracer_is_inert():
    assert not obs.enabled()
    with obs.span("anything", x=1) as sp:
        sp.set(y=2)
    obs.count("some.counter", 5)
    obs.gauge("some.gauge", 1.5)
    snap = obs.snapshot()
    assert snap["spans"] == []
    assert snap["counters"] == {}
    assert snap["gauges"] == {}


def test_disabled_overhead_is_under_two_percent_of_reference_solve():
    """The no-op fast path must be negligible against a real solve.

    One solve issues on the order of a dozen obs calls (5 spans + ~8
    counters); this bounds the cost of one hundred disabled span+count
    pairs — several times that — against 2% of the reference solve's wall
    time.
    """
    instance = cycle_instance(512, coefficient_range=(0.5, 2.0), seed=3)
    solver = SpecialFormLocalSolver(R=3, backend="vectorized")
    solver.solve(instance)  # warm caches (compiled view, transforms)
    t_solve = min(
        _timed(lambda: solver.solve(instance)) for _ in range(3)
    )

    calls = 20_000
    start = time.perf_counter()
    for _ in range(calls):
        with obs.span("x"):
            pass
        obs.count("x")
    per_call = (time.perf_counter() - start) / calls
    assert per_call * 100 < 0.02 * t_solve


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_counters_marks_and_gauges():
    obs.configure(enabled=True)
    obs.count("a", 2)
    obs.count("a")
    obs.gauge("g", 7.0)
    obs.gauge("g", 9.0)
    mark = obs.counters_mark()
    obs.count("a", 5)
    obs.count("b", 0)  # zero deltas are omitted from the diff
    assert obs.counters_since(mark) == {"a": 5}
    snap = obs.snapshot()
    assert snap["counters"]["a"] == 8
    assert snap["gauges"]["g"] == 9.0


def test_span_nesting_and_attrs_roundtrip_through_trace_json():
    obs.configure(enabled=True)
    with obs.span("outer", phase="demo") as outer:
        with obs.span("inner", depth=1) as inner:
            inner.set(items=3)
        outer.set(done=True)
    payload = json.loads(json.dumps(obs.trace_payload(meta={"test": "roundtrip"})))
    obs.validate_trace(payload)
    assert payload["meta"] == {"test": "roundtrip"}

    by_name = {record["name"]: record for record in payload["spans"]}
    outer_rec, inner_rec = by_name["outer"], by_name["inner"]
    assert outer_rec["parent"] is None
    assert inner_rec["parent"] == outer_rec["id"]
    assert outer_rec["attrs"] == {"phase": "demo", "done": True}
    assert inner_rec["attrs"] == {"depth": 1, "items": 3}
    assert outer_rec["wall_s"] >= inner_rec["wall_s"] >= 0.0

    chrome = payload["chrome_trace"]
    assert len(chrome) == 2
    assert {event["name"] for event in chrome} == {"outer", "inner"}
    assert all(event["ph"] == "X" for event in chrome)


def test_span_stack_survives_exceptions():
    obs.configure(enabled=True)
    with pytest.raises(RuntimeError):
        with obs.span("outer"):
            with obs.span("inner"):
                raise RuntimeError("boom")
    with obs.span("after"):
        pass
    by_name = {record["name"]: record for record in obs.snapshot()["spans"]}
    assert by_name["after"]["parent"] is None


@pytest.mark.parametrize(
    "mutate",
    [
        lambda p: p.update(format="other"),
        lambda p: p.update(version=99),
        lambda p: p["spans"][0].pop("wall_s"),
        lambda p: p["spans"][0].update(id=p["spans"][1]["id"]),
        lambda p: p["spans"][0].update(parent=12345),
        lambda p: p["counters"].update(bad=True),
        lambda p: p["chrome_trace"].pop(),
        lambda p: p["chrome_trace"][0].update(ph="B"),
    ],
)
def test_validate_trace_rejects_malformed_payloads(mutate):
    obs.configure(enabled=True)
    with obs.span("a"):
        with obs.span("b"):
            pass
    obs.count("c", 1)
    payload = json.loads(json.dumps(obs.trace_payload()))
    obs.validate_trace(payload)  # sanity: valid before mutation
    mutate(payload)
    with pytest.raises(ValueError):
        obs.validate_trace(payload)


def test_merge_snapshot_remaps_ids_and_sums_counters():
    obs.configure(enabled=True)
    worker = {
        "spans": [
            {"id": 0, "parent": None, "name": "w-root", "start_s": 0.0,
             "wall_s": 1.0, "cpu_s": 1.0, "attrs": {}, "proc": 0},
            {"id": 1, "parent": 0, "name": "w-child", "start_s": 0.1,
             "wall_s": 0.5, "cpu_s": 0.5, "attrs": {}, "proc": 0},
        ],
        "counters": {"a": 3, "b": 1},
        "gauges": {"g": 2.0},
    }
    obs.count("a", 4)
    with obs.span("parent-open"):
        obs.merge_snapshot(worker, proc=7)
    snap = obs.snapshot()
    by_name = {record["name"]: record for record in snap["spans"]}
    parent_rec = by_name["parent-open"]
    root_rec, child_rec = by_name["w-root"], by_name["w-child"]
    # Worker roots attach under the innermost open parent span; ids are fresh.
    assert root_rec["parent"] == parent_rec["id"]
    assert child_rec["parent"] == root_rec["id"]
    assert root_rec["proc"] == child_rec["proc"] == 7
    assert len({record["id"] for record in snap["spans"]}) == 3
    assert snap["counters"] == {"a": 7, "b": 1}
    assert snap["gauges"] == {"g": 2.0}


# ----------------------------------------------------------------------
# Solver integration
# ----------------------------------------------------------------------


@pytest.mark.parametrize("r", [0, 1, 2])
def test_bisection_iteration_counts_match_across_backends(r):
    """Reference per-tree bisection and the batched kernel count identically.

    Comparable only without tree deduplication: the batched kernel bisects
    one representative per signature class, the reference loop every tree.
    """
    for instance in (
        cycle_instance(9, coefficient_range=(0.5, 2.0), seed=1),
        random_special_form_instance(14, delta_K=3, seed=2),
    ):
        obs.configure(enabled=True)
        mark = obs.counters_mark()
        compute_upper_bounds(instance, r)
        ref = obs.counters_since(mark)
        mark = obs.counters_mark()
        batched_upper_bounds(instance.compiled(), r, deduplicate=False)
        vec = obs.counters_since(mark)
        assert ref.get("kernels.bisection_iterations", 0) == vec.get(
            "kernels.bisection_iterations", 0
        )
        assert ref.get("kernels.trees_total") == vec.get("kernels.trees_total")
        obs.configure(enabled=False)


def test_lazy_result_skips_dict_materialization_in_sweeps():
    """The record path reads only solution + certificate: no dict builds."""
    instances = [cycle_instance(8, seed=s) for s in range(2)]
    batch = ratio_sweep_batch(instances, R_values=(2, 3), include_safe=False)
    obs.configure(enabled=True)
    result = run_batch(batch)
    counters = obs.snapshot()["counters"]
    assert result.executed_jobs == 4
    assert counters.get("solver.lazy_results", 0) >= 4
    assert "solver.lazy_materializations" not in counters


def test_lazy_result_materializes_on_dict_access():
    instance = cycle_instance(8, coefficient_range=(0.5, 2.0), seed=5)
    solver = SpecialFormLocalSolver(R=3, backend="vectorized")
    obs.configure(enabled=True)
    result = solver.solve(instance)
    before = obs.snapshot()["counters"]
    assert before.get("solver.lazy_results") == 1
    assert "solver.lazy_materializations" not in before
    _ = result.upper_bounds  # forces the dict views
    after = obs.snapshot()["counters"]
    assert after.get("solver.lazy_materializations") == 1
    assert set(result.upper_bounds) == set(instance.agents)
    assert result.minimum_smoothed_bound() == min(result.smoothed_bounds.values())


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------


def test_job_metrics_carry_true_elapsed_and_counters(tmp_path):
    instances = [cycle_instance(8, seed=s) for s in range(2)]
    batch = ratio_sweep_batch(instances, R_values=(2,), include_safe=False)
    obs.configure(enabled=True)
    result = run_batch(batch, cache_dir=tmp_path / "cache")
    for job in result.results:
        assert not job.from_cache
        assert job.metrics is not None
        assert job.metrics["elapsed_s"] > 0.0
        assert job.metrics["counters"]  # solver counters attributed to the job
    rollup = result.metrics
    assert rollup["jobs"] == 2 and rollup["executed"] == 2 and rollup["cached"] == 0
    assert rollup["wall_s"] == result.elapsed_s
    # The batch rollup is the sum of the per-job counter deltas.
    summed = {}
    for job in result.results:
        for name, value in job.metrics["counters"].items():
            summed[name] = summed.get(name, 0) + value
    assert rollup["counters"] == summed

    # Warm re-run: everything cached, metrics None, no counter rollup.
    rerun = run_batch(batch, cache_dir=tmp_path / "cache")
    assert rerun.executed_jobs == 0
    assert all(job.from_cache and job.metrics is None for job in rerun.results)
    assert "counters" not in rerun.metrics


def test_parallel_metric_merge_is_deterministic_and_complete():
    instances = [cycle_instance(6 + 2 * s, seed=s) for s in range(4)]
    batch = ratio_sweep_batch(instances, R_values=(2,), include_safe=False)

    def run_traced():
        obs.configure(enabled=False)
        obs.configure(enabled=True)  # disabled→enabled edge resets the buffer
        result = run_batch(
            batch, executor=ParallelExecutor(max_workers=2, chunk_size=2)
        )
        merged = obs.snapshot()["counters"]
        obs.configure(enabled=False)
        return result, merged

    first, merged_first = run_traced()
    second, merged_second = run_traced()
    # Deterministic merge: identical counters across repeated parallel runs.
    assert merged_first == merged_second
    assert first.records == second.records
    # Complete merge: the parent's counters are the sum of the per-job deltas
    # (zero-valued counters appear in snapshots but are omitted from deltas).
    summed = {}
    for job in first.results:
        assert job.metrics is not None and job.metrics["elapsed_s"] > 0.0
        for name, value in job.metrics["counters"].items():
            summed[name] = summed.get(name, 0) + value
    assert {name: value for name, value in merged_first.items() if value} == summed
    # And the parallel counters equal a serial run's (distinct instances, so
    # no cross-process memo effects can skew them).
    obs.configure(enabled=False)
    obs.configure(enabled=True)
    serial = run_batch(batch, executor=SerialExecutor())
    assert obs.snapshot()["counters"] == merged_first
    assert serial.records == first.records


def test_custom_executor_subclass_still_runs_without_metrics():
    class Doubler(SerialExecutor):
        def map_jobs(self, specs):
            return super().map_jobs(list(specs) + list(specs))

    batch = ratio_sweep_batch([cycle_instance(6, seed=0)], R_values=(2,), include_safe=False)
    with pytest.raises(Exception):
        run_batch(batch, executor=Doubler())  # alignment check must still fire


def test_result_cache_stats(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.stats() == {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0, "entries": 0}
    assert cache.get("ab" * 32) is None
    cache.put("ab" * 32, [{"x": 1}])
    assert cache.get("ab" * 32) == [{"x": 1}]
    stats = cache.stats()
    assert stats == {"hits": 1, "misses": 1, "stores": 1, "corrupt": 0, "entries": 1}


# ----------------------------------------------------------------------
# CLI surfacing
# ----------------------------------------------------------------------


def test_cli_profile_and_trace_out(tmp_path, capsys):
    from repro.cli import main

    instance_path = tmp_path / "inst.json"
    trace_path = tmp_path / "trace.json"
    assert main(["generate", "cycle", str(instance_path), "--size", "8"]) == 0
    assert (
        main(["solve", str(instance_path), "--profile", "--trace-out", str(trace_path)])
        == 0
    )
    out = capsys.readouterr().out
    assert "solve.general" in out
    assert "kernels.upper_bounds" in out
    assert "solver.lazy_results" in out
    payload = obs.validate_trace_file(trace_path)
    assert payload["meta"]["command"] == "solve"
    assert any(record["name"] == "solve.special_form" for record in payload["spans"])
    assert not obs.enabled()  # the CLI restores the prior tracing state


def test_cli_sweep_profile(tmp_path, capsys):
    from repro.cli import main

    trace_path = tmp_path / "sweep-trace.json"
    code = main(
        [
            "sweep", "cycle", "--sizes", "8", "--r-values", "2",
            "--profile", "--trace-out", str(trace_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "engine.run_batch" in out
    assert f"trace written to {trace_path}" in out
    obs.validate_trace_file(trace_path)
    assert not obs.enabled()


def test_cli_info_prints_cache_stats(tmp_path, capsys):
    from repro.cli import main

    instance_path = tmp_path / "inst.json"
    assert main(["generate", "cycle", str(instance_path), "--size", "8"]) == 0
    cache_dir = tmp_path / "cache"
    ResultCache(cache_dir).put("cd" * 32, [{"x": 1}])
    assert main(["info", str(instance_path), "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "result cache" in out
    assert "entries" in out
