"""Tests for the batch-execution engine (:mod:`repro.engine`).

The engine's contracts, in decreasing order of importance:

* **Executor equivalence** — ``ParallelExecutor`` output is identical to
  ``SerialExecutor`` output (same records, same order) for any batch,
  checked here both on fixed families and property-style over randomly
  generated special-form instances.
* **Cache correctness** — hits return exactly what was computed; any change
  to the instance, the parameters or the solver version lands on a new key
  (content addressing means "invalidation" is just a different address); a
  warm cache performs zero solver calls.
* **Sweep fidelity** — :func:`repro.analysis.sweeps.run_ratio_sweep` through
  the engine reproduces the legacy serial loop record-for-record.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.ratios import compare_algorithms
from repro.analysis.sweeps import run_ratio_sweep, run_ratio_sweep_batch
from repro.cli import main as cli_main
from repro.engine import (
    BatchSpec,
    JobSpec,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    default_executor,
    execute_job,
    make_jobs_for_instance,
    ratio_sweep_batch,
    run_batch,
)
from repro.engine import registry
from repro.exceptions import EngineError
from repro.generators import cycle_instance, random_special_form_instance
from repro.io.serialization import instance_digest, instance_to_json

from conftest import special_form_family


def small_family():
    return [
        cycle_instance(5, coefficient_range=(0.5, 2.0), seed=1),
        cycle_instance(6),
        random_special_form_instance(10, delta_K=3, constraint_rounds=1, seed=2),
    ]


# ----------------------------------------------------------------------
# Instance hashing
# ----------------------------------------------------------------------


class TestInstanceDigest:
    def test_deterministic_and_json_equivalent(self, general_instance):
        digest = instance_digest(general_instance)
        assert digest == instance_digest(general_instance)
        assert digest == instance_digest(instance_to_json(general_instance))
        assert len(digest) == 64 and int(digest, 16) >= 0

    def test_sensitive_to_content(self, tiny_instance):
        from repro.core.builder import InstanceBuilder

        builder = InstanceBuilder(name="tiny")
        builder.add_constraint_term("i1", "a", 1.0)
        builder.add_constraint_term("i1", "b", 2.0)  # coefficient differs
        builder.add_objective_term("k1", "a", 1.0)
        builder.add_objective_term("k1", "b", 1.0)
        assert instance_digest(builder.build()) != instance_digest(tiny_instance)

    def test_sensitive_to_name(self, tiny_instance):
        renamed = tiny_instance.sub_instance(
            tiny_instance.agents, tiny_instance.constraints, tiny_instance.objectives,
            name="other-name",
        )
        assert instance_digest(renamed) != instance_digest(tiny_instance)


# ----------------------------------------------------------------------
# Job model
# ----------------------------------------------------------------------


class TestJobModel:
    def test_make_jobs_order_matches_compare_algorithms(self, special_form_cycle):
        jobs = make_jobs_for_instance(
            special_form_cycle, R_values=(2, 4), include_safe=True, include_optimum=True
        )
        assert [j.algorithm for j in jobs] == ["local", "local", "safe", "lp-optimum"]
        assert [dict(j.params).get("R") for j in jobs] == [2, 4, None, None]

    def test_cache_key_depends_on_version_params_instance(self, special_form_cycle, unit_cycle):
        [job] = make_jobs_for_instance(special_form_cycle, R_values=(3,), include_safe=False)
        assert job.cache_key("1") != job.cache_key("2")
        other_params = JobSpec(
            instance_json=job.instance_json,
            instance_digest=job.instance_digest,
            algorithm=job.algorithm,
            params=(("R", 4), ("tu_method", "recursion")),
        )
        assert other_params.cache_key("1") != job.cache_key("1")
        [other_inst] = make_jobs_for_instance(unit_cycle, R_values=(3,), include_safe=False)
        assert other_inst.cache_key("1") != job.cache_key("1")

    def test_execute_job_rejects_unknown_algorithm(self, tiny_instance):
        spec = JobSpec(
            instance_json=instance_to_json(tiny_instance),
            instance_digest=instance_digest(tiny_instance),
            algorithm="does-not-exist",
        )
        with pytest.raises(EngineError):
            execute_job(spec)

    def test_jobs_records_match_compare_algorithms(self, special_form_cycle):
        jobs = make_jobs_for_instance(
            special_form_cycle, R_values=(2, 3), include_safe=True, include_optimum=True
        )
        records = [record for job in jobs for record in execute_job(job)]
        expected = compare_algorithms(
            special_form_cycle, R_values=(2, 3), include_safe=True, include_optimum_row=True
        )
        assert records == expected


# ----------------------------------------------------------------------
# Executor equivalence
# ----------------------------------------------------------------------


class TestExecutorEquivalence:
    def test_identical_records_and_order_on_family(self):
        batch = ratio_sweep_batch(small_family(), R_values=(2, 3))
        serial = run_batch(batch, executor=SerialExecutor())
        parallel = run_batch(batch, executor=ParallelExecutor(max_workers=2, chunk_size=2))
        assert parallel.records == serial.records
        # Byte-identical once serialized, not merely == on floats.
        assert json.dumps(parallel.records) == json.dumps(serial.records)

    def test_chunking_preserves_order(self):
        batch = ratio_sweep_batch(special_form_family(), R_values=(2,), include_safe=False)
        serial = run_batch(batch, executor=SerialExecutor())
        for chunk_size in (1, 2, len(batch)):
            parallel = run_batch(
                batch, executor=ParallelExecutor(max_workers=3, chunk_size=chunk_size)
            )
            assert parallel.records == serial.records

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        agents=st.integers(min_value=6, max_value=14),
        seed=st.integers(min_value=0, max_value=10_000),
        R=st.sampled_from([2, 3]),
    )
    def test_property_parallel_equals_serial(self, agents, seed, R):
        instances = [
            random_special_form_instance(agents, delta_K=3, constraint_rounds=1, seed=seed),
            random_special_form_instance(agents + 2, delta_K=3, constraint_rounds=2, seed=seed + 1),
        ]
        batch = ratio_sweep_batch(instances, R_values=(R,), include_safe=True)
        serial = run_batch(batch, executor=SerialExecutor())
        parallel = run_batch(batch, executor=ParallelExecutor(max_workers=2, chunk_size=1))
        assert json.dumps(parallel.records) == json.dumps(serial.records)

    def test_default_executor_resolution(self):
        assert isinstance(default_executor(None), SerialExecutor)
        assert isinstance(default_executor(1), SerialExecutor)
        pool = default_executor(3)
        assert isinstance(pool, ParallelExecutor) and pool.max_workers == 3

    def test_invalid_executor_configuration(self):
        with pytest.raises(EngineError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(EngineError):
            ParallelExecutor(chunk_size=0)

    def test_empty_batch(self):
        result = run_batch(BatchSpec(), executor=ParallelExecutor(max_workers=2))
        assert result.records == [] and result.executed_jobs == 0

    def test_misbehaving_executor_is_rejected(self):
        class DropsOneOutput(SerialExecutor):
            def map_jobs(self, specs):
                return super().map_jobs(specs)[:-1]

        batch = ratio_sweep_batch(small_family()[:1], R_values=(2,))
        with pytest.raises(EngineError, match="alignment"):
            run_batch(batch, executor=DropsOneOutput())


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------


class TestResultCache:
    def test_cold_then_warm(self, tmp_path):
        batch = ratio_sweep_batch(small_family(), R_values=(2, 3))
        cold = run_batch(batch, cache_dir=tmp_path)
        assert cold.executed_jobs == len(batch) and cold.cached_jobs == 0
        warm = run_batch(batch, cache_dir=tmp_path)
        assert warm.executed_jobs == 0 and warm.cached_jobs == len(batch)
        assert warm.records == cold.records
        assert all(result.from_cache for result in warm.results)

    def test_warm_cache_performs_zero_solver_calls(self, tmp_path, monkeypatch):
        batch = ratio_sweep_batch(small_family(), R_values=(2,))
        run_batch(batch, cache_dir=tmp_path)

        calls = []
        real_execute = registry.execute_job
        monkeypatch.setattr(
            registry, "execute_job", lambda spec: calls.append(spec) or real_execute(spec)
        )
        warm = run_batch(batch, cache_dir=tmp_path)
        assert calls == []
        assert warm.executed_jobs == 0

    def test_partial_hit_executes_only_new_jobs(self, tmp_path):
        family = small_family()
        run_batch(ratio_sweep_batch(family[:2], R_values=(2,)), cache_dir=tmp_path)
        mixed = run_batch(ratio_sweep_batch(family, R_values=(2,)), cache_dir=tmp_path)
        per_instance = 2  # local-R2 + safe
        assert mixed.cached_jobs == 2 * per_instance
        assert mixed.executed_jobs == 1 * per_instance
        # Cached and fresh results interleave back into canonical order.
        assert mixed.records == run_batch(ratio_sweep_batch(family, R_values=(2,))).records

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        batch = ratio_sweep_batch(small_family()[:1], R_values=(2,), include_safe=False)
        run_batch(batch, cache_dir=tmp_path)
        monkeypatch.setitem(registry.SOLVER_VERSIONS, "local", "test-bump")
        rerun = run_batch(batch, cache_dir=tmp_path)
        assert rerun.executed_jobs == len(batch) and rerun.cached_jobs == 0

    def test_parameter_change_misses(self, tmp_path):
        family = small_family()[:1]
        run_batch(ratio_sweep_batch(family, R_values=(2,), include_safe=False), cache_dir=tmp_path)
        other_R = run_batch(
            ratio_sweep_batch(family, R_values=(3,), include_safe=False), cache_dir=tmp_path
        )
        assert other_R.executed_jobs == 1
        other_tu = run_batch(
            ratio_sweep_batch(family, R_values=(2,), include_safe=False, tu_method="lp"),
            cache_dir=tmp_path,
        )
        assert other_tu.executed_jobs == 1

    def test_corrupt_entry_is_a_miss_and_self_heals(self, tmp_path):
        batch = ratio_sweep_batch(small_family()[:1], R_values=(2,), include_safe=False)
        first = run_batch(batch, cache_dir=tmp_path)
        entries = list(tmp_path.rglob("*.json"))
        assert len(entries) == 1
        entries[0].write_text("{ not json", encoding="utf-8")
        healed = run_batch(batch, cache_dir=tmp_path)
        assert healed.executed_jobs == 1
        assert healed.records == first.records
        assert run_batch(batch, cache_dir=tmp_path).executed_jobs == 0

    def test_invalid_utf8_entry_is_a_miss(self, tmp_path):
        batch = ratio_sweep_batch(small_family()[:1], R_values=(2,), include_safe=False)
        first = run_batch(batch, cache_dir=tmp_path)
        [entry] = list(tmp_path.rglob("*.json"))
        entry.write_bytes(b"\xff\xfe\x00garbage")
        healed = run_batch(batch, cache_dir=tmp_path)
        assert healed.executed_jobs == 1 and healed.records == first.records

    def test_format_version_mismatch_is_a_miss(self, tmp_path):
        batch = ratio_sweep_batch(small_family()[:1], R_values=(2,), include_safe=False)
        run_batch(batch, cache_dir=tmp_path)
        [entry] = list(tmp_path.rglob("*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["version"] = 999
        entry.write_text(json.dumps(payload), encoding="utf-8")
        assert run_batch(batch, cache_dir=tmp_path).executed_jobs == 1

    def test_cache_root_must_be_a_directory(self, tmp_path):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("", encoding="utf-8")
        with pytest.raises(EngineError):
            ResultCache(not_a_dir)

    def test_records_json_roundtrip_preserves_values(self, tmp_path):
        cache = ResultCache(tmp_path)
        records = [{"x": 1, "ratio": float("inf"), "ok": True, "name": "α"}]
        cache.put("ab" + "0" * 62, records)
        assert cache.get("ab" + "0" * 62) == records
        assert cache.get("ff" + "0" * 62) is None
        assert cache.hits == 1 and cache.misses == 1


# ----------------------------------------------------------------------
# Sweep fidelity and CLI
# ----------------------------------------------------------------------


class TestSweepIntegration:
    def test_engine_sweep_matches_legacy_loop(self):
        instances = small_family()
        expected = []
        for instance in instances:
            expected.extend(compare_algorithms(instance, R_values=(2, 3), include_safe=True))
        assert run_ratio_sweep(instances, R_values=(2, 3)) == expected
        assert run_ratio_sweep(instances, R_values=(2, 3), jobs=2) == expected

    def test_extra_fields_applied_per_instance(self):
        instances = small_family()
        rows = run_ratio_sweep(
            instances,
            R_values=(2,),
            include_safe=False,
            extra_fields={"n": lambda inst: inst.num_agents, "tag": lambda inst: "demo"},
        )
        assert [row["n"] for row in rows] == [inst.num_agents for inst in instances]
        assert all(row["tag"] == "demo" for row in rows)

    def test_cli_sweep_warm_cache_zero_jobs(self, tmp_path, capsys, monkeypatch):
        cache_dir = tmp_path / "cache"
        argv = [
            "sweep", "cycle",
            "--sizes", "5", "6",
            "--r-values", "2",
            "--cache-dir", str(cache_dir),
        ]
        assert cli_main(argv) == 0
        out_cold = capsys.readouterr().out
        assert "4 executed, 0 cached" in out_cold

        calls = []
        real_execute = registry.execute_job
        monkeypatch.setattr(
            registry, "execute_job", lambda spec: calls.append(spec) or real_execute(spec)
        )
        assert cli_main(argv) == 0
        out_warm = capsys.readouterr().out
        assert "0 executed, 4 cached" in out_warm
        assert calls == [], "warm maxmin-lp sweep re-run must perform zero solver calls"

    def test_cli_sweep_parallel_full_table(self, capsys):
        assert cli_main(
            ["sweep", "cycle", "--sizes", "5", "--r-values", "2", "--jobs", "2", "--full-table"]
        ) == 0
        out = capsys.readouterr().out
        assert "worst-case summary: cycle" in out
        assert "local-R2" in out and "size" in out


class TestBatchedDispatch:
    """dispatch="batched" must be observationally identical to per-job."""

    def test_records_identical_to_per_job(self):
        instances = small_family()
        per_job = run_batch(
            ratio_sweep_batch(instances, R_values=(2, 3), include_optimum=True)
        )
        batched = run_batch(
            ratio_sweep_batch(instances, R_values=(2, 3), include_optimum=True),
            dispatch="batched",
        )
        assert batched.records == per_job.records

    def test_batched_dispatch_fills_and_reads_cache(self, tmp_path):
        instances = small_family()
        cache = ResultCache(tmp_path / "cache")
        cold = run_batch(
            ratio_sweep_batch(instances, R_values=(2,)), cache=cache, dispatch="batched"
        )
        assert cold.executed_jobs > 0 and cold.cached_jobs == 0
        warm = run_batch(
            ratio_sweep_batch(instances, R_values=(2,)), cache=cache, dispatch="batched"
        )
        assert warm.executed_jobs == 0
        assert warm.records == cold.records

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(EngineError):
            run_batch(BatchSpec(), dispatch="sideways")

    def test_batched_dispatch_rejects_process_fanout(self):
        with pytest.raises(EngineError):
            run_batch(BatchSpec(), dispatch="batched", jobs=4)
        with pytest.raises(EngineError):
            run_batch(BatchSpec(), dispatch="batched", executor=SerialExecutor())

    def test_cli_sweep_batched_with_jobs_errors(self, capsys):
        code = cli_main(
            ["sweep", "cycle", "--sizes", "5", "--dispatch", "batched", "--jobs", "2"]
        )
        assert code == 2
        assert "in-process" in capsys.readouterr().err

    def test_transform_backend_is_part_of_cache_key(self):
        instance = small_family()[0]
        jobs_auto = make_jobs_for_instance(instance, R_values=(3,), include_safe=False)
        jobs_ref = make_jobs_for_instance(
            instance, R_values=(3,), include_safe=False, transform_backend="reference"
        )
        version = registry.solver_version("local")
        assert jobs_auto[0].cache_key(version) != jobs_ref[0].cache_key(version)

    def test_execute_jobs_batched_mixed_algorithms(self):
        instance = small_family()[0]
        specs = make_jobs_for_instance(
            instance, R_values=(2, 3), include_safe=True, include_optimum=True
        )
        batched = registry.execute_jobs_batched(specs)
        per_job = [registry.execute_job(spec) for spec in specs]
        assert batched == per_job
