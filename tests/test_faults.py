"""Fault-injection harness and resilient-engine contracts.

The contracts, in decreasing order of importance:

* **Chaos equivalence** — a seeded sweep that suffers a worker crash, a
  transient solver error and a corrupted cache entry produces records
  bitwise-identical to the fault-free run, with the recovery counters
  (``engine.retries`` / ``engine.redispatches`` / ``cache.corrupt``)
  proving the faults actually fired.
* **Containment** — a poison job (crashes every worker it touches) becomes
  a structured failure; its sibling jobs still complete.
* **Resumability** — ``run_batch(resume_from=...)`` after a partial run
  re-executes only the unfinished jobs (spy-counted: zero solver calls for
  journaled work).
* **Cache integrity** — truncated or bit-flipped entries are quarantined
  and recomputed, never served.
* **Runtime guards** — non-finite values on the vectorized wire raise with
  round/agent attribution; injected message drops are deterministic.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.distributed import MessagePlane, RunResult, SynchronousRuntime, require_agent_outputs
from repro.distributed import safe_agents as safe_agents_mod
from repro.engine import (
    BatchJournal,
    BatchSpec,
    ParallelExecutor,
    ResultCache,
    RetryPolicy,
    SerialExecutor,
    ratio_sweep_batch,
    registry,
    run_batch,
)
from repro.engine.executors import Executor
from repro.exceptions import EngineError, FaultInjectionError, SimulationError
from repro.faults import CacheFault, FaultPlan, JobFault, MessageFault, crash, hang, transient
from repro.generators import cycle_instance, random_special_form_instance


@pytest.fixture(autouse=True)
def _obs_clean():
    yield
    obs.configure(enabled=False)
    obs.reset()


def small_instances():
    return [
        random_special_form_instance(8 + 2 * i, delta_K=3, constraint_rounds=1, seed=i)
        for i in range(3)
    ]


def small_batch(instances=None):
    return ratio_sweep_batch(instances or small_instances(), R_values=(2,), include_safe=True)


# ----------------------------------------------------------------------
# Fault plans: validation and determinism
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_job_fault_validation(self):
        with pytest.raises(EngineError):
            JobFault(kind="meteor-strike")
        with pytest.raises(EngineError):
            JobFault(kind="hang", hang_s=0.0)

    def test_cache_fault_validation(self):
        with pytest.raises(EngineError):
            CacheFault(mode="scramble")
        with pytest.raises(EngineError):
            CacheFault(times=0)

    def test_message_fault_validation(self):
        with pytest.raises(EngineError):
            MessageFault(round_number=0)
        with pytest.raises(EngineError):
            MessageFault(round_number=1, fraction=1.5)

    def test_job_fault_matching(self):
        fault = transient(algorithm="safe", digest_prefix="ab", params=(("backend", "vectorized"),))
        assert fault.matches("safe", "abc123", {"backend": "vectorized", "R": 2})
        assert not fault.matches("local", "abc123", {"backend": "vectorized"})
        assert not fault.matches("safe", "zzz", {"backend": "vectorized"})
        assert not fault.matches("safe", "abc123", {"backend": "reference"})
        assert fault.fires_on(0) and not fault.fires_on(1)
        assert transient(attempts=None).fires_on(41)  # poison: every attempt

    def test_dropped_slots_deterministic_across_injectors(self):
        plan = FaultPlan(seed=5, message_faults=(MessageFault(round_number=2, fraction=0.4),))
        a = plan.injector().dropped_slots(2, 50)
        b = plan.injector().dropped_slots(2, 50)
        assert a == b and a  # same sample from the same (seed, round)
        assert plan.injector().dropped_slots(1, 50) is None  # other rounds untouched

    def test_plan_is_picklable_and_describes_itself(self):
        import pickle

        plan = FaultPlan(seed=1, job_faults=(crash(), hang(0.1), transient()))
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert "jobs=3" in plan.describe()


# ----------------------------------------------------------------------
# The headline acceptance test: chaos equivalence
# ----------------------------------------------------------------------


class TestChaosEquivalence:
    def test_faulted_sweep_matches_fault_free_run_bitwise(self, tmp_path):
        instances = small_instances()
        batch = small_batch(instances)
        baseline = run_batch(batch)
        base_json = json.dumps(baseline.records)

        # One worker crash (safe job of instance 0), one transient solver
        # error (safe job of instance 1), one corrupted cache entry.
        digest0 = batch.jobs[1].instance_digest[:12]
        digest1 = batch.jobs[3].instance_digest[:12]
        plan = FaultPlan(
            seed=7,
            job_faults=(
                crash(algorithm="safe", digest_prefix=digest0, attempts=(0,)),
                transient(algorithm="safe", digest_prefix=digest1, attempts=(0,)),
            ),
            cache_faults=(CacheFault(mode="truncate", times=1),),
        )

        obs.configure(enabled=True)
        mark = obs.counters_mark()
        chaos = run_batch(
            batch,
            executor=ParallelExecutor(max_workers=2, chunk_size=1),
            cache=ResultCache(tmp_path / "cache", faults=plan),
            faults=plan,
            retry=RetryPolicy(max_retries=2, backoff_base_s=0.0),
        )
        counters = obs.counters_since(mark)
        assert json.dumps(chaos.records) == base_json
        assert counters.get("engine.retries", 0) > 0
        assert counters.get("engine.redispatches", 0) > 0
        assert counters.get("faults.transient", 0) > 0

        # The corrupted entry is caught on the next run: quarantined,
        # recomputed, and the records still match the fault-free baseline.
        mark = obs.counters_mark()
        verify_cache = ResultCache(tmp_path / "cache")
        second = run_batch(batch, cache=verify_cache)
        counters = obs.counters_since(mark)
        assert json.dumps(second.records) == base_json
        assert verify_cache.corrupt == 1
        assert counters.get("cache.corrupt", 0) == 1
        assert len(list((tmp_path / "cache" / "corrupt").glob("*.json"))) == 1


# ----------------------------------------------------------------------
# Retries, timeouts, degradation (serial path)
# ----------------------------------------------------------------------


class TestResilientExecution:
    def test_transient_fault_is_retried_to_success(self):
        batch = small_batch()
        baseline = run_batch(batch)
        plan = FaultPlan(job_faults=(transient(algorithm="safe", attempts=(0, 1)),))
        result = run_batch(
            batch, faults=plan, retry=RetryPolicy(max_retries=2, backoff_base_s=0.0)
        )
        assert result.records == baseline.records
        safe_results = [r for r in result.results if r.spec.algorithm == "safe"]
        assert all(r.attempts == 3 for r in safe_results)
        assert result.metrics["retries"] == 6  # 2 recoveries x 3 safe jobs

    def test_hang_blows_deadline_then_retry_succeeds(self):
        batch = small_batch(small_instances()[:1])
        baseline = run_batch(batch)
        plan = FaultPlan(job_faults=(hang(5.0, algorithm="safe", attempts=(0,)),))
        result = run_batch(
            batch,
            faults=plan,
            retry=RetryPolicy(max_retries=1, backoff_base_s=0.0, timeout_s=0.2),
        )
        assert result.records == baseline.records
        (safe_result,) = [r for r in result.results if r.spec.algorithm == "safe"]
        assert safe_result.attempts == 2
        assert safe_result.metrics["timeouts"] == 1
        assert result.metrics["timeouts"] == 1

    def test_exhausted_retries_raise_by_default(self):
        batch = small_batch(small_instances()[:1])
        plan = FaultPlan(job_faults=(transient(algorithm="safe", attempts=None),))
        with pytest.raises(FaultInjectionError):
            run_batch(batch, faults=plan, retry=RetryPolicy(max_retries=1, backoff_base_s=0.0))

    def test_exhausted_retries_recorded_with_on_error_record(self):
        batch = small_batch()
        baseline = run_batch(batch)
        plan = FaultPlan(job_faults=(transient(algorithm="safe", attempts=None),))
        result = run_batch(
            batch,
            faults=plan,
            retry=RetryPolicy(max_retries=1, backoff_base_s=0.0, degrade_backend=False),
            on_error="record",
        )
        failed = result.failed_jobs
        assert len(failed) == 3  # every safe job
        for job in failed:
            assert job.error["type"] == "FaultInjectionError"
            assert job.records == [] and job.attempts == 2
        survivors = [rec for r in result.results if not r.failed for rec in r.records]
        expected = [
            rec
            for r in baseline.results
            if r.spec.algorithm != "safe"
            for rec in r.records
        ]
        assert survivors == expected
        assert result.metrics["failed"] == 3

    def test_degradation_falls_back_to_reference_backend(self, tmp_path):
        batch = small_batch(small_instances()[:1])
        baseline = run_batch(batch)
        # The fault targets the vectorized backend on every attempt, so only
        # the downgraded (reference) attempt can succeed.
        plan = FaultPlan(
            job_faults=(
                transient(algorithm="safe", params=(("backend", "vectorized"),), attempts=None),
            )
        )
        cache = ResultCache(tmp_path / "cache")
        result = run_batch(
            batch,
            faults=plan,
            cache=cache,
            retry=RetryPolicy(max_retries=1, backoff_base_s=0.0, degrade_backend=True),
        )
        # The safe baseline's backends agree exactly, so even the downgraded
        # record is bitwise-identical to the fault-free run.
        assert result.records == baseline.records
        (safe_result,) = [r for r in result.results if r.spec.algorithm == "safe"]
        assert safe_result.metrics["downgraded"] is True
        assert result.metrics["downgrades"] == 1
        # Downgraded results are never cached: re-running against the same
        # cache recomputes exactly the downgraded job.
        rerun = run_batch(batch, cache=ResultCache(tmp_path / "cache"))
        assert rerun.executed_jobs == 1

    def test_retry_policy_validation_and_deterministic_jitter(self):
        with pytest.raises(EngineError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(EngineError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(EngineError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(EngineError):
            RetryPolicy(timeout_s=0.0)
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, jitter=0.2)
        delays = [policy.delay_s("digest", attempt) for attempt in range(3)]
        assert delays == [policy.delay_s("digest", attempt) for attempt in range(3)]
        for attempt, delay in enumerate(delays):
            base = 0.1 * 2.0 ** attempt
            assert base * 0.8 <= delay <= base * 1.2
        assert policy.delay_s("digest", 0) != policy.delay_s("other", 0)


# ----------------------------------------------------------------------
# Worker-crash recovery and poison quarantine (parallel path)
# ----------------------------------------------------------------------


class TestCrashRecovery:
    def test_crashed_chunk_is_redispatched(self):
        batch = small_batch()
        baseline = run_batch(batch)
        plan = FaultPlan(job_faults=(crash(algorithm="safe", attempts=(0,)),))
        obs.configure(enabled=True)
        mark = obs.counters_mark()
        result = run_batch(
            batch, executor=ParallelExecutor(max_workers=2, chunk_size=2), faults=plan
        )
        counters = obs.counters_since(mark)
        assert json.dumps(result.records) == json.dumps(baseline.records)
        assert counters.get("engine.redispatches", 0) > 0
        assert result.metrics["redispatches"] > 0

    def test_poison_job_is_quarantined_and_siblings_complete(self):
        batch = small_batch()
        baseline = run_batch(batch)
        poison_digest = batch.jobs[1].instance_digest[:12]
        plan = FaultPlan(
            job_faults=(crash(algorithm="safe", digest_prefix=poison_digest, attempts=None),)
        )
        obs.configure(enabled=True)
        mark = obs.counters_mark()
        result = run_batch(
            batch,
            executor=ParallelExecutor(max_workers=2, chunk_size=1),
            faults=plan,
            on_error="record",
        )
        counters = obs.counters_since(mark)
        (failed,) = result.failed_jobs
        assert failed.error["poison"] is True
        assert failed.error["type"] == "PoisonJobError"
        assert failed.spec.algorithm == "safe"
        assert failed.spec.instance_digest.startswith(poison_digest)
        assert counters.get("engine.poison_jobs", 0) == 1
        survivors = [rec for r in result.results if not r.failed for rec in r.records]
        expected = [
            rec for r in baseline.results if r.spec != failed.spec for rec in r.records
        ]
        assert survivors == expected

    def test_serial_executor_has_no_expendable_worker(self):
        # A crash fault in a serial executor surfaces as FaultInjectionError
        # (documented degradation) rather than killing the test process.
        batch = small_batch(small_instances()[:1])
        plan = FaultPlan(job_faults=(crash(algorithm="safe", attempts=None),))
        result = run_batch(batch, faults=plan, on_error="record")
        (failed,) = result.failed_jobs
        assert failed.error["type"] == "FaultInjectionError"


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------


class TestJournalResume:
    def test_resume_skips_journaled_jobs(self, tmp_path, monkeypatch):
        journal_path = tmp_path / "sweep.jsonl"
        batch = small_batch()
        baseline = run_batch(batch)

        # Simulate a killed sweep: only the first four jobs completed.
        partial = BatchSpec(jobs=batch.jobs[:4], owners=batch.owners[:4])
        run_batch(partial, journal=journal_path)

        calls = []
        real_execute = registry.execute_job
        monkeypatch.setattr(
            registry, "execute_job", lambda spec: calls.append(spec) or real_execute(spec)
        )
        resumed = run_batch(batch, resume_from=journal_path)
        assert resumed.records == baseline.records
        assert resumed.journal_jobs == 4 and resumed.executed_jobs == 2
        assert len(calls) == 2  # zero solver calls for the journaled jobs
        journaled = [r for r in resumed.results if r.from_journal]
        assert len(journaled) == 4 and all(not r.from_cache for r in journaled)

    def test_journal_tolerates_torn_tail(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        batch = small_batch()
        run_batch(batch, journal=journal_path)
        # A kill -9 mid-append leaves a torn final line.
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "deadbeef", "records": [{"tr')
        journal = BatchJournal(journal_path)
        assert len(journal) == len(batch.jobs)  # the tear is ignored, not fatal
        journal.close()
        resumed = run_batch(batch, resume_from=journal_path)
        assert resumed.executed_jobs == 0 and resumed.journal_jobs == len(batch.jobs)

    def test_journal_mid_file_corruption_keeps_clean_prefix_and_compacts(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        batch = small_batch()
        run_batch(batch, journal=journal_path)
        lines = journal_path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1 + len(batch.jobs)  # header + one line per job
        # Corrupt an entry in the *middle* of the file (disk damage), not
        # the tail: line 1 is the header, line 2 the first entry.
        lines[2] = lines[2][: len(lines[2]) // 2] + "\x00garbage"
        journal_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        journal = BatchJournal(journal_path)
        # Only the clean prefix (the entry before the corruption) survives;
        # everything after the damaged line is untrustworthy.
        assert len(journal) == 1
        journal.close()

        # The file was compacted: reloadable, header first, no corrupt bytes.
        compacted = journal_path.read_text(encoding="utf-8").splitlines()
        assert len(compacted) == 2
        assert all(json.loads(line) for line in compacted)

        # The regression this guards: entries appended *after* a corruption
        # must be durable on the next load (pre-compaction they were
        # silently dropped forever).
        journal = BatchJournal(journal_path)
        journal.record("appended-after-corruption", [{"utility": 1.0}])
        journal.close()
        reloaded = BatchJournal(journal_path)
        assert len(reloaded) == 2
        assert reloaded.completed("appended-after-corruption") == [{"utility": 1.0}]
        reloaded.close()

        # Resume still works end to end from the compacted journal.
        resumed = run_batch(batch, resume_from=journal_path)
        assert resumed.journal_jobs == 1
        assert resumed.executed_jobs == len(batch.jobs) - 1

    def test_journal_torn_tail_is_compacted_for_durable_appends(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        batch = small_batch()
        run_batch(batch, journal=journal_path)
        # A kill -9 mid-append leaves a torn final line with no newline;
        # without compaction the next append would glue onto it and both
        # lines would be lost on the load after that.
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "deadbeef", "records": [{"tr')
        journal = BatchJournal(journal_path)
        assert len(journal) == len(batch.jobs)
        journal.record("post-tear", [{"utility": 2.0}])
        journal.close()
        reloaded = BatchJournal(journal_path)
        assert reloaded.completed("post-tear") == [{"utility": 2.0}]
        assert len(reloaded) == len(batch.jobs) + 1
        reloaded.close()

    def test_journal_version_mismatch_raises(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        journal_path.write_text(
            json.dumps({"format": "repro.engine-journal", "version": 99}) + "\n"
        )
        with pytest.raises(EngineError, match="version"):
            BatchJournal(journal_path)

    def test_journal_and_resume_from_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(EngineError, match="same mechanism"):
            run_batch(
                small_batch(),
                journal=tmp_path / "a.jsonl",
                resume_from=tmp_path / "b.jsonl",
            )


# ----------------------------------------------------------------------
# Cache integrity
# ----------------------------------------------------------------------


class TestCacheIntegrity:
    KEY = "ab" * 32

    def test_missing_entry_is_plain_miss_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(self.KEY) is None
        assert cache.misses == 1 and cache.corrupt == 0
        assert not (tmp_path / "cache" / "corrupt").exists()

    def test_truncated_entry_is_quarantined_and_heals(self, tmp_path):
        plan = FaultPlan(cache_faults=(CacheFault(mode="truncate", times=1),))
        writer = ResultCache(tmp_path / "cache", faults=plan)
        writer.put(self.KEY, [{"x": 1}])

        reader = ResultCache(tmp_path / "cache")
        obs.configure(enabled=True)
        mark = obs.counters_mark()
        assert reader.get(self.KEY) is None
        assert obs.counters_since(mark).get("cache.corrupt", 0) == 1
        assert reader.corrupt == 1 and reader.misses == 1
        assert (tmp_path / "cache" / "corrupt" / f"{self.KEY}.json").is_file()
        assert self.KEY not in reader
        # Self-heal: a clean rewrite hits again.
        reader.put(self.KEY, [{"x": 1}])
        assert reader.get(self.KEY) == [{"x": 1}]

    def test_bitflip_is_caught_by_checksum(self, tmp_path):
        plan = FaultPlan(seed=11, cache_faults=(CacheFault(mode="bitflip", times=1),))
        writer = ResultCache(tmp_path / "cache", faults=plan)
        writer.put(self.KEY, [{"utility": 0.25, "algorithm": "safe-degree"}])
        reader = ResultCache(tmp_path / "cache")
        assert reader.get(self.KEY) is None  # parseable or not, never served
        assert reader.corrupt == 1

    def test_stats_count_corruptions_and_exclude_quarantine(self, tmp_path):
        plan = FaultPlan(cache_faults=(CacheFault(mode="truncate", times=1),))
        cache = ResultCache(tmp_path / "cache", faults=plan)
        cache.put(self.KEY, [{"x": 1}])  # corrupted on disk
        cache.put("cd" * 32, [{"y": 2}])  # clean
        reader = ResultCache(tmp_path / "cache")
        assert reader.get(self.KEY) is None
        assert reader.get("cd" * 32) == [{"y": 2}]
        stats = reader.stats()
        assert stats["corrupt"] == 1 and stats["hits"] == 1
        assert stats["entries"] == 1  # the quarantined file is not an entry

    def test_old_version_entries_read_as_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = tmp_path / "cache" / self.KEY[:2] / f"{self.KEY}.json"
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps(
                {
                    "format": "repro.engine-result",
                    "version": 1,
                    "key": self.KEY,
                    "records": [{"x": 1}],
                }
            )
        )
        assert cache.get(self.KEY) is None
        assert cache.corrupt == 0  # stale format, not corruption


# ----------------------------------------------------------------------
# Runtime guards (satellites)
# ----------------------------------------------------------------------


class _NaNAgentProtocol:
    """Minimal protocol: agent 0 sends one non-finite value in round 2."""

    def begin(self, plane):
        pass

    def compose(self, round_number, inbox_mask, inbox_values, plane):
        mask = np.zeros(plane.num_slots, dtype=bool)
        values = np.zeros(plane.num_slots)
        if round_number == 2:
            slot = int(plane.agent_indptr[0])  # agent 0's first port
            mask[slot] = True
            values[slot] = np.inf
        return mask, values

    def outputs(self, plane):
        return np.zeros(len(plane.comp.agents))


class TestRuntimeFaults:
    def test_nonfinite_message_raises_with_round_and_agents(self):
        instance = cycle_instance(6, coefficient_range=(0.5, 2.0), seed=3)
        plane = MessagePlane(instance)
        runtime = SynchronousRuntime(plane=plane)
        obs.configure(enabled=True)
        mark = obs.counters_mark()
        with pytest.raises(SimulationError, match=r"round 2.*NaN/inf") as excinfo:
            runtime.run_vectorized(_NaNAgentProtocol(), rounds=3)
        assert repr(plane.comp.agents[0]) in str(excinfo.value)
        assert obs.counters_since(mark).get("runtime.nonfinite_messages", 0) == 1

    def test_message_drop_is_visible_to_the_protocol(self):
        instance = cycle_instance(6, coefficient_range=(0.5, 2.0), seed=3)
        plan = FaultPlan(seed=1, message_faults=(MessageFault(round_number=1, fraction=1.0),))
        runtime = SynchronousRuntime(plane=MessagePlane(instance), faults=plan)
        obs.configure(enabled=True)
        mark = obs.counters_mark()
        # The safe protocol notices the missing inbox slots and refuses to
        # fabricate state — exactly the failure a lossy link should surface.
        with pytest.raises(SimulationError):
            runtime.run_vectorized(
                safe_agents_mod.VectorizedSafeProtocol(),
                rounds=safe_agents_mod.SAFE_ALGORITHM_ROUNDS,
            )
        assert obs.counters_since(mark).get("faults.dropped_messages", 0) > 0

    def test_fault_free_plan_leaves_run_untouched(self):
        instance = cycle_instance(6, coefficient_range=(0.5, 2.0), seed=3)
        base = SynchronousRuntime(plane=MessagePlane(instance)).run_vectorized(
            safe_agents_mod.VectorizedSafeProtocol(),
            rounds=safe_agents_mod.SAFE_ALGORITHM_ROUNDS,
        )
        plan = FaultPlan(seed=1, message_faults=(MessageFault(round_number=99, fraction=1.0),))
        faulted = SynchronousRuntime(plane=MessagePlane(instance), faults=plan).run_vectorized(
            safe_agents_mod.VectorizedSafeProtocol(),
            rounds=safe_agents_mod.SAFE_ALGORITHM_ROUNDS,
        )
        assert faulted.outputs == base.outputs
        assert faulted.total_messages == base.total_messages

    def test_require_agent_outputs_partially_missing(self):
        instance = cycle_instance(5, seed=0)
        full = {v: 1.0 for v in instance.agents}
        result = RunResult(
            outputs=dict(list(full.items())[:-2]),
            rounds=1,
            total_messages=0,
            total_bytes=0,
            per_round=[],
            node_outputs={},
        )
        with pytest.raises(SimulationError, match="2 agent"):
            require_agent_outputs(instance, result)
        result_full = RunResult(
            outputs=full, rounds=1, total_messages=0, total_bytes=0, per_round=[], node_outputs={}
        )
        require_agent_outputs(instance, result_full)  # no raise


# ----------------------------------------------------------------------
# Validation edges (satellites)
# ----------------------------------------------------------------------


class TestValidation:
    def test_executor_configuration_negative_values(self):
        with pytest.raises(EngineError, match="max_workers"):
            ParallelExecutor(max_workers=-1)
        with pytest.raises(EngineError, match="chunk_size"):
            ParallelExecutor(chunk_size=-3)

    def test_classic_executor_rejects_fault_plans(self):
        class Classic(Executor):
            def map_jobs(self, specs):
                return [registry.execute_job(spec) for spec in specs]

        with pytest.raises(EngineError, match="fault"):
            run_batch(small_batch(), executor=Classic(), faults=FaultPlan())

    def test_run_batch_rejects_unknown_on_error(self):
        with pytest.raises(EngineError, match="on_error"):
            run_batch(small_batch(), on_error="explode")

    def test_batched_dispatch_rejects_resilience_knobs(self):
        with pytest.raises(EngineError, match="batched"):
            run_batch(small_batch(), dispatch="batched", retry=RetryPolicy())
        with pytest.raises(EngineError, match="batched"):
            run_batch(small_batch(), dispatch="batched", faults=FaultPlan())


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestCLI:
    def test_sweep_resume_from_journal(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "sweep.jsonl"
        args = [
            "sweep",
            "cycle",
            "--sizes",
            "6",
            "8",
            "--r-values",
            "2",
            "--retries",
            "1",
            "--resume-from",
            str(journal),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "4 executed" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 executed" in second and "4 journaled" in second

    def test_sweep_exits_nonzero_when_jobs_fail(self, capsys, monkeypatch):
        """A sweep that records failed jobs must not exit 0 — partial results
        are not full success, and CI gates on the exit status."""
        from repro.cli import main

        def explode(spec):
            raise RuntimeError(f"injected failure for {spec.algorithm}")

        monkeypatch.setattr(registry, "execute_job", explode)
        args = [
            "sweep",
            "cycle",
            "--sizes",
            "6",
            "--r-values",
            "2",
            "--no-safe",
            "--retries",
            "0",
        ]
        assert main(args) == 1
        captured = capsys.readouterr()
        assert "failed jobs" in captured.err
        assert "RuntimeError" in captured.err
        assert "injected failure" in captured.err

    def test_sweep_partial_failure_also_exits_nonzero(self, capsys, monkeypatch):
        from repro.cli import main

        real_execute = registry.execute_job

        def flaky(spec):
            if dict(spec.params).get("R") == 3:
                raise RuntimeError("R=3 jobs poisoned")
            return real_execute(spec)

        monkeypatch.setattr(registry, "execute_job", flaky)
        args = [
            "sweep",
            "cycle",
            "--sizes",
            "6",
            "--r-values",
            "2",
            "3",
            "--no-safe",
            "--retries",
            "0",
        ]
        assert main(args) == 1
        captured = capsys.readouterr()
        # The surviving records still print before the failure report.
        assert "worst-case summary" in captured.out
        assert "failed jobs (1)" in captured.err
