"""Special cases called out in paper §1.3 and robustness edge cases.

Prior work handled two restricted families — *bipartite* max-min LPs (every
agent in exactly one constraint and one objective) and {0,1}-coefficient
instances — and the trivial cases ΔI = 1 / ΔK = 1.  The general algorithm of
the reproduced paper must of course cover all of them; these tests pin that
down, together with protocol-level error paths of the distributed runtime.
"""

from __future__ import annotations

import math

import pytest

from repro.algo.general_solver import LocalMaxMinSolver
from repro.algo.local_solver import SpecialFormLocalSolver
from repro.core.builder import InstanceBuilder
from repro.core.lp import solve_maxmin_lp
from repro.distributed import DistributedLocalSolver, Message, build_network, SynchronousRuntime
from repro.distributed.agents import MaxMinAgentNode, PhaseSchedule
from repro.exceptions import SimulationError
from repro.generators import cycle_instance, random_instance, regular_general_instance
from repro.transforms import to_special_form

from conftest import assert_feasible, assert_within_guarantee


class TestBipartiteMaxMinLPs:
    """§1.3: each column of A and of C has a single non-zero entry."""

    def build(self, seed: int = 0):
        # Cycle instances are bipartite max-min LPs by construction.
        instance = cycle_instance(6, coefficient_range=(0.5, 2.0), seed=seed)
        assert instance.is_bipartite_maxmin()
        return instance

    @pytest.mark.parametrize("R", [2, 3])
    def test_algorithm_covers_bipartite_case(self, R):
        instance = self.build()
        result = LocalMaxMinSolver(R=R).solve(instance)
        assert_feasible(result.solution)
        # Prior work achieved ΔI(1−1/ΔK)+ε on this case; the general
        # algorithm must match that guarantee here (ΔI = ΔK = 2 → 1 + ε).
        assert result.certificate.guaranteed_ratio == pytest.approx(
            2 * (1 - 1 / 2) * (1 + 1 / (R - 1))
        )
        assert_within_guarantee(instance, result.solution, result.certificate.guaranteed_ratio)

    def test_zero_one_bipartite_case(self):
        instance = cycle_instance(8)  # unit coefficients
        assert instance.has_zero_one_coefficients() and instance.is_bipartite_maxmin()
        result = LocalMaxMinSolver(R=3).solve(instance)
        # The symmetric optimum (all 1/2) is recovered exactly.
        assert result.utility() == pytest.approx(1.0, abs=1e-6)


class TestZeroOneCoefficients:
    """§1.3 / [7]: the inapproximability already holds for {0,1} coefficients."""

    @pytest.mark.parametrize("delta_K", [2, 3])
    def test_zero_one_regular_instances(self, delta_K):
        instance = regular_general_instance(12, 3, delta_K, seed=1)
        assert instance.has_zero_one_coefficients()
        result = LocalMaxMinSolver(R=3).solve(instance)
        assert_feasible(result.solution)
        assert_within_guarantee(instance, result.solution, result.certificate.guaranteed_ratio)

    def test_guarantee_is_combinatorial(self):
        """The threshold depends only on ΔI, ΔK — not on the coefficients."""
        unit = cycle_instance(6)
        weighted = cycle_instance(6, coefficient_range=(0.25, 4.0), seed=9)
        r_unit = LocalMaxMinSolver(R=4).solve(unit)
        r_weighted = LocalMaxMinSolver(R=4).solve(weighted)
        assert r_unit.certificate.guaranteed_ratio == pytest.approx(
            r_weighted.certificate.guaranteed_ratio
        )


class TestTrivialDegreeCases:
    """§1: ΔI = 1 or ΔK = 1 can be solved optimally."""

    def test_delta_I_1_exactly_optimal(self):
        builder = InstanceBuilder()
        for j, coeff in enumerate([1.0, 2.0, 4.0]):
            builder.add_constraint_term(f"i{j}", f"v{j}", coeff)
        builder.add_covering_objective("k0", {"v0": 1.0, "v1": 1.0})
        builder.add_covering_objective("k1", {"v1": 1.0, "v2": 3.0})
        instance = builder.build()
        assert instance.delta_I == 1
        result = LocalMaxMinSolver(R=2).solve(instance)
        assert result.status == "trivial-delta-I-1"
        assert result.utility() == pytest.approx(solve_maxmin_lp(instance).optimum)

    def test_delta_K_1_instances_still_covered(self):
        # Objectives of degree one are handled through §4.5; the guarantee is
        # computed with ΔK clamped to 2.
        builder = InstanceBuilder()
        builder.add_packing_constraint("i0", {"v0": 1.0, "v1": 1.0})
        builder.add_packing_constraint("i1", {"v1": 1.0, "v2": 2.0})
        builder.add_covering_objective("k0", {"v0": 1.0})
        builder.add_covering_objective("k1", {"v1": 1.0})
        builder.add_covering_objective("k2", {"v2": 1.0})
        instance = builder.build()
        assert instance.delta_K == 1
        result = LocalMaxMinSolver(R=3).solve(instance)
        assert_feasible(result.solution)
        assert_within_guarantee(instance, result.solution, result.certificate.guaranteed_ratio)


class TestDistributedErrorPaths:
    def test_agent_requires_unique_objective_port(self, general_instance):
        # Building the distributed protocol on a non-special-form instance is
        # rejected by the solver; driving an agent node manually on such an
        # instance fails loudly rather than silently mis-computing.
        network = build_network(general_instance)
        schedule = PhaseSchedule(2)
        agent_node_id = network.agent_nodes()[2]  # v2 has two objectives
        node = MaxMinAgentNode(agent_node_id, network.local_input(agent_node_id), schedule)
        with pytest.raises(SimulationError):
            node._objective_port()

    def test_agent_detects_missing_protocol_messages(self, unit_cycle):
        network = build_network(unit_cycle)
        schedule = PhaseSchedule(2)
        agent_id = network.agent_nodes()[0]
        node = MaxMinAgentNode(agent_id, network.local_input(agent_id), schedule)
        # Fast-forward the node to the round where it expects a sibling sum
        # and hand it an empty inbox.
        node.s_v = 1.0
        node.g_plus[0] = 1.0
        with pytest.raises(SimulationError):
            node.compose(schedule.g_start + 2, {})

    def test_runtime_rejects_too_large_round_budget_gracefully(self, unit_cycle):
        # Running more rounds than the protocol needs is harmless: the extra
        # rounds are silent and outputs are unchanged.
        instance = unit_cycle
        solver = DistributedLocalSolver(R=2)
        expected, _ = solver.solve(instance)
        network = build_network(instance)
        runtime = SynchronousRuntime(network)
        from repro.distributed.agents import maxmin_node_factory

        result = runtime.run(maxmin_node_factory(PhaseSchedule(2)), rounds=PhaseSchedule(2).total_rounds + 5)
        for v in instance.agents:
            assert result.outputs[v] == pytest.approx(expected[v], abs=1e-12)

    def test_message_repr_and_phase(self):
        message = Message({"x": 1}, phase="demo")
        assert "demo" in repr(message)
