"""Tests for the ablation variants: the paper's design choices are load-bearing."""

from __future__ import annotations

import math

import pytest

from repro.algo.ablations import ABLATION_VARIANTS, ablation_report, solve_ablation
from repro.algo.local_solver import SpecialFormLocalSolver
from repro.exceptions import NotSpecialFormError
from repro.generators import cycle_instance, objective_ring_instance, random_special_form_instance

from conftest import assert_feasible


def heterogeneous_cycle():
    return cycle_instance(9, coefficient_range=(0.3, 3.0), seed=5)


class TestSolveAblation:
    def test_full_variant_matches_reference_solver(self):
        instance = heterogeneous_cycle()
        for R in (2, 3):
            reference = SpecialFormLocalSolver(R=R).solve(instance).solution
            ablated = solve_ablation(instance, R, "full")
            for v in instance.agents:
                assert ablated[v] == pytest.approx(reference[v], abs=1e-12)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            solve_ablation(heterogeneous_cycle(), 3, "bogus")

    def test_requires_special_form(self, general_instance):
        with pytest.raises(NotSpecialFormError):
            solve_ablation(general_instance, 3, "full")

    def test_no_smoothing_breaks_feasibility_for_r_ge_1(self):
        """Dropping the smoothing step makes the output infeasible (R = 3)."""
        instance = heterogeneous_cycle()
        assert solve_ablation(instance, 3, "full").is_feasible()
        ablated = solve_ablation(instance, 3, "no_smoothing")
        report = ablated.check_feasibility()
        assert not report.feasible
        assert report.max_violation > 1e-3

    def test_down_only_breaks_feasibility(self):
        """Skipping the up/down averaging (down view only) violates constraints."""
        instance = random_special_form_instance(16, delta_K=3, constraint_rounds=2, seed=3)
        ablated = solve_ablation(instance, 3, "down_only")
        assert not ablated.is_feasible()

    def test_up_only_is_feasible_but_loses_the_guarantee(self):
        """The up view alone is dominated by the full output (feasible) but
        can have utility arbitrarily close to zero."""
        instance = heterogeneous_cycle()
        full = solve_ablation(instance, 3, "full")
        up_only = solve_ablation(instance, 3, "up_only")
        assert_feasible(up_only)
        for v in instance.agents:
            assert up_only[v] <= full[v] + 1e-12
        # The guarantee of the full algorithm would be 1.5; the ablation is
        # at least an order of magnitude worse on this instance.
        guarantee = 2 * (1 - 1 / instance.delta_K) * (1 + 1 / 2)
        from repro.core.lp import solve_maxmin_lp

        optimum = solve_maxmin_lp(instance).optimum
        assert optimum / full.utility() <= guarantee + 1e-9
        assert up_only.utility() < full.utility() / 10

    def test_r2_variants_collapse_to_full_on_symmetric_instances(self):
        # On the perfectly symmetric ring at R = 2 every variant that keeps
        # both recursion directions coincides with the full algorithm.
        instance = objective_ring_instance(4, 3)
        full = solve_ablation(instance, 2, "full")
        no_smooth = solve_ablation(instance, 2, "no_smoothing")
        for v in instance.agents:
            assert no_smooth[v] == pytest.approx(full[v], abs=1e-12)


class TestAblationReport:
    def test_report_shape_and_content(self):
        instances = {"cycle": heterogeneous_cycle(), "ring": objective_ring_instance(4, 3)}
        rows = ablation_report(instances, R_values=(2, 3), variants=ABLATION_VARIANTS)
        assert len(rows) == 2 * 2 * len(ABLATION_VARIANTS)
        # The full variant is feasible and within its guarantee on every row.
        for row in rows:
            if row["variant"] == "full":
                assert row["feasible"]
                guarantee = 2 * (1 - 1 / 3) * (1 + 1 / (row["R"] - 1))
                assert row["measured_ratio"] <= guarantee + 1e-7
        # At least one ablated row demonstrates an actual failure.
        assert any(not row["feasible"] for row in rows if row["variant"] != "full")

    def test_infinite_ratio_reported_for_zero_utility(self):
        rows = ablation_report({"cycle": heterogeneous_cycle()}, R_values=(2,), variants=("up_only",))
        assert all(math.isinf(row["measured_ratio"]) or row["measured_ratio"] > 0 for row in rows)
