"""Incremental re-solve: delta-edited compiles, confined kernels, dynamics.

The contracts pinned here:

* ``CompiledDelta.apply()`` produces an instance/compile **bitwise identical**
  (all thirteen CSR arrays, digest, hash) to declaring the edited instance
  from scratch — checked by hand-written cases and a hypothesis sweep over
  random edit scripts;
* ``IncrementalSolveState.apply_delta`` matches a from-scratch vectorized
  solve bit for bit on every family × R, and a locality spy confirms the
  kernels only touch the dirty r-ball;
* ``MessagePlane.updated`` equals a freshly built plane for both
  coefficient-only and structural deltas;
* ``DynamicNetwork`` streams churn with the verify oracle on, and the CLI
  ``dynamics`` command runs end to end.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.algo.kernels import agent_hop_balls
from repro.algo.local_solver import IncrementalSolveState, SpecialFormLocalSolver
from repro.cli import main
from repro.core.compiled import CompiledInstance
from repro.core.instance import MaxMinInstance
from repro.core.preprocess import preprocess
from repro.distributed.dynamics import (
    DynamicNetwork,
    changed_agent_positions,
    changed_sites,
    local_horizon_radius,
    random_churn_delta,
)
from repro.distributed.plane import MessagePlane
from repro.distributed.runtime import SynchronousRuntime
from repro.exceptions import SimulationError
from repro.generators import (
    cycle_instance,
    objective_ring_instance,
    random_special_form_instance,
)
from repro.generators.regular import regular_special_form_instance
from repro.io.serialization import instance_digest

@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test leaves tracing disabled and the counter buffer empty."""
    yield
    obs.configure(enabled=False)
    obs.reset()


COMPILED_ARRAYS = (
    "con_indptr",
    "con_indices",
    "con_coeff",
    "obj_indptr",
    "obj_indices",
    "obj_coeff",
    "cagents_indptr",
    "cagents_indices",
    "cagents_coeff",
    "oagents_indptr",
    "oagents_indices",
    "oagents_coeff",
    "capacity",
)


def assert_compiles_identical(a: CompiledInstance, b: CompiledInstance) -> None:
    """All thirteen derived arrays bitwise equal, with matching dtypes."""
    for attr in COMPILED_ARRAYS:
        left, right = getattr(a, attr), getattr(b, attr)
        assert left.dtype == right.dtype, attr
        assert np.array_equal(left, right), attr
    assert a.agents == b.agents
    assert a.constraints == b.constraints
    assert a.objectives == b.objectives


def assert_delta_matches_fresh(result, expected: MaxMinInstance) -> None:
    assert result.instance == expected
    assert hash(result.instance) == hash(expected)
    assert instance_digest(result.instance) == instance_digest(expected)
    assert_compiles_identical(result.compiled, expected.compiled())


# ----------------------------------------------------------------------
# MaxMinInstance.from_arrays / CompiledInstance.from_arrays
# ----------------------------------------------------------------------


class TestFromArrays:
    def test_round_trip_equals_declared_instance(self):
        inst = random_special_form_instance(30, seed=2)
        comp = inst.compiled()
        rebuilt = MaxMinInstance.from_arrays(
            inst.agents,
            inst.constraints,
            inst.objectives,
            comp.con_indptr,
            comp.con_indices,
            comp.con_coeff,
            comp.obj_indptr,
            comp.obj_indices,
            comp.obj_coeff,
            name=inst.name,
        )
        assert rebuilt == inst
        assert hash(rebuilt) == hash(inst)
        assert instance_digest(rebuilt) == instance_digest(inst)
        assert_compiles_identical(rebuilt.compiled(), comp)

    def test_adjacency_queries_match(self):
        inst = random_special_form_instance(20, seed=4)
        comp = inst.compiled()
        rebuilt = MaxMinInstance.from_arrays(
            inst.agents,
            inst.constraints,
            inst.objectives,
            comp.con_indptr,
            comp.con_indices,
            comp.con_coeff,
            comp.obj_indptr,
            comp.obj_indices,
            comp.obj_coeff,
            name=inst.name,
        )
        for v in inst.agents:
            assert rebuilt.constraints_of_agent(v) == inst.constraints_of_agent(v)
            assert rebuilt.objectives_of_agent(v) == inst.objectives_of_agent(v)
        for i in inst.constraints:
            assert rebuilt.agents_of_constraint(i) == inst.agents_of_constraint(i)
        assert rebuilt.a_coefficients == inst.a_coefficients
        assert rebuilt.c_coefficients == inst.c_coefficients


# ----------------------------------------------------------------------
# CompiledDelta — hand-written cases
# ----------------------------------------------------------------------


class TestCompiledDelta:
    def test_identity_delta(self):
        inst = random_special_form_instance(12, seed=0)
        result = inst.compiled().delta().apply()
        assert result.identity
        assert result.instance is inst
        assert len(result.dirty_agents) == 0

    def test_coefficient_edit_bitwise(self):
        inst = random_special_form_instance(24, seed=1)
        i = inst.constraints[3]
        v = inst.agents_of_constraint(i)[0]
        delta = inst.compiled().delta()
        delta.set_constraint_coefficient(i, v, 2.5)
        result = delta.apply()
        assert not result.structural

        a = dict(inst.a_coefficients)
        a[(i, v)] = 2.5
        expected = MaxMinInstance(
            inst.agents, inst.constraints, inst.objectives, a, inst.c_coefficients, name=inst.name
        )
        assert_delta_matches_fresh(result, expected)
        # both members of the edited constraint are dirty
        dirty_ids = {result.instance.agents[int(p)] for p in result.dirty_agents}
        assert set(inst.agents_of_constraint(i)) <= dirty_ids

    def test_structural_edit_bitwise(self):
        inst = regular_special_form_instance(6, 3, seed=7)
        delta = inst.compiled().delta()
        anchor = inst.agents[1]
        k = inst.objectives_of_agent(anchor)[0]
        delta.add_agent("~x")
        delta.set_objective_coefficient(k, "~x", 1.0)
        delta.set_constraint_coefficient("~i", "~x", 1.0)
        delta.set_constraint_coefficient("~i", anchor, 1.0)
        result = delta.apply()
        assert result.structural

        a = dict(inst.a_coefficients)
        a[("~i", "~x")] = 1.0
        a[("~i", anchor)] = 1.0
        c = dict(inst.c_coefficients)
        c[(k, "~x")] = 1.0
        expected = MaxMinInstance(
            list(inst.agents) + ["~x"],
            list(inst.constraints) + ["~i"],
            inst.objectives,
            a,
            c,
            name=inst.name,
        )
        assert_delta_matches_fresh(result, expected)

    def test_remove_agent_and_constraints(self):
        inst = regular_special_form_instance(8, 3, seed=5)
        victim = next(
            v
            for v in inst.agents
            if len(inst.agents_of_objective(inst.objectives_of_agent(v)[0])) >= 3
        )
        delta = inst.compiled().delta()
        doomed = inst.constraints_of_agent(victim)
        for i in doomed:
            delta.remove_constraint(i)
        delta.remove_agent(victim)
        result = delta.apply()

        a = {key: val for key, val in inst.a_coefficients.items() if key[0] not in doomed}
        c = {key: val for key, val in inst.c_coefficients.items() if key[1] != victim}
        expected = MaxMinInstance(
            [v for v in inst.agents if v != victim],
            [i for i in inst.constraints if i not in doomed],
            inst.objectives,
            a,
            c,
            name=inst.name,
        )
        assert_delta_matches_fresh(result, expected)

    def test_edit_errors(self):
        inst = random_special_form_instance(12, seed=3)
        delta = inst.compiled().delta()
        with pytest.raises(Exception):
            delta.set_constraint_coefficient(inst.constraints[0], inst.agents[0], -1.0)
        with pytest.raises(Exception):
            delta.add_agent(inst.agents[0])
        with pytest.raises(Exception):
            delta.remove_constraint_edge(inst.constraints[0], "no-such-agent")


# ----------------------------------------------------------------------
# CompiledDelta — hypothesis sweep over random edit scripts
# ----------------------------------------------------------------------


@st.composite
def delta_scripts(draw):
    """A base instance plus an edit script mirrored into expected dicts.

    The script is applied twice in the test: once through
    :class:`CompiledDelta` and once to plain agent/constraint/objective
    lists + coefficient dicts, which then declare the expected instance via
    ``MaxMinInstance.__init__``.  New nodes are appended after the
    survivors, matching the delta's documented ordering.
    """
    base = random_special_form_instance(draw(st.integers(8, 24)), seed=draw(st.integers(0, 4)))
    agents = list(base.agents)
    cons = list(base.constraints)
    objs = list(base.objectives)
    a = dict(base.a_coefficients)
    c = dict(base.c_coefficients)
    base_agents = set(agents)
    base_cons = set(cons)
    base_objs = set(objs)
    ops = []
    fresh = 0
    for _ in range(draw(st.integers(1, 10))):
        kinds = ["set_a", "set_c", "add_agent", "new_con_edge"]
        if a:
            kinds.append("del_a_edge")
        if c:
            kinds.append("del_c_edge")
        removable_cons = [i for i in cons if i in base_cons]
        if removable_cons:
            kinds.append("del_con")
        removable_objs = [k for k in objs if k in base_objs]
        if removable_objs:
            kinds.append("del_obj")
        removable_agents = [v for v in agents if v in base_agents]
        if len(removable_agents) > 2:
            kinds.append("del_agent")
        kind = draw(st.sampled_from(sorted(set(kinds))))
        coeff = draw(st.floats(min_value=0.1, max_value=4.0, allow_nan=False))

        if kind == "set_a":
            i = draw(st.sampled_from(cons)) if cons else None
            if i is None:
                continue
            v = draw(st.sampled_from(agents))
            ops.append(("set_a", i, v, coeff))
            a[(i, v)] = coeff
        elif kind == "new_con_edge":
            i = f"+con{fresh}"
            fresh += 1
            v = draw(st.sampled_from(agents))
            cons.append(i)
            ops.append(("set_a", i, v, coeff))
            a[(i, v)] = coeff
        elif kind == "set_c":
            k = draw(st.sampled_from(objs)) if objs else None
            if k is None:
                continue
            v = draw(st.sampled_from(agents))
            ops.append(("set_c", k, v, coeff))
            c[(k, v)] = coeff
        elif kind == "add_agent":
            v = f"+agent{fresh}"
            fresh += 1
            agents.append(v)
            ops.append(("add_agent", v))
            if cons:
                i = draw(st.sampled_from(cons))
                ops.append(("set_a", i, v, coeff))
                a[(i, v)] = coeff
        elif kind == "del_a_edge":
            key = draw(st.sampled_from(sorted(a)))
            ops.append(("del_a_edge", key[0], key[1]))
            del a[key]
        elif kind == "del_c_edge":
            key = draw(st.sampled_from(sorted(c)))
            ops.append(("del_c_edge", key[0], key[1]))
            del c[key]
        elif kind == "del_con":
            i = draw(st.sampled_from(removable_cons))
            ops.append(("del_con", i))
            cons.remove(i)
            for key in [key for key in a if key[0] == i]:
                del a[key]
        elif kind == "del_obj":
            k = draw(st.sampled_from(removable_objs))
            ops.append(("del_obj", k))
            objs.remove(k)
            for key in [key for key in c if key[0] == k]:
                del c[key]
        elif kind == "del_agent":
            v = draw(st.sampled_from(removable_agents))
            ops.append(("del_agent", v))
            agents.remove(v)
            for key in [key for key in a if key[1] == v]:
                del a[key]
            for key in [key for key in c if key[1] == v]:
                del c[key]
    return base, ops, agents, cons, objs, a, c


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(delta_scripts())
def test_random_edit_scripts_bitwise_identical(script):
    base, ops, agents, cons, objs, a, c = script
    delta = base.compiled().delta()
    for op in ops:
        if op[0] == "set_a":
            delta.set_constraint_coefficient(op[1], op[2], op[3])
        elif op[0] == "set_c":
            delta.set_objective_coefficient(op[1], op[2], op[3])
        elif op[0] == "add_agent":
            delta.add_agent(op[1])
        elif op[0] == "del_a_edge":
            delta.remove_constraint_edge(op[1], op[2])
        elif op[0] == "del_c_edge":
            delta.remove_objective_edge(op[1], op[2])
        elif op[0] == "del_con":
            delta.remove_constraint(op[1])
        elif op[0] == "del_obj":
            delta.remove_objective(op[1])
        elif op[0] == "del_agent":
            delta.remove_agent(op[1])
    result = delta.apply()
    expected = MaxMinInstance(agents, cons, objs, a, c, name=base.name)
    assert_delta_matches_fresh(result, expected)


# ----------------------------------------------------------------------
# Incremental solve parity + locality spy
# ----------------------------------------------------------------------

FAMILIES = [
    lambda: random_special_form_instance(40, seed=6),
    lambda: cycle_instance(24, seed=0),
    lambda: objective_ring_instance(8, 3),
]

KERNEL_ARRAYS = ("t", "s", "x", "g_plus", "g_minus")


@pytest.mark.parametrize("family_index", range(len(FAMILIES)))
@pytest.mark.parametrize("R", [2, 3, 5])
def test_incremental_matches_scratch_solve(family_index, R):
    inst = FAMILIES[family_index]()
    solver = SpecialFormLocalSolver(R)
    state = IncrementalSolveState(solver, inst)
    rng = np.random.default_rng(100 * family_index + R)
    for _ in range(4):
        delta = random_churn_delta(state.instance, rng, edits=2, structural_prob=0.4)
        state.apply_delta(delta.apply())
        fresh = IncrementalSolveState(solver, state.instance)
        for attr in KERNEL_ARRAYS:
            assert np.array_equal(getattr(state, attr), getattr(fresh, attr)), attr


def test_incremental_solve_locality_spy():
    """No kernel work outside the dirty r-ball.

    The spy reads the kernel counters: tree construction must run on
    exactly the ``2r+1``-ball of the dirty seeds, smoothing and the ``g``
    recursion on exactly the ``6r+3``-ball — never on all ``n`` agents.
    """
    inst = cycle_instance(60, seed=1)
    solver = SpecialFormLocalSolver(3)
    r = solver.r
    state = IncrementalSolveState(solver, inst)

    i = inst.constraints[10]
    v = inst.agents_of_constraint(i)[0]
    delta = state.comp.delta()
    delta.set_constraint_coefficient(i, v, 1.7)
    result = delta.apply()

    t_ball, out_ball = agent_hop_balls(
        result.compiled, result.dirty_agents, [2 * r + 1, 6 * r + 3]
    )
    assert len(out_ball) < state.comp.num_agents  # the spy has something to see

    prior = obs.enabled()
    obs.configure(enabled=True)
    try:
        mark = obs.counters_mark()
        recomputed = state.apply_delta(result)
        seen = obs.counters_since(mark)
    finally:
        obs.configure(enabled=prior)

    assert np.array_equal(recomputed, out_ball)
    assert seen.get("kernels.trees_total") == len(t_ball)
    assert seen.get("kernels.confined_smooth_rows") == len(out_ball)
    assert seen.get("kernels.confined_g_columns") == len(out_ball)
    assert seen.get("solver.incremental_recomputed") == len(out_ball)
    assert seen.get("solver.incremental_reused") == state.comp.num_agents - len(out_ball)

    # the recomputed region stays within the paper's locality horizon:
    # 6r+3 smoothing hops == local_horizon_radius(R) graph edges
    assert 2 * (6 * r + 3) == local_horizon_radius(solver.R)


def test_incremental_state_rejects_foreign_delta():
    inst_a = cycle_instance(12, seed=0)
    inst_b = cycle_instance(14, seed=0)
    solver = SpecialFormLocalSolver(3)
    state = IncrementalSolveState(solver, inst_a)
    delta = inst_b.compiled().delta()
    i = inst_b.constraints[0]
    v = inst_b.agents_of_constraint(i)[0]
    delta.set_constraint_coefficient(i, v, 1.5)
    with pytest.raises(Exception):
        state.apply_delta(delta.apply())


# ----------------------------------------------------------------------
# changed_sites / changed_agent_positions
# ----------------------------------------------------------------------


class TestChangedSites:
    def test_equal_topology_coefficient_change(self):
        inst = random_special_form_instance(20, seed=8)
        delta = inst.compiled().delta()
        i = inst.constraints[2]
        v = inst.agents_of_constraint(i)[1]
        delta.set_constraint_coefficient(i, v, 3.0)
        after = delta.apply().instance

        positions = changed_agent_positions(inst, after)
        sites = changed_sites(inst, after)
        assert {after.agents[int(p)] for p in positions} == {nid for _, nid in sites}
        assert v in {after.agents[int(p)] for p in positions}

    def test_membership_change(self):
        inst = regular_special_form_instance(6, 3, seed=2)
        delta = inst.compiled().delta()
        i = inst.constraints[0]
        v = inst.agents_of_constraint(i)[0]
        delta.remove_constraint_edge(i, v)
        after = delta.apply().instance

        positions = changed_agent_positions(inst, after)
        assert v in {after.agents[int(p)] for p in positions}

    def test_node_set_change_falls_back(self):
        inst = regular_special_form_instance(6, 3, seed=3)
        delta = inst.compiled().delta()
        anchor = inst.agents[0]
        k = inst.objectives_of_agent(anchor)[0]
        delta.add_agent("~y")
        delta.set_objective_coefficient(k, "~y", 1.0)
        delta.set_constraint_coefficient("~j", "~y", 1.0)
        delta.set_constraint_coefficient("~j", anchor, 1.0)
        after = delta.apply().instance

        ids = {after.agents[int(p)] for p in changed_agent_positions(inst, after)}
        assert "~y" in ids and anchor in ids

    def test_identical_instances(self):
        inst = cycle_instance(10, seed=0)
        assert len(changed_agent_positions(inst, inst)) == 0
        with pytest.raises(SimulationError):
            from repro.distributed.dynamics import measure_change_impact

            measure_change_impact(inst, inst, lambda x: None, 6)


# ----------------------------------------------------------------------
# MessagePlane dirty-region updates
# ----------------------------------------------------------------------


def assert_planes_equal(a: MessagePlane, b: MessagePlane) -> None:
    assert a.num_slots == b.num_slots
    assert a.con_base == b.con_base and a.obj_base == b.obj_base
    for attr in ("agent_indptr", "agent_con_slots", "agent_obj_slots", "reverse"):
        assert np.array_equal(getattr(a, attr), getattr(b, attr)), attr


class TestPlaneUpdates:
    def test_coefficient_delta_shares_arrays(self):
        inst = random_special_form_instance(30, seed=9)
        plane = MessagePlane(inst)
        delta = inst.compiled().delta()
        i = inst.constraints[1]
        v = inst.agents_of_constraint(i)[0]
        delta.set_constraint_coefficient(i, v, 2.0)
        result = delta.apply()

        updated = plane.updated(result)
        assert updated.reverse is plane.reverse  # zero-copy
        assert updated.comp is result.compiled
        assert_planes_equal(updated, MessagePlane(result.instance))

    def test_structural_delta_rebuilds_dirty_rows_only(self):
        inst = regular_special_form_instance(8, 3, seed=5)
        plane = MessagePlane(inst)
        victim = next(
            v
            for v in inst.agents
            if len(inst.agents_of_objective(inst.objectives_of_agent(v)[0])) >= 3
        )
        delta = inst.compiled().delta()
        for i in inst.constraints_of_agent(victim):
            delta.remove_constraint(i)
        delta.remove_agent(victim)
        result = delta.apply()

        prior = obs.enabled()
        obs.configure(enabled=True)
        try:
            mark = obs.counters_mark()
            updated = plane.updated(result)
            seen = obs.counters_since(mark)
        finally:
            obs.configure(enabled=prior)

        assert_planes_equal(updated, MessagePlane(result.instance))
        assert seen.get("plane.delta_rebuilds") == 1
        assert seen.get("plane.delta_slots_reused", 0) > 0
        reused = seen.get("plane.delta_slots_reused", 0)
        rebuilt = seen.get("plane.delta_slots_rebuilt", 0)
        assert reused + rebuilt == updated.num_slots

    def test_identity_delta_returns_self(self):
        inst = cycle_instance(8, seed=0)
        plane = MessagePlane(inst)
        assert plane.updated(inst.compiled().delta().apply()) is plane

    def test_dirty_region_matches_hop_ball(self):
        inst = cycle_instance(20, seed=0)
        plane = MessagePlane(inst)
        seeds = np.array([0])
        (expected,) = agent_hop_balls(inst.compiled(), seeds, [2])
        assert np.array_equal(plane.dirty_region(seeds, 4), expected)

    def test_runtime_refresh_plane(self):
        inst = random_special_form_instance(16, seed=5)
        runtime = SynchronousRuntime(plane=MessagePlane(inst))
        delta = inst.compiled().delta()
        i = inst.constraints[0]
        v = inst.agents_of_constraint(i)[0]
        delta.set_constraint_coefficient(i, v, 1.3)
        result = delta.apply()
        refreshed = runtime.refresh_plane(result)
        assert refreshed.comp is result.compiled
        assert runtime.plane is refreshed

        from repro.distributed.network import build_network

        net_runtime = SynchronousRuntime(build_network(inst))
        with pytest.raises(SimulationError):
            net_runtime.refresh_plane(result)


# ----------------------------------------------------------------------
# DynamicNetwork streaming workload
# ----------------------------------------------------------------------


class TestDynamicNetwork:
    def test_verified_tick_loop(self):
        net = DynamicNetwork(random_special_form_instance(30, seed=12), R=3, verify=True)
        rng = np.random.default_rng(0)
        for expected_tick in range(1, 6):
            tick = net.random_tick(rng, edits=2, structural_prob=0.4)
            assert tick.tick == expected_tick
            assert tick.max_error == 0.0  # bitwise, not just 1e-9
            assert tick.is_local
            assert tick.reused_agents == tick.num_agents - len(tick.recomputed_agents)
        assert net.ticks == 5

    def test_structural_churn_keeps_special_form(self):
        net = DynamicNetwork(regular_special_form_instance(8, 3, seed=1), R=2)
        rng = np.random.default_rng(7)
        for _ in range(6):
            net.random_tick(rng, edits=1, structural_prob=1.0)
        assert net.instance.is_special_form()

    def test_plane_maintained_across_ticks(self):
        net = DynamicNetwork(cycle_instance(20, seed=0), R=3)
        plane = net.plane  # build it so ticks must maintain it
        rng = np.random.default_rng(3)
        for _ in range(4):
            net.random_tick(rng, edits=1, structural_prob=0.5)
        assert net.plane.comp is net.state.comp
        assert_planes_equal(net.plane, MessagePlane(net.instance))

    def test_explicit_delta_and_counters(self):
        net = DynamicNetwork(cycle_instance(30, seed=2), R=3)
        delta = net.begin_delta()
        inst = net.instance
        i = inst.constraints[4]
        v = inst.agents_of_constraint(i)[0]
        delta.set_constraint_coefficient(i, v, 1.9)

        prior = obs.enabled()
        obs.configure(enabled=True)
        try:
            mark = obs.counters_mark()
            tick = net.apply(delta)
            seen = obs.counters_since(mark)
        finally:
            obs.configure(enabled=prior)

        assert seen.get("dynamics.ticks") == 1
        assert seen.get("dynamics.dirty_agents") == len(tick.dirty_agents)
        assert seen.get("dynamics.reused_agents") == tick.reused_agents
        assert seen.get("compiled.delta_edits") == 1

    def test_solution_matches_scratch_solver(self):
        net = DynamicNetwork(objective_ring_instance(8, 3), R=3)
        rng = np.random.default_rng(5)
        for _ in range(3):
            net.random_tick(rng, edits=1, structural_prob=0.0)
        fresh = SpecialFormLocalSolver(3).solve(net.instance).solution
        streamed = net.solution
        for v in net.instance.agents:
            assert streamed[v] == pytest.approx(fresh[v], abs=1e-9)


# ----------------------------------------------------------------------
# Preprocess array-level materialisation
# ----------------------------------------------------------------------


def test_preprocess_array_materialisation_matches_sub_instance():
    agents = ["a", "b", "c", "d", "e"]
    cons = ["i1", "i2", "i3"]
    objs = ["k1", "k2", "k3"]
    a = {("i1", "a"): 1.0, ("i1", "b"): 2.0, ("i2", "b"): 1.0, ("i2", "c"): 1.0}
    c = {
        ("k1", "a"): 1.0,
        ("k1", "b"): 1.0,
        ("k2", "c"): 1.0,
        ("k2", "d"): 1.0,
        ("k3", "e"): 1.0,
    }
    inst = MaxMinInstance(agents, cons, objs, a, c, name="degen")
    pre = preprocess(inst, backend="vectorized")
    ref = preprocess(inst, backend="reference")
    assert pre.instance == ref.instance
    assert instance_digest(pre.instance) == instance_digest(ref.instance)
    sub = inst.sub_instance(
        list(pre.instance.agents),
        list(pre.instance.constraints),
        list(pre.instance.objectives),
        name=pre.instance.name,
    )
    assert pre.instance == sub
    assert hash(pre.instance) == hash(sub)
    assert instance_digest(pre.instance) == instance_digest(sub)
    assert_compiles_identical(pre.instance.compiled(), sub.compiled())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestDynamicsCli:
    def test_smoke(self, capsys):
        assert (
            main(
                [
                    "dynamics",
                    "special-form",
                    "--size",
                    "24",
                    "--ticks",
                    "3",
                    "--churn",
                    "1",
                    "--seed",
                    "0",
                    "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ticks: 3" in out
        assert "verified bitwise + local" in out

    def test_rejects_non_special_form(self, capsys):
        assert main(["dynamics", "random", "--size", "12", "--ticks", "1"]) == 2
        assert "special form" in capsys.readouterr().err
