"""Backend-equivalence and unit tests for the vectorized solver kernels.

The vectorized backend (``repro.algo.kernels`` over a
:class:`~repro.core.compiled.CompiledInstance`) must agree with the
per-node reference implementation on every quantity the §5 pipeline
produces: the per-agent bounds ``t_u``, the smoothed bounds ``s_v``, the
output vector ``x`` and its utility — within 1e-9, across every generator
family and both ``tu_method`` values.  These tests are the contract that
lets the vectorized backend be the default.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algo.kernels import (
    batched_upper_bounds,
    build_batched_trees,
    g_recursion_kernel,
    output_kernel,
    smooth_bounds_kernel,
)
from repro.algo.local_solver import SpecialFormLocalSolver
from repro.algo.upper_bound import compute_upper_bounds, smooth_upper_bounds
from repro.core.compiled import CompiledInstance
from repro.exceptions import NotSpecialFormError
from repro.generators import (
    cycle_instance,
    objective_ring_instance,
    random_special_form_instance,
    regular_special_form_instance,
    torus_instance,
)
from repro.transforms import to_special_form

from conftest import build_general_instance

TOL = 1e-9


def special_form_cases():
    """Seeded instances of every special-form family (id, instance)."""
    grid = to_special_form(torus_instance(4, 3, coefficient_range=(0.5, 2.0), seed=6)).transformed
    return [
        ("cycle-unit", cycle_instance(8)),
        ("cycle-random", cycle_instance(9, coefficient_range=(0.5, 2.0), seed=3)),
        ("sf-random", random_special_form_instance(18, delta_K=3, constraint_rounds=2, seed=5)),
        ("regular-unit", regular_special_form_instance(6, 3, constraint_rounds=2, seed=7)),
        (
            "regular-random",
            regular_special_form_instance(
                6, 3, constraint_rounds=2, coefficient_range=(0.5, 2.0), seed=8
            ),
        ),
        ("ring", objective_ring_instance(5, 3)),
        ("grid", grid),
    ]


CASES = special_form_cases()
CASE_IDS = [case_id for case_id, _ in CASES]


class TestBackendEquivalence:
    @pytest.mark.parametrize("case_id,instance", CASES, ids=CASE_IDS)
    @pytest.mark.parametrize("R", [2, 3, 5])
    def test_recursion_backend_equivalence(self, case_id, instance, R):
        """Vectorized and reference agree on t_u, s_v, x and utility (1e-9)."""
        ref = SpecialFormLocalSolver(R=R, backend="reference").solve(instance)
        vec = SpecialFormLocalSolver(R=R, backend="vectorized").solve(instance)
        assert vec.utility() == pytest.approx(ref.utility(), abs=TOL)
        for v in instance.agents:
            assert vec.upper_bounds[v] == pytest.approx(ref.upper_bounds[v], abs=TOL)
            assert vec.smoothed_bounds[v] == pytest.approx(ref.smoothed_bounds[v], abs=TOL)
            assert vec.solution[v] == pytest.approx(ref.solution[v], abs=TOL)

    @pytest.mark.parametrize("case_id,instance", CASES[:4], ids=CASE_IDS[:4])
    @pytest.mark.parametrize("R", [2, 3])
    def test_lp_backend_equivalence(self, case_id, instance, R):
        """The tu_method="lp" path agrees across backends too (LP tolerance)."""
        ref = SpecialFormLocalSolver(R=R, tu_method="lp", backend="reference").solve(instance)
        vec = SpecialFormLocalSolver(R=R, tu_method="lp", backend="vectorized").solve(instance)
        for v in instance.agents:
            assert vec.upper_bounds[v] == pytest.approx(ref.upper_bounds[v], abs=1e-7)
            assert vec.solution[v] == pytest.approx(ref.solution[v], abs=1e-7)

    @pytest.mark.parametrize("R", [2, 3])
    def test_g_tables_match(self, R):
        """The full g± tables agree entry-wise, not just their Eq. 18 sum."""
        instance = random_special_form_instance(16, delta_K=3, constraint_rounds=2, seed=11)
        ref = SpecialFormLocalSolver(R=R, backend="reference").solve(instance)
        vec = SpecialFormLocalSolver(R=R, backend="vectorized").solve(instance)
        for d in range(ref.g.r + 1):
            for v in instance.agents:
                assert vec.g.plus(v, d) == pytest.approx(ref.g.plus(v, d), abs=TOL)
                assert vec.g.minus(v, d) == pytest.approx(ref.g.minus(v, d), abs=TOL)

    def test_dedup_and_no_dedup_agree(self):
        """Signature deduplication must not change any t_u."""
        instance = cycle_instance(10, coefficient_range=(0.5, 2.0), seed=21)
        comp = instance.compiled()
        with_dedup = batched_upper_bounds(comp, 1, deduplicate=True)
        without = batched_upper_bounds(comp, 1, deduplicate=False)
        np.testing.assert_allclose(with_dedup, without, atol=0.0)


class TestCompiledInstance:
    def test_cached_on_instance(self):
        instance = cycle_instance(4)
        assert instance.compiled() is instance.compiled()

    def test_csr_matches_accessors(self):
        instance = random_special_form_instance(14, delta_K=3, constraint_rounds=2, seed=9)
        comp = instance.compiled()
        for idx, v in enumerate(comp.agents):
            assert comp.capacity[idx] == instance.agent_capacity(v)
            lo, hi = comp.con_indptr[idx], comp.con_indptr[idx + 1]
            for e in range(lo, hi):
                i = comp.constraints[comp.con_indices[e]]
                assert comp.con_coeff[e] == instance.a(i, v)
                partner = instance.other_agent(i, v)
                assert comp.agents[comp.con_partner[e]] == partner
                assert comp.con_partner_coeff[e] == instance.a(i, partner)
            assert comp.objectives[comp.obj_of_agent[idx]] == instance.unique_objective(v)

    def test_sibling_sums(self):
        instance = objective_ring_instance(4, 3)
        comp = instance.compiled()
        values = np.arange(1.0, comp.num_agents + 1)
        sums = comp.sibling_sums(values)
        for idx, v in enumerate(comp.agents):
            expected = sum(values[comp.agent_index[w]] for w in instance.objective_siblings(v))
            assert sums[idx] == pytest.approx(expected, abs=1e-12)

    def test_special_view_rejects_general_instances(self):
        comp = CompiledInstance(build_general_instance())
        with pytest.raises(NotSpecialFormError):
            comp.obj_of_agent

    def test_communication_graph_cached_and_copied_by_mutators(self):
        instance = cycle_instance(4)
        g = instance.communication_graph()
        assert instance.communication_graph() is g
        # Read-only callers keep working against the cached object.
        assert instance.is_connected()


class TestBatchedTrees:
    @pytest.mark.parametrize("r", [0, 1, 2])
    def test_tree_sizes_match_reference(self, r):
        """The flat layout enumerates exactly the agent nodes of every A_u."""
        from repro._types import NodeType
        from repro.algo.alternating_tree import build_alternating_tree

        instance = random_special_form_instance(12, delta_K=3, constraint_rounds=2, seed=4)
        comp = instance.compiled()
        bt = build_batched_trees(comp, r)
        for t, v in enumerate(comp.agents):
            tree = build_alternating_tree(instance, v, r, validate=False)
            expected = sum(1 for node in tree.nodes if node.kind is NodeType.AGENT)
            actual = sum(
                int(level.root_indptr[t + 1] - level.root_indptr[t]) for level in bt.levels
            )
            assert actual == expected

    def test_symmetric_family_collapses(self):
        """On the unit cycle every alternating tree has the same signature."""
        comp = cycle_instance(12).compiled()
        bt = build_batched_trees(comp, 1)
        assert len(set(bt.signatures())) == 1


class TestSmoothingKernels:
    @pytest.mark.parametrize("r", [0, 1, 2])
    def test_matches_bfs_smoothing(self, r):
        instance = random_special_form_instance(15, delta_K=3, constraint_rounds=2, seed=13)
        comp = instance.compiled()
        rng = np.random.default_rng(0)
        t_values = rng.uniform(0.5, 3.0, comp.num_agents)
        bounds = dict(zip(comp.agents, t_values.tolist()))
        expected = smooth_upper_bounds(instance, bounds, r)
        smoothed = smooth_bounds_kernel(comp, t_values, r)
        for idx, v in enumerate(comp.agents):
            assert smoothed[idx] == pytest.approx(expected[v], abs=0.0)

    def test_smooth_upper_bounds_skips_agents_without_bound(self):
        """Regression: an agents= subset used to KeyError inside the ball."""
        instance = cycle_instance(6, coefficient_range=(0.5, 2.0), seed=17)
        subset = list(instance.agents)[:3]
        partial = compute_upper_bounds(instance, 1, agents=subset)
        smoothed = smooth_upper_bounds(instance, partial, 1)
        assert set(smoothed) == set(instance.agents)
        for v in subset:
            assert smoothed[v] <= partial[v] + 1e-12

    def test_smooth_upper_bounds_empty_bounds_is_inf(self):
        import math

        instance = cycle_instance(4)
        smoothed = smooth_upper_bounds(instance, {}, 1)
        assert all(math.isinf(s) for s in smoothed.values())


class TestKernelPieces:
    def test_g_recursion_and_output_match_reference_methods(self):
        instance = regular_special_form_instance(4, 3, constraint_rounds=2, seed=19)
        comp = instance.compiled()
        solver = SpecialFormLocalSolver(R=4, backend="reference")
        t = compute_upper_bounds(instance, solver.r)
        s = smooth_upper_bounds(instance, t, solver.r)
        g_ref = solver.compute_g_recursion(instance, s)
        s_vec = np.asarray([s[v] for v in comp.agents])
        g_plus, g_minus = g_recursion_kernel(comp, s_vec, solver.r)
        for d in range(solver.r + 1):
            for idx, v in enumerate(comp.agents):
                assert g_plus[d][idx] == pytest.approx(g_ref.plus(v, d), abs=TOL)
                assert g_minus[d][idx] == pytest.approx(g_ref.minus(v, d), abs=TOL)
        x = output_kernel(g_plus, g_minus, solver.R)
        x_ref = solver.output_vector(instance, g_ref)
        for idx, v in enumerate(comp.agents):
            assert x[idx] == pytest.approx(x_ref[v], abs=TOL)

    def test_targets_subset(self):
        instance = random_special_form_instance(12, delta_K=3, constraint_rounds=2, seed=23)
        comp = instance.compiled()
        full = batched_upper_bounds(comp, 1)
        subset = np.asarray([0, 5, 7], dtype=np.int64)
        partial = batched_upper_bounds(comp, 1, targets=subset)
        np.testing.assert_allclose(partial, full[subset], atol=0.0)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            SpecialFormLocalSolver(R=3, backend="numpy")
        with pytest.raises(ValueError):
            batched_upper_bounds(cycle_instance(4).compiled(), 1, method="nope")
