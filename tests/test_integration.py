"""End-to-end integration tests across subsystems.

Each test here mirrors one of the experiments in EXPERIMENTS.md at a small
scale, so that the benchmark harness can never silently drift away from a
checked property.
"""

from __future__ import annotations

import math

import pytest

from repro.algo.general_solver import LocalMaxMinSolver, theorem1_ratio
from repro.algo.local_solver import SpecialFormLocalSolver
from repro.algo.safe_algorithm import SafeAlgorithm
from repro.analysis import best_local_ratio_bound, compare_algorithms, run_ratio_sweep, worst_case_by
from repro.applications import service_statistics
from repro.core.lp import solve_maxmin_lp
from repro.distributed import DistributedLocalSolver, DistributedSafeSolver
from repro.generators import (
    bandwidth_allocation_instance,
    cycle_instance,
    indistinguishable_cycle_pair,
    objective_ring_instance,
    random_instance,
    sensor_network_instance,
    torus_instance,
)
from repro.transforms import to_special_form

from conftest import assert_feasible, assert_within_guarantee


class TestEndToEndApplications:
    """Experiment E9: realistic workloads end to end."""

    def test_sensor_network_pipeline(self):
        network = sensor_network_instance(18, 5, radius=0.35, seed=11)
        instance = network.instance
        lp = solve_maxmin_lp(instance)
        local = LocalMaxMinSolver(R=3).solve(instance)
        safe = SafeAlgorithm().solve(instance)

        assert_feasible(local.solution)
        assert_feasible(safe)
        assert lp.optimum > 0
        assert_within_guarantee(instance, local.solution, local.certificate.guaranteed_ratio, lp.optimum)

        stats = service_statistics(local.solution)
        assert stats["min"] == pytest.approx(local.utility())
        assert stats["min"] <= lp.optimum + 1e-9

    def test_bandwidth_pipeline(self):
        workload = bandwidth_allocation_instance(12, 6, paths_per_customer=2, seed=13)
        instance = workload.instance
        lp = solve_maxmin_lp(instance)
        local = LocalMaxMinSolver(R=3).solve(instance)
        assert_feasible(local.solution)
        assert_within_guarantee(instance, local.solution, local.certificate.guaranteed_ratio, lp.optimum)
        # Every customer receives some bandwidth under the exact optimum, and
        # the local algorithm guarantees a positive fraction of it.
        if lp.optimum > 0:
            assert local.utility() > 0

    def test_torus_via_full_transformation_pipeline(self):
        instance = torus_instance(4, 4, seed=3)
        result = LocalMaxMinSolver(R=2).solve(instance)
        assert result.status == "local"
        assert result.transform is not None and result.transform.changed
        assert_feasible(result.solution)


class TestDistributedEndToEnd:
    """Experiment E5: the distributed protocol on transformed real workloads."""

    def test_transform_then_distributed_run(self):
        # General workload -> §4 pipeline (centralized, but locally computable)
        # -> distributed §5 protocol -> back-mapping.
        instance = random_instance(16, delta_I=3, delta_K=2, seed=17)
        transform = to_special_form(instance)
        distributed_solution, run = DistributedLocalSolver(R=2).solve(transform.transformed)
        mapped = transform.map_back(distributed_solution)
        assert_feasible(mapped)
        optimum = solve_maxmin_lp(instance).optimum
        guarantee = transform.ratio_factor * 2.0 * (1 - 1 / transform.transformed.delta_K) * 2.0
        assert_within_guarantee(instance, mapped, guarantee, optimum)
        assert run.rounds == DistributedLocalSolver(R=2).local_horizon

    def test_distributed_matches_centralized_on_application(self):
        network = sensor_network_instance(10, 4, radius=0.4, seed=19)
        transform = to_special_form(network.instance)
        special = transform.transformed
        central = SpecialFormLocalSolver(R=2).solve(special)
        distributed, _run = DistributedLocalSolver(R=2).solve(special)
        for v in special.agents:
            assert distributed[v] == pytest.approx(central.solution[v], abs=1e-8)

    def test_safe_protocol_message_budget_smaller_than_local(self):
        instance = cycle_instance(10)
        _s1, run_local = DistributedLocalSolver(R=2).solve(instance)
        _s2, run_safe = DistributedSafeSolver().solve(instance)
        assert run_safe.total_messages < run_local.total_messages
        assert run_safe.rounds < run_local.rounds


class TestTheorem1Experiments:
    """Experiments E1–E4 at test scale."""

    def test_upper_bound_holds_across_families_and_R(self):
        instances = [
            cycle_instance(6, coefficient_range=(0.5, 2.0), seed=1),
            objective_ring_instance(4, 3),
            random_instance(14, delta_I=3, delta_K=3, seed=2),
            torus_instance(3, 3, seed=3),
        ]
        rows = run_ratio_sweep(instances, R_values=(2, 3), include_safe=True)
        summary = worst_case_by(rows, keys=("algorithm",))
        assert all(entry["within_guarantee"] for entry in summary)

    def test_ratio_improves_with_R_on_adversarial_family(self):
        """E3: the guarantee (and on hard instances the measurement) tightens with R."""
        instance = objective_ring_instance(6, 3)
        guarantees = []
        measured = []
        optimum = solve_maxmin_lp(instance).optimum
        for R in (2, 3, 5):
            result = LocalMaxMinSolver(R=R).solve(instance)
            guarantees.append(result.certificate.guaranteed_ratio)
            measured.append(optimum / result.utility())
        assert guarantees == sorted(guarantees, reverse=True)
        assert all(m <= g + 1e-9 for m, g in zip(measured, guarantees))

    def test_guarantee_approaches_threshold(self):
        """E1/E3: ΔI (1 − 1/ΔK)(1 + 1/(R−1)) → ΔI (1 − 1/ΔK) as R grows."""
        threshold = 2 * (1 - 1 / 3)
        assert theorem1_ratio(2, 3, 30) == pytest.approx(threshold, rel=0.04)
        assert theorem1_ratio(2, 3, 30) > threshold

    def test_safe_algorithm_hits_its_gap_while_local_guarantee_is_below_delta_I(self):
        """E4: on the ring family the safe ratio is 2(1−1/ΔK); the local
        algorithm's *guarantee* beats the safe guarantee (ΔI = 2 here) once R
        is moderately large."""
        delta_K = 4
        instance = objective_ring_instance(5, delta_K)
        optimum = solve_maxmin_lp(instance).optimum
        safe = SafeAlgorithm().solve(instance)
        safe_ratio = optimum / safe.utility()
        assert safe_ratio == pytest.approx(2 * (1 - 1 / delta_K), rel=1e-6)
        local = LocalMaxMinSolver(R=8).solve(instance)
        assert local.certificate.guaranteed_ratio < 2.0  # beats the safe guarantee ΔI
        assert optimum / local.utility() <= local.certificate.guaranteed_ratio + 1e-9

    def test_lower_bound_machinery(self):
        """E2: locally indistinguishable pairs force a ratio bounded away from 1."""
        pair = indistinguishable_cycle_pair(10, defect_coefficient=4.0)
        bound_small = best_local_ratio_bound(list(pair), horizon=2)
        assert bound_small.ratio_lower_bound > 1.0
        # The algorithm's achievable guarantee at a comparable horizon can
        # never undercut the computed lower bound on these two instances.
        worst_measured = 1.0
        for instance in pair:
            result = LocalMaxMinSolver(R=2).solve(instance)
            optimum = solve_maxmin_lp(instance).optimum
            worst_measured = max(worst_measured, optimum / result.utility())
        assert worst_measured >= 1.0  # sanity: the gap exists for real algorithms too
