"""Tests for the §5 local solver, the general pipeline solver and the safe baseline.

These are the executable versions of Lemmata 5–7, 11, 12 and of the
Theorem 1 / §6.3 guarantee.
"""

from __future__ import annotations

import math

import pytest

from repro.algo.certificates import Certificate, verify_certificate
from repro.algo.general_solver import GeneralSolveResult, LocalMaxMinSolver, theorem1_ratio
from repro.algo.local_solver import SpecialFormLocalSolver, special_form_ratio
from repro.algo.safe_algorithm import SafeAlgorithm, safe_solution
from repro.core.builder import InstanceBuilder
from repro.core.instance import MaxMinInstance
from repro.core.lp import solve_maxmin_lp
from repro.core.solution import Solution
from repro.exceptions import InvalidInstanceError, NotSpecialFormError
from repro.generators import (
    cycle_instance,
    objective_ring_instance,
    random_special_form_instance,
)

from conftest import (
    assert_feasible,
    assert_within_guarantee,
    general_family,
    special_form_family,
)


class TestRatioFormulas:
    def test_special_form_ratio(self):
        assert special_form_ratio(2, 2) == pytest.approx(2.0)
        assert special_form_ratio(2, 3) == pytest.approx(1.5)
        assert special_form_ratio(3, 3) == pytest.approx(2.0)
        assert special_form_ratio(1, 3) == pytest.approx(1.5)  # clamped to 2

    def test_theorem1_ratio(self):
        assert theorem1_ratio(2, 2, 3) == pytest.approx(1.5)
        assert theorem1_ratio(3, 3, 4) == pytest.approx(3 * (2 / 3) * (4 / 3))
        assert theorem1_ratio(1, 5, 3) == 1.0
        # As R grows the guarantee approaches ΔI (1 − 1/ΔK).
        limit = 3 * (1 - 1 / 4)
        assert theorem1_ratio(3, 4, 50) == pytest.approx(limit, rel=0.03)

    def test_invalid_R(self):
        with pytest.raises(ValueError):
            special_form_ratio(3, 1)
        with pytest.raises(ValueError):
            theorem1_ratio(2, 2, 1)
        with pytest.raises(ValueError):
            SpecialFormLocalSolver(R=1)
        with pytest.raises(ValueError):
            SpecialFormLocalSolver(R=3, tu_method="nope")


class TestSpecialFormSolver:
    @pytest.mark.parametrize("R", [2, 3, 4])
    def test_feasible_and_within_guarantee(self, R):
        """Lemma 11 (feasibility) + §6.3 (approximation) on the whole family."""
        solver = SpecialFormLocalSolver(R=R)
        for instance in special_form_family():
            result = solver.solve(instance)
            assert_feasible(result.solution)
            assert_within_guarantee(instance, result.solution, result.guaranteed_ratio)

    def test_rejects_general_instances(self, general_instance):
        with pytest.raises(NotSpecialFormError):
            SpecialFormLocalSolver(R=3).solve(general_instance)

    def test_g_monotonicity_lemma6(self):
        """Lemma 6: g⁻ non-decreasing and g⁺ non-increasing in d."""
        solver = SpecialFormLocalSolver(R=4)
        for instance in special_form_family()[:4]:
            result = solver.solve(instance)
            g = result.g
            for v in instance.agents:
                for d in range(1, g.r + 1):
                    assert g.minus(v, d) >= g.minus(v, d - 1) - 1e-9
                    assert g.plus(v, d) <= g.plus(v, d - 1) + 1e-9

    def test_g_nonnegative_lemma7(self):
        """Lemma 7: g⁺ ≥ 0 at every depth (and g⁻ ≥ 0 by definition)."""
        solver = SpecialFormLocalSolver(R=4)
        for instance in special_form_family()[:4]:
            result = solver.solve(instance)
            g = result.g
            for v in instance.agents:
                for d in range(g.r + 1):
                    assert g.plus(v, d) >= -1e-9
                    assert g.minus(v, d) >= 0.0

    def test_g_bounds_lemma5(self):
        """Lemma 5: g⁺_{v,r} ≥ 0 and g⁻_{v,r} ≤ capacity(v)."""
        solver = SpecialFormLocalSolver(R=3)
        for instance in special_form_family()[:4]:
            result = solver.solve(instance)
            for v in instance.agents:
                assert result.g.plus(v, result.r) >= -1e-9
                assert result.g.minus(v, result.r) <= instance.agent_capacity(v) + 1e-9

    def test_smoothed_bound_upper_bounds_optimum(self):
        """Combination of Lemmata 2 and 3: s_v ≥ optimum for every v."""
        solver = SpecialFormLocalSolver(R=3)
        for instance in special_form_family()[:4]:
            optimum = solve_maxmin_lp(instance).optimum
            result = solver.solve(instance)
            for v in instance.agents:
                assert result.smoothed_bounds[v] >= optimum - 1e-7

    def test_lemma12_objective_lower_bound(self):
        """Lemma 12: every objective value is ≥ (1/2)(1 − 1/R)(|V_k|/(|V_k|−1)) min s_v."""
        solver = SpecialFormLocalSolver(R=4)
        for instance in special_form_family()[:4]:
            result = solver.solve(instance)
            R = solver.R
            for k in instance.objectives:
                members = instance.agents_of_objective(k)
                min_s = min(result.smoothed_bounds[v] for v in members)
                size = len(members)
                bound = 0.5 * (1 - 1 / R) * size / (size - 1) * min_s
                assert result.solution.objective_value(k) >= bound - 1e-8

    def test_larger_R_never_hurts_guarantee(self):
        instance = cycle_instance(7, coefficient_range=(0.5, 1.5), seed=12)
        utilities = {}
        for R in (2, 3, 5):
            result = SpecialFormLocalSolver(R=R).solve(instance)
            utilities[R] = result.solution.utility()
            assert result.guaranteed_ratio == pytest.approx(special_form_ratio(instance.delta_K, R))
        # Guarantees tighten with R.
        assert special_form_ratio(2, 5) < special_form_ratio(2, 3) < special_form_ratio(2, 2)

    def test_tu_method_lp_equivalent(self):
        instance = random_special_form_instance(12, delta_K=3, seed=13)
        rec = SpecialFormLocalSolver(R=3, tu_method="recursion").solve(instance)
        lp = SpecialFormLocalSolver(R=3, tu_method="lp").solve(instance)
        for v in instance.agents:
            assert rec.solution[v] == pytest.approx(lp.solution[v], abs=1e-6)

    def test_symmetric_cycle_is_solved_optimally(self):
        # On the unit cycle the optimum (all 1/2) is symmetric, and the
        # algorithm recovers it exactly for every R.
        instance = cycle_instance(6)
        for R in (2, 3):
            result = SpecialFormLocalSolver(R=R).solve(instance)
            assert result.solution.utility() == pytest.approx(1.0, abs=1e-6)

    def test_result_metadata(self):
        instance = cycle_instance(5)
        result = SpecialFormLocalSolver(R=3).solve(instance)
        assert result.R == 3 and result.r == 1
        assert result.minimum_smoothed_bound() <= max(result.upper_bounds.values()) + 1e-12
        assert "SpecialFormSolveResult" in repr(result)


class TestGeneralSolver:
    @pytest.mark.parametrize("R", [2, 3])
    def test_feasible_and_within_guarantee_on_general_family(self, R):
        solver = LocalMaxMinSolver(R=R)
        for instance in general_family():
            result = solver.solve(instance)
            assert_feasible(result.solution)
            assert_within_guarantee(
                instance, result.solution, result.certificate.guaranteed_ratio
            )

    def test_guarantee_formula_matches_certificate(self):
        solver = LocalMaxMinSolver(R=3)
        for instance in general_family():
            result = solver.solve(instance)
            if result.status == "local":
                assert result.certificate.guaranteed_ratio <= theorem1_ratio(
                    instance.delta_I, max(instance.delta_K, 2), solver.R
                ) + 1e-9

    def test_special_form_shortcut(self, unit_cycle):
        result = LocalMaxMinSolver(R=3).solve(unit_cycle)
        assert result.transform is None
        assert result.status == "local"
        assert result.utility() == pytest.approx(1.0, abs=1e-6)

    def test_trivial_delta_I_1(self):
        builder = InstanceBuilder()
        builder.add_constraint_term("i1", "a", 2.0)
        builder.add_constraint_term("i2", "b", 4.0)
        builder.add_objective_term("k", "a", 1.0)
        builder.add_objective_term("k", "b", 1.0)
        instance = builder.build()
        result = LocalMaxMinSolver(R=3).solve(instance)
        assert result.status == "trivial-delta-I-1"
        assert result.certificate.guaranteed_ratio == 1.0
        assert result.utility() == pytest.approx(solve_maxmin_lp(instance).optimum)

    def test_zero_status(self):
        builder = InstanceBuilder()
        builder.add_constraint_term("i", "a", 1.0)
        builder.add_objective_term("k", "a", 1.0)
        builder.add_objective("k_empty")
        result = LocalMaxMinSolver().solve(builder.build())
        assert result.status == "zero"
        assert result.utility() == 0.0

    def test_unbounded_status(self):
        instance = MaxMinInstance(["a"], [], ["k"], {}, {("k", "a"): 1.0})
        result = LocalMaxMinSolver().solve(instance)
        assert result.status == "unbounded"
        assert result.solution.objective_value("k") >= 1.0 - 1e-12

    def test_degenerate_parts_are_lifted(self, degenerate_instance):
        result = LocalMaxMinSolver(R=2).solve(degenerate_instance)
        assert_feasible(result.solution)
        # The isolated objective pins the optimum (and hence the status) to zero.
        assert result.status == "zero"

    def test_result_repr_and_utility(self, ring_instance):
        result = LocalMaxMinSolver(R=3).solve(ring_instance)
        assert isinstance(result, GeneralSolveResult)
        assert "GeneralSolveResult" in repr(result)
        assert result.utility() == result.solution.utility()


class TestSafeAlgorithm:
    def test_feasible_and_ratio_delta_I(self):
        safe = SafeAlgorithm()
        for instance in general_family() + special_form_family():
            solution, certificate = safe.solve_with_certificate(instance)
            assert_feasible(solution)
            assert_within_guarantee(instance, solution, certificate.guaranteed_ratio)

    def test_variants(self, unit_cycle):
        degree = safe_solution(unit_cycle, variant="degree")
        delta = safe_solution(unit_cycle, variant="delta")
        for v in unit_cycle.agents:
            assert degree[v] == pytest.approx(0.5)
            assert delta[v] == pytest.approx(0.5)
        with pytest.raises(ValueError):
            safe_solution(unit_cycle, variant="bogus")
        with pytest.raises(ValueError):
            SafeAlgorithm(variant="bogus")

    def test_delta_variant_is_more_conservative(self):
        instance = objective_ring_instance(4, 4)
        degree = safe_solution(instance, variant="degree")
        delta = safe_solution(instance, variant="delta")
        for v in instance.agents:
            assert delta[v] <= degree[v] + 1e-12

    def test_ring_family_exposes_safe_gap(self):
        """On the objective ring the safe ratio approaches 2(1 − 1/ΔK)."""
        for delta_K in (2, 3, 4):
            instance = objective_ring_instance(4, delta_K)
            optimum = solve_maxmin_lp(instance).optimum
            solution = SafeAlgorithm().solve(instance)
            measured = optimum / solution.utility()
            assert measured == pytest.approx(2.0 * (1 - 1 / delta_K), rel=1e-6)

    def test_unconstrained_agent_rejected_without_preprocess(self):
        instance = MaxMinInstance(["a"], [], ["k"], {}, {("k", "a"): 1.0})
        with pytest.raises(InvalidInstanceError):
            safe_solution(instance)
        # The object wrapper preprocesses and therefore succeeds.
        solution = SafeAlgorithm().solve(instance)
        assert solution.is_feasible()


class TestCertificates:
    def test_record_and_verify(self, unit_cycle):
        result = LocalMaxMinSolver(R=3).solve(unit_cycle)
        optimum = solve_maxmin_lp(unit_cycle).optimum
        assert verify_certificate(result.certificate, result.solution, optimum)
        assert result.certificate.holds
        assert result.certificate.measured_ratio == pytest.approx(1.0, abs=1e-6)
        data = result.certificate.as_dict()
        assert data["algorithm"] == "local-R3"
        assert data["holds"] is True

    def test_zero_cases(self):
        certificate = Certificate("x", 2.0, 2, 2, utility=0.0)
        assert certificate.record_measurement(0.0) == 1.0
        assert math.isinf(certificate.record_measurement(1.0))
        assert certificate.holds is False

    def test_requires_utility(self):
        certificate = Certificate("x", 2.0, 2, 2)
        assert certificate.holds is None
        with pytest.raises(ValueError):
            certificate.record_measurement(1.0)

    def test_verify_rejects_infeasible(self, unit_cycle):
        certificate = Certificate("x", 10.0, 2, 2)
        infeasible = Solution(unit_cycle, {v: 10.0 for v in unit_cycle.agents})
        assert not verify_certificate(certificate, infeasible, 1.0)
