"""Equivalence suite for the compiled record path (PR 5).

Pins the contracts of the vectorized evaluation-and-preparation layer:

* ``preprocess(backend="vectorized")`` produces identical removed sets,
  flags, cleaned instances and lift behaviour to the reference fixed point —
  over the shared generator families, hand-built degenerate instances,
  empty instances and hypothesis-generated random (possibly degenerate)
  instances;
* array-backed :class:`~repro.core.solution.Solution` evaluation is
  *bitwise* identical to the dict oracle (loads, utilities, objective
  values) with identical feasibility verdicts, and the cached passes are
  shared (utility + bottleneck = one objective pass, repeated feasibility
  checks = one load pass);
* §4 transform results are cached on the instance per ``(backend, verify)``
  key — an R-sweep over one instance runs the pipeline exactly once, and
  cached transforms never leak across content digests in the engine;
* mid-bisection active-set compaction is bitwise-neutral.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.transforms.vectorized as vectorized_mod
from repro.algo.kernels import _COMPACT_MIN_DROP, batched_upper_bounds
from repro.analysis.ratios import compare_algorithms
from repro.core.builder import InstanceBuilder
from repro.core.compiled import stack_compiled
from repro.core.instance import MaxMinInstance
from repro.core.preprocess import preprocess
from repro.core.solution import Solution
from repro.generators import cycle_instance, random_special_form_instance
from repro.transforms.pipeline import to_special_form

from conftest import (
    build_degenerate_instance,
    build_general_instance,
    build_tiny_instance,
    general_family,
    special_form_family,
)

# ----------------------------------------------------------------------
# Strategies: random instances where every kind of degeneracy can occur.
# ----------------------------------------------------------------------

coefficients = st.floats(min_value=0.1, max_value=5.0, allow_nan=False, allow_infinity=False)


@st.composite
def possibly_degenerate_instances(draw, max_agents: int = 8):
    """Instances with arbitrary (possibly empty) rows and columns."""
    n = draw(st.integers(min_value=0, max_value=max_agents))
    m_con = draw(st.integers(min_value=0, max_value=max_agents))
    m_obj = draw(st.integers(min_value=0, max_value=max_agents))
    agents = [f"v{j}" for j in range(n)]
    constraints = [f"i{j}" for j in range(m_con)]
    objectives = [f"k{j}" for j in range(m_obj)]
    a = {}
    c = {}
    if agents:
        for i in constraints:
            members = draw(st.lists(st.sampled_from(agents), max_size=3, unique=True))
            for v in members:
                a[(i, v)] = draw(coefficients)
        for k in objectives:
            members = draw(st.lists(st.sampled_from(agents), max_size=3, unique=True))
            for v in members:
                c[(k, v)] = draw(coefficients)
    return MaxMinInstance(agents, constraints, objectives, a, c, name="hyp-degenerate")


def fixed_instances():
    return (
        general_family()
        + special_form_family()
        + [
            build_tiny_instance(),
            build_general_instance(),
            build_degenerate_instance(),
            MaxMinInstance([], [], [], {}, {}, name="empty"),
            MaxMinInstance(["a"], [], ["k"], {}, {("k", "a"): 1.0}, name="unbounded"),
            MaxMinInstance(["a"], ["i"], [], {("i", "a"): 1.0}, {}, name="no-objectives"),
        ]
    )


def assert_preprocess_equivalent(instance: MaxMinInstance) -> None:
    ref = preprocess(instance, backend="reference")
    vec = preprocess(instance, backend="vectorized")
    assert set(ref.forced_zero_agents) == set(vec.forced_zero_agents)
    assert set(ref.unconstrained_agents) == set(vec.unconstrained_agents)
    assert set(ref.removed_constraints) == set(vec.removed_constraints)
    assert set(ref.removed_objectives) == set(vec.removed_objectives)
    assert ref.optimum_is_zero == vec.optimum_is_zero
    assert ref.optimum_is_unbounded == vec.optimum_is_unbounded
    assert ref.changed == vec.changed
    assert ref.instance == vec.instance
    # Lift behaviour: the same inner solution lifts to the same values.
    if not ref.optimum_is_zero and ref.instance.num_agents:
        inner_values = {
            v: 0.1 * (idx + 1) for idx, v in enumerate(ref.instance.agents)
        }
        lifted_ref = ref.lift(Solution(ref.instance, inner_values))
        lifted_vec = vec.lift(Solution(vec.instance, inner_values))
        assert lifted_ref.as_dict() == lifted_vec.as_dict()


class TestVectorizedPreprocess:
    @pytest.mark.parametrize(
        "instance", fixed_instances(), ids=lambda inst: inst.name
    )
    def test_backend_equivalence_families(self, instance):
        assert_preprocess_equivalent(instance)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=possibly_degenerate_instances())
    def test_backend_equivalence_hypothesis(self, instance):
        assert_preprocess_equivalent(instance)

    def test_unknown_backend_rejected(self, tiny_instance):
        with pytest.raises(ValueError):
            preprocess(tiny_instance, backend="nope")

    def test_unchanged_instance_returned_as_is(self, tiny_instance):
        for backend in ("vectorized", "reference"):
            pre = preprocess(tiny_instance, backend=backend)
            assert not pre.changed
            assert pre.instance is tiny_instance

    def test_degenerate_instance_cleaned(self, degenerate_instance):
        pre = preprocess(degenerate_instance)
        assert pre.changed
        assert not pre.instance.is_degenerate()
        assert pre.optimum_is_zero
        assert "i_isolated" in pre.removed_constraints
        assert "c" in pre.forced_zero_agents
        assert "d" in pre.unconstrained_agents
        assert "k_unc" in pre.removed_objectives

    def test_cascading_removal_vectorized(self):
        builder = InstanceBuilder("cascade")
        builder.add_constraint_term("i", "a", 1.0)
        builder.add_objective_term("k1", "a", 1.0)
        builder.add_constraint_term("ib", "b", 1.0)
        builder.add_objective_term("k2", "b", 1.0)
        builder.add_objective_term("k2", "free", 1.0)
        pre = preprocess(builder.build(), backend="vectorized")
        assert "free" in pre.unconstrained_agents
        assert "b" in pre.forced_zero_agents
        assert "ib" in pre.removed_constraints
        assert not pre.instance.is_degenerate()


class TestArrayBackedSolution:
    @pytest.mark.parametrize(
        "instance", fixed_instances(), ids=lambda inst: inst.name
    )
    def test_bitwise_family_equivalence(self, instance):
        rng = np.random.default_rng(hash(instance.name) % (2**32))
        values = {v: float(rng.uniform(-0.2, 1.5)) for v in instance.agents}
        arr_sol = Solution(instance, values)
        dict_sol = Solution(instance, values)
        self._assert_bitwise(instance, arr_sol, dict_sol)

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=possibly_degenerate_instances(), seed=st.integers(0, 2**16))
    def test_bitwise_hypothesis(self, instance, seed):
        rng = np.random.default_rng(seed)
        values = {v: float(rng.uniform(-0.2, 1.5)) for v in instance.agents}
        self._assert_bitwise(instance, Solution(instance, values), Solution(instance, values))

    @staticmethod
    def _assert_bitwise(instance, arr_sol, dict_sol):
        # Loads: bitwise per constraint.
        loads = arr_sol.constraint_loads()
        assert len(loads) == instance.num_constraints
        for j, i in enumerate(instance.constraints):
            assert loads[j] == dict_sol.constraint_load(i)
        # Objective values and utility: bitwise.
        assert arr_sol.objective_values() == dict_sol.objective_values(backend="dict")
        assert arr_sol.utility() == dict_sol.utility(backend="dict")
        # Feasibility: identical verdicts, violations and max violation.
        for tol in (1e-9, 0.0, 0.5):
            ra = arr_sol.check_feasibility(tol)
            rd = dict_sol.check_feasibility(tol, backend="dict")
            assert ra.feasible == rd.feasible
            assert ra.max_violation == rd.max_violation
            assert set(ra.violated_constraints) == set(rd.violated_constraints)
            assert set(ra.negative_agents) == set(rd.negative_agents)
        # Bottlenecks: identical (both in canonical objective order).
        assert arr_sol.bottleneck_objectives() == dict_sol.bottleneck_objectives(backend="dict")

    def test_empty_instance(self):
        inst = MaxMinInstance([], [], [], {}, {}, name="empty")
        sol = Solution(inst, {})
        assert sol.utility() == math.inf
        assert sol.is_feasible()
        assert sol.bottleneck_objectives() == ()
        assert len(sol.constraint_loads()) == 0

    def test_from_agent_array_seeds_dense_cache(self, tiny_instance):
        x = np.array([0.5, 0.25])
        sol = Solution.from_agent_array(tiny_instance, x, label="arr")
        dense = sol.value_array()
        assert np.array_equal(dense, x)
        assert dense is not x  # decoupled copy
        assert sol.utility() == 0.75

    def test_utility_and_bottleneck_share_one_objective_pass(self, general_instance, monkeypatch):
        from repro.core.compiled import CompiledInstance

        calls = []
        real = CompiledInstance.objective_values

        def counting(self, values):
            calls.append(1)
            return real(self, values)

        monkeypatch.setattr(CompiledInstance, "objective_values", counting)
        sol = Solution(general_instance, {v: 0.1 for v in general_instance.agents})
        sol.utility()
        sol.bottleneck_objectives()
        sol.objective_values()
        assert len(calls) == 1

    def test_feasibility_checks_share_one_load_pass(self, general_instance, monkeypatch):
        from repro.core.compiled import CompiledInstance

        calls = []
        real = CompiledInstance.constraint_loads

        def counting(self, values):
            calls.append(1)
            return real(self, values)

        monkeypatch.setattr(CompiledInstance, "constraint_loads", counting)
        sol = Solution(general_instance, {v: 0.1 for v in general_instance.agents})
        sol.is_feasible()
        sol.check_feasibility(1e-6)
        sol.constraint_loads()
        assert len(calls) == 1

    def test_unknown_backend_rejected(self, tiny_instance):
        sol = Solution(tiny_instance, {"a": 0.1, "b": 0.1})
        with pytest.raises(ValueError):
            sol.utility(backend="nope")


def _count_pipeline_runs(monkeypatch):
    """Spy on the vectorized §4 pipeline entry point; returns the call list."""
    calls = []
    real = vectorized_mod.vectorized_to_special_form

    def counting(instance, **kwargs):
        calls.append(instance)
        return real(instance, **kwargs)

    monkeypatch.setattr(vectorized_mod, "vectorized_to_special_form", counting)
    return calls


class TestTransformCache:
    def test_repeated_calls_hit_cache(self, monkeypatch, general_instance):
        calls = _count_pipeline_runs(monkeypatch)
        first = to_special_form(general_instance)
        second = to_special_form(general_instance)
        assert first is second
        assert len(calls) == 1

    def test_cache_keyed_per_backend_and_verify(self, general_instance):
        a = to_special_form(general_instance, backend="vectorized", verify=True)
        b = to_special_form(general_instance, backend="vectorized", verify=False)
        c = to_special_form(general_instance, backend="reference", verify=True)
        assert a is not b and a is not c
        assert a is to_special_form(general_instance, backend="vectorized", verify=True)
        assert c is to_special_form(general_instance, backend="reference", verify=True)

    def test_named_results_are_not_cached(self, general_instance):
        a = to_special_form(general_instance, name="custom")
        b = to_special_form(general_instance, name="custom")
        assert a is not b
        # ... and they do not pollute the default-key cache.
        c = to_special_form(general_instance)
        assert c is not a and c is not b

    def test_r_sweep_runs_pipeline_once(self, monkeypatch):
        """The acceptance criterion: zero §4 re-runs across a warm R-sweep."""
        instance = build_general_instance()
        assert not preprocess(instance).changed  # cache must live on `instance`
        calls = _count_pipeline_runs(monkeypatch)
        rows = compare_algorithms(
            instance, R_values=(2, 3, 4), include_safe=False
        )
        assert len(rows) == 3
        assert len(calls) == 1

    def test_no_leak_across_digests_in_engine(self, monkeypatch):
        """One pipeline run per content digest: sibling R-jobs of one digest
        share a run, distinct digests never share a cached transform."""
        from repro.engine.job import make_jobs_for_instance
        from repro.engine.registry import _instance_and_lp, execute_job
        from repro.generators import random_instance

        calls = _count_pipeline_runs(monkeypatch)
        _instance_and_lp.cache_clear()
        inst_a = build_general_instance()
        inst_b = random_instance(
            12, delta_I=3, delta_K=2, extra_constraints=2, extra_objectives=1, seed=5
        )
        jobs = make_jobs_for_instance(
            inst_a, R_values=(2, 3), include_safe=False
        ) + make_jobs_for_instance(inst_b, R_values=(2, 3), include_safe=False)
        for job in jobs:
            execute_job(job)
        # Two digests, four local jobs -> exactly two pipeline runs, on two
        # distinct (per-digest) instance objects.
        assert len(calls) == 2
        assert calls[0] is not calls[1]
        _instance_and_lp.cache_clear()


class TestBisectionCompaction:
    def _stacked(self):
        parts = [
            cycle_instance(30, coefficient_range=(0.5, 2.0), seed=s) for s in range(3)
        ] + [random_special_form_instance(24, delta_K=3, constraint_rounds=2, seed=8)]
        return stack_compiled([inst.compiled() for inst in parts])

    @pytest.mark.parametrize("r", [0, 1, 2])
    def test_compaction_is_bitwise_neutral(self, r):
        stacked = self._stacked()
        plain = batched_upper_bounds(stacked, r, compact=False)
        compacted = batched_upper_bounds(stacked, r, compact=True)
        assert np.array_equal(plain, compacted)

    @pytest.mark.parametrize("r", [0, 1])
    def test_forced_compaction_is_bitwise_neutral(self, r, monkeypatch):
        """Drop the compaction floor so the path actually triggers."""
        import repro.algo.kernels as kernels_mod

        stacked = self._stacked()
        plain = batched_upper_bounds(stacked, r, compact=False, deduplicate=False)
        monkeypatch.setattr(kernels_mod, "_COMPACT_MIN_DROP", 1)
        monkeypatch.setattr(kernels_mod, "_COMPACT_FRACTION", 0.99)
        compacted = batched_upper_bounds(stacked, r, compact=True, deduplicate=False)
        assert np.array_equal(plain, compacted)

    def test_min_drop_floor_is_sane(self):
        assert _COMPACT_MIN_DROP >= 1

    def test_solve_batch_matches_solo_with_compaction(self):
        from repro.algo.local_solver import SpecialFormLocalSolver

        instances = [
            cycle_instance(20, coefficient_range=(0.5, 2.0), seed=s) for s in range(3)
        ]
        solver = SpecialFormLocalSolver(R=3)
        solo = [solver.solve(inst) for inst in instances]
        batch = solver.solve_batch(instances)
        for a, b, inst in zip(solo, batch, instances):
            for v in inst.agents:
                assert a.solution[v] == b.solution[v]
