"""Smaller-module tests: typed node helpers, exceptions, dynamics helpers, harness utilities."""

from __future__ import annotations

import pytest

from repro._types import NodeType, agent_node, constraint_node, objective_node
from repro.core.instance import MaxMinInstance
from repro.distributed.dynamics import changed_sites, local_horizon_radius
from repro.exceptions import (
    DegenerateInstanceError,
    InfeasibleSolutionError,
    InvalidInstanceError,
    NotSpecialFormError,
    ReproError,
    SerializationError,
    SimulationError,
    SolverError,
    TransformError,
)
from repro.generators import cycle_instance


class TestTypes:
    def test_node_wrappers(self):
        assert agent_node("v") == (NodeType.AGENT, "v")
        assert constraint_node("i") == (NodeType.CONSTRAINT, "i")
        assert objective_node("k") == (NodeType.OBJECTIVE, "k")

    def test_short_tags(self):
        assert NodeType.AGENT.short == "V"
        assert NodeType.CONSTRAINT.short == "I"
        assert NodeType.OBJECTIVE.short == "K"

    def test_namespaces_do_not_collide(self):
        inst = MaxMinInstance(
            ["x"], ["x"], ["x"], {("x", "x"): 1.0}, {("x", "x"): 1.0}, name="collide"
        )
        # The same identifier may appear as an agent, a constraint and an
        # objective; the typed graph keeps them apart.
        graph = inst.communication_graph()
        assert graph.number_of_nodes() == 3


class TestExceptions:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidInstanceError,
            DegenerateInstanceError,
            NotSpecialFormError,
            InfeasibleSolutionError,
            SolverError,
            TransformError,
            SimulationError,
            SerializationError,
        ],
    )
    def test_hierarchy(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestDynamicsHelpers:
    def test_local_horizon_radius_grows_linearly(self):
        radii = [local_horizon_radius(R) for R in (2, 3, 4, 5)]
        assert radii == sorted(radii)
        assert radii[1] - radii[0] == radii[2] - radii[1] == 12

    def test_changed_sites_structural_changes(self):
        before = cycle_instance(4)
        # Remove one agent entirely (and its incident edges).
        keep = [v for v in before.agents if v != "v0"]
        after = before.sub_instance(keep, before.constraints, before.objectives)
        sites = changed_sites(before, after)
        assert agent_node("v0") in sites

    def test_changed_sites_objective_coefficient(self):
        before = cycle_instance(4)
        c = before.c_coefficients
        c[("k0", "v1")] = 2.0
        after = MaxMinInstance(
            before.agents, before.constraints, before.objectives, before.a_coefficients, c
        )
        assert agent_node("v1") in changed_sites(before, after)


class TestBenchmarkHarnessHelpers:
    def test_emit_table_writes_markdown(self, tmp_path, monkeypatch, capsys):
        import _harness

        monkeypatch.setattr(_harness, "RESULTS_DIR", tmp_path)
        rows = [{"a": 1.0, "b": "x"}]
        text = _harness.emit_table("T0", "demo", rows, notes="note")
        assert "T0: demo" in text
        written = (tmp_path / "t0.md").read_text(encoding="utf-8")
        assert "note" in written and "| a | b |" in written
        assert "T0: demo" in capsys.readouterr().out

    def test_standard_families_are_valid(self):
        import _harness

        special = _harness.standard_special_form_family()
        general = _harness.standard_general_family()
        assert len(special) >= 5 and len(general) >= 4
        for inst in special.values():
            assert inst.is_special_form()
        for inst in general.values():
            assert not inst.is_degenerate()
