"""repro — local approximation algorithms for max-min linear programs.

A from-scratch reproduction of

    P. Floréen, J. Kaasinen, P. Kaski, J. Suomela,
    "An Optimal Local Approximation Algorithm for Max-Min Linear Programs",
    Proc. SPAA 2009.

Public API highlights
---------------------
* :class:`repro.core.MaxMinInstance`, :class:`repro.core.InstanceBuilder` —
  problem representation.
* :func:`repro.core.solve_maxmin_lp` — exact optimum (ground truth).
* :class:`repro.algo.LocalMaxMinSolver` — the paper's local algorithm with
  the Theorem 1 guarantee ``ΔI (1 − 1/ΔK)(1 + 1/(R − 1))``.
* :class:`repro.algo.SafeAlgorithm` — the prior-work factor-``ΔI`` baseline.
* :mod:`repro.distributed` — synchronous message-passing simulator and the
  distributed realisation of the algorithm.
* :mod:`repro.generators` — workload generators (random, regular, cycles,
  grids, sensor networks, bandwidth allocation, lower-bound gadgets).
"""

from .core import (
    InstanceBuilder,
    LPResult,
    MaxMinInstance,
    Solution,
    optimum_value,
    preprocess,
    solve_maxmin_lp,
)
from .algo import (
    Certificate,
    LocalMaxMinSolver,
    SafeAlgorithm,
    SpecialFormLocalSolver,
    theorem1_ratio,
)
from .transforms import to_special_form

__version__ = "1.1.0"

__all__ = [
    "MaxMinInstance",
    "InstanceBuilder",
    "Solution",
    "LPResult",
    "solve_maxmin_lp",
    "optimum_value",
    "preprocess",
    "LocalMaxMinSolver",
    "SpecialFormLocalSolver",
    "SafeAlgorithm",
    "Certificate",
    "theorem1_ratio",
    "to_special_form",
    "__version__",
]
