"""Framework for the local transformations of paper §4.

Each transformation takes a max-min LP instance and produces

* a transformed instance,
* a *back-mapping* that converts any feasible solution of the transformed
  instance into a feasible solution of the original instance, and
* a *ratio factor*: if the transformed solution is an ``α``-approximation of
  the transformed instance's optimum, the back-mapped solution is an
  ``α · ratio_factor``-approximation of the original optimum (factor 1.0 for
  all transformations except §4.3, which costs ``ΔI / 2``).

Transformations compose: :func:`compose` chains the back-mappings in reverse
order and multiplies the ratio factors.

All transformations in this package are *locally computable* in the sense of
paper §4.1 — each one only inspects a constant-radius neighbourhood of every
node it modifies.  The implementations here operate on the whole instance at
once for clarity and speed; the locality is exercised explicitly by the
distributed runtime and the locality tests.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence

from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..exceptions import TransformError

__all__ = ["TransformResult", "Transform", "compose"]

#: Signature of a back-mapping: solution of the transformed instance in,
#: solution of the original instance out.
BackMap = Callable[[Solution], Solution]


class TransformResult:
    """Outcome of applying one transformation (or a composed pipeline).

    Attributes
    ----------
    original:
        The instance the transformation was applied to.
    transformed:
        The resulting instance.
    ratio_factor:
        Multiplicative loss in approximation ratio incurred by mapping back.
    name:
        Name of the transformation (for reports).
    metadata:
        Free-form dictionary with per-transformation details (e.g. how many
        constraints were split).
    """

    __slots__ = ("original", "transformed", "_back_map", "ratio_factor", "name", "metadata")

    def __init__(
        self,
        original: MaxMinInstance,
        transformed: MaxMinInstance,
        back_map: BackMap,
        ratio_factor: float = 1.0,
        name: str = "transform",
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self.original = original
        self.transformed = transformed
        self._back_map = back_map
        self.ratio_factor = ratio_factor
        self.name = name
        self.metadata = metadata or {}

    @property
    def changed(self) -> bool:
        """True unless the transformation was a no-op."""
        return not self.original.structurally_equal(self.transformed)

    def map_back(self, solution: Solution, label: Optional[str] = None) -> Solution:
        """Convert a solution of :attr:`transformed` into one of :attr:`original`."""
        if solution.instance != self.transformed:
            raise TransformError(
                f"map_back of {self.name!r} expects a solution of the transformed instance"
            )
        mapped = self._back_map(solution)
        if label is not None:
            mapped = Solution(self.original, mapped.as_dict(), label=label)
        return mapped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransformResult(name={self.name!r}, ratio_factor={self.ratio_factor:g}, "
            f"|V|:{self.original.num_agents}->{self.transformed.num_agents}, "
            f"|I|:{self.original.num_constraints}->{self.transformed.num_constraints}, "
            f"|K|:{self.original.num_objectives}->{self.transformed.num_objectives})"
        )


class Transform(abc.ABC):
    """Abstract base class of the §4 transformations."""

    #: Human-readable name, e.g. ``"augment-singleton-constraints (§4.2)"``.
    name: str = "transform"

    @abc.abstractmethod
    def apply(self, instance: MaxMinInstance) -> TransformResult:
        """Apply the transformation and return a :class:`TransformResult`."""

    def __call__(self, instance: MaxMinInstance) -> TransformResult:
        return self.apply(instance)

    def check_preconditions(self, instance: MaxMinInstance) -> None:
        """Hook for subclasses; raise :class:`TransformError` when violated."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def compose(results: Sequence[TransformResult], name: str = "pipeline") -> TransformResult:
    """Compose a chain of transformation results applied in the given order.

    ``results[0].original`` is the original instance and
    ``results[-1].transformed`` the final instance; back-mappings are applied
    in reverse order and ratio factors multiply.
    """
    if not results:
        raise TransformError("cannot compose an empty transformation chain")

    for first, second in zip(results, results[1:]):
        if not first.transformed.structurally_equal(second.original):
            raise TransformError(
                f"transformation chain broken between {first.name!r} and {second.name!r}: "
                "the output of one is not the input of the next"
            )

    chain: List[TransformResult] = list(results)
    factor = 1.0
    for res in chain:
        factor *= res.ratio_factor

    def back_map(solution: Solution) -> Solution:
        current = solution
        for res in reversed(chain):
            current = res.map_back(current)
        return current

    metadata: Dict[str, object] = {
        "stages": [res.name for res in chain],
        "stage_ratio_factors": [res.ratio_factor for res in chain],
    }
    return TransformResult(
        original=chain[0].original,
        transformed=chain[-1].transformed,
        back_map=back_map,
        ratio_factor=factor,
        name=name,
        metadata=metadata,
    )
