"""§4.5 — Augmenting singleton objectives.

After this transformation every objective has degree at least 2
(``|V_k| ≥ 2``).  For an objective ``k`` with a single adjacent agent ``v``,
the agent is replaced by two copies ``t`` and ``u``; every constraint
adjacent to ``v`` is replaced by two copies (one containing ``t``, the other
``u``) and the objective coefficient is split: ``c_kt = c_ku = c_kv / 2``.
All other coefficients are unchanged.

The optima coincide and the ratio is preserved; the back-mapping identifies
the copies again by taking their maximum (raising both copies to the maximum
keeps every copied constraint satisfied because the coefficients agree).

This transformation expects ``|K_v| = 1`` for every agent (run §4.4 first),
which guarantees each agent is split at most once.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .._types import NodeId
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..exceptions import TransformError
from .base import Transform, TransformResult

__all__ = ["AugmentSingletonObjectives"]


class AugmentSingletonObjectives(Transform):
    """Ensure ``|V_k| ≥ 2`` for every objective (paper §4.5)."""

    name = "augment-singleton-objectives (§4.5)"

    def check_preconditions(self, instance: MaxMinInstance) -> None:
        for v in instance.agents:
            if len(instance.objectives_of_agent(v)) != 1:
                raise TransformError(
                    f"{self.name} requires |K_v| = 1 for every agent (run §4.4 first); "
                    f"agent {v!r} has {len(instance.objectives_of_agent(v))} objectives"
                )

    def apply(self, instance: MaxMinInstance) -> TransformResult:
        self.check_preconditions(instance)

        singleton_objectives = [
            k for k in instance.objectives if len(instance.agents_of_objective(k)) == 1
        ]

        if not singleton_objectives:
            return TransformResult(
                original=instance,
                transformed=instance,
                back_map=lambda sol: Solution(instance, sol.as_dict(), label=sol.label),
                ratio_factor=1.0,
                name=self.name,
                metadata={"augmented_objectives": 0},
            )

        agents: List[NodeId] = list(instance.agents)
        constraints: List[NodeId] = list(instance.constraints)
        a: Dict[Tuple[NodeId, NodeId], float] = instance.a_coefficients
        c: Dict[Tuple[NodeId, NodeId], float] = instance.c_coefficients

        copies_of: Dict[NodeId, Tuple[NodeId, NodeId]] = {}

        for k in singleton_objectives:
            v = instance.agents_of_objective(k)[0]
            t = ("copy45", v, 0)
            u = ("copy45", v, 1)
            copies_of[v] = (t, u)

            pos = agents.index(v)
            agents[pos:pos + 1] = [t, u]

            coeff_k = c.pop((k, v))
            c[(k, t)] = coeff_k / 2.0
            c[(k, u)] = coeff_k / 2.0

            # Constraints *currently* containing v (earlier splits in this very
            # transformation may already have replaced some original
            # constraints by copies that still contain v).
            current_constraints = [i for i in constraints if (i, v) in a]
            for i in current_constraints:
                coeff_v = a.pop((i, v))
                other_members = [w for (ci, w) in list(a.keys()) if ci == i]
                other_coeffs = {w: a.pop((i, w)) for w in other_members}
                pos_i = constraints.index(i)
                copy_t = ("copyc45", i, v, 0)
                copy_u = ("copyc45", i, v, 1)
                constraints[pos_i:pos_i + 1] = [copy_t, copy_u]
                a[(copy_t, t)] = coeff_v
                a[(copy_u, u)] = coeff_v
                for w, coeff_w in other_coeffs.items():
                    a[(copy_t, w)] = coeff_w
                    a[(copy_u, w)] = coeff_w

        transformed = MaxMinInstance(
            agents=agents,
            constraints=constraints,
            objectives=list(instance.objectives),
            a=a,
            c=c,
            name=f"{instance.name}#4.5",
        )

        def back_map(solution: Solution) -> Solution:
            values: Dict[NodeId, float] = {}
            for v in instance.agents:
                if v in copies_of:
                    t, u = copies_of[v]
                    values[v] = max(solution[t], solution[u])
                else:
                    values[v] = solution[v]
            return Solution(instance, values, label=f"{solution.label}<-4.5")

        return TransformResult(
            original=instance,
            transformed=transformed,
            back_map=back_map,
            ratio_factor=1.0,
            name=self.name,
            metadata={
                "augmented_objectives": len(singleton_objectives),
                "num_agents_after": len(agents),
            },
        )
