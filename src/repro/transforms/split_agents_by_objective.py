"""§4.4 — Associating a unique objective with each agent.

After this transformation every agent is adjacent to exactly one objective
(``|K_v| = 1``).  An agent ``v`` with ``|K_v| > 1`` is replaced by ``|K_v|``
copies, one per objective in ``K_v``; every constraint adjacent to ``v`` is
replaced by ``|K_v|`` copies in which ``v`` is substituted by a distinct
copy.  Coefficients are unchanged.

The optima of the original and transformed instances coincide and the
approximation ratio is preserved: all copies of ``v`` can be assumed to take
the same value (raising every copy to the maximum over the copies keeps all
copied constraints satisfied because they have identical coefficients), so
back-mapping sets ``x_v = max`` over the copies of ``v``.

Agents are processed sequentially; a constraint adjacent to two split agents
ends up copied once per combination of objective choices, exactly as in the
paper's description applied agent by agent.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .._types import NodeId
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from .base import Transform, TransformResult

__all__ = ["SplitAgentsByObjective"]


class SplitAgentsByObjective(Transform):
    """Ensure ``|K_v| = 1`` for every agent (paper §4.4)."""

    name = "split-agents-by-objective (§4.4)"

    def apply(self, instance: MaxMinInstance) -> TransformResult:
        multi = [v for v in instance.agents if len(instance.objectives_of_agent(v)) > 1]

        if not multi:
            return TransformResult(
                original=instance,
                transformed=instance,
                back_map=lambda sol: Solution(instance, sol.as_dict(), label=sol.label),
                ratio_factor=1.0,
                name=self.name,
                metadata={"split_agents": 0},
            )

        # Mutable working copies of the instance structure.
        agents: List[NodeId] = list(instance.agents)
        constraints: List[NodeId] = list(instance.constraints)
        objectives: List[NodeId] = list(instance.objectives)
        a: Dict[Tuple[NodeId, NodeId], float] = instance.a_coefficients
        c: Dict[Tuple[NodeId, NodeId], float] = instance.c_coefficients

        # original agent -> list of copies created for it (for the back-map).
        copies_of: Dict[NodeId, List[NodeId]] = {}

        def agents_of_constraint(i: NodeId) -> List[NodeId]:
            return [v for (ci, v) in a.keys() if ci == i]

        for v in multi:
            ks = instance.objectives_of_agent(v)
            new_copies = [("copy44", v, k) for k in ks]
            copies_of[v] = new_copies

            # Replace the agent.
            pos = agents.index(v)
            agents[pos:pos + 1] = new_copies

            # Objective edges: each copy joins exactly its own objective.
            for k in ks:
                coeff = c.pop((k, v))
                c[(k, ("copy44", v, k))] = coeff
            # Any other objective edge of v does not exist (we popped all).

            # Constraint edges: replace every constraint currently containing v
            # by |K_v| copies, one per new agent copy.
            current_constraints = [i for i in constraints if (i, v) in a]
            for i in current_constraints:
                members = agents_of_constraint(i)
                coeff_v = a.pop((i, v))
                other_coeffs = {w: a.pop((i, w)) for w in members if w != v}
                pos_i = constraints.index(i)
                replacements = []
                for k in ks:
                    new_i = ("copyc44", i, v, k)
                    replacements.append(new_i)
                    a[(new_i, ("copy44", v, k))] = coeff_v
                    for w, coeff_w in other_coeffs.items():
                        a[(new_i, w)] = coeff_w
                constraints[pos_i:pos_i + 1] = replacements

        transformed = MaxMinInstance(
            agents=agents,
            constraints=constraints,
            objectives=objectives,
            a=a,
            c=c,
            name=f"{instance.name}#4.4",
        )

        def back_map(solution: Solution) -> Solution:
            values: Dict[NodeId, float] = {}
            for v in instance.agents:
                if v in copies_of:
                    values[v] = max(solution[copy] for copy in copies_of[v])
                else:
                    values[v] = solution[v]
            return Solution(instance, values, label=f"{solution.label}<-4.4")

        return TransformResult(
            original=instance,
            transformed=transformed,
            back_map=back_map,
            ratio_factor=1.0,
            name=self.name,
            metadata={
                "split_agents": len(multi),
                "num_agents_after": len(agents),
                "num_constraints_after": len(constraints),
            },
        )
