"""Local transformations of paper §4 and their composition."""

from .augment_singleton_constraints import AugmentSingletonConstraints
from .augment_singleton_objectives import AugmentSingletonObjectives
from .base import Transform, TransformResult, compose
from .normalise_coefficients import NormaliseCoefficients
from .pipeline import apply_chain, canonical_transforms, to_special_form
from .reduce_constraint_degree import ReduceConstraintDegree
from .split_agents_by_objective import SplitAgentsByObjective
from .vectorized import CompiledTransformResult, vectorized_to_special_form

__all__ = [
    "Transform",
    "TransformResult",
    "compose",
    "AugmentSingletonConstraints",
    "ReduceConstraintDegree",
    "SplitAgentsByObjective",
    "AugmentSingletonObjectives",
    "NormaliseCoefficients",
    "canonical_transforms",
    "apply_chain",
    "to_special_form",
    "CompiledTransformResult",
    "vectorized_to_special_form",
]
