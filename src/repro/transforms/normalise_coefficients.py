"""§4.6 — Normalising objective coefficients.

After this transformation ``c_kv = 1`` for every objective edge.  For each
agent ``v`` (which, after §4.4, has a unique objective ``k(v)``) both the
constraint coefficients ``a_iv`` and the objective coefficient ``c_{k(v)v}``
are divided by ``c_{k(v)v}``.  The communication graph (and port numbering)
is unchanged.

This corresponds to the change of variables ``x'_v = c_{k(v)v} · x_v``:

* constraints:  ``Σ (a_iv / c_v) x'_v = Σ a_iv x_v ≤ 1``,
* objectives:   ``Σ (c_kv / c_v) x'_v = Σ c_kv x_v``,

so the feasible regions and utilities are in exact bijection and the
approximation ratio is preserved.  Mapping a transformed solution ``x'``
back therefore sets ``x_v = x'_v / c_{k(v)v}``.  (The paper's one-line
"multiply" phrasing describes the forward change of variables; the inverse
map used here divides, which the round-trip tests confirm.)
"""

from __future__ import annotations

from typing import Dict, Tuple

from .._types import NodeId
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..exceptions import TransformError
from .base import Transform, TransformResult

__all__ = ["NormaliseCoefficients"]


class NormaliseCoefficients(Transform):
    """Ensure ``c_kv = 1`` on every objective edge (paper §4.6)."""

    name = "normalise-coefficients (§4.6)"

    def check_preconditions(self, instance: MaxMinInstance) -> None:
        for v in instance.agents:
            if len(instance.objectives_of_agent(v)) != 1:
                raise TransformError(
                    f"{self.name} requires |K_v| = 1 for every agent (run §4.4 first); "
                    f"agent {v!r} has {len(instance.objectives_of_agent(v))} objectives"
                )

    def apply(self, instance: MaxMinInstance) -> TransformResult:
        self.check_preconditions(instance)

        # Per-agent scaling factor c_{k(v) v}.
        scale: Dict[NodeId, float] = {}
        for v in instance.agents:
            k = instance.objectives_of_agent(v)[0]
            scale[v] = instance.c(k, v)

        already_normalised = all(abs(s - 1.0) <= 1e-15 for s in scale.values())
        if already_normalised:
            return TransformResult(
                original=instance,
                transformed=instance,
                back_map=lambda sol: Solution(instance, sol.as_dict(), label=sol.label),
                ratio_factor=1.0,
                name=self.name,
                metadata={"rescaled_agents": 0},
            )

        a: Dict[Tuple[NodeId, NodeId], float] = {
            (i, v): coeff / scale[v] for (i, v), coeff in instance.a_coefficients.items()
        }
        c: Dict[Tuple[NodeId, NodeId], float] = {
            (k, v): coeff / scale[v] for (k, v), coeff in instance.c_coefficients.items()
        }

        transformed = MaxMinInstance(
            agents=list(instance.agents),
            constraints=list(instance.constraints),
            objectives=list(instance.objectives),
            a=a,
            c=c,
            name=f"{instance.name}#4.6",
        )

        def back_map(solution: Solution) -> Solution:
            values = {v: solution[v] / scale[v] for v in instance.agents}
            return Solution(instance, values, label=f"{solution.label}<-4.6")

        return TransformResult(
            original=instance,
            transformed=transformed,
            back_map=back_map,
            ratio_factor=1.0,
            name=self.name,
            metadata={"rescaled_agents": sum(1 for s in scale.values() if abs(s - 1.0) > 1e-15)},
        )
