"""§4.2 — Augmenting singleton constraints.

After this transformation every constraint has degree at least 2
(``|V_i| ≥ 2``).  A degree-1 constraint ``i`` with unique agent ``v`` is
augmented with a small gadget: three new agents ``s``, ``t``, ``u``, two new
objectives ``h``, ``ℓ`` and one new constraint ``j`` wired as

* ``a_is = a_jt = a_ju = 1`` (``s`` joins the old constraint ``i``; ``t`` and
  ``u`` share the new constraint ``j``),
* ``c_hs = c_ℓs = 1`` and ``c_ht = c_ℓu = M`` where
  ``M = 2 Σ_{w ∈ V_k} c_kw · min_{i ∈ I_w} 1/a_iw`` for some objective
  ``k ∈ K_v`` adjacent to ``v``.

The constant ``M`` is large enough that the new objectives ``h`` and ``ℓ``
never constrain the optimum (setting ``x_t = x_u = 1/2`` and ``x_s = 0``
already pushes them above any achievable utility of the original instance),
so the optima of the original and transformed instances coincide and the
approximation ratio is preserved exactly (factor 1).

Back-mapping simply forgets the new agents.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .._types import NodeId
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..exceptions import TransformError
from .base import Transform, TransformResult

__all__ = ["AugmentSingletonConstraints"]


class AugmentSingletonConstraints(Transform):
    """Ensure ``|V_i| ≥ 2`` for every constraint (paper §4.2)."""

    name = "augment-singleton-constraints (§4.2)"

    def check_preconditions(self, instance: MaxMinInstance) -> None:
        degeneracies = instance.degeneracies()
        if degeneracies:
            raise TransformError(
                f"{self.name} requires a non-degenerate instance; found {sorted(degeneracies)}"
            )

    def apply(self, instance: MaxMinInstance) -> TransformResult:
        self.check_preconditions(instance)

        singletons = [i for i in instance.constraints if len(instance.agents_of_constraint(i)) == 1]

        if not singletons:
            identity = TransformResult(
                original=instance,
                transformed=instance,
                back_map=lambda sol: Solution(instance, sol.as_dict(), label=sol.label),
                ratio_factor=1.0,
                name=self.name,
                metadata={"augmented_constraints": 0},
            )
            return identity

        agents: List[NodeId] = list(instance.agents)
        constraints: List[NodeId] = list(instance.constraints)
        objectives: List[NodeId] = list(instance.objectives)
        a: Dict[Tuple[NodeId, NodeId], float] = instance.a_coefficients
        c: Dict[Tuple[NodeId, NodeId], float] = instance.c_coefficients

        new_agents: List[NodeId] = []

        for i in singletons:
            v = instance.agents_of_constraint(i)[0]
            ks = instance.objectives_of_agent(v)
            if not ks:  # pragma: no cover - excluded by precondition
                raise TransformError(f"agent {v!r} adjacent to singleton constraint {i!r} has no objective")
            k = ks[0]

            # The "never binding" coefficient M (paper §4.2).
            big = 0.0
            for w in instance.agents_of_objective(k):
                cap = instance.agent_capacity(w)
                big += instance.c(k, w) * cap
            big = 2.0 * big
            if big <= 0.0:
                big = 1.0

            s = ("aug42", i, "s")
            t = ("aug42", i, "t")
            u = ("aug42", i, "u")
            h = ("aug42", i, "h")
            ell = ("aug42", i, "l")
            j = ("aug42", i, "j")

            agents.extend([s, t, u])
            new_agents.extend([s, t, u])
            objectives.extend([h, ell])
            constraints.append(j)

            a[(i, s)] = 1.0
            a[(j, t)] = 1.0
            a[(j, u)] = 1.0
            c[(h, s)] = 1.0
            c[(ell, s)] = 1.0
            c[(h, t)] = big
            c[(ell, u)] = big

        transformed = MaxMinInstance(
            agents=agents,
            constraints=constraints,
            objectives=objectives,
            a=a,
            c=c,
            name=f"{instance.name}#4.2",
        )

        original_agents = tuple(instance.agents)

        def back_map(solution: Solution) -> Solution:
            values = {v: solution[v] for v in original_agents}
            return Solution(instance, values, label=f"{solution.label}<-4.2")

        return TransformResult(
            original=instance,
            transformed=transformed,
            back_map=back_map,
            ratio_factor=1.0,
            name=self.name,
            metadata={
                "augmented_constraints": len(singletons),
                "new_agents": len(new_agents),
            },
        )
