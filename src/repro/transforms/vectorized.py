"""Compiled (array-native) implementation of the §4 transformation pipeline.

The reference pipeline (:mod:`repro.transforms.pipeline`) applies the five
§4 transformations as object-graph rewrites: each stage materialises a fresh
:class:`~repro.core.instance.MaxMinInstance`, scans coefficient dicts per
node (some of those scans are quadratic — §4.4 and §4.5 walk the whole
coefficient map once per touched constraint) and chains one Python
back-mapping closure per stage.  This module computes the *same* composed
transformation as index arithmetic on the instance's compiled CSR arrays
(:meth:`MaxMinInstance.compiled`):

* every stage rewrites ``(indptr, indices, coefficients)`` arrays with
  gathers, segment reductions and cumulative-sum relabelling — no
  intermediate instances exist, only the final special-form instance is
  materialised;
* the five back-mappings are folded into **one** array-encoded map: per
  original agent a segment of ``(gather index, scale)`` pairs, so mapping a
  solution back is a single gather + scaled segmented max.  (§4.3 and §4.6
  contribute the scales, §4.4 and §4.5 the multi-entry segments — a scaled
  max composes exactly because every scale is positive.)

Fidelity contract (pinned by ``tests/test_transforms_vectorized.py``): the
final instance is **digest-identical** to the reference pipeline's output —
same node identifiers in the same canonical order, bitwise-equal
coefficients — and back-mapped solutions agree within 1e-12.  The arithmetic
mirrors the reference implementation operation for operation (including the
sequential summation order of the §4.2 gadget constant ``M``); only the
scale *composition* order differs, which is what the 1e-12 (rather than
bitwise) solution tolerance accounts for.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional

import numpy as np

from .._types import NodeId
from ..core.compiled import _segment_gather
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..core.validation import require_nondegenerate, require_special_form
from ..exceptions import TransformError
from .base import BackMap, TransformResult

__all__ = ["CompiledTransformResult", "vectorized_to_special_form"]

_NAME_42 = "augment-singleton-constraints (§4.2)"
_NAME_43 = "reduce-constraint-degree (§4.3)"
_NAME_44 = "split-agents-by-objective (§4.4)"
_NAME_45 = "augment-singleton-objectives (§4.5)"
_NAME_46 = "normalise-coefficients (§4.6)"


class CompiledTransformResult(TransformResult):
    """A :class:`TransformResult` whose back-map is array-encoded.

    Attributes
    ----------
    bm_indptr, bm_idx, bm_scale:
        The composed back-map: original agent ``o`` (canonical position)
        takes the value ``max { bm_scale[e] · x[bm_idx[e]] }`` over its
        segment ``bm_indptr[o]:bm_indptr[o+1]``, where ``x`` is the
        transformed instance's value vector in canonical agent order.
        Segments are never empty and every scale is positive.
    """

    __slots__ = ("bm_indptr", "bm_idx", "bm_scale")

    def __init__(
        self,
        original: MaxMinInstance,
        transformed: MaxMinInstance,
        back_map: BackMap,
        bm_indptr: np.ndarray,
        bm_idx: np.ndarray,
        bm_scale: np.ndarray,
        ratio_factor: float = 1.0,
        name: str = "transform",
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(
            original=original,
            transformed=transformed,
            back_map=back_map,
            ratio_factor=ratio_factor,
            name=name,
            metadata=metadata,
        )
        self.bm_indptr = bm_indptr
        self.bm_idx = bm_idx
        self.bm_scale = bm_scale

    def map_back_array(self, values: np.ndarray) -> np.ndarray:
        """Back-map a canonical-order value vector of the transformed instance.

        The array twin of :meth:`map_back` for callers that already hold a
        canonical-order vector: no :class:`Solution` objects, no dict
        round-trips.  (:meth:`map_back` itself applies the same arrays after
        extracting the vector from the solution.)
        """
        if len(self.bm_idx) == 0:
            return np.zeros(0, dtype=np.float64)
        scaled = self.bm_scale * np.asarray(values, dtype=np.float64)[self.bm_idx]
        return np.maximum.reduceat(scaled, self.bm_indptr[:-1])


class _PipelineState:
    """Mutable array view of the instance as it moves through the stages.

    ``con_*`` / ``obj_*`` are per-constraint / per-objective CSR rows over
    agent *positions* (rows sorted ascending, i.e. canonical agent order —
    the same invariant :class:`MaxMinInstance` maintains); ``agents`` /
    ``constraints`` / ``objectives`` are the id lists defining those
    positions.  ``bm_*`` is the composed back-map built up stage by stage
    (see :class:`CompiledTransformResult`).
    """

    __slots__ = (
        "agents",
        "constraints",
        "objectives",
        "con_indptr",
        "con_agents",
        "con_coeff",
        "obj_indptr",
        "obj_agents",
        "obj_coeff",
        "bm_indptr",
        "bm_idx",
        "bm_scale",
        "name",
        "ratio_factor",
        "stage_names",
        "stage_factors",
        "stage_metadata",
        "label_suffixes",
        "changed",
    )

    def __init__(self, instance: MaxMinInstance) -> None:
        comp = instance.compiled()
        self.agents: List[NodeId] = list(instance.agents)
        self.constraints: List[NodeId] = list(instance.constraints)
        self.objectives: List[NodeId] = list(instance.objectives)
        self.con_indptr = comp.cagents_indptr
        self.con_agents = comp.cagents_indices
        self.con_coeff = comp.cagents_coeff
        self.obj_indptr = comp.oagents_indptr
        self.obj_agents = comp.oagents_indices
        self.obj_coeff = comp.oagents_coeff
        n = len(self.agents)
        self.bm_indptr = np.arange(n + 1, dtype=np.int64)
        self.bm_idx = np.arange(n, dtype=np.int64)
        self.bm_scale = np.ones(n, dtype=np.float64)
        self.name = instance.name
        self.ratio_factor = 1.0
        self.stage_names: List[str] = []
        self.stage_factors: List[float] = []
        self.stage_metadata: List[Dict[str, object]] = []
        self.label_suffixes: List[str] = []
        self.changed = False

    # ------------------------------------------------------------------
    def record_stage(
        self,
        name: str,
        factor: float,
        metadata: Dict[str, object],
        changed: bool,
        suffix: str,
    ) -> None:
        self.stage_names.append(name)
        self.stage_factors.append(factor)
        self.ratio_factor *= factor
        self.stage_metadata.append(metadata)
        if changed:
            self.changed = True
            self.name = f"{self.name}#{suffix}"
            self.label_suffixes.append(suffix)

    def capacity(self) -> np.ndarray:
        """``min_{i ∈ I_v} 1/a_iv`` per agent position (``inf`` if unconstrained)."""
        cap = np.full(len(self.agents), np.inf, dtype=np.float64)
        if len(self.con_coeff):
            np.minimum.at(cap, self.con_agents, 1.0 / self.con_coeff)
        return cap

    def agent_objective_counts(self) -> np.ndarray:
        """``|K_v|`` per agent position."""
        n = len(self.agents)
        if not len(self.obj_agents):
            return np.zeros(n, dtype=np.int64)
        return np.bincount(self.obj_agents, minlength=n).astype(np.int64)

    def expand_back_map(self, cnt: np.ndarray, new_start: np.ndarray) -> None:
        """Compose an in-place agent split into the back-map.

        The current agent at position ``p`` is replaced by ``cnt[p]`` copies
        occupying new positions ``new_start[p] … new_start[p] + cnt[p] − 1``;
        the back-mapped value of a split agent is the max over its copies
        (§4.4 / §4.5), so every back-map entry fans out over the copies of
        its target with an unchanged scale.
        """
        reps = cnt[self.bm_idx]
        new_idx = _segment_gather(new_start[self.bm_idx], reps)
        new_scale = np.repeat(self.bm_scale, reps)
        if len(self.bm_indptr) > 1:
            per_orig = np.add.reduceat(reps, self.bm_indptr[:-1])
        else:
            per_orig = np.zeros(0, dtype=np.int64)
        self.bm_indptr = np.zeros(len(per_orig) + 1, dtype=np.int64)
        np.cumsum(per_orig, out=self.bm_indptr[1:])
        self.bm_idx = new_idx
        self.bm_scale = new_scale


# ----------------------------------------------------------------------
# §4.2 — augment singleton constraints
# ----------------------------------------------------------------------
def _stage_augment_singleton_constraints(st: _PipelineState) -> None:
    deg = np.diff(st.con_indptr)
    singles = np.flatnonzero(deg == 1)
    if len(singles) == 0:
        st.record_stage(_NAME_42, 1.0, {"augmented_constraints": 0}, False, "4.2")
        return

    n = len(st.agents)
    num_obj = len(st.objectives)
    cap = st.capacity()
    obj_deg = np.diff(st.obj_indptr)
    owner = np.repeat(np.arange(num_obj, dtype=np.int64), obj_deg)
    first_obj = np.full(n, num_obj, dtype=np.int64)
    np.minimum.at(first_obj, st.obj_agents, owner)

    num_singles = len(singles)
    s_pos = n + 3 * np.arange(num_singles, dtype=np.int64)
    t_pos = s_pos + 1
    u_pos = s_pos + 2

    # The gadget constant M per singleton, summed in the reference's exact
    # order (sequential over the objective row in canonical agent order).
    bigs = np.empty(num_singles, dtype=np.float64)
    new_agent_ids: List[NodeId] = []
    new_constraint_ids: List[NodeId] = []
    new_objective_ids: List[NodeId] = []
    for j, ci in enumerate(singles.tolist()):
        v = int(st.con_agents[st.con_indptr[ci]])
        k = int(first_obj[v])
        if k >= num_obj:  # pragma: no cover - excluded by non-degeneracy
            raise TransformError(
                f"agent {st.agents[v]!r} adjacent to singleton constraint "
                f"{st.constraints[ci]!r} has no objective"
            )
        big = 0.0
        for e in range(int(st.obj_indptr[k]), int(st.obj_indptr[k + 1])):
            big += st.obj_coeff[e] * cap[st.obj_agents[e]]
        big = 2.0 * big
        if big <= 0.0:
            big = 1.0
        bigs[j] = big
        i_id = st.constraints[ci]
        new_agent_ids.extend(
            (("aug42", i_id, "s"), ("aug42", i_id, "t"), ("aug42", i_id, "u"))
        )
        new_objective_ids.extend((("aug42", i_id, "h"), ("aug42", i_id, "l")))
        new_constraint_ids.append(("aug42", i_id, "j"))

    # Each singleton row gains agent s at its end (s sorts after every
    # existing agent); the new degree-2 constraints j = {t, u} are appended.
    insert_at = st.con_indptr[singles + 1]
    st.con_agents = np.insert(st.con_agents, insert_at, s_pos)
    st.con_coeff = np.insert(st.con_coeff, insert_at, 1.0)
    extra_agents = np.empty(2 * num_singles, dtype=np.int64)
    extra_agents[0::2] = t_pos
    extra_agents[1::2] = u_pos
    st.con_agents = np.concatenate([st.con_agents, extra_agents])
    st.con_coeff = np.concatenate([st.con_coeff, np.ones(2 * num_singles)])
    new_deg = deg.copy()
    new_deg[singles] += 1
    all_deg = np.concatenate([new_deg, np.full(num_singles, 2, dtype=np.int64)])
    st.con_indptr = np.zeros(len(all_deg) + 1, dtype=np.int64)
    np.cumsum(all_deg, out=st.con_indptr[1:])
    st.constraints.extend(new_constraint_ids)

    # New objectives h = {s: 1, t: M} and ell = {s: 1, u: M}.
    extra_obj_agents = np.empty(4 * num_singles, dtype=np.int64)
    extra_obj_agents[0::4] = s_pos
    extra_obj_agents[1::4] = t_pos
    extra_obj_agents[2::4] = s_pos
    extra_obj_agents[3::4] = u_pos
    extra_obj_coeff = np.empty(4 * num_singles, dtype=np.float64)
    extra_obj_coeff[0::4] = 1.0
    extra_obj_coeff[1::4] = bigs
    extra_obj_coeff[2::4] = 1.0
    extra_obj_coeff[3::4] = bigs
    st.obj_agents = np.concatenate([st.obj_agents, extra_obj_agents])
    st.obj_coeff = np.concatenate([st.obj_coeff, extra_obj_coeff])
    st.obj_indptr = np.concatenate(
        [
            st.obj_indptr,
            st.obj_indptr[-1] + 2 * np.arange(1, 2 * num_singles + 1, dtype=np.int64),
        ]
    )
    st.objectives.extend(new_objective_ids)
    st.agents.extend(new_agent_ids)

    # Back-map unchanged: the original agents keep their positions and the
    # gadget agents are simply forgotten.
    st.record_stage(
        _NAME_42,
        1.0,
        {"augmented_constraints": num_singles, "new_agents": 3 * num_singles},
        True,
        "4.2",
    )


# ----------------------------------------------------------------------
# §4.3 — reduce constraint degree
# ----------------------------------------------------------------------
def _stage_reduce_constraint_degree(st: _PipelineState) -> None:
    deg = np.diff(st.con_indptr)
    low = np.flatnonzero(deg < 2)
    if len(low):
        ci = int(low[0])
        raise TransformError(
            f"{_NAME_43} requires |V_i| >= 2 for every constraint; "
            f"constraint {st.constraints[ci]!r} has degree {int(deg[ci])} (run §4.2 first)"
        )

    delta_I = int(deg.max()) if len(deg) else 0
    wide_mask = deg > 2
    if not wide_mask.any():
        st.record_stage(
            _NAME_43, 1.0, {"split_constraints": 0, "delta_I": delta_I}, False, "4.3"
        )
        return

    n = len(st.agents)
    den = np.zeros(n, dtype=np.int64)
    np.maximum.at(den, st.con_agents, np.repeat(deg, deg))
    den[den == 0] = 2  # agents without constraints (reference default)

    out_counts = np.where(wide_mask, deg * (deg - 1) // 2, 1)
    out_offsets = np.zeros(len(deg) + 1, dtype=np.int64)
    np.cumsum(out_counts, out=out_offsets[1:])
    total_rows = int(out_offsets[-1])
    pair_agents = np.empty((total_rows, 2), dtype=np.int64)
    pair_coeff = np.empty((total_rows, 2), dtype=np.float64)

    # Process constraints grouped by degree: every group lowers to one
    # rectangular gather + a triu-template pair expansion.
    for d in np.unique(deg).tolist():
        rows = np.flatnonzero(deg == d)
        window = st.con_indptr[rows][:, None] + np.arange(d)
        block_a = st.con_agents[window]
        block_c = st.con_coeff[window]
        if d == 2:
            dest = out_offsets[rows]
            pair_agents[dest] = block_a
            pair_coeff[dest] = block_c
        else:
            iu, jv = np.triu_indices(d, 1)  # == combinations(range(d), 2) order
            dest = (out_offsets[rows][:, None] + np.arange(len(iu))).ravel()
            pair_agents[dest, 0] = block_a[:, iu].ravel()
            pair_agents[dest, 1] = block_a[:, jv].ravel()
            pair_coeff[dest, 0] = block_c[:, iu].ravel()
            pair_coeff[dest, 1] = block_c[:, jv].ravel()

    # Constraint ids in the reference's in-place replacement order: degree-2
    # rows keep their id, wide rows expand to their pairwise ids inline.
    agents = st.agents
    new_ids: List[NodeId] = []
    indptr_list = st.con_indptr.tolist()
    for ci, d in enumerate(deg.tolist()):
        if d == 2:
            new_ids.append(st.constraints[ci])
        else:
            i_id = st.constraints[ci]
            lo = indptr_list[ci]
            row_ids = [agents[int(p)] for p in st.con_agents[lo : lo + d]]
            new_ids.extend(
                ("deg43", i_id, row_ids[x], row_ids[y])
                for x, y in combinations(range(d), 2)
            )

    st.constraints = new_ids
    st.con_agents = pair_agents.ravel()
    st.con_coeff = pair_coeff.ravel()
    st.con_indptr = 2 * np.arange(total_rows + 1, dtype=np.int64)

    # Back-map (paper Eq. 4): x_v = 2 x'_v / max_{i ∈ I_v} |V_i|.
    st.bm_scale = st.bm_scale * (2.0 / den)[st.bm_idx]
    st.record_stage(
        _NAME_43,
        max(delta_I, 2) / 2.0,
        {
            "split_constraints": int(wide_mask.sum()),
            "delta_I": delta_I,
            "num_constraints_after": total_rows,
        },
        True,
        "4.3",
    )


# ----------------------------------------------------------------------
# §4.4 / §4.5 shared machinery — in-place agent splits over degree-2 rows
# ----------------------------------------------------------------------
def _split_constraint_rows(
    st: _PipelineState,
    cnt: np.ndarray,
    new_start: np.ndarray,
    outer_first: np.ndarray,
) -> np.ndarray:
    """Expand the (all degree-2) constraint rows for an in-place agent split.

    ``cnt[p]`` copies replace agent ``p`` (1 = untouched); a row whose
    members have ``cnt`` counts ``r0 · r1`` expands to every combination, in
    row-major order with the member selected by ``outer_first`` as the outer
    loop (§4.4 nests by agent order, §4.5 by objective order — both
    monotone, so ``outer_first[row]`` says whether the *lower-position*
    member leads).  Rewrites ``con_indptr/con_agents/con_coeff`` in place and
    returns the per-old-row expansion counts (for the id construction).
    """
    m0 = st.con_agents[0::2]
    m1 = st.con_agents[1::2]
    c0 = st.con_coeff[0::2]
    c1 = st.con_coeff[1::2]
    r0 = cnt[m0]
    r1 = cnt[m1]
    out_per_row = r0 * r1
    out_indptr = np.zeros(len(out_per_row) + 1, dtype=np.int64)
    np.cumsum(out_per_row, out=out_indptr[1:])
    total_rows = int(out_indptr[-1])

    row_of_out = np.repeat(np.arange(len(out_per_row), dtype=np.int64), out_per_row)
    local = np.arange(total_rows, dtype=np.int64) - np.repeat(out_indptr[:-1], out_per_row)
    inner = np.where(outer_first, r1, r0)[row_of_out]
    first_choice = local // inner
    second_choice = local - first_choice * inner
    swap = ~outer_first[row_of_out]
    x0 = np.where(swap, second_choice, first_choice)
    x1 = np.where(swap, first_choice, second_choice)

    new_agents = np.empty(2 * total_rows, dtype=np.int64)
    new_agents[0::2] = new_start[m0[row_of_out]] + x0
    new_agents[1::2] = new_start[m1[row_of_out]] + x1
    new_coeff = np.empty(2 * total_rows, dtype=np.float64)
    new_coeff[0::2] = c0[row_of_out]
    new_coeff[1::2] = c1[row_of_out]

    st.con_agents = new_agents
    st.con_coeff = new_coeff
    st.con_indptr = 2 * np.arange(total_rows + 1, dtype=np.int64)
    return out_per_row


def _stage_split_agents_by_objective(st: _PipelineState) -> None:
    n = len(st.agents)
    num_obj = len(st.objectives)
    kv = st.agent_objective_counts()
    multi_mask = kv > 1
    if not multi_mask.any():
        st.record_stage(_NAME_44, 1.0, {"split_agents": 0}, False, "4.4")
        return

    num_edges = len(st.obj_agents)
    obj_deg = np.diff(st.obj_indptr)
    owner = np.repeat(np.arange(num_obj, dtype=np.int64), obj_deg)
    # Agent-major edge ordering; stability keeps objectives ascending within
    # each agent (edge order is objective-major to begin with).
    order = np.argsort(st.obj_agents, kind="stable")
    ao_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(kv, out=ao_indptr[1:])
    ao_obj = owner[order]
    rank = np.empty(num_edges, dtype=np.int64)
    rank[order] = np.arange(num_edges, dtype=np.int64) - ao_indptr[st.obj_agents[order]]

    cnt = np.where(multi_mask, kv, 1).astype(np.int64)
    new_start = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(cnt, out=new_start[1:])
    n_new = int(new_start[-1])

    # Agent list: each multi agent is replaced in place by one copy per
    # objective, in the agent's canonical objective order.
    objectives = st.objectives
    ao_obj_list = ao_obj.tolist()
    ao_indptr_list = ao_indptr.tolist()
    multi_list = multi_mask.tolist()
    new_agent_ids: List[NodeId] = []
    for p, a_id in enumerate(st.agents):
        if multi_list[p]:
            new_agent_ids.extend(
                ("copy44", a_id, objectives[k])
                for k in ao_obj_list[ao_indptr_list[p] : ao_indptr_list[p + 1]]
            )
        else:
            new_agent_ids.append(a_id)

    # Constraint ids: the reference processes multi agents in canonical
    # agent order, replacing each touched constraint in place — within one
    # (degree-2, hence two-member) row that nests the lower-position member
    # outermost.
    old_agents = st.agents
    m0 = st.con_agents[0::2]
    m1 = st.con_agents[1::2]
    new_con_ids: List[NodeId] = []
    m0_list = m0.tolist()
    m1_list = m1.tolist()
    for ci, i_id in enumerate(st.constraints):
        a0 = m0_list[ci]
        a1 = m1_list[ci]
        if not multi_list[a0] and not multi_list[a1]:
            new_con_ids.append(i_id)
            continue
        ks0 = (
            [objectives[k] for k in ao_obj_list[ao_indptr_list[a0] : ao_indptr_list[a0 + 1]]]
            if multi_list[a0]
            else [None]
        )
        ks1 = (
            [objectives[k] for k in ao_obj_list[ao_indptr_list[a1] : ao_indptr_list[a1 + 1]]]
            if multi_list[a1]
            else [None]
        )
        for k0 in ks0:
            base = ("copyc44", i_id, old_agents[a0], k0) if k0 is not None else i_id
            for k1 in ks1:
                new_con_ids.append(
                    ("copyc44", base, old_agents[a1], k1) if k1 is not None else base
                )

    _split_constraint_rows(
        st, cnt, new_start, outer_first=np.ones(len(m0), dtype=bool)
    )
    st.constraints = new_con_ids

    # Objective rows: each edge (k, v) now points at the copy of v made for
    # exactly that objective (its rank in the agent's objective list).
    st.obj_agents = new_start[st.obj_agents] + np.where(
        multi_mask[st.obj_agents], rank, 0
    )

    st.expand_back_map(cnt, new_start)
    st.agents = new_agent_ids
    st.record_stage(
        _NAME_44,
        1.0,
        {
            "split_agents": int(multi_mask.sum()),
            "num_agents_after": n_new,
            "num_constraints_after": len(new_con_ids),
        },
        True,
        "4.4",
    )


def _stage_augment_singleton_objectives(st: _PipelineState) -> None:
    n = len(st.agents)
    num_obj = len(st.objectives)
    kv = st.agent_objective_counts()
    bad = np.flatnonzero(kv != 1)
    if len(bad):
        p = int(bad[0])
        raise TransformError(
            f"{_NAME_45} requires |K_v| = 1 for every agent (run §4.4 first); "
            f"agent {st.agents[p]!r} has {int(kv[p])} objectives"
        )

    obj_deg = np.diff(st.obj_indptr)
    single_objs = np.flatnonzero(obj_deg == 1)
    if len(single_objs) == 0:
        st.record_stage(_NAME_45, 1.0, {"augmented_objectives": 0}, False, "4.5")
        return

    split_agent_of_obj = st.obj_agents[st.obj_indptr[single_objs]]
    split_mask = np.zeros(n, dtype=bool)
    split_mask[split_agent_of_obj] = True
    owner = np.repeat(np.arange(num_obj, dtype=np.int64), obj_deg)
    obj_of_agent = np.empty(n, dtype=np.int64)
    obj_of_agent[st.obj_agents] = owner

    cnt = np.where(split_mask, 2, 1).astype(np.int64)
    new_start = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(cnt, out=new_start[1:])
    n_new = int(new_start[-1])

    split_list = split_mask.tolist()
    new_agent_ids: List[NodeId] = []
    for p, a_id in enumerate(st.agents):
        if split_list[p]:
            new_agent_ids.append(("copy45", a_id, 0))
            new_agent_ids.append(("copy45", a_id, 1))
        else:
            new_agent_ids.append(a_id)

    # Constraint ids: the reference processes singleton objectives in
    # canonical *objective* order, so within a row with two split members
    # the one whose objective comes first nests outermost.
    old_agents = st.agents
    m0 = st.con_agents[0::2]
    m1 = st.con_agents[1::2]
    outer_first = ~(
        split_mask[m0] & split_mask[m1] & (obj_of_agent[m1] < obj_of_agent[m0])
    )
    m0_list = m0.tolist()
    m1_list = m1.tolist()
    new_con_ids: List[NodeId] = []
    for ci, i_id in enumerate(st.constraints):
        a0 = m0_list[ci]
        a1 = m1_list[ci]
        s0 = split_list[a0]
        s1 = split_list[a1]
        if not s0 and not s1:
            new_con_ids.append(i_id)
        elif s0 != s1:
            v = a0 if s0 else a1
            new_con_ids.append(("copyc45", i_id, old_agents[v], 0))
            new_con_ids.append(("copyc45", i_id, old_agents[v], 1))
        else:
            first, second = (
                (a0, a1) if obj_of_agent[a0] < obj_of_agent[a1] else (a1, a0)
            )
            for sx in (0, 1):
                base = ("copyc45", i_id, old_agents[first], sx)
                for sy in (0, 1):
                    new_con_ids.append(("copyc45", base, old_agents[second], sy))

    _split_constraint_rows(st, cnt, new_start, outer_first=outer_first)
    st.constraints = new_con_ids

    # Objective rows: singleton rows become {t, u} with the coefficient
    # halved; every other row is a pure position remap.
    num_edges = len(st.obj_agents)
    new_obj_deg = obj_deg.copy()
    new_obj_deg[single_objs] = 2
    new_obj_indptr = np.zeros(num_obj + 1, dtype=np.int64)
    np.cumsum(new_obj_deg, out=new_obj_indptr[1:])
    new_obj_agents = np.empty(int(new_obj_indptr[-1]), dtype=np.int64)
    new_obj_coeff = np.empty(int(new_obj_indptr[-1]), dtype=np.float64)
    dest = (
        np.arange(num_edges, dtype=np.int64)
        - np.repeat(st.obj_indptr[:-1], obj_deg)
        + np.repeat(new_obj_indptr[:-1], obj_deg)
    )
    single_edge = np.zeros(num_edges, dtype=bool)
    single_edge[st.obj_indptr[single_objs]] = True
    keep = ~single_edge
    new_obj_agents[dest[keep]] = new_start[st.obj_agents[keep]]
    new_obj_coeff[dest[keep]] = st.obj_coeff[keep]
    sdest = new_obj_indptr[:-1][single_objs]
    half = st.obj_coeff[st.obj_indptr[single_objs]] / 2.0
    new_obj_agents[sdest] = new_start[split_agent_of_obj]
    new_obj_agents[sdest + 1] = new_start[split_agent_of_obj] + 1
    new_obj_coeff[sdest] = half
    new_obj_coeff[sdest + 1] = half
    st.obj_indptr = new_obj_indptr
    st.obj_agents = new_obj_agents
    st.obj_coeff = new_obj_coeff

    st.expand_back_map(cnt, new_start)
    st.agents = new_agent_ids
    st.record_stage(
        _NAME_45,
        1.0,
        {"augmented_objectives": len(single_objs), "num_agents_after": n_new},
        True,
        "4.5",
    )


# ----------------------------------------------------------------------
# §4.6 — normalise objective coefficients
# ----------------------------------------------------------------------
def _stage_normalise_coefficients(st: _PipelineState) -> None:
    n = len(st.agents)
    kv = st.agent_objective_counts()
    bad = np.flatnonzero(kv != 1)
    if len(bad):
        p = int(bad[0])
        raise TransformError(
            f"{_NAME_46} requires |K_v| = 1 for every agent (run §4.4 first); "
            f"agent {st.agents[p]!r} has {int(kv[p])} objectives"
        )

    scale = np.empty(n, dtype=np.float64)
    scale[st.obj_agents] = st.obj_coeff
    off = np.abs(scale - 1.0) > 1e-15
    if not off.any():
        st.record_stage(_NAME_46, 1.0, {"rescaled_agents": 0}, False, "4.6")
        return

    st.con_coeff = st.con_coeff / scale[st.con_agents]
    st.obj_coeff = st.obj_coeff / scale[st.obj_agents]
    st.bm_scale = st.bm_scale / scale[st.bm_idx]
    st.record_stage(
        _NAME_46, 1.0, {"rescaled_agents": int(off.sum())}, True, "4.6"
    )


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------
def vectorized_to_special_form(
    instance: MaxMinInstance,
    *,
    verify: bool = True,
    name: Optional[str] = None,
) -> CompiledTransformResult:
    """Array-native twin of :func:`repro.transforms.pipeline.to_special_form`.

    Runs the five §4 stages as CSR index arithmetic and materialises only
    the final special-form instance — digest-identical to the reference
    pipeline's output (same ids, same order, bitwise-equal coefficients).
    The returned result additionally carries the composed back-map as
    arrays (see :class:`CompiledTransformResult`).
    """
    require_nondegenerate(instance)
    st = _PipelineState(instance)
    _stage_augment_singleton_constraints(st)
    _stage_reduce_constraint_degree(st)
    _stage_split_agents_by_objective(st)
    _stage_augment_singleton_objectives(st)
    _stage_normalise_coefficients(st)

    if not st.changed:
        transformed = instance
    else:
        con_owner = np.repeat(
            np.arange(len(st.constraints), dtype=np.int64), np.diff(st.con_indptr)
        )
        obj_owner = np.repeat(
            np.arange(len(st.objectives), dtype=np.int64), np.diff(st.obj_indptr)
        )
        constraints = st.constraints
        objectives = st.objectives
        agents = st.agents
        a = {
            (constraints[o], agents[p]): coeff
            for o, p, coeff in zip(
                con_owner.tolist(), st.con_agents.tolist(), st.con_coeff.tolist()
            )
        }
        c = {
            (objectives[o], agents[p]): coeff
            for o, p, coeff in zip(
                obj_owner.tolist(), st.obj_agents.tolist(), st.obj_coeff.tolist()
            )
        }
        transformed = MaxMinInstance(
            agents=agents,
            constraints=constraints,
            objectives=objectives,
            a=a,
            c=c,
            name=st.name,
        )
    if verify:
        require_special_form(transformed)

    suffix_chain = "".join(f"<-{s}" for s in reversed(st.label_suffixes))
    bm_indptr, bm_idx, bm_scale = st.bm_indptr, st.bm_idx, st.bm_scale
    original = instance
    final = transformed

    def back_map(solution: Solution) -> Solution:
        x = np.fromiter(
            (solution[v] for v in final.agents),
            dtype=np.float64,
            count=final.num_agents,
        )
        if len(bm_idx):
            mapped = np.maximum.reduceat(bm_scale * x[bm_idx], bm_indptr[:-1])
        else:
            mapped = np.zeros(0, dtype=np.float64)
        return Solution.from_agent_array(
            original, mapped, label=f"{solution.label}{suffix_chain}"
        )

    metadata: Dict[str, object] = {
        "stages": list(st.stage_names),
        "stage_ratio_factors": list(st.stage_factors),
        "backend": "vectorized",
        "stage_metadata": list(st.stage_metadata),
    }
    return CompiledTransformResult(
        original=instance,
        transformed=transformed,
        back_map=back_map,
        bm_indptr=bm_indptr,
        bm_idx=bm_idx,
        bm_scale=bm_scale,
        ratio_factor=st.ratio_factor,
        name=name or "to-special-form (§4)",
        metadata=metadata,
    )
