"""The canonical §4 transformation pipeline.

Applying §4.2 → §4.3 → §4.4 → §4.5 → §4.6 in order converts any
non-degenerate max-min LP into the *special form* required by the §5
algorithm:

* ``|V_i| = 2`` for every constraint,
* ``|V_k| ≥ 2`` for every objective,
* ``|K_v| = 1`` and ``|I_v| ≥ 1`` for every agent,
* ``c_kv = 1`` on every objective edge.

The composed back-mapping converts a solution of the special-form instance
into a solution of the original instance; the composed ratio factor is
``max(ΔI, 2) / 2`` (only §4.3 loses a factor).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .. import obs
from ..core.instance import MaxMinInstance
from ..core.validation import require_nondegenerate, require_special_form
from .augment_singleton_constraints import AugmentSingletonConstraints
from .augment_singleton_objectives import AugmentSingletonObjectives
from .base import Transform, TransformResult, compose
from .normalise_coefficients import NormaliseCoefficients
from .reduce_constraint_degree import ReduceConstraintDegree
from .split_agents_by_objective import SplitAgentsByObjective

__all__ = ["canonical_transforms", "to_special_form", "apply_chain"]


def canonical_transforms() -> List[Transform]:
    """The five §4 transformations in their canonical application order."""
    return [
        AugmentSingletonConstraints(),
        ReduceConstraintDegree(),
        SplitAgentsByObjective(),
        AugmentSingletonObjectives(),
        NormaliseCoefficients(),
    ]


def apply_chain(
    instance: MaxMinInstance,
    transforms: Sequence[Transform],
    name: str = "pipeline",
) -> TransformResult:
    """Apply a sequence of transformations and compose the results."""
    results: List[TransformResult] = []
    current = instance
    for transform in transforms:
        result = transform.apply(current)
        results.append(result)
        current = result.transformed
    return compose(results, name=name)


def to_special_form(
    instance: MaxMinInstance,
    *,
    verify: bool = True,
    name: Optional[str] = None,
    backend: str = "vectorized",
) -> TransformResult:
    """Convert a non-degenerate instance to the §5 special form.

    Parameters
    ----------
    instance:
        A non-degenerate instance (run :func:`repro.core.preprocess.preprocess`
        first if needed); raises
        :class:`~repro.exceptions.DegenerateInstanceError` otherwise.
    verify:
        If true (default), assert that the output really satisfies the special
        form; this is cheap and catches programming errors early.
    name:
        Optional name for the composed :class:`TransformResult`.
    backend:
        ``"vectorized"`` (default) computes the composed transformation as
        index arithmetic over the compiled CSR arrays — digest-identical
        output, one array-encoded back-map (see
        :mod:`repro.transforms.vectorized`); ``"reference"`` applies the five
        object-graph transformations one by one and composes their closures
        (the readable oracle the equivalence property tests pin the compiled
        path against).

    Results for the default ``name`` are cached on the (immutable) instance
    per ``(backend, verify)`` key, exactly like
    :meth:`~repro.core.instance.MaxMinInstance.compiled`: a sweep that
    revisits the same instance across R values runs the §4 pipeline once.
    The cache lives on the instance object itself, so it can never leak
    across instances (the engine's per-process memo hands out one instance
    object per content digest — see :mod:`repro.engine.registry`).
    """
    if backend not in ("vectorized", "reference"):
        raise ValueError(
            f"unknown transform backend {backend!r} (expected 'vectorized' or 'reference')"
        )

    cache_key = (backend, bool(verify))
    if name is None:
        cached = instance._transform_cache
        if cached is not None and cache_key in cached:
            obs.count("transform.cache_hits")
            return cached[cache_key]

    obs.count("transform.runs")
    if backend == "vectorized":
        from .vectorized import vectorized_to_special_form

        result = vectorized_to_special_form(instance, verify=verify, name=name)
    else:
        require_nondegenerate(instance)
        result = apply_chain(
            instance, canonical_transforms(), name=name or "to-special-form (§4)"
        )
        if verify:
            require_special_form(result.transformed)

    if name is None:
        if instance._transform_cache is None:
            instance._transform_cache = {}
        instance._transform_cache[cache_key] = result
    return result
