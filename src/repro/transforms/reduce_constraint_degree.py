"""§4.3 — Reducing the degree of constraints.

After this transformation every constraint has degree exactly 2
(``|V_i| = 2``).  A constraint ``i`` with ``|V_i| > 2`` is replaced by the
``binom(|V_i|, 2)`` pairwise constraints

.. math:: a_{iu} x_u + a_{iv} x_v \\le 1 \\qquad \\forall u, v \\in V_i,\\ u < v.

Back-mapping (paper Eq. 4): ``x_v = 2 x'_v / max_{i ∈ I_v} |V_i|`` where the
maximum is over the *original* constraint degrees.  Summing the pairwise
constraints shows the mapped solution is feasible; since the objectives are
untouched the utility scales linearly, so an ``α``-approximate solution of
the transformed instance maps to an ``α · ΔI / 2``-approximate solution of
the original instance.  This is the only transformation in the pipeline that
loses a factor, and it is exactly the factor in Theorem 1.

This transformation requires ``|V_i| ≥ 2`` (run §4.2 first).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Tuple

from .._types import NodeId
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..exceptions import TransformError
from .base import Transform, TransformResult

__all__ = ["ReduceConstraintDegree"]


class ReduceConstraintDegree(Transform):
    """Ensure ``|V_i| = 2`` for every constraint (paper §4.3)."""

    name = "reduce-constraint-degree (§4.3)"

    def check_preconditions(self, instance: MaxMinInstance) -> None:
        for i in instance.constraints:
            deg = len(instance.agents_of_constraint(i))
            if deg < 2:
                raise TransformError(
                    f"{self.name} requires |V_i| >= 2 for every constraint; "
                    f"constraint {i!r} has degree {deg} (run §4.2 first)"
                )

    def apply(self, instance: MaxMinInstance) -> TransformResult:
        self.check_preconditions(instance)

        delta_I = instance.delta_I
        # Per-agent scaling denominator: the largest original degree among the
        # agent's constraints (paper Eq. 4).
        scale_den: Dict[NodeId, int] = {}
        for v in instance.agents:
            degrees = [len(instance.agents_of_constraint(i)) for i in instance.constraints_of_agent(v)]
            scale_den[v] = max(degrees) if degrees else 2

        wide = [i for i in instance.constraints if len(instance.agents_of_constraint(i)) > 2]

        if not wide:
            return TransformResult(
                original=instance,
                transformed=instance,
                back_map=lambda sol: Solution(instance, sol.as_dict(), label=sol.label),
                ratio_factor=1.0,
                name=self.name,
                metadata={"split_constraints": 0, "delta_I": delta_I},
            )

        constraints: List[NodeId] = []
        a: Dict[Tuple[NodeId, NodeId], float] = {}

        agent_order = {v: idx for idx, v in enumerate(instance.agents)}

        for i in instance.constraints:
            members = instance.agents_of_constraint(i)
            if len(members) == 2:
                constraints.append(i)
                for v in members:
                    a[(i, v)] = instance.a(i, v)
            else:
                ordered = sorted(members, key=agent_order.__getitem__)
                for u, v in combinations(ordered, 2):
                    new_id = ("deg43", i, u, v)
                    constraints.append(new_id)
                    a[(new_id, u)] = instance.a(i, u)
                    a[(new_id, v)] = instance.a(i, v)

        transformed = MaxMinInstance(
            agents=list(instance.agents),
            constraints=constraints,
            objectives=list(instance.objectives),
            a=a,
            c=instance.c_coefficients,
            name=f"{instance.name}#4.3",
        )

        def back_map(solution: Solution) -> Solution:
            values = {v: 2.0 * solution[v] / scale_den[v] for v in instance.agents}
            return Solution(instance, values, label=f"{solution.label}<-4.3")

        ratio_factor = max(delta_I, 2) / 2.0

        return TransformResult(
            original=instance,
            transformed=transformed,
            back_map=back_map,
            ratio_factor=ratio_factor,
            name=self.name,
            metadata={
                "split_constraints": len(wide),
                "delta_I": delta_I,
                "num_constraints_after": len(constraints),
            },
        )
