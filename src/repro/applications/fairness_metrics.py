"""Fairness metrics for resource-allocation solutions.

The max-min objective is itself a fairness criterion ("the worst-served
customer is served as well as possible"), but when comparing algorithms it
is useful to report complementary statistics of the per-objective service
vector ``(ω_k(x))_{k ∈ K}``: Jain's fairness index, the min/mean ratio, and
simple dispersion measures.  These appear in the application benchmarks
(E9) and the example scripts.
"""

from __future__ import annotations

import math
from typing import Dict, List

from .._types import NodeId
from ..core.solution import Solution

__all__ = ["jain_index", "min_mean_ratio", "service_statistics"]


def jain_index(values: List[float]) -> float:
    """Jain's fairness index ``(Σ y)² / (n Σ y²)`` (1 = perfectly even)."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(y * y for y in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


def min_mean_ratio(values: List[float]) -> float:
    """``min(y) / mean(y)`` — 1 for a perfectly balanced allocation."""
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    if mean == 0.0:
        return 1.0
    return min(values) / mean


def service_statistics(solution: Solution) -> Dict[str, float]:
    """Summary statistics of the per-objective service levels of a solution."""
    values = [solution.objective_value(k) for k in solution.instance.objectives]
    if not values:
        return {
            "min": math.inf,
            "max": math.inf,
            "mean": math.inf,
            "jain_index": 1.0,
            "min_mean_ratio": 1.0,
        }
    return {
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "jain_index": jain_index(values),
        "min_mean_ratio": min_mean_ratio(values),
    }
