"""Approximate mixed packing and covering via max-min LPs (paper §1, [20]).

A *mixed packing and covering* feasibility problem asks for ``x ≥ 0`` with

.. math:: A x \\le 1 \\quad\\text{and}\\quad C x \\ge 1

for nonnegative ``A`` and ``C``.  As the paper notes, an algorithm for
approximating max-min LPs immediately yields an approximate feasibility
test: maximise ``ω`` subject to ``Ax ≤ 1``, ``Cx ≥ ω·1``; the problem is
feasible iff the optimum is at least 1, and an ``α``-approximate max-min
solution certifies either feasibility up to slack (``Cx ≥ 1/α``) or
infeasibility (if even the *optimum witness* stays below 1).

:func:`solve_packing_covering` wires an arbitrary max-min solver (the local
algorithm by default) into this reduction, preserving the local computation
model end-to-end.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Optional, Tuple

from .._types import NodeId
from ..algo.general_solver import LocalMaxMinSolver
from ..core.builder import InstanceBuilder
from ..core.instance import MaxMinInstance
from ..core.solution import Solution

__all__ = ["PackingCoveringResult", "build_packing_covering_instance", "solve_packing_covering"]


class PackingCoveringResult:
    """Outcome of an approximate mixed packing/covering solve.

    Attributes
    ----------
    status:
        ``"feasible"`` — the produced ``x`` satisfies ``Ax ≤ 1`` and
        ``Cx ≥ 1`` outright;
        ``"approximately-feasible"`` — the produced ``x`` satisfies
        ``Ax ≤ 1`` and ``Cx ≥ omega`` with ``omega < 1`` but the guarantee
        ``alpha · omega ≥ 1`` shows a fully feasible point exists;
        ``"infeasible"`` — even ``alpha · omega < 1`` …the system may still
        be feasible only if the approximation lost too much (never happens
        when ``alpha·omega < 1`` fails strictly, i.e. ``omega·alpha < 1``
        certifies nothing); callers treat it as "no feasibility certificate".
    omega:
        The max-min utility achieved by the witness.
    alpha:
        The approximation guarantee of the solver used.
    witness:
        The produced assignment (always satisfies the packing side).
    """

    __slots__ = ("status", "omega", "alpha", "witness")

    def __init__(self, status: str, omega: float, alpha: float, witness: Solution) -> None:
        self.status = status
        self.omega = omega
        self.alpha = alpha
        self.witness = witness

    @property
    def certified_feasible(self) -> bool:
        """True when a fully feasible point provably exists."""
        return self.status in ("feasible", "approximately-feasible")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackingCoveringResult(status={self.status!r}, omega={self.omega:.4f})"


def build_packing_covering_instance(
    packing: Mapping[NodeId, Mapping[NodeId, float]],
    covering: Mapping[NodeId, Mapping[NodeId, float]],
    name: str = "packing-covering",
) -> MaxMinInstance:
    """Build the max-min LP whose optimum decides ``Ax ≤ 1, Cx ≥ 1`` feasibility.

    ``packing`` maps a constraint id to ``{variable: coefficient}``;
    ``covering`` maps a covering-row id to ``{variable: coefficient}``.
    """
    builder = InstanceBuilder(name=name)
    for i, row in packing.items():
        for v, coeff in row.items():
            builder.add_constraint_term(i, v, coeff)
    for k, row in covering.items():
        for v, coeff in row.items():
            builder.add_objective_term(k, v, coeff)
    return builder.build()


def solve_packing_covering(
    packing: Mapping[NodeId, Mapping[NodeId, float]],
    covering: Mapping[NodeId, Mapping[NodeId, float]],
    *,
    solver: Optional[LocalMaxMinSolver] = None,
    name: str = "packing-covering",
) -> PackingCoveringResult:
    """Approximately decide feasibility of ``Ax ≤ 1, Cx ≥ 1`` (see module docstring)."""
    solver = solver or LocalMaxMinSolver(R=3)
    instance = build_packing_covering_instance(packing, covering, name=name)
    result = solver.solve(instance)
    omega = result.utility()
    alpha = result.certificate.guaranteed_ratio

    if omega >= 1.0:
        status = "feasible"
    elif alpha * omega >= 1.0:
        status = "approximately-feasible"
    else:
        status = "infeasible"
    return PackingCoveringResult(status, omega, alpha, result.solution)
