"""Applications built on top of the max-min LP solvers (paper §1)."""

from .fairness_metrics import jain_index, min_mean_ratio, service_statistics
from .linear_equations import (
    LinearSystemResult,
    build_equation_instance,
    solve_nonnegative_system,
)
from .packing_covering import (
    PackingCoveringResult,
    build_packing_covering_instance,
    solve_packing_covering,
)

__all__ = [
    "PackingCoveringResult",
    "build_packing_covering_instance",
    "solve_packing_covering",
    "LinearSystemResult",
    "build_equation_instance",
    "solve_nonnegative_system",
    "jain_index",
    "min_mean_ratio",
    "service_statistics",
]
