"""Approximate nonnegative linear systems via max-min LPs.

The paper mentions that approximating max-min LPs also lets one find
approximate solutions of a *nonnegative system of linear equations*
``Mx = b`` with ``M ≥ 0``, ``b > 0``, ``x ≥ 0``: each equation is split into
a packing row (``m_j x / b_j ≤ 1``) and a covering row (``m_j x / b_j ≥ ω``)
of a max-min LP; an exact solution exists iff the optimum is 1, and an
``α``-approximate max-min solution satisfies every equation within
``[ω, 1] ⊆ [1/α', 1]`` multiplicatively (where ``ω`` is the achieved
utility).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from .._types import NodeId
from ..algo.general_solver import LocalMaxMinSolver
from ..core.builder import InstanceBuilder
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..exceptions import InvalidInstanceError

__all__ = ["LinearSystemResult", "build_equation_instance", "solve_nonnegative_system"]


class LinearSystemResult:
    """Approximate solution of ``Mx = b`` with nonnegative data.

    Attributes
    ----------
    values:
        The variable assignment.
    residual_low / residual_high:
        Smallest and largest ratio ``(m_j x) / b_j`` over the equations; an
        exact solution has both equal to 1.
    omega:
        The max-min utility (equals ``residual_low``).
    """

    __slots__ = ("values", "residual_low", "residual_high", "omega")

    def __init__(self, values: Dict[NodeId, float], residual_low: float, residual_high: float) -> None:
        self.values = values
        self.residual_low = residual_low
        self.residual_high = residual_high
        self.omega = residual_low

    def max_relative_error(self) -> float:
        """``max_j |m_j x − b_j| / b_j``."""
        return max(abs(1.0 - self.residual_low), abs(self.residual_high - 1.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinearSystemResult(residuals=[{self.residual_low:.4f}, {self.residual_high:.4f}])"
        )


def build_equation_instance(
    equations: Mapping[NodeId, Mapping[NodeId, float]],
    rhs: Mapping[NodeId, float],
    name: str = "nonnegative-system",
) -> MaxMinInstance:
    """Build the max-min LP encoding ``Mx = b`` (rows normalised by ``b``)."""
    builder = InstanceBuilder(name=name)
    for row_id, row in equations.items():
        b = rhs.get(row_id)
        if b is None or b <= 0:
            raise InvalidInstanceError(f"equation {row_id!r} needs a positive right-hand side")
        for v, coeff in row.items():
            if coeff < 0:
                raise InvalidInstanceError("nonnegative systems only (coefficient < 0)")
            if coeff == 0:
                continue
            builder.add_constraint_term(("eq", row_id), v, coeff / b)
            builder.add_objective_term(("cov", row_id), v, coeff / b)
    return builder.build()


def solve_nonnegative_system(
    equations: Mapping[NodeId, Mapping[NodeId, float]],
    rhs: Mapping[NodeId, float],
    *,
    solver: Optional[LocalMaxMinSolver] = None,
    name: str = "nonnegative-system",
) -> LinearSystemResult:
    """Approximately solve ``Mx = b`` with the local max-min algorithm."""
    solver = solver or LocalMaxMinSolver(R=3)
    instance = build_equation_instance(equations, rhs, name=name)
    result = solver.solve(instance)
    solution = result.solution

    ratios = []
    for row_id, row in equations.items():
        b = rhs[row_id]
        total = sum(coeff * solution.get(v, 0.0) for v, coeff in row.items())
        ratios.append(total / b)
    low = min(ratios) if ratios else 1.0
    high = max(ratios) if ratios else 1.0
    return LinearSystemResult(solution.as_dict(), low, high)
