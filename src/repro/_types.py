"""Shared type aliases and enumerations used across :mod:`repro`.

The paper distinguishes three kinds of nodes in the communication graph
``G = (V ∪ I ∪ K, E)``:

* *agents* ``v ∈ V`` — one per LP variable ``x_v``;
* *constraints* ``i ∈ I`` — one per packing constraint ``Σ a_iv x_v ≤ 1``;
* *objectives* ``k ∈ K`` — one per covering objective ``Σ c_kv x_v ≥ ω``.

Node identifiers can be any hashable value; the library never assumes they
are integers or strings.  Where a single namespace is required (for example
when building a :mod:`networkx` communication graph) nodes are wrapped in a
``(NodeType, id)`` pair so that an agent named ``"a"`` and a constraint named
``"a"`` never collide.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, Tuple

__all__ = [
    "NodeType",
    "NodeId",
    "GraphNode",
    "CoefficientMap",
    "ValueMap",
    "EPSILON",
    "DEFAULT_FEASIBILITY_TOL",
]

#: Generic node identifier (agent, constraint or objective name).
NodeId = Hashable

#: A node of the communication graph in a single namespace.
GraphNode = Tuple["NodeType", NodeId]

#: Sparse coefficient storage: ``(row_id, agent_id) -> coefficient``.
CoefficientMap = Dict[Tuple[NodeId, NodeId], float]

#: Assignment of values to agents: ``agent_id -> x_v``.
ValueMap = Dict[NodeId, float]

#: Generic small number used when strict positivity must be enforced.
EPSILON = 1e-12

#: Default tolerance used when checking feasibility of floating-point
#: solutions (constraints are allowed to be violated by at most this amount).
DEFAULT_FEASIBILITY_TOL = 1e-9


class NodeType(enum.Enum):
    """Role of a node in the bipartite communication graph."""

    AGENT = "agent"
    CONSTRAINT = "constraint"
    OBJECTIVE = "objective"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeType.{self.name}"

    @property
    def short(self) -> str:
        """One-letter tag used in compact textual dumps (``V``/``I``/``K``)."""
        return {"agent": "V", "constraint": "I", "objective": "K"}[self.value]


def agent_node(v: NodeId) -> GraphNode:
    """Wrap an agent identifier into the shared graph namespace."""
    return (NodeType.AGENT, v)


def constraint_node(i: NodeId) -> GraphNode:
    """Wrap a constraint identifier into the shared graph namespace."""
    return (NodeType.CONSTRAINT, i)


def objective_node(k: NodeId) -> GraphNode:
    """Wrap an objective identifier into the shared graph namespace."""
    return (NodeType.OBJECTIVE, k)
