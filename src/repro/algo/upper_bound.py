"""Per-agent upper bounds ``t_u`` and the smoothed bounds ``s_v`` (paper §5.2–5.3).

``t_u`` is the optimum of the max-min LP associated with the alternating tree
``A_u``; by Lemma 2 it upper-bounds the utility of *any* feasible solution of
the (unfolded) instance, and by Lemma 3 it equals the largest ``ω`` accepted
by the ``f±`` recursion.  Two interchangeable methods are provided:

* ``"recursion"`` — the paper's practical suggestion: binary search over
  ``ω`` using the recursion's monotone feasibility predicate (no LP solver
  needed, this is what a real distributed implementation would run);
* ``"lp"`` — solve the tree LP exactly with :mod:`scipy` (Lemma 3 says both
  agree; the tests cross-check them).

``s_v`` (Eq. before 12) is the minimum of ``t_u`` over all agents ``u``
within graph distance ``4r + 2`` of ``v`` — the *smoothing* step that makes
the locally computed bounds consistent enough for the ``g±`` recursion.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

import networkx as nx

from .. import obs
from .._types import NodeId, NodeType, agent_node
from ..core.instance import MaxMinInstance
from ..core.lp import solve_maxmin_lp
from ..exceptions import SolverError
from .alternating_tree import AlternatingTree, build_alternating_tree
from .tree_recursion import recursion_feasible

__all__ = [
    "tree_optimum_binary_search",
    "tree_optimum_lp",
    "tree_optimum",
    "compute_upper_bounds",
    "smooth_upper_bounds",
]

#: Default absolute tolerance of the binary search for ``t_u``.
DEFAULT_BISECTION_TOL = 1e-10

#: Hard cap on bisection iterations (2^-60 relative precision is far below
#: every other tolerance in the library).
MAX_BISECTION_ITERATIONS = 200


def _search_upper_limit(tree: AlternatingTree) -> float:
    """A finite value that is certainly infeasible-or-optimal for the recursion.

    The utility of the root objective ``k(u)`` can never exceed the sum of the
    individual capacities of its agents (all objective coefficients are 1 in
    the special form), so ``t_u`` is at most that sum.
    """
    instance = tree.instance
    u = tree.root_agent
    k = instance.unique_objective(u)
    total = 0.0
    for w in instance.agents_of_objective(k):
        cap = instance.agent_capacity(w)
        if math.isinf(cap):
            raise SolverError(
                f"agent {w!r} has no constraint; run preprocessing before the local algorithm"
            )
        total += cap
    return total


def tree_optimum_binary_search(
    tree: AlternatingTree,
    tol: float = DEFAULT_BISECTION_TOL,
) -> float:
    """``t_u`` via binary search over the ``f±`` recursion (paper §5.2).

    The feasibility predicate (Eqs. 8–9) is monotone: ``ω = 0`` is always
    feasible and the returned value is within ``tol`` of the true maximum.
    """
    hi = _search_upper_limit(tree)
    if hi <= 0.0:
        return 0.0
    if recursion_feasible(tree, hi):
        return hi
    lo = 0.0
    iterations = 0
    while hi - lo > tol and iterations < MAX_BISECTION_ITERATIONS:
        mid = 0.5 * (lo + hi)
        if recursion_feasible(tree, mid):
            lo = mid
        else:
            hi = mid
        iterations += 1
    obs.count("kernels.bisection_iterations", iterations)
    return lo


def tree_optimum_lp(tree: AlternatingTree) -> float:
    """``t_u`` via an exact LP solve of the max-min LP associated with ``A_u``."""
    return solve_maxmin_lp(tree.as_instance()).optimum


def tree_optimum(tree: AlternatingTree, method: str = "recursion", tol: float = DEFAULT_BISECTION_TOL) -> float:
    """Dispatch between the two ``t_u`` computations."""
    if method == "recursion":
        return tree_optimum_binary_search(tree, tol=tol)
    if method == "lp":
        return tree_optimum_lp(tree)
    raise ValueError(f"unknown t_u method {method!r} (expected 'recursion' or 'lp')")


def compute_upper_bounds(
    instance: MaxMinInstance,
    r: int,
    *,
    method: str = "recursion",
    tol: float = DEFAULT_BISECTION_TOL,
    agents: Optional[Iterable[NodeId]] = None,
) -> Dict[NodeId, float]:
    """Compute ``t_u`` for every agent ``u`` (or a subset) of a special-form instance."""
    targets = tuple(agents) if agents is not None else instance.agents
    obs.count("kernels.trees_total", len(targets))
    bounds: Dict[NodeId, float] = {}
    for u in targets:
        tree = build_alternating_tree(instance, u, r, validate=False)
        bounds[u] = tree_optimum(tree, method=method, tol=tol)
    return bounds


def smooth_upper_bounds(
    instance: MaxMinInstance,
    upper_bounds: Dict[NodeId, float],
    r: int,
) -> Dict[NodeId, float]:
    """Smoothing step: ``s_v = min { t_u : dist_G(u, v) ≤ 4r + 2 }``.

    Distances are measured in edges of the communication graph (agents sit at
    even distances from each other).  The minimum always includes ``t_v``
    itself (distance 0).

    Contract: ``upper_bounds`` may cover only a subset of the agents (as
    produced by :func:`compute_upper_bounds` with ``agents=``); agents
    without a bound simply do not participate in any minimum.  A ball that
    contains no bounded agent at all yields ``math.inf`` — the neutral
    element, mirroring an agent whose ``t_u`` is not locally known.
    """
    graph = instance.communication_graph()
    radius = 4 * r + 2
    smoothed: Dict[NodeId, float] = {}
    for v in instance.agents:
        lengths = nx.single_source_shortest_path_length(graph, agent_node(v), cutoff=radius)
        best = math.inf
        for node, _dist in lengths.items():
            kind, name = node
            if kind is NodeType.AGENT:
                t = upper_bounds.get(name)
                if t is not None and t < best:
                    best = t
        smoothed[v] = best
    return smoothed
