"""The paper's local approximation algorithm and its building blocks."""

from .ablations import ABLATION_VARIANTS, ablation_report, solve_ablation
from .alternating_tree import AlternatingTree, TreeNode, build_alternating_tree
from .certificates import Certificate, verify_certificate
from .general_solver import GeneralSolveResult, LocalMaxMinSolver, theorem1_ratio
from .kernels import (
    BatchedTrees,
    batched_upper_bounds,
    build_batched_trees,
    g_recursion_kernel,
    output_kernel,
    smooth_bounds_kernel,
)
from .layers import (
    Layering,
    LayeringError,
    assign_layers,
    averaged_shifted_solution,
    is_layerable,
    shifted_solution,
)
from .local_solver import (
    GRecursionValues,
    SpecialFormLocalSolver,
    SpecialFormSolveResult,
    special_form_ratio,
)
from .safe_algorithm import SafeAlgorithm, safe_solution
from .tree_recursion import FRecursionValues, evaluate_recursion, recursion_feasible, recursion_margin
from .upper_bound import (
    compute_upper_bounds,
    smooth_upper_bounds,
    tree_optimum,
    tree_optimum_binary_search,
    tree_optimum_lp,
)

__all__ = [
    "ABLATION_VARIANTS",
    "solve_ablation",
    "ablation_report",
    "AlternatingTree",
    "TreeNode",
    "build_alternating_tree",
    "FRecursionValues",
    "evaluate_recursion",
    "recursion_feasible",
    "recursion_margin",
    "tree_optimum",
    "tree_optimum_binary_search",
    "tree_optimum_lp",
    "compute_upper_bounds",
    "smooth_upper_bounds",
    "BatchedTrees",
    "build_batched_trees",
    "batched_upper_bounds",
    "smooth_bounds_kernel",
    "g_recursion_kernel",
    "output_kernel",
    "GRecursionValues",
    "SpecialFormLocalSolver",
    "SpecialFormSolveResult",
    "special_form_ratio",
    "LocalMaxMinSolver",
    "GeneralSolveResult",
    "theorem1_ratio",
    "SafeAlgorithm",
    "safe_solution",
    "Certificate",
    "verify_certificate",
    "Layering",
    "LayeringError",
    "assign_layers",
    "is_layerable",
    "shifted_solution",
    "averaged_shifted_solution",
]
