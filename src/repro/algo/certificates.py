"""Approximation certificates.

Every solver in the library can attach a :class:`Certificate` to its output:
the *a priori* guarantee ("this solution is within factor ``ρ`` of the
optimum, by Theorem 1 / the safe-algorithm analysis") plus, once the exact
optimum is known, the *measured* ratio.  Benchmarks and integration tests
use :func:`verify_certificate` to assert that the measured ratio never
exceeds the guaranteed one — this is the executable form of the paper's
upper-bound claims.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..core.solution import Solution

__all__ = ["Certificate", "verify_certificate"]

#: Relative slack allowed when comparing a measured ratio against a
#: guaranteed one (floating-point only; the guarantees themselves are exact).
RATIO_TOLERANCE = 1e-7


class Certificate:
    """An approximation-ratio certificate for one solver run.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced the solution.
    guaranteed_ratio:
        The proven worst-case factor between the optimum and the utility of
        the produced solution (``opt ≤ guaranteed_ratio · utility``).
    delta_I, delta_K:
        The degree bounds of the instance the guarantee refers to.
    parameters:
        Free-form solver parameters (e.g. ``{"R": 4}``).
    utility:
        Utility of the produced solution (filled in by the solver).
    optimum:
        Exact optimum, when known (filled in by :func:`verify_certificate`).
    measured_ratio:
        ``optimum / utility`` when both are known and the utility is
        positive.
    """

    __slots__ = (
        "algorithm",
        "guaranteed_ratio",
        "delta_I",
        "delta_K",
        "parameters",
        "utility",
        "optimum",
        "measured_ratio",
    )

    def __init__(
        self,
        algorithm: str,
        guaranteed_ratio: float,
        delta_I: int,
        delta_K: int,
        parameters: Optional[Dict[str, object]] = None,
        utility: Optional[float] = None,
    ) -> None:
        self.algorithm = algorithm
        self.guaranteed_ratio = guaranteed_ratio
        self.delta_I = delta_I
        self.delta_K = delta_K
        self.parameters = parameters or {}
        self.utility = utility
        self.optimum: Optional[float] = None
        self.measured_ratio: Optional[float] = None

    def record_measurement(self, optimum: float, utility: Optional[float] = None) -> float:
        """Record the exact optimum (and optionally the utility) and return the measured ratio.

        A measured ratio of ``1.0`` is reported when both optimum and utility
        are (numerically) zero; ``inf`` when the utility is zero but the
        optimum is not.
        """
        if utility is not None:
            self.utility = utility
        if self.utility is None:
            raise ValueError("certificate has no recorded utility")
        self.optimum = optimum
        if optimum <= 0.0:
            self.measured_ratio = 1.0
        elif self.utility <= 0.0:
            self.measured_ratio = math.inf
        else:
            self.measured_ratio = optimum / self.utility
        return self.measured_ratio

    @property
    def holds(self) -> Optional[bool]:
        """Whether the measured ratio respects the guarantee (None if unmeasured)."""
        if self.measured_ratio is None:
            return None
        return self.measured_ratio <= self.guaranteed_ratio * (1.0 + RATIO_TOLERANCE)

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "guaranteed_ratio": self.guaranteed_ratio,
            "delta_I": self.delta_I,
            "delta_K": self.delta_K,
            "parameters": dict(self.parameters),
            "utility": self.utility,
            "optimum": self.optimum,
            "measured_ratio": self.measured_ratio,
            "holds": self.holds,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        measured = f"{self.measured_ratio:.4f}" if self.measured_ratio is not None else "?"
        return (
            f"Certificate({self.algorithm!r}, guaranteed={self.guaranteed_ratio:.4f}, "
            f"measured={measured})"
        )


def verify_certificate(
    certificate: Certificate,
    solution: Solution,
    optimum: float,
    tol: float = RATIO_TOLERANCE,
) -> bool:
    """Check the guarantee against ground truth.

    Records the solution's utility and the optimum on the certificate and
    returns True iff the solution is feasible and
    ``optimum ≤ guaranteed_ratio · utility`` up to relative tolerance.
    """
    if not solution.is_feasible():
        return False
    certificate.record_measurement(optimum, utility=solution.utility())
    measured = certificate.measured_ratio
    assert measured is not None
    return measured <= certificate.guaranteed_ratio * (1.0 + tol)
