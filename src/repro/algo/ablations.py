"""Ablation variants of the §5 algorithm.

The algorithm has three ingredients whose necessity is not obvious from the
pseudocode alone:

1. **Smoothing** (§5.3): agents use ``s_v = min {t_u : dist(u,v) ≤ 4r+2}``
   rather than their own bound ``t_v``.  The feasibility proof (Lemma 9,
   case ``d ≤ R−2``) needs the bound an agent aims for to be dominated by
   the bound of *every* nearby agent's tree.
2. **Up/down averaging** (§6.2, Eq. 18): each agent averages the solution it
   would output as an up-agent (the ``g⁻`` sums) and as a down-agent (the
   ``g⁺`` sums), because it cannot know its role.  Either one-sided vector
   alone corresponds to pretending a globally consistent layering is known.
3. **Both recursion directions**: the ``g⁺`` values alone are "as large as
   the constraints below allow", the ``g⁻`` values alone are "as small as
   the objectives require".

This module implements the corresponding degraded variants so that the
ablation benchmark (EXPERIMENTS.md, experiment A1) can show *measurably* what
breaks:

* ``no_smoothing`` — skip step 1 (use ``t_v`` directly): the output can
  violate packing constraints once ``r ≥ 1`` (observed violations of ~5–10 %
  on heterogeneous instances).
* ``down_only`` — output ``(1/R) Σ_d g⁺_{v,d}`` for everyone: typically
  infeasible (two "down" endpoints of a constraint both grab the available
  capacity).
* ``up_only`` — output ``(1/R) Σ_d g⁻_{v,d}`` for everyone: always feasible
  (it is dominated by the full output) but its utility can collapse to ~0,
  losing the approximation guarantee entirely.
* ``full`` — the unmodified algorithm, for reference.

None of these variants is part of the paper's algorithm; they exist to make
the design choices falsifiable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .._types import NodeId
from ..core.instance import MaxMinInstance
from ..core.lp import solve_maxmin_lp
from ..core.solution import Solution
from ..core.validation import require_special_form
from .local_solver import SpecialFormLocalSolver
from .upper_bound import compute_upper_bounds, smooth_upper_bounds

__all__ = ["ABLATION_VARIANTS", "solve_ablation", "ablation_report"]

#: The recognised variant names.
ABLATION_VARIANTS = ("full", "no_smoothing", "down_only", "up_only")


def solve_ablation(
    instance: MaxMinInstance,
    R: int,
    variant: str,
    *,
    tu_method: str = "recursion",
) -> Solution:
    """Run one ablation variant on a special-form instance.

    ``variant`` must be one of :data:`ABLATION_VARIANTS`; ``"full"`` returns
    exactly the output of :class:`SpecialFormLocalSolver`.
    """
    if variant not in ABLATION_VARIANTS:
        raise ValueError(f"unknown ablation variant {variant!r}; expected one of {ABLATION_VARIANTS}")
    require_special_form(instance)

    solver = SpecialFormLocalSolver(R=R, tu_method=tu_method)
    r = solver.r

    upper_bounds = compute_upper_bounds(instance, r, method=tu_method)
    if variant == "no_smoothing":
        bounds: Dict[NodeId, float] = dict(upper_bounds)
    else:
        bounds = smooth_upper_bounds(instance, upper_bounds, r)

    g = solver.compute_g_recursion(instance, bounds)

    if variant == "down_only":
        values = {
            v: sum(g.plus(v, d) for d in range(r + 1)) / R for v in instance.agents
        }
    elif variant == "up_only":
        values = {
            v: sum(g.minus(v, d) for d in range(r + 1)) / R for v in instance.agents
        }
    else:  # "full" and "no_smoothing" use the complete Eq. 18 output.
        values = {
            v: sum(g.plus(v, d) + g.minus(v, d) for d in range(r + 1)) / (2.0 * R)
            for v in instance.agents
        }
    return Solution(instance, values, label=f"ablation-{variant}-R{R}")


def ablation_report(
    instances: Dict[str, MaxMinInstance],
    R_values: Iterable[int] = (2, 3),
    variants: Iterable[str] = ABLATION_VARIANTS,
    feasibility_tol: float = 1e-9,
) -> List[Dict[str, object]]:
    """Evaluate every (instance, R, variant) combination into flat records.

    Each record carries feasibility, the largest constraint violation, the
    utility and the measured ratio against the exact optimum — the columns
    the ablation benchmark tabulates.
    """
    rows: List[Dict[str, object]] = []
    for label, instance in instances.items():
        optimum = solve_maxmin_lp(instance).optimum
        for R in R_values:
            for variant in variants:
                solution = solve_ablation(instance, R, variant)
                report = solution.check_feasibility(feasibility_tol)
                utility = solution.utility()
                rows.append(
                    {
                        "family": label,
                        "R": R,
                        "variant": variant,
                        "feasible": report.feasible,
                        "max_violation": report.max_violation,
                        "utility": utility,
                        "optimum": optimum,
                        "measured_ratio": (optimum / utility) if utility > 0 else float("inf"),
                    }
                )
    return rows
