"""Alternating trees ``A_u`` (paper §5.1) and the unfolding they live in.

In the port-numbering model a local algorithm cannot distinguish a short
cycle from an infinitely long path, so the paper assumes the communication
graph is the *unfolding* of a finite graph (a possibly infinite tree, §3).
Nodes of the unfolding are non-backtracking walks of the finite graph; the
alternating tree ``A_u`` of an agent ``u`` is the finite subtree induced by
the *alternating* walks that start at ``u`` and either

* traverse the unique objective ``k(u)`` and have length at most ``4r + 3``,
  or
* have length at most 1 (``u`` itself, its adjacent constraints, ``k(u)``).

A walk is alternating when between any two constraint nodes there is an
objective node and vice versa; together with the special-form structure
(``|K_v| = 1``, ``|V_i| = 2``) this forces the layered shape of paper
Figure 1: objectives at levels ``≡ 0 (mod 4)``, constraints at ``≡ 2``,
agents at odd levels, with leaf constraints at levels ``−2`` and ``4r + 2``.

This module constructs ``A_u`` directly on the *finite* instance by
enumerating bounded-length non-backtracking alternating walks — each walk is
its own tree node, so an agent of the finite graph may (correctly) appear
several times in ``A_u`` when the graph has cycles shorter than the local
horizon.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .._types import NodeId, NodeType
from ..core.instance import MaxMinInstance
from ..core.validation import require_special_form
from ..exceptions import InvalidInstanceError

__all__ = ["TreeNode", "AlternatingTree", "build_alternating_tree"]


class TreeNode:
    """A node of an alternating tree.

    Attributes
    ----------
    index:
        Position in :attr:`AlternatingTree.nodes` (unique within the tree).
    kind:
        :class:`NodeType` of the node.
    name:
        The identifier of the corresponding node in the finite instance
        (the *parent node* of the walk in the unfolding terminology).
    level:
        Distance to ``k(u)`` with the two special cases of the paper:
        the root agent ``u`` has level ``−1`` and its adjacent constraints
        have level ``−2``.
    parent:
        Parent tree node (``None`` for the root agent ``u``).
    children:
        Child tree nodes.
    """

    __slots__ = ("index", "kind", "name", "level", "parent", "children")

    def __init__(
        self,
        index: int,
        kind: NodeType,
        name: NodeId,
        level: int,
        parent: Optional["TreeNode"],
    ) -> None:
        self.index = index
        self.kind = kind
        self.name = name
        self.level = level
        self.parent = parent
        self.children: List[TreeNode] = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TreeNode(#{self.index}, {self.kind.short}:{self.name!r}, level={self.level})"


class AlternatingTree:
    """The alternating tree ``A_u`` of an agent ``u`` (paper §5.1)."""

    __slots__ = ("instance", "root_agent", "r", "root", "nodes", "_by_level")

    def __init__(self, instance: MaxMinInstance, root_agent: NodeId, r: int) -> None:
        self.instance = instance
        self.root_agent = root_agent
        self.r = r
        self.nodes: List[TreeNode] = []
        self._by_level: Dict[int, List[TreeNode]] = {}
        self.root: TreeNode = self._new_node(NodeType.AGENT, root_agent, level=-1, parent=None)

    # ------------------------------------------------------------------
    # Construction helpers (used by build_alternating_tree)
    # ------------------------------------------------------------------
    def _new_node(
        self, kind: NodeType, name: NodeId, level: int, parent: Optional[TreeNode]
    ) -> TreeNode:
        node = TreeNode(len(self.nodes), kind, name, level, parent)
        self.nodes.append(node)
        self._by_level.setdefault(level, []).append(node)
        if parent is not None:
            parent.children.append(node)
        return node

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def max_level(self) -> int:
        """The deepest possible level, ``4r + 2`` (leaf constraints)."""
        return 4 * self.r + 2

    @property
    def levels(self) -> Tuple[int, ...]:
        """Sorted tuple of levels that actually contain nodes."""
        return tuple(sorted(self._by_level))

    def nodes_at_level(self, level: int) -> Tuple[TreeNode, ...]:
        """All tree nodes at the given level (``L(u, ℓ)`` in the paper)."""
        return tuple(self._by_level.get(level, ()))

    def agent_nodes(self) -> Iterator[TreeNode]:
        return (n for n in self.nodes if n.kind is NodeType.AGENT)

    def constraint_nodes(self) -> Iterator[TreeNode]:
        return (n for n in self.nodes if n.kind is NodeType.CONSTRAINT)

    def objective_nodes(self) -> Iterator[TreeNode]:
        return (n for n in self.nodes if n.kind is NodeType.OBJECTIVE)

    def size(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Structural checks (Lemma 1)
    # ------------------------------------------------------------------
    def check_structure(self) -> List[str]:
        """Verify the structural claims of Lemma 1; return a list of violations."""
        problems: List[str] = []
        for node in self.nodes:
            if node.kind is NodeType.OBJECTIVE and node.level % 4 != 0:
                problems.append(f"objective {node!r} not at level 0 (mod 4)")
            if node.kind is NodeType.CONSTRAINT and node.level not in (-2,) and node.level % 4 != 2:
                problems.append(f"constraint {node!r} not at level 2 (mod 4)")
            if node.kind is NodeType.AGENT and node.level % 2 == 0:
                problems.append(f"agent {node!r} at an even level")
            if not node.children and node.kind is not NodeType.CONSTRAINT:
                problems.append(f"leaf {node!r} is not a constraint")
            if not node.children and node.kind is NodeType.CONSTRAINT and node.level not in (-2, self.max_level):
                problems.append(f"constraint leaf {node!r} at unexpected level {node.level}")
        # Every objective node must carry *all* agents adjacent to it in G.
        for node in self.objective_nodes():
            members = set(self.instance.agents_of_objective(node.name))
            present = {node.parent.name} if node.parent is not None else set()
            present.update(child.name for child in node.children)
            if present != members:
                problems.append(
                    f"objective {node!r} carries agents {sorted(map(repr, present))} "
                    f"but V_k = {sorted(map(repr, members))}"
                )
        return problems

    # ------------------------------------------------------------------
    # Conversion to a standalone max-min LP (for Lemma 3 / exact optimum)
    # ------------------------------------------------------------------
    def as_instance(self, name: Optional[str] = None) -> MaxMinInstance:
        """Return the max-min LP associated with ``A_u`` by restriction.

        Tree nodes become nodes of a fresh instance (identified by their
        ``index``); coefficients are inherited from the finite instance
        through the walk's end-node, exactly as in the unfolding (§3,
        remark 5).  Leaf constraints keep their single incident agent, i.e.
        they are the *relaxed* constraints of Lemma 2.
        """
        agents: List[int] = []
        constraints: List[int] = []
        objectives: List[int] = []
        a: Dict[Tuple[int, int], float] = {}
        c: Dict[Tuple[int, int], float] = {}

        for node in self.nodes:
            if node.kind is NodeType.AGENT:
                agents.append(node.index)
            elif node.kind is NodeType.CONSTRAINT:
                constraints.append(node.index)
            else:
                objectives.append(node.index)

        for node in self.nodes:
            parent = node.parent
            if parent is None:
                continue
            agent_node, other = (node, parent) if node.kind is NodeType.AGENT else (parent, node)
            if agent_node.kind is not NodeType.AGENT:
                raise InvalidInstanceError("alternating tree edge between two non-agent nodes")
            if other.kind is NodeType.CONSTRAINT:
                a[(other.index, agent_node.index)] = self.instance.a(other.name, agent_node.name)
            else:
                c[(other.index, agent_node.index)] = self.instance.c(other.name, agent_node.name)

        return MaxMinInstance(
            agents=agents,
            constraints=constraints,
            objectives=objectives,
            a=a,
            c=c,
            name=name or f"A_u({self.root_agent!r}, r={self.r})",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AlternatingTree(root={self.root_agent!r}, r={self.r}, nodes={len(self.nodes)}, "
            f"levels={self.levels[0]}..{self.levels[-1]})"
        )


def build_alternating_tree(
    instance: MaxMinInstance,
    u: NodeId,
    r: int,
    *,
    validate: bool = True,
) -> AlternatingTree:
    """Construct the alternating tree ``A_u`` for agent ``u`` with parameter ``r``.

    Parameters
    ----------
    instance:
        A special-form instance (``|V_i| = 2``, ``|K_v| = 1`` …).
    u:
        The root agent.
    r:
        The recursion depth parameter ``r = R − 2 ≥ 0``.
    validate:
        If true, check the special-form preconditions first (cheap relative
        to tree construction; disable in tight loops that already validated).
    """
    if r < 0:
        raise InvalidInstanceError(f"alternating tree parameter r must be >= 0, got {r}")
    if validate:
        require_special_form(instance)
    if not instance.has_agent(u):
        raise InvalidInstanceError(f"unknown agent {u!r}")

    tree = AlternatingTree(instance, u, r)
    root = tree.root
    max_level = tree.max_level

    # Length-1 walks: the constraints adjacent to u (level −2 leaves) ...
    for i in instance.constraints_of_agent(u):
        tree._new_node(NodeType.CONSTRAINT, i, level=-2, parent=root)

    # ... and the unique objective k(u) at level 0, from which the alternating
    # expansion proceeds.
    k_u = instance.unique_objective(u)
    objective_root = tree._new_node(NodeType.OBJECTIVE, k_u, level=0, parent=root)

    # Breadth-first expansion of alternating non-backtracking walks.  The
    # stack holds (tree_node, came_from_name) pairs where came_from_name is
    # the instance-level node we arrived from (to forbid backtracking).
    frontier: List[Tuple[TreeNode, NodeId]] = [(objective_root, u)]
    while frontier:
        next_frontier: List[Tuple[TreeNode, NodeId]] = []
        for node, came_from in frontier:
            level = node.level
            if level >= max_level:
                continue
            if node.kind is NodeType.OBJECTIVE:
                # Children: all other agents of the objective (level ≡ 1 mod 4).
                for w in instance.agents_of_objective(node.name):
                    if w == came_from:
                        continue
                    child = tree._new_node(NodeType.AGENT, w, level + 1, node)
                    next_frontier.append((child, node.name))
            elif node.kind is NodeType.AGENT:
                if level % 4 == 1:
                    # Arrived from an objective; alternation demands constraints next.
                    for i in instance.constraints_of_agent(node.name):
                        child = tree._new_node(NodeType.CONSTRAINT, i, level + 1, node)
                        next_frontier.append((child, node.name))
                else:
                    # Arrived from a constraint (level ≡ 3 mod 4); next is the
                    # unique objective of the agent.
                    k = instance.unique_objective(node.name)
                    child = tree._new_node(NodeType.OBJECTIVE, k, level + 1, node)
                    next_frontier.append((child, node.name))
            else:  # constraint
                # Children: the other agent of the degree-2 constraint.
                w = instance.other_agent(node.name, came_from)
                child = tree._new_node(NodeType.AGENT, w, level + 1, node)
                next_frontier.append((child, node.name))
        frontier = next_frontier

    return tree
