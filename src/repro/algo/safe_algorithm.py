"""The *safe algorithm* baseline (prior work [8, 16], paper §1.3).

The safe algorithm is the best previously known local algorithm for general
max-min LPs: each agent takes a "safe share" of each of its constraints,

.. math:: x_v = \\min_{i \\in I_v} \\frac{1}{\\lambda_i \\, a_{iv}},

where the divisor ``λ_i`` is either the actual constraint degree ``|V_i|``
(variant ``"degree"``) or the global bound ``ΔI`` (variant ``"delta"``).
Either choice is trivially feasible — every constraint receives at most
``Σ_v a_iv · 1/(|V_i| a_iv) = 1`` — and is a factor-``ΔI`` approximation:
any feasible solution satisfies ``x*_v ≤ min_i 1/a_iv ≤ ΔI · x_v``, so every
objective of the optimum is at most ``ΔI`` times the corresponding objective
of the safe solution.

The algorithm is "local" in the strongest possible sense: one communication
round suffices (each agent only needs the degrees and coefficients of its
own constraints).  The paper's contribution is beating this ``ΔI`` factor
down to ``ΔI (1 − 1/ΔK) + ε``; experiment E4 measures the gap.

Like the §5 solver, the baseline has two backends: ``"vectorized"``
(default) evaluates the safe share as one segmented min over the compiled
CSR arrays (:class:`~repro.core.compiled.CompiledInstance`), ``"reference"``
keeps the per-node dict traversal as the readable oracle.  Both compute
``1/(λ_i a_iv)`` edge by edge and take the same min, so they agree exactly
(not merely to tolerance).
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from .._types import NodeId
from ..core.instance import MaxMinInstance
from ..core.preprocess import preprocess
from ..core.solution import Solution
from ..exceptions import InvalidInstanceError
from .certificates import Certificate

__all__ = ["SafeAlgorithm", "safe_solution"]

_BACKENDS = ("vectorized", "reference")


def safe_solution(
    instance: MaxMinInstance,
    variant: str = "degree",
    delta_I: int = 0,
    backend: str = "vectorized",
) -> Solution:
    """Compute the safe-algorithm solution of a non-degenerate instance.

    Parameters
    ----------
    instance:
        The instance; agents without constraints make the safe value
        unbounded and must be removed by preprocessing first.
    variant:
        ``"degree"`` uses the per-constraint degree ``|V_i|``;
        ``"delta"`` divides by the global ``ΔI`` everywhere (slightly more
        conservative, exactly the form used in the prior-work analysis).
    delta_I:
        Override for ``ΔI`` in the ``"delta"`` variant (default: the
        instance's own maximum constraint degree).  Passing it with any
        other variant raises :class:`ValueError` — it would otherwise be
        silently ignored.
    backend:
        ``"vectorized"`` (one segment-min over the compiled CSR arrays,
        default) or ``"reference"`` (per-node dict traversal, the oracle).
    """
    if variant not in ("degree", "delta"):
        raise ValueError(f"unknown safe-algorithm variant {variant!r}")
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (expected 'vectorized' or 'reference')")
    if delta_I and variant != "delta":
        raise ValueError(
            f"delta_I={delta_I} is only meaningful with variant='delta' "
            f"(got variant={variant!r}); it would be silently ignored"
        )
    if variant == "delta":
        divisor_global = delta_I if delta_I > 0 else max(instance.delta_I, 1)

    if backend == "vectorized":
        comp = instance.compiled()
        if variant == "degree":
            divisors = comp.constraint_degrees[comp.con_indices].astype(np.float64)
        else:
            divisors = float(divisor_global)
        x = comp.agent_constraint_min(1.0 / (divisors * comp.con_coeff))
        unconstrained = np.isinf(x)
        if unconstrained.any():
            v = comp.agents[int(np.argmax(unconstrained))]
            raise InvalidInstanceError(
                f"agent {v!r} has no constraints; preprocess the instance before the safe algorithm"
            )
        return Solution.from_agent_array(instance, x, label=f"safe-{variant}")

    values: Dict[NodeId, float] = {}
    for v in instance.agents:
        best = math.inf
        for i in instance.constraints_of_agent(v):
            if variant == "degree":
                divisor = len(instance.agents_of_constraint(i))
            else:
                divisor = divisor_global
            candidate = 1.0 / (divisor * instance.a(i, v))
            if candidate < best:
                best = candidate
        if math.isinf(best):
            raise InvalidInstanceError(
                f"agent {v!r} has no constraints; preprocess the instance before the safe algorithm"
            )
        values[v] = best
    return Solution(instance, values, label=f"safe-{variant}")


class SafeAlgorithm:
    """Object-style wrapper around :func:`safe_solution` with certificates."""

    def __init__(self, variant: str = "degree", *, backend: str = "vectorized") -> None:
        if variant not in ("degree", "delta"):
            raise ValueError(f"unknown safe-algorithm variant {variant!r}")
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r} (expected 'vectorized' or 'reference')")
        self.variant = variant
        self.backend = backend

    @property
    def name(self) -> str:
        return f"safe-{self.variant}"

    def guaranteed_ratio(self, instance: MaxMinInstance) -> float:
        """The prior-work guarantee: factor ``ΔI``."""
        return float(max(instance.delta_I, 1))

    def solve(self, instance: MaxMinInstance) -> Solution:
        """Solve an arbitrary instance (degenerate parts handled by preprocessing)."""
        pre = preprocess(instance)
        if pre.optimum_is_zero or pre.instance.num_agents == 0:
            return pre.zero_solution(label=self.name)
        inner = safe_solution(pre.instance, variant=self.variant, backend=self.backend)
        if pre.changed:
            return pre.lift(inner, label=self.name)
        return Solution(instance, inner.as_dict(), label=self.name)

    def solve_with_certificate(self, instance: MaxMinInstance) -> "tuple[Solution, Certificate]":
        solution = self.solve(instance)
        certificate = Certificate(
            algorithm=self.name,
            guaranteed_ratio=self.guaranteed_ratio(instance),
            delta_I=instance.delta_I,
            delta_K=instance.delta_K,
            parameters={"variant": self.variant, "backend": self.backend},
        )
        return solution, certificate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SafeAlgorithm(variant={self.variant!r}, backend={self.backend!r})"
