"""The *safe algorithm* baseline (prior work [8, 16], paper §1.3).

The safe algorithm is the best previously known local algorithm for general
max-min LPs: each agent takes a "safe share" of each of its constraints,

.. math:: x_v = \\min_{i \\in I_v} \\frac{1}{\\lambda_i \\, a_{iv}},

where the divisor ``λ_i`` is either the actual constraint degree ``|V_i|``
(variant ``"degree"``) or the global bound ``ΔI`` (variant ``"delta"``).
Either choice is trivially feasible — every constraint receives at most
``Σ_v a_iv · 1/(|V_i| a_iv) = 1`` — and is a factor-``ΔI`` approximation:
any feasible solution satisfies ``x*_v ≤ min_i 1/a_iv ≤ ΔI · x_v``, so every
objective of the optimum is at most ``ΔI`` times the corresponding objective
of the safe solution.

The algorithm is "local" in the strongest possible sense: one communication
round suffices (each agent only needs the degrees and coefficients of its
own constraints).  The paper's contribution is beating this ``ΔI`` factor
down to ``ΔI (1 − 1/ΔK) + ε``; experiment E4 measures the gap.
"""

from __future__ import annotations

import math
from typing import Dict

from .._types import NodeId
from ..core.instance import MaxMinInstance
from ..core.preprocess import preprocess
from ..core.solution import Solution
from ..exceptions import InvalidInstanceError
from .certificates import Certificate

__all__ = ["SafeAlgorithm", "safe_solution"]


def safe_solution(
    instance: MaxMinInstance,
    variant: str = "degree",
    delta_I: int = 0,
) -> Solution:
    """Compute the safe-algorithm solution of a non-degenerate instance.

    Parameters
    ----------
    instance:
        The instance; agents without constraints make the safe value
        unbounded and must be removed by preprocessing first.
    variant:
        ``"degree"`` uses the per-constraint degree ``|V_i|``;
        ``"delta"`` divides by the global ``ΔI`` everywhere (slightly more
        conservative, exactly the form used in the prior-work analysis).
    delta_I:
        Override for ``ΔI`` in the ``"delta"`` variant (default: the
        instance's own maximum constraint degree).
    """
    if variant not in ("degree", "delta"):
        raise ValueError(f"unknown safe-algorithm variant {variant!r}")
    if variant == "delta":
        divisor_global = delta_I if delta_I > 0 else max(instance.delta_I, 1)

    values: Dict[NodeId, float] = {}
    for v in instance.agents:
        best = math.inf
        for i in instance.constraints_of_agent(v):
            if variant == "degree":
                divisor = len(instance.agents_of_constraint(i))
            else:
                divisor = divisor_global
            candidate = 1.0 / (divisor * instance.a(i, v))
            if candidate < best:
                best = candidate
        if math.isinf(best):
            raise InvalidInstanceError(
                f"agent {v!r} has no constraints; preprocess the instance before the safe algorithm"
            )
        values[v] = best
    return Solution(instance, values, label=f"safe-{variant}")


class SafeAlgorithm:
    """Object-style wrapper around :func:`safe_solution` with certificates."""

    def __init__(self, variant: str = "degree") -> None:
        if variant not in ("degree", "delta"):
            raise ValueError(f"unknown safe-algorithm variant {variant!r}")
        self.variant = variant

    @property
    def name(self) -> str:
        return f"safe-{self.variant}"

    def guaranteed_ratio(self, instance: MaxMinInstance) -> float:
        """The prior-work guarantee: factor ``ΔI``."""
        return float(max(instance.delta_I, 1))

    def solve(self, instance: MaxMinInstance) -> Solution:
        """Solve an arbitrary instance (degenerate parts handled by preprocessing)."""
        pre = preprocess(instance)
        if pre.optimum_is_zero or pre.instance.num_agents == 0:
            return pre.zero_solution(label=self.name)
        inner = safe_solution(pre.instance, variant=self.variant)
        if pre.changed:
            return pre.lift(inner, label=self.name)
        return Solution(instance, inner.as_dict(), label=self.name)

    def solve_with_certificate(self, instance: MaxMinInstance) -> "tuple[Solution, Certificate]":
        solution = self.solve(instance)
        certificate = Certificate(
            algorithm=self.name,
            guaranteed_ratio=self.guaranteed_ratio(instance),
            delta_I=instance.delta_I,
            delta_K=instance.delta_K,
            parameters={"variant": self.variant},
        )
        return solution, certificate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SafeAlgorithm(variant={self.variant!r})"
