"""The level-wise ``f±`` recursion on alternating trees (paper §5.2, Eqs. 5–9).

For a fixed candidate utility ``ω`` the recursion assigns to every agent node
of ``A_u`` either a value ``f⁺`` ("largest value that does not violate the
constraints below") or ``f⁻`` ("smallest value such that the objective below
still reaches ``ω``"), proceeding from the deepest agents (level ``4r + 1``)
towards the root ``u`` (level ``−1``):

* ``f⁺_{u,v,0}(ω) = min_{i∈I_v} 1/a_iv``                        (level 4r+1)
* ``f⁻_{u,v,d}(ω) = max(0, ω − Σ_{w∈N(v)} f⁺_{u,w,d}(ω))``      (level 4(r−d)−1)
* ``f⁺_{u,v,d}(ω) = min_{i∈I_v} (1 − a_{i,n(v,i)} f⁻_{u,n(v,i),d−1}(ω)) / a_iv``
                                                                 (level 4(r−d)+1)

``ω`` is *feasible for the recursion* when every ``f⁺`` is non-negative
(Eq. 8) and the root value ``f⁻_{u,u,r}(ω)`` does not exceed
``min_{i∈I_u} 1/a_iu`` (Eq. 9).  Lemma 3 shows the largest such ``ω`` is the
optimum ``t_u`` of the max-min LP associated with ``A_u``; the feasibility
predicate is monotone in ``ω``, so ``t_u`` can be found by binary search
(see :mod:`repro.algo.upper_bound`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .._types import NodeType
from ..exceptions import InvalidInstanceError
from .alternating_tree import AlternatingTree, TreeNode

__all__ = ["FRecursionValues", "evaluate_recursion", "recursion_feasible", "recursion_margin"]


class FRecursionValues:
    """Values of the ``f±`` recursion for one tree and one candidate ``ω``.

    Attributes
    ----------
    omega:
        The candidate utility the recursion was evaluated at.
    f_plus / f_minus:
        Mappings from :class:`TreeNode` index to value.  ``f_plus`` is defined
        on agent nodes at levels ``≡ 1 (mod 4)``; ``f_minus`` on agent nodes
        at levels ``≡ 3 (mod 4)`` and on the root (level ``−1``).
    depth_of:
        The recursion depth ``d`` associated with each agent node index
        (``d = r`` at the root / level ``3``'s top layer, ``d = 0`` deepest).
    """

    __slots__ = ("omega", "f_plus", "f_minus", "depth_of")

    def __init__(self, omega: float) -> None:
        self.omega = omega
        self.f_plus: Dict[int, float] = {}
        self.f_minus: Dict[int, float] = {}
        self.depth_of: Dict[int, int] = {}

    def value(self, node: TreeNode) -> float:
        """The recursion value of an agent node (``f⁺`` or ``f⁻`` as applicable)."""
        if node.index in self.f_plus:
            return self.f_plus[node.index]
        if node.index in self.f_minus:
            return self.f_minus[node.index]
        raise KeyError(f"no recursion value for node {node!r}")

    def min_f_plus(self) -> float:
        """The smallest ``f⁺`` value (used for the feasibility check, Eq. 8)."""
        return min(self.f_plus.values()) if self.f_plus else math.inf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FRecursionValues(omega={self.omega:.6g}, "
            f"|f+|={len(self.f_plus)}, |f-|={len(self.f_minus)})"
        )


def _depth_for_level(level: int, r: int) -> int:
    """The recursion depth ``d`` of an agent at the given tree level."""
    if level % 4 == 1:
        # level = 4(r − d) + 1
        return r - (level - 1) // 4
    if level % 4 == 3 or level == -1:
        # level = 4(r − d) − 1
        return r - (level + 1) // 4
    raise InvalidInstanceError(f"level {level} does not belong to an agent node")


def evaluate_recursion(tree: AlternatingTree, omega: float) -> FRecursionValues:
    """Evaluate the ``f±`` recursion of ``A_u`` at the candidate utility ``ω``."""
    instance = tree.instance
    r = tree.r
    values = FRecursionValues(omega)

    # Agents are processed from the deepest level towards the root; within a
    # level the order is irrelevant (the recursion only looks downwards).
    agent_levels: List[int] = sorted(
        {node.level for node in tree.nodes if node.kind is NodeType.AGENT}, reverse=True
    )

    for level in agent_levels:
        for node in tree.nodes_at_level(level):
            if node.kind is not NodeType.AGENT:
                continue
            d = _depth_for_level(level, r)
            values.depth_of[node.index] = d
            if level == 4 * r + 1:
                # Eq. 5: deepest agents take their individual capacity.
                values.f_plus[node.index] = instance.agent_capacity(node.name)
            elif level % 4 == 1:
                # Eq. 7: constrained from below by the f⁻ of the partner agents.
                best = math.inf
                for constraint_child in node.children:
                    # Each constraint child has exactly one agent child n(v, i).
                    partner = constraint_child.children[0]
                    a_vn = instance.a(constraint_child.name, partner.name)
                    a_vv = instance.a(constraint_child.name, node.name)
                    candidate = (1.0 - a_vn * values.f_minus[partner.index]) / a_vv
                    if candidate < best:
                        best = candidate
                values.f_plus[node.index] = best
            else:
                # Eq. 6: smallest value such that the objective below meets ω.
                objective_child = next(
                    child for child in node.children if child.kind is NodeType.OBJECTIVE
                )
                total = sum(values.f_plus[w.index] for w in objective_child.children)
                values.f_minus[node.index] = max(0.0, omega - total)

    return values


def recursion_margin(tree: AlternatingTree, omega: float) -> float:
    """Feasibility margin of ``ω`` for the recursion (≥ 0 iff feasible).

    The margin is the minimum of

    * every ``f⁺`` value (Eq. 8 demands them to be non-negative), and
    * ``min_{i∈I_u} 1/a_iu − f⁻_{u,u,r}(ω)`` (Eq. 9).

    It is continuous and non-increasing in ``ω``, which is what makes binary
    search for ``t_u`` valid.
    """
    values = evaluate_recursion(tree, omega)
    root_slack = tree.instance.agent_capacity(tree.root_agent) - values.f_minus[tree.root.index]
    return min(values.min_f_plus(), root_slack)


def recursion_feasible(tree: AlternatingTree, omega: float, tol: float = 0.0) -> bool:
    """True when ``ω`` satisfies Eqs. 8–9 (within ``tol``)."""
    return recursion_margin(tree, omega) >= -tol
