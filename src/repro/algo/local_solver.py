"""The local algorithm for special-form instances (paper §5.3).

Given a special-form instance (``|V_i| = 2``, ``|V_k| ≥ 2``, ``|K_v| = 1``,
``|I_v| ≥ 1``, ``c_kv = 1``) and the shifting parameter ``R ≥ 2``
(``r = R − 2``), the algorithm computes

1. the per-agent upper bounds ``t_u`` (optimum of the alternating tree
   ``A_u``, §5.1–§5.2),
2. the smoothed bounds ``s_v = min { t_u : dist(u, v) ≤ 4r + 2 }``,
3. the ``g±`` recursion (Eqs. 12–14)::

       g⁺_{v,0} = min_{i∈I_v} 1 / a_iv
       g⁻_{v,d} = max(0, s_v − Σ_{w∈N(v)} g⁺_{w,d})            d = 0 … r
       g⁺_{v,d} = min_{i∈I_v} (1 − a_{i,n(v,i)} g⁻_{n(v,i),d−1}) / a_iv   d = 1 … r

4. the output (Eq. 18)::

       x_v = (1 / 2R) Σ_{d=0}^{r} ( g⁺_{v,d} + g⁻_{v,d} )

The output is feasible (Lemma 11) and within a factor
``2 (1 − 1/ΔK) (1 + 1/(R−1))`` of the optimum (Lemma 12 + §6.3).

Everything here is the *centralized reference* implementation: it computes
the same quantities a distributed execution would, directly on the instance.
The message-passing realisation lives in :mod:`repro.distributed.agents` and
is tested to produce bit-identical outputs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .. import obs
from .._types import NodeId
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..core.validation import require_special_form
from ..exceptions import InvalidInstanceError
from .upper_bound import DEFAULT_BISECTION_TOL, compute_upper_bounds, smooth_upper_bounds

__all__ = [
    "GRecursionValues",
    "IncrementalSolveState",
    "SpecialFormSolveResult",
    "SpecialFormLocalSolver",
    "special_form_ratio",
]


def special_form_ratio(delta_K: int, R: int) -> float:
    """The §6.3 guarantee ``2 (1 − 1/ΔK)(1 + 1/(R − 1))`` for the special form."""
    if R < 2:
        raise ValueError(f"R must be at least 2, got {R}")
    if delta_K < 2:
        delta_K = 2
    return 2.0 * (1.0 - 1.0 / delta_K) * (1.0 + 1.0 / (R - 1.0))


class GRecursionValues:
    """The ``g±`` tables of one run, indexed ``[d][agent]`` for ``d = 0 … r``."""

    __slots__ = ("g_plus", "g_minus", "r")

    def __init__(self, g_plus: List[Dict[NodeId, float]], g_minus: List[Dict[NodeId, float]]) -> None:
        if len(g_plus) != len(g_minus):
            raise InvalidInstanceError("g_plus and g_minus must have the same depth")
        self.g_plus = g_plus
        self.g_minus = g_minus
        self.r = len(g_plus) - 1

    def plus(self, v: NodeId, d: int) -> float:
        return self.g_plus[d][v]

    def minus(self, v: NodeId, d: int) -> float:
        return self.g_minus[d][v]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GRecursionValues(r={self.r}, agents={len(self.g_plus[0])})"


class SpecialFormSolveResult:
    """Everything produced by one run of the §5 algorithm on a special-form instance.

    Attributes
    ----------
    solution:
        The output vector ``x`` of Eq. 18 (feasible by Lemma 11).
    upper_bounds:
        ``t_u`` per agent.
    smoothed_bounds:
        ``s_v`` per agent.
    g:
        The ``g±`` recursion tables (used by the §6 analysis machinery and
        by the structural tests of Lemmata 5–7).
    R, r:
        The shifting parameter and ``r = R − 2``.
    guaranteed_ratio:
        ``2 (1 − 1/ΔK)(1 + 1/(R−1))`` for this instance's ``ΔK``.

    Results built by :meth:`from_kernel_arrays` (the vectorized backend)
    keep the kernel output arrays and materialise the ``upper_bounds`` /
    ``smoothed_bounds`` / ``g`` dicts only on first attribute access: the
    engine's record path reads nothing but ``solution``, so a sweep never
    pays for ``O(n·r)`` dict construction per solve.  The
    ``solver.lazy_results`` / ``solver.lazy_materializations`` counters
    record how often the skip fires versus gets undone.
    """

    __slots__ = (
        "solution",
        "_upper_bounds",
        "_smoothed_bounds",
        "_g",
        "_lazy",
        "R",
        "r",
        "guaranteed_ratio",
    )

    def __init__(
        self,
        solution: Solution,
        upper_bounds: Dict[NodeId, float],
        smoothed_bounds: Dict[NodeId, float],
        g: GRecursionValues,
        R: int,
        guaranteed_ratio: float,
    ) -> None:
        self.solution = solution
        self._upper_bounds = upper_bounds
        self._smoothed_bounds = smoothed_bounds
        self._g = g
        self._lazy = None
        self.R = R
        self.r = R - 2
        self.guaranteed_ratio = guaranteed_ratio

    @classmethod
    def from_kernel_arrays(
        cls,
        instance: MaxMinInstance,
        t,
        s,
        g_plus,
        g_minus,
        solution: Solution,
        R: int,
        guaranteed_ratio: float,
    ) -> "SpecialFormSolveResult":
        """Wrap kernel output arrays without materialising the bound dicts."""
        result = cls.__new__(cls)
        result.solution = solution
        result._upper_bounds = None
        result._smoothed_bounds = None
        result._g = None
        result._lazy = (instance, t, s, g_plus, g_minus)
        result.R = R
        result.r = R - 2
        result.guaranteed_ratio = guaranteed_ratio
        obs.count("solver.lazy_results")
        return result

    def _materialize(self) -> None:
        """Build the dict views from the retained kernel arrays (once)."""
        instance, t, s, g_plus, g_minus = self._lazy
        agents = instance.agents
        self._upper_bounds = dict(zip(agents, t.tolist()))
        self._smoothed_bounds = dict(zip(agents, s.tolist()))
        self._g = GRecursionValues(
            [dict(zip(agents, g_plus[d].tolist())) for d in range(self.r + 1)],
            [dict(zip(agents, g_minus[d].tolist())) for d in range(self.r + 1)],
        )
        self._lazy = None
        obs.count("solver.lazy_materializations")

    @property
    def upper_bounds(self) -> Dict[NodeId, float]:
        if self._upper_bounds is None:
            self._materialize()
        return self._upper_bounds

    @property
    def smoothed_bounds(self) -> Dict[NodeId, float]:
        if self._smoothed_bounds is None:
            self._materialize()
        return self._smoothed_bounds

    @property
    def g(self) -> GRecursionValues:
        if self._g is None:
            self._materialize()
        return self._g

    def utility(self) -> float:
        return self.solution.utility()

    def minimum_smoothed_bound(self) -> float:
        """``min_v s_v`` — the quantity Lemma 12 relates the output to."""
        if self._smoothed_bounds is None and self._lazy is not None:
            s = self._lazy[2]
            return float(s.min()) if len(s) else math.inf
        return min(self.smoothed_bounds.values()) if self.smoothed_bounds else math.inf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpecialFormSolveResult(R={self.R}, utility={self.utility():.6g}, "
            f"guaranteed_ratio={self.guaranteed_ratio:.4f})"
        )


class SpecialFormLocalSolver:
    """Centralized reference implementation of the §5 local algorithm.

    Parameters
    ----------
    R:
        Shifting parameter (≥ 2).  Larger R improves the approximation ratio
        — ``2 (1 − 1/ΔK)(1 + 1/(R−1))`` — at the cost of a local horizon that
        grows linearly in R.
    tu_method:
        ``"recursion"`` (binary search, default) or ``"lp"`` (exact tree LP).
    tu_tol:
        Bisection tolerance when ``tu_method="recursion"``.
    backend:
        ``"vectorized"`` (default) routes the whole pipeline through the
        compiled CSR kernels of :mod:`repro.algo.kernels`; ``"reference"``
        keeps the original per-node object traversal.  Both produce the same
        result to within bisection tolerance (pinned at 1e-9 by the
        equivalence property tests); the reference backend is retained as
        the readable oracle.
    """

    def __init__(
        self,
        R: int = 3,
        *,
        tu_method: str = "recursion",
        tu_tol: float = DEFAULT_BISECTION_TOL,
        backend: str = "vectorized",
    ) -> None:
        if R < 2:
            raise ValueError(f"shifting parameter R must be at least 2, got {R}")
        if tu_method not in ("recursion", "lp"):
            raise ValueError(f"unknown tu_method {tu_method!r}")
        if backend not in ("vectorized", "reference"):
            raise ValueError(f"unknown backend {backend!r} (expected 'vectorized' or 'reference')")
        self.R = R
        self.r = R - 2
        self.tu_method = tu_method
        self.tu_tol = tu_tol
        self.backend = backend

    # ------------------------------------------------------------------
    def compute_g_recursion(
        self, instance: MaxMinInstance, smoothed_bounds: Dict[NodeId, float]
    ) -> GRecursionValues:
        """Evaluate Eqs. 12–14 for all agents and all depths ``d = 0 … r``."""
        r = self.r
        agents = instance.agents

        g_plus: List[Dict[NodeId, float]] = [dict() for _ in range(r + 1)]
        g_minus: List[Dict[NodeId, float]] = [dict() for _ in range(r + 1)]

        # Eq. 12 — depth 0 upper values are the individual capacities.
        for v in agents:
            g_plus[0][v] = instance.agent_capacity(v)

        for d in range(r + 1):
            if d >= 1:
                # Eq. 14 — g⁺ at depth d needs g⁻ of the constraint partners at d−1.
                for v in agents:
                    best = math.inf
                    for i in instance.constraints_of_agent(v):
                        partner = instance.other_agent(i, v)
                        candidate = (
                            1.0 - instance.a(i, partner) * g_minus[d - 1][partner]
                        ) / instance.a(i, v)
                        if candidate < best:
                            best = candidate
                    g_plus[d][v] = best
            # Eq. 13 — g⁻ at depth d needs g⁺ of the objective siblings at d.
            for v in agents:
                sibling_total = sum(g_plus[d][w] for w in instance.objective_siblings(v))
                g_minus[d][v] = max(0.0, smoothed_bounds[v] - sibling_total)

        return GRecursionValues(g_plus, g_minus)

    def output_vector(self, instance: MaxMinInstance, g: GRecursionValues) -> Solution:
        """Eq. 18: ``x_v = (1/2R) Σ_d (g⁺_{v,d} + g⁻_{v,d})``."""
        factor = 1.0 / (2.0 * self.R)
        values = {
            v: factor * sum(g.plus(v, d) + g.minus(v, d) for d in range(self.r + 1))
            for v in instance.agents
        }
        return Solution(instance, values, label=f"local-R{self.R}")

    # ------------------------------------------------------------------
    def solve(self, instance: MaxMinInstance) -> SpecialFormSolveResult:
        """Run the full §5 algorithm on a special-form instance."""
        require_special_form(instance)
        if self.backend == "vectorized":
            return self._solve_vectorized(instance)

        with obs.span(
            "solve.special_form", backend="reference", agents=instance.num_agents
        ):
            with obs.span("kernels.upper_bounds"):
                upper_bounds = compute_upper_bounds(
                    instance, self.r, method=self.tu_method, tol=self.tu_tol
                )
            with obs.span("kernels.smooth"):
                smoothed = smooth_upper_bounds(instance, upper_bounds, self.r)
            with obs.span("kernels.g_recursion"):
                g = self.compute_g_recursion(instance, smoothed)
            with obs.span("kernels.output"):
                solution = self.output_vector(instance, g)

        return SpecialFormSolveResult(
            solution=solution,
            upper_bounds=upper_bounds,
            smoothed_bounds=smoothed,
            g=g,
            R=self.R,
            guaranteed_ratio=special_form_ratio(instance.delta_K, self.R),
        )

    def _solve_vectorized(self, instance: MaxMinInstance) -> SpecialFormSolveResult:
        """The same pipeline over the compiled CSR kernels (see :mod:`.kernels`)."""
        from .kernels import (
            batched_upper_bounds,
            g_recursion_kernel,
            output_kernel,
            smooth_bounds_kernel,
        )

        comp = instance.compiled()
        r = self.r
        with obs.span(
            "solve.special_form", backend="vectorized", agents=comp.num_agents
        ):
            with obs.span("kernels.upper_bounds"):
                t = batched_upper_bounds(comp, r, method=self.tu_method, tol=self.tu_tol)
            with obs.span("kernels.smooth"):
                s = smooth_bounds_kernel(comp, t, r)
            with obs.span("kernels.g_recursion"):
                g_plus, g_minus = g_recursion_kernel(comp, s, r)
            with obs.span("kernels.output"):
                x = output_kernel(g_plus, g_minus, self.R)
        return self._package_vectorized(instance, t, s, g_plus, g_minus, x)

    def _package_vectorized(
        self,
        instance: MaxMinInstance,
        t,
        s,
        g_plus,
        g_minus,
        x,
    ) -> SpecialFormSolveResult:
        """Wrap kernel output arrays (canonical agent order) into a lazy result.

        The bound dicts and ``g±`` tables materialise only if a caller
        actually reads them (see :meth:`SpecialFormSolveResult.from_kernel_arrays`).
        """
        solution = Solution.from_agent_array(instance, x, label=f"local-R{self.R}")
        return SpecialFormSolveResult.from_kernel_arrays(
            instance,
            t,
            s,
            g_plus,
            g_minus,
            solution,
            self.R,
            special_form_ratio(instance.delta_K, self.R),
        )

    def solve_batch(self, instances) -> List[SpecialFormSolveResult]:
        """Solve many special-form instances in **one** kernel dispatch.

        The instances' compiled CSR blocks are concatenated into a
        :class:`~repro.core.compiled.CompiledBatch` (offset-shifted indices)
        and the whole §5 pipeline — tree construction, the ``t_u`` bisection,
        smoothing, the ``g±`` recursion and Eq. 18 — runs once over the
        stack, amortising kernel launches over the batch.  Tree
        deduplication spans the batch, so structurally identical trees of
        *different* instances share one bisection.  Every kernel reduces over
        per-agent segments that never cross block boundaries, so each
        instance's outputs are bitwise identical to a solo
        ``backend="vectorized"`` solve.

        The ``reference`` backend and the ``tu_method="lp"`` path (which
        needs a live instance per tree) fall back to per-instance solves.
        """
        instances = list(instances)
        if not instances:
            return []
        if self.backend == "reference" or self.tu_method == "lp" or len(instances) == 1:
            return [self.solve(instance) for instance in instances]

        from ..core.compiled import stack_compiled
        from .kernels import (
            batched_upper_bounds,
            g_recursion_kernel,
            output_kernel,
            smooth_bounds_kernel,
        )

        for instance in instances:
            require_special_form(instance)
        stacked = stack_compiled([instance.compiled() for instance in instances])
        r = self.r
        with obs.span(
            "solve.special_form",
            backend="vectorized",
            agents=stacked.num_agents,
            batch=len(instances),
        ):
            with obs.span("kernels.upper_bounds"):
                t = batched_upper_bounds(stacked, r, method=self.tu_method, tol=self.tu_tol)
            with obs.span("kernels.smooth"):
                s = smooth_bounds_kernel(stacked, t, r)
            with obs.span("kernels.g_recursion"):
                g_plus, g_minus = g_recursion_kernel(stacked, s, r)
            with obs.span("kernels.output"):
                x = output_kernel(g_plus, g_minus, self.R)
        return [
            self._package_vectorized(
                instance, t[sl], s[sl], g_plus[:, sl], g_minus[:, sl], x[sl]
            )
            for instance, sl in zip(instances, stacked.agent_slices())
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpecialFormLocalSolver(R={self.R}, tu_method={self.tu_method!r}, "
            f"backend={self.backend!r})"
        )


class IncrementalSolveState:
    """Retained kernel arrays of one instance, re-solvable per delta.

    Holds the full §5 pipeline outputs (``t``, ``s``, ``g±``, ``x``) of the
    vectorized backend and, given a
    :class:`~repro.core.compiled.DeltaResult`, re-runs each stage only on
    the dirty r-ball and splices the results back in:

    * ``t`` on ``ball(seeds, 2r+1)`` hops — an edit can only reach trees
      whose 2r+1-hop agent ball contains a changed agent;
    * ``s`` on ``ball(seeds, 4r+2)`` — smoothing mins ``t`` over 2r+1 more
      hops (propagation runs on the larger work ball so every confined min
      equals the global one);
    * ``g±`` and ``x`` on ``ball(seeds, 6r+3)`` — the ``g`` recursion reads
      ``s`` through ``2r`` further hops, so no change escapes this ball and
      reads one hop outside it see retained values a full re-solve would
      reproduce bit for bit.

    One smoothing-adjacency hop is two communication-graph edges, so the
    output ball is graph radius ``12r + 6`` — exactly
    :func:`~repro.distributed.dynamics.local_horizon_radius`, the paper's
    §1.3 locality bound that :func:`measure_change_impact` checks
    empirically.  The spliced state is bitwise identical to a from-scratch
    vectorized solve of the edited instance (pinned by
    ``tests/test_incremental.py``); per-tick cost is O(changed · r-ball)
    instead of O(n).
    """

    __slots__ = ("solver", "instance", "comp", "t", "s", "g_plus", "g_minus", "x", "last_recompute")

    def __init__(self, solver: SpecialFormLocalSolver, instance: MaxMinInstance) -> None:
        if solver.backend != "vectorized":
            raise ValueError("IncrementalSolveState requires the vectorized backend")
        from .kernels import (
            batched_upper_bounds,
            g_recursion_kernel,
            output_kernel,
            smooth_bounds_kernel,
        )

        require_special_form(instance)
        self.solver = solver
        self.instance = instance
        self.comp = instance.compiled()
        r = solver.r
        with obs.span("solve.special_form", backend="vectorized", agents=self.comp.num_agents):
            with obs.span("kernels.upper_bounds"):
                self.t = batched_upper_bounds(
                    self.comp, r, method=solver.tu_method, tol=solver.tu_tol
                )
            with obs.span("kernels.smooth"):
                self.s = smooth_bounds_kernel(self.comp, self.t, r)
            with obs.span("kernels.g_recursion"):
                self.g_plus, self.g_minus = g_recursion_kernel(self.comp, self.s, r)
            with obs.span("kernels.output"):
                self.x = output_kernel(self.g_plus, self.g_minus, solver.R)
        self.last_recompute = None

    # ------------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        return self.comp.num_agents

    def result(self) -> SpecialFormSolveResult:
        """Package the current state (copies — the state keeps mutating)."""
        return self.solver._package_vectorized(
            self.instance,
            self.t.copy(),
            self.s.copy(),
            self.g_plus.copy(),
            self.g_minus.copy(),
            self.x.copy(),
        )

    def apply_delta(self, delta) -> "np.ndarray":
        """Confined re-solve after a delta; returns the recomputed positions.

        ``delta`` is the :class:`~repro.core.compiled.DeltaResult` of an
        edit batch against ``self.instance``.  The retained arrays are
        remapped to the new canonical order (dropped / added positions) and
        every pipeline stage re-runs only on its dirty ball.
        """
        import numpy as np

        from .kernels import (
            agent_hop_balls,
            batched_upper_bounds,
            g_recursion_confined,
            smooth_bounds_confined,
        )

        if delta.identity:
            if delta.instance is not self.instance:
                raise InvalidInstanceError("delta was built against a different instance")
            self.last_recompute = np.zeros(0, dtype=np.int64)
            return self.last_recompute
        if len(delta.old_to_new_agent) != self.comp.num_agents:
            raise InvalidInstanceError("delta does not match this state's instance")
        new_inst = delta.instance
        new_comp = delta.compiled
        require_special_form(new_inst)
        solver = self.solver
        r = solver.r
        n_new = new_comp.num_agents
        o2n = delta.old_to_new_agent

        with obs.span("solve.incremental", agents=n_new, dirty=len(delta.dirty_agents)):
            if len(o2n) != n_new or not bool((o2n >= 0).all()):
                # Node positions changed: scatter survivors into the new
                # order; added positions are always inside the dirty balls
                # and get rewritten by every stage below.
                keep = np.flatnonzero(o2n >= 0)
                dst = o2n[keep]
                for attr in ("t", "s", "x"):
                    remapped = np.empty(n_new, dtype=np.float64)
                    remapped[dst] = getattr(self, attr)[keep]
                    setattr(self, attr, remapped)
                for attr in ("g_plus", "g_minus"):
                    remapped = np.empty((r + 1, n_new), dtype=np.float64)
                    remapped[:, dst] = getattr(self, attr)[:, keep]
                    setattr(self, attr, remapped)
            self.instance = new_inst
            self.comp = new_comp

            seeds = delta.dirty_agents
            t_ball, s_ball, out_ball = agent_hop_balls(
                new_comp, seeds, [2 * r + 1, 4 * r + 2, 6 * r + 3]
            )
            with obs.span("kernels.upper_bounds", trees=len(t_ball)):
                self.t[t_ball] = batched_upper_bounds(
                    new_comp, r, method=solver.tu_method, tol=solver.tu_tol, targets=t_ball
                )
            with obs.span("kernels.smooth"):
                scratch = smooth_bounds_confined(new_comp, self.t, r, out_ball)
                self.s[s_ball] = scratch[s_ball]
            with obs.span("kernels.g_recursion"):
                g_recursion_confined(new_comp, self.s, r, self.g_plus, self.g_minus, out_ball)
            with obs.span("kernels.output"):
                self.x[out_ball] = (
                    self.g_plus[:, out_ball].sum(axis=0) + self.g_minus[:, out_ball].sum(axis=0)
                ) / (2.0 * solver.R)

        obs.count("solver.incremental_resolves")
        obs.count("solver.incremental_recomputed", len(out_ball))
        obs.count("solver.incremental_reused", n_new - len(out_ball))
        self.last_recompute = out_ball
        return out_ball

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalSolveState(R={self.solver.R}, agents={self.num_agents}, "
            f"instance={self.instance.name!r})"
        )
