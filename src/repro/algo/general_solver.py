"""End-to-end local solver for arbitrary max-min LPs (§4 + §5 + §6.3).

:class:`LocalMaxMinSolver` glues the pieces together:

1. degenerate-case preprocessing (paper §4, opening remarks),
2. the §4 transformation pipeline to the special form,
3. the §5 local algorithm (:class:`~repro.algo.local_solver.SpecialFormLocalSolver`),
4. back-mapping through the pipeline and lifting through the preprocessing,
5. a :class:`~repro.algo.certificates.Certificate` carrying the Theorem 1
   guarantee ``ΔI (1 − 1/ΔK)(1 + 1/(R − 1))`` computed from the *actual*
   degree bounds involved.

The trivial cases ``ΔI = 1`` (constraints touch a single agent each, solved
optimally by ``x_v = min_i 1/a_iv``) and "optimum is zero / unbounded" are
handled directly, mirroring the paper's remark that those cases are easy.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from .. import obs
from .._types import NodeId
from ..core.instance import MaxMinInstance
from ..core.preprocess import PreprocessResult, preprocess
from ..core.solution import Solution
from ..transforms.base import TransformResult
from ..transforms.pipeline import to_special_form
from .certificates import Certificate
from .local_solver import SpecialFormLocalSolver, SpecialFormSolveResult, special_form_ratio

__all__ = ["GeneralSolveResult", "LocalMaxMinSolver", "theorem1_ratio"]


def theorem1_ratio(delta_I: int, delta_K: int, R: int) -> float:
    """The overall guarantee ``ΔI (1 − 1/ΔK)(1 + 1/(R − 1))`` of §6.3.

    For ``ΔI ≤ 1`` the problem is solved optimally (ratio 1); ``ΔK`` is
    clamped to 2 because the transformation pipeline never produces
    objectives of degree below 2.
    """
    if R < 2:
        raise ValueError(f"R must be at least 2, got {R}")
    if delta_I <= 1:
        return 1.0
    dk = max(delta_K, 2)
    return delta_I * (1.0 - 1.0 / dk) * (1.0 + 1.0 / (R - 1.0))


class GeneralSolveResult:
    """Result of :meth:`LocalMaxMinSolver.solve`.

    Attributes
    ----------
    solution:
        Feasible solution of the *original* instance.
    certificate:
        Guarantee certificate (ratio per Theorem 1, or 1.0 for the trivial
        cases solved exactly).
    preprocessing:
        The :class:`PreprocessResult` applied first (None if unchanged).
    transform:
        The composed §4 :class:`TransformResult` (None for instances already
        in special form or solved by a trivial path).
    special_form_result:
        The inner §5 result on the transformed instance (None on trivial
        paths).
    status:
        ``"local"`` (normal path), ``"trivial-delta-I-1"``, ``"zero"`` or
        ``"unbounded"``.
    """

    __slots__ = (
        "solution",
        "certificate",
        "preprocessing",
        "transform",
        "special_form_result",
        "status",
    )

    def __init__(
        self,
        solution: Solution,
        certificate: Certificate,
        preprocessing: Optional[PreprocessResult],
        transform: Optional[TransformResult],
        special_form_result: Optional[SpecialFormSolveResult],
        status: str,
    ) -> None:
        self.solution = solution
        self.certificate = certificate
        self.preprocessing = preprocessing
        self.transform = transform
        self.special_form_result = special_form_result
        self.status = status

    def utility(self) -> float:
        return self.solution.utility()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GeneralSolveResult(status={self.status!r}, utility={self.utility():.6g}, "
            f"guaranteed_ratio={self.certificate.guaranteed_ratio:.4f})"
        )


class _PreparedSolve:
    """Per-instance state between preprocessing/transform and the §5 solve."""

    __slots__ = ("instance", "pre", "transform", "special_instance", "result")

    def __init__(
        self,
        instance: MaxMinInstance,
        pre: PreprocessResult,
        transform: Optional[TransformResult],
        special_instance: Optional[MaxMinInstance],
        result: Optional["GeneralSolveResult"],
    ) -> None:
        self.instance = instance
        self.pre = pre
        self.transform = transform
        self.special_instance = special_instance
        self.result = result


class LocalMaxMinSolver:
    """The paper's local approximation algorithm for arbitrary max-min LPs.

    Parameters
    ----------
    R:
        Shifting parameter (≥ 2).  The guarantee is
        ``ΔI (1 − 1/ΔK)(1 + 1/(R − 1))`` and the local horizon grows as
        ``Θ(R)``.
    tu_method, tu_tol, backend:
        Passed through to :class:`SpecialFormLocalSolver` (``backend`` picks
        the compiled vectorized kernels — the default — or the per-node
        reference implementation).
    transform_backend:
        Backend for the §4 transformation pipeline: ``"auto"`` (default)
        follows ``backend``, ``"vectorized"`` forces the compiled array
        pipeline (digest-identical instances, array-encoded back-map),
        ``"reference"`` forces the per-stage object pipeline.
    """

    def __init__(
        self,
        R: int = 3,
        *,
        tu_method: str = "recursion",
        tu_tol: float = 1e-10,
        backend: str = "vectorized",
        transform_backend: str = "auto",
    ) -> None:
        if transform_backend not in ("auto", "vectorized", "reference"):
            raise ValueError(
                f"unknown transform_backend {transform_backend!r} "
                "(expected 'auto', 'vectorized' or 'reference')"
            )
        self.R = R
        self.transform_backend = transform_backend
        self.inner = SpecialFormLocalSolver(R, tu_method=tu_method, tu_tol=tu_tol, backend=backend)

    def _resolved_transform_backend(self) -> str:
        if self.transform_backend == "auto":
            return self.inner.backend
        return self.transform_backend

    @property
    def name(self) -> str:
        return f"local-R{self.R}"

    def guaranteed_ratio(self, instance: MaxMinInstance) -> float:
        """Theorem 1 guarantee for this instance's degree bounds."""
        return theorem1_ratio(instance.delta_I, instance.delta_K, self.R)

    # ------------------------------------------------------------------
    def _trivial_delta_I_1(self, instance: MaxMinInstance) -> Solution:
        """Optimal solution when every constraint touches at most one agent.

        Constraints then decouple: each agent independently takes its
        capacity ``min_{i∈I_v} 1/a_iv``, which dominates every feasible
        solution componentwise and is therefore optimal.
        """
        values: Dict[NodeId, float] = {v: instance.agent_capacity(v) for v in instance.agents}
        return Solution(instance, values, label="local-trivial")

    # ------------------------------------------------------------------
    def _certificate(self, instance: MaxMinInstance, ratio: float, status: str) -> Certificate:
        return Certificate(
            algorithm=self.name,
            guaranteed_ratio=ratio,
            delta_I=instance.delta_I,
            delta_K=instance.delta_K,
            parameters={"R": self.R, "tu_method": self.inner.tu_method, "status": status},
        )

    def _prepare(self, instance: MaxMinInstance) -> _PreparedSolve:
        """Preprocess and transform one instance; short paths resolve here.

        ``result`` is filled for the trivial outcomes (zero / unbounded /
        ``ΔI ≤ 1``); otherwise ``special_instance`` awaits a §5 solve.
        """
        pre = preprocess(instance)  # spans itself (cache hits skip the span)

        # Degenerate outcomes first.
        if pre.optimum_is_zero:
            solution = pre.zero_solution(label=self.name)
            cert = self._certificate(instance, 1.0, "zero")
            cert.utility = solution.utility()
            result = GeneralSolveResult(solution, cert, pre, None, None, "zero")
            return _PreparedSolve(instance, pre, None, None, result)

        if pre.optimum_is_unbounded or pre.instance.num_agents == 0:
            solution = pre.lift(
                Solution(pre.instance, {v: 0.0 for v in pre.instance.agents}, label=self.name),
                target_utility=1.0,
                label=self.name,
            )
            cert = self._certificate(instance, 1.0, "unbounded")
            cert.utility = solution.utility()
            result = GeneralSolveResult(solution, cert, pre, None, None, "unbounded")
            return _PreparedSolve(instance, pre, None, None, result)

        clean = pre.instance

        # Trivial case ΔI ≤ 1: solvable optimally by a purely local rule.
        if clean.delta_I <= 1:
            inner_solution = self._trivial_delta_I_1(clean)
            solution = pre.lift(inner_solution, label=self.name) if pre.changed else Solution(
                instance, inner_solution.as_dict(), label=self.name
            )
            cert = self._certificate(instance, 1.0, "trivial-delta-I-1")
            cert.utility = solution.utility()
            result = GeneralSolveResult(solution, cert, pre, None, None, "trivial-delta-I-1")
            return _PreparedSolve(instance, pre, None, None, result)

        # Normal path: §4 transformations ahead of the §5 solve.
        if clean.is_special_form():
            transform = None
            special_instance = clean
        else:
            with obs.span(
                "transform.to_special_form",
                backend=self._resolved_transform_backend(),
                agents=clean.num_agents,
            ):
                transform = to_special_form(clean, backend=self._resolved_transform_backend())
            special_instance = transform.transformed
        return _PreparedSolve(instance, pre, transform, special_instance, None)

    def _finish(
        self, prep: _PreparedSolve, special_result: SpecialFormSolveResult
    ) -> GeneralSolveResult:
        """Back-map, lift and certify one §5 result."""
        with obs.span("solve.finish"):
            instance = prep.instance
            pre = prep.pre
            transform = prep.transform

            mapped = special_result.solution
            if transform is not None:
                mapped = transform.map_back(mapped, label=self.name)
            if pre.changed:
                final = pre.lift(mapped, label=self.name)
            else:
                final = Solution(instance, mapped.as_dict(), label=self.name)

            # Guarantee accounting: the special-form factor times the composed
            # transformation factor (only §4.3 contributes, exactly ΔI/2).
            transform_factor = transform.ratio_factor if transform is not None else 1.0
            ratio = transform_factor * special_form_ratio(
                prep.special_instance.delta_K, self.R
            )
            cert = self._certificate(instance, ratio, "local")
            cert.utility = final.utility()

        return GeneralSolveResult(final, cert, pre, transform, special_result, "local")

    def solve(self, instance: MaxMinInstance) -> GeneralSolveResult:
        """Run the full pipeline on an arbitrary max-min LP instance."""
        with obs.span("solve.general", R=self.R, agents=instance.num_agents):
            prep = self._prepare(instance)
            if prep.result is not None:
                return prep.result
            special_result = self.inner.solve(prep.special_instance)
            return self._finish(prep, special_result)

    def solve_many(self, instances) -> list:
        """Solve several instances with one batched §5 kernel dispatch.

        Every instance is preprocessed and transformed individually (trivial
        outcomes — zero, unbounded, ``ΔI ≤ 1`` — resolve without touching the
        kernels); the surviving special-form instances are then solved in a
        single :meth:`SpecialFormLocalSolver.solve_batch` call, so a whole
        sweep pays the kernel-launch overhead once.  Results are identical
        to calling :meth:`solve` per instance (bitwise, for the vectorized
        backend) and are returned in input order.
        """
        with obs.span("solve.general_batch", R=self.R) as sp:
            preps = [self._prepare(instance) for instance in instances]
            pending = [prep for prep in preps if prep.result is None]
            sp.set(instances=len(preps), solved=len(pending))
            inner_results = self.inner.solve_batch(
                [prep.special_instance for prep in pending]
            )
            for prep, special_result in zip(pending, inner_results):
                prep.result = self._finish(prep, special_result)
            return [prep.result for prep in preps]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalMaxMinSolver(R={self.R}, tu_method={self.inner.tu_method!r})"
