"""Vectorized kernels for the §5 special-form pipeline.

The reference implementation (:mod:`repro.algo.upper_bound`,
:mod:`repro.algo.local_solver`) walks per-node object graphs: one alternating
tree per agent, a ~200-step bisection through a dict-based recursion per
tree, one networkx BFS per agent for the smoothing step and per-node dict
lookups in the ``g±`` recursion.  These kernels compute the same quantities
over the int-indexed CSR arrays of a
:class:`~repro.core.compiled.CompiledInstance`:

* :func:`build_batched_trees` constructs *all* alternating trees ``A_u``
  simultaneously as flat per-level arrays (the frontier expansion is a
  vectorized gather, not an object BFS);
* :func:`batched_upper_bounds` deduplicates structurally identical trees by
  canonical signature (symmetric families — cycles, grids, regular graphs —
  collapse to a handful of distinct trees) and runs the ``t_u`` bisection
  for all distinct trees at once: numpy ``lo``/``hi`` vectors, one
  level-ordered ``f±`` sweep per iteration;
* :func:`smooth_bounds_kernel` replaces the ``n`` per-agent BFS calls with
  ``2r + 1`` rounds of synchronous neighbour-min propagation over the
  agent-level adjacency (one round per *pair* of communication-graph edges,
  so the radius covered is exactly the paper's ``4r + 2``), ``O((n+m)·r)``
  total;
* :func:`g_recursion_kernel` / :func:`output_kernel` evaluate Eqs. 12–14 and
  Eq. 18 as whole-vector operations.

Floating-point parity: every segmented reduction runs in the same canonical
adjacency order as the reference implementation's Python loops, so the two
backends agree to within bisection tolerance (the equivalence property tests
in ``tests/test_kernels.py`` pin this at 1e-9).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.compiled import CompiledInstance, _segment_gather
from ..exceptions import SolverError
from .alternating_tree import build_alternating_tree
from .upper_bound import (
    DEFAULT_BISECTION_TOL,
    MAX_BISECTION_ITERATIONS,
    tree_optimum_lp,
)

__all__ = [
    "BatchedTrees",
    "agent_hop_balls",
    "build_batched_trees",
    "batched_upper_bounds",
    "smooth_bounds_kernel",
    "smooth_bounds_confined",
    "g_recursion_kernel",
    "g_recursion_confined",
    "output_kernel",
    "safe_fallback_confined",
]

#: Level kinds of the batched tree layout (see :class:`TreeLevel`).
_MINUS = "minus"
_PLUS = "plus"


class TreeLevel:
    """One agent level of the batched alternating-tree layout.

    Level ``j`` holds the agent nodes of *every* tree at tree level
    ``2j − 1`` (``j = 0`` is the root level, paper level ``−1``); each
    tree's nodes form a contiguous block.  ``j`` odd ⇒ ``f⁺`` nodes
    (paper levels ``≡ 1 (mod 4)``), ``j`` even ⇒ ``f⁻`` nodes.

    Attributes
    ----------
    nodes:
        Instance-agent position of each tree node.
    kind:
        ``"plus"`` or ``"minus"`` — which half of the ``f±`` recursion
        applies at this level.
    root_indptr:
        Per-tree segment boundaries into ``nodes`` (length ``T + 1``).
    tree_of_node:
        Tree index of each node (for broadcasting per-tree ``ω``).
    child_indptr:
        Per-node boundaries into the *next* level's nodes (absent on the
        deepest level).
    a_self, a_partner:
        For levels entered via constraint expansion (``kind == "minus"``,
        ``j ≥ 2``): the edge coefficients ``a_iv`` / ``a_{i,n(v,i)}`` of the
        constraint between each node and its parent, aligned with ``nodes``.
    """

    __slots__ = ("nodes", "kind", "root_indptr", "tree_of_node", "child_indptr", "a_self", "a_partner")

    def __init__(self, nodes: np.ndarray, kind: str, root_counts: np.ndarray) -> None:
        self.nodes = nodes
        self.kind = kind
        self.root_indptr = np.zeros(len(root_counts) + 1, dtype=np.int64)
        np.cumsum(root_counts, out=self.root_indptr[1:])
        self.tree_of_node = np.repeat(np.arange(len(root_counts), dtype=np.int64), root_counts)
        self.child_indptr: Optional[np.ndarray] = None
        self.a_self: Optional[np.ndarray] = None
        self.a_partner: Optional[np.ndarray] = None

    @property
    def root_counts(self) -> np.ndarray:
        return np.diff(self.root_indptr)


class BatchedTrees:
    """All alternating trees of one instance, concatenated level by level."""

    __slots__ = ("comp", "r", "roots", "levels")

    def __init__(self, comp: CompiledInstance, r: int, roots: np.ndarray, levels: List[TreeLevel]) -> None:
        self.comp = comp
        self.r = r
        self.roots = roots
        self.levels = levels

    @property
    def num_trees(self) -> int:
        return len(self.roots)

    def total_nodes(self) -> int:
        return sum(len(level.nodes) for level in self.levels)

    # ------------------------------------------------------------------
    def signatures(self) -> List[bytes]:
        """Canonical per-tree structure signature for deduplication.

        Two trees with equal signatures have identical child structure, edge
        coefficients and node capacities at every level, hence identical
        ``f±`` recursions and identical ``t_u``.  Node *identities* are
        deliberately excluded: a cycle's ``n`` rotationally equivalent trees
        all collapse to one signature.
        """
        capacity = self.comp.capacity
        per_level_parts: List[List[np.ndarray]] = []
        for level in self.levels:
            parts = [capacity[level.nodes]]
            if level.child_indptr is not None:
                parts.append(np.diff(level.child_indptr))
            if level.a_self is not None:
                parts.append(level.a_self)
                parts.append(level.a_partner)
            per_level_parts.append(parts)
        sigs: List[bytes] = []
        for t in range(self.num_trees):
            chunks = []
            for level, parts in zip(self.levels, per_level_parts):
                lo, hi = level.root_indptr[t], level.root_indptr[t + 1]
                for arr in parts:
                    payload = arr[lo:hi].tobytes()
                    # Length-prefix each chunk: raw float bytes may contain
                    # any separator byte, so framing is what keeps the
                    # encoding injective across different level shapes.
                    chunks.append(len(payload).to_bytes(8, "little"))
                    chunks.append(payload)
            sigs.append(b"".join(chunks))
        return sigs

    def grouping_keys(self) -> np.ndarray:
        """Cheap per-tree keys that *refine* the signature partition — batched.

        One ``(T, F)`` float matrix built from whole-level segmented
        reductions: per level the tree's node count and the per-tree sums of
        every array the byte signature encodes (capacities, child counts,
        edge coefficients).  Trees with equal signatures have identical
        per-level arrays, hence identical keys; trees with different keys are
        therefore provably distinct.  :func:`batched_upper_bounds` uses this
        to compute the O(T)-Python byte signatures only inside key-collision
        groups — on coefficient-perturbed families (every tree distinct) the
        whole dedup step collapses to these vectorized reductions.
        """
        T = self.num_trees
        capacity = self.comp.capacity
        cols: List[np.ndarray] = []
        for level in self.levels:
            tree_of_node = level.tree_of_node
            cols.append(level.root_counts.astype(np.float64))
            cols.append(np.bincount(tree_of_node, weights=capacity[level.nodes], minlength=T))
            if level.child_indptr is not None:
                child_counts = np.diff(level.child_indptr).astype(np.float64)
                cols.append(np.bincount(tree_of_node, weights=child_counts, minlength=T))
            if level.a_self is not None:
                cols.append(np.bincount(tree_of_node, weights=level.a_self, minlength=T))
                cols.append(np.bincount(tree_of_node, weights=level.a_partner, minlength=T))
        if not cols:
            return np.zeros((T, 0), dtype=np.float64)
        return np.column_stack(cols)

    def select(self, tree_indices: np.ndarray) -> "BatchedTrees":
        """A new :class:`BatchedTrees` restricted to the given trees."""
        levels: List[TreeLevel] = []
        for level in self.levels:
            counts = level.root_counts[tree_indices]
            idx = _segment_gather(level.root_indptr[:-1][tree_indices], counts)
            new = TreeLevel(level.nodes[idx], level.kind, counts)
            if level.child_indptr is not None:
                child_counts = np.diff(level.child_indptr)[idx]
                new.child_indptr = np.zeros(len(idx) + 1, dtype=np.int64)
                np.cumsum(child_counts, out=new.child_indptr[1:])
            if level.a_self is not None:
                new.a_self = level.a_self[idx]
                new.a_partner = level.a_partner[idx]
            levels.append(new)
        return BatchedTrees(self.comp, self.r, self.roots[tree_indices], levels)


def build_batched_trees(
    comp: CompiledInstance,
    r: int,
    targets: Optional[np.ndarray] = None,
) -> BatchedTrees:
    """Construct the alternating trees of all ``targets`` (default: all agents).

    The expansion mirrors :func:`repro.algo.alternating_tree.build_alternating_tree`
    exactly — same child order, same non-backtracking rule — but processes the
    whole frontier of every tree at once with CSR gathers.  Only the agent
    nodes are materialised (constraint and objective nodes carry no recursion
    state; their coefficients are folded into the edge arrays), and the level
    ``−2`` leaf constraints are represented by the root capacity alone.
    """
    if r < 0:
        raise SolverError(f"alternating tree parameter r must be >= 0, got {r}")
    roots = (
        np.arange(comp.num_agents, dtype=np.int64)
        if targets is None
        else np.asarray(targets, dtype=np.int64)
    )
    T = len(roots)
    con_deg = np.diff(comp.con_indptr)
    oagent_deg = np.diff(comp.oagents_indptr)

    levels: List[TreeLevel] = []
    root_level = TreeLevel(roots, _MINUS, np.ones(T, dtype=np.int64))
    levels.append(root_level)

    cur = root_level
    for j in range(1, 2 * r + 2):
        if cur.kind == _MINUS:
            # Objective expansion: children are the siblings of each node in
            # its unique objective, in canonical row order (self excluded).
            rows = comp.obj_of_agent[cur.nodes]
            deg = oagent_deg[rows]
            flat = _segment_gather(comp.oagents_indptr[rows], deg)
            members = comp.oagents_indices[flat]
            owner = np.repeat(cur.nodes, deg)
            keep = members != owner
            children = members[keep]
            counts = deg - 1
            nxt = TreeLevel(children, _PLUS, _reduce_counts(counts, cur.root_indptr))
        else:
            # Constraint expansion: one child (the partner agent) per
            # constraint edge of each node, in canonical adjacency order.
            deg = con_deg[cur.nodes]
            flat = _segment_gather(comp.con_indptr[cur.nodes], deg)
            children = comp.con_partner[flat]
            counts = deg
            nxt = TreeLevel(children, _MINUS, _reduce_counts(counts, cur.root_indptr))
            nxt.a_self = comp.con_coeff[flat]
            nxt.a_partner = comp.con_partner_coeff[flat]
        cur.child_indptr = np.zeros(len(cur.nodes) + 1, dtype=np.int64)
        np.cumsum(counts, out=cur.child_indptr[1:])
        levels.append(nxt)
        cur = nxt

    return BatchedTrees(comp, r, roots, levels)


def _reduce_counts(counts: np.ndarray, root_indptr: np.ndarray) -> np.ndarray:
    """Per-tree totals of a per-node count array (empty-batch safe)."""
    if len(counts) == 0:
        return np.zeros(len(root_indptr) - 1, dtype=np.int64)
    return np.add.reduceat(counts, root_indptr[:-1])


def _recursion_margins(bt: BatchedTrees, omega: np.ndarray) -> np.ndarray:
    """Per-tree feasibility margin of the ``f±`` recursion at per-tree ``ω``.

    Equals :func:`repro.algo.tree_recursion.recursion_margin` of every tree:
    the minimum of all ``f⁺`` values (Eq. 8) and of the root slack
    ``cap(u) − f⁻_{u,u,r}`` (Eq. 9).  One bottom-up sweep over the level
    arrays, all trees in lockstep.
    """
    comp = bt.comp
    capacity = comp.capacity
    deepest = bt.levels[-1]
    vals = capacity[deepest.nodes]
    min_fp = np.minimum.reduceat(vals, deepest.root_indptr[:-1])

    for j in range(len(bt.levels) - 2, -1, -1):
        level = bt.levels[j]
        child = bt.levels[j + 1]
        if level.kind == _MINUS:
            # Eq. 6: f⁻ = max(0, ω − Σ f⁺ of the objective's other agents).
            sums = np.add.reduceat(vals, level.child_indptr[:-1])
            vals = np.maximum(0.0, omega[level.tree_of_node] - sums)
        else:
            # Eq. 7: f⁺ = min over constraint edges of (1 − a_partner f⁻)/a_self.
            cand = (1.0 - child.a_partner * vals) / child.a_self
            vals = np.minimum.reduceat(cand, level.child_indptr[:-1])
            np.minimum(min_fp, np.minimum.reduceat(vals, level.root_indptr[:-1]), out=min_fp)

    # vals now holds f⁻ at the root (one node per tree).
    root_slack = capacity[bt.levels[0].nodes] - vals
    return np.minimum(min_fp, root_slack)


#: Active-set compaction policy for :func:`_batched_bisection`: once the
#: still-unconverged trees are at most this fraction of the current working
#: set (and at least ``_COMPACT_MIN_DROP`` trees would be shed), the working
#: set is physically compacted with :meth:`BatchedTrees.select` so each
#: remaining ``f±`` sweep only touches live trees.  Converged trees would
#: otherwise be swept until the *slowest* tree of the whole batch finishes —
#: the reason stacked multi-instance dispatch used to lose at medium ``n``.
_COMPACT_FRACTION = 0.5
_COMPACT_MIN_DROP = 16


def _batched_bisection(
    bt: BatchedTrees,
    tol: float,
    max_iterations: int,
    *,
    compact: bool = True,
) -> np.ndarray:
    """``t_u`` for every tree in the batch via simultaneous binary search.

    Vectorization of :func:`repro.algo.upper_bound.tree_optimum_binary_search`
    with per-tree ``lo``/``hi`` brackets: identical upper limit, identical
    per-tree stopping rule (``hi − lo ≤ tol`` or the iteration cap), one
    shared ``f±`` sweep per iteration.  With ``compact=True`` (default) the
    working set shrinks mid-run (see :data:`_COMPACT_FRACTION`); each tree's
    bisection trajectory is independent of its batch neighbours, so the
    returned ``t`` is bitwise identical either way.
    """
    comp = bt.comp
    T = bt.num_trees
    if T == 0:
        return np.zeros(0, dtype=np.float64)

    # Upper search limit: the root objective's value can never exceed the sum
    # of its agents' individual capacities (cf. _search_upper_limit).
    root_caps = comp.capacity[bt.levels[0].nodes]
    lvl1 = bt.levels[1]
    hi0 = root_caps + _reduce_counts_float(comp.capacity[lvl1.nodes], lvl1.root_indptr)
    if np.isinf(hi0).any():
        bad = bt.roots[int(np.argmax(np.isinf(hi0)))]
        raise SolverError(
            f"agent {comp.agents[bad]!r} has no constraint; "
            "run preprocessing before the local algorithm"
        )

    t = np.zeros(T, dtype=np.float64)
    positive = hi0 > 0.0
    feasible_at_hi = np.zeros(T, dtype=bool)
    if positive.any():
        feasible_at_hi = _recursion_margins(bt, hi0) >= 0.0
    t[positive & feasible_at_hi] = hi0[positive & feasible_at_hi]

    active = positive & ~feasible_at_hi
    lo_full = np.zeros(T, dtype=np.float64)

    # Working-set state: ``origin`` maps working positions back to batch
    # positions; converged brackets are scattered into ``lo_full`` before any
    # compaction drops them.
    cur = bt
    origin = np.arange(T, dtype=np.int64)
    w_active = active.copy()
    w_lo = np.zeros(T, dtype=np.float64)
    w_hi = hi0.copy()
    iterations = 0
    tree_iterations = 0
    compactions = 0
    while iterations < max_iterations:
        w_active &= (w_hi - w_lo) > tol
        n_active = int(w_active.sum())
        if n_active == 0:
            break
        if (
            compact
            and len(w_active) - n_active >= _COMPACT_MIN_DROP
            and n_active <= _COMPACT_FRACTION * len(w_active)
        ):
            lo_full[origin] = w_lo
            keep = np.flatnonzero(w_active)
            cur = cur.select(keep)
            origin = origin[keep]
            w_lo = w_lo[keep]
            w_hi = w_hi[keep]
            w_active = np.ones(len(keep), dtype=bool)
            compactions += 1
        mid = 0.5 * (w_lo + w_hi)
        feasible = _recursion_margins(cur, mid) >= 0.0
        take = w_active & feasible
        w_lo[take] = mid[take]
        drop = w_active & ~feasible
        w_hi[drop] = mid[drop]
        iterations += 1
        tree_iterations += n_active

    obs.count("kernels.bisection_sweeps", iterations)
    obs.count("kernels.bisection_iterations", tree_iterations)
    obs.count("kernels.bisection_compactions", compactions)
    lo_full[origin] = w_lo
    bisected = positive & ~feasible_at_hi
    t[bisected] = lo_full[bisected]
    return t


def _reduce_counts_float(values: np.ndarray, root_indptr: np.ndarray) -> np.ndarray:
    if len(values) == 0:
        return np.zeros(len(root_indptr) - 1, dtype=np.float64)
    return np.add.reduceat(values, root_indptr[:-1])


def batched_upper_bounds(
    comp: CompiledInstance,
    r: int,
    *,
    method: str = "recursion",
    tol: float = DEFAULT_BISECTION_TOL,
    max_iterations: int = MAX_BISECTION_ITERATIONS,
    targets: Optional[np.ndarray] = None,
    deduplicate: bool = True,
    compact: bool = True,
) -> np.ndarray:
    """``t_u`` per agent (positions ``targets``, default all) — batched.

    Builds all alternating trees at once, groups them by canonical signature
    and computes one ``t_u`` per *distinct* tree: via the simultaneous
    bisection for ``method="recursion"``, or via one exact tree-LP solve per
    representative for ``method="lp"`` (the LP itself is not vectorizable,
    but symmetric families still collapse to a handful of solves).
    ``compact`` enables mid-bisection active-set compaction (bitwise-neutral;
    see :func:`_batched_bisection`).
    """
    if method not in ("recursion", "lp"):
        raise ValueError(f"unknown t_u method {method!r} (expected 'recursion' or 'lp')")
    bt = build_batched_trees(comp, r, targets)
    if bt.num_trees == 0:
        return np.zeros(0, dtype=np.float64)

    if deduplicate:
        rep_idx, group_of = _dedup_groups(bt)
    else:
        rep_idx = np.arange(bt.num_trees, dtype=np.int64)
        group_of = rep_idx
    obs.count("kernels.trees_total", bt.num_trees)
    obs.count("kernels.trees_distinct", len(rep_idx))
    obs.count("kernels.dedup_hits", bt.num_trees - len(rep_idx))

    if method == "lp":
        instance = comp.instance
        rep_t = np.asarray(
            [
                tree_optimum_lp(
                    build_alternating_tree(instance, comp.agents[int(bt.roots[t])], r, validate=False)
                )
                for t in rep_idx
            ],
            dtype=np.float64,
        )
    else:
        rep_bt = bt.select(rep_idx) if len(rep_idx) < bt.num_trees else bt
        rep_t = _batched_bisection(rep_bt, tol, max_iterations, compact=compact)

    return rep_t[group_of]


def _dedup_groups(bt: BatchedTrees) -> Tuple[np.ndarray, np.ndarray]:
    """``(representatives, group_of)`` for the canonical-signature dedup.

    Identical partition to grouping by :meth:`BatchedTrees.signatures`
    alone, computed cheaply: the vectorized grouping keys are mixed into one
    64-bit hash per tree (equal signature ⇒ equal key ⇒ equal hash), and the
    Python byte signatures are built only for trees whose hash collides with
    another tree's — a hash collision between *different* trees merely costs
    those trees a signature comparison, it can never merge them.  When every
    hash is unique — the common case for coefficient-perturbed families at
    medium ``n`` — no byte signature is ever materialised.
    """
    T = bt.num_trees
    keys = bt.grouping_keys()
    if keys.shape[1] == 0:
        hashes = np.zeros(T, dtype=np.uint64)
    else:
        bits = np.ascontiguousarray(keys).view(np.uint64)
        hashes = np.zeros(T, dtype=np.uint64)
        prime = np.uint64(0x100000001B3)  # FNV-1a style mixing, wraparound intended
        for j in range(bits.shape[1]):
            hashes = hashes * prime + bits[:, j]
    _, inverse, counts = np.unique(hashes, return_inverse=True, return_counts=True)
    inverse = inverse.reshape(-1)
    if int(counts.max()) == 1:
        rep_idx = np.arange(T, dtype=np.int64)
        return rep_idx, rep_idx

    multi = np.flatnonzero(counts[inverse] > 1)
    if len(multi) < T:
        sig_of = dict(zip(multi.tolist(), bt.select(multi).signatures()))
    else:
        sig_of = dict(enumerate(bt.signatures()))
    first_of: Dict[object, int] = {}
    representatives: List[int] = []
    group_of = np.empty(T, dtype=np.int64)
    inv_list = inverse.tolist()
    for t in range(T):
        key = (inv_list[t], sig_of.get(t))
        g = first_of.setdefault(key, len(representatives))
        if g == len(representatives):
            representatives.append(t)
        group_of[t] = g
    return np.asarray(representatives, dtype=np.int64), group_of


def smooth_bounds_kernel(comp: CompiledInstance, t: np.ndarray, r: int) -> np.ndarray:
    """Smoothed bounds ``s_v = min { t_u : dist_G(u, v) ≤ 4r + 2 }`` — batched.

    ``2r + 1`` synchronous rounds of neighbour-min propagation over the
    agent-level adjacency (constraint partners ∪ objective siblings = the
    agents at graph distance exactly 2), so round ``p`` covers graph radius
    ``2p``; total work ``O((n + m)·r)`` instead of ``n`` BFS traversals.
    Converged propagation stops early (small-diameter components).
    """
    s = np.array(t, dtype=np.float64, copy=True)
    if comp.num_agents == 0:
        return s
    indptr, indices = comp.smoothing_adjacency
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    if len(nonempty) == 0:
        return s
    rounds = 0
    for _ in range(2 * r + 1):
        rounds += 1
        neighbour_min = np.minimum.reduceat(s[indices], indptr[nonempty])
        updated = np.minimum(s[nonempty], neighbour_min)
        if np.array_equal(updated, s[nonempty]):
            break
        s[nonempty] = updated
    obs.count("kernels.smoothing_rounds", rounds)
    return s


def g_recursion_kernel(
    comp: CompiledInstance, smoothed: np.ndarray, r: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The ``g±`` recursion (Eqs. 12–14) as ``(r+1) × n`` arrays — batched.

    Row ``d`` of the returned ``(g_plus, g_minus)`` pair holds the depth-``d``
    values for every agent; each depth is two whole-vector operations (a
    segmented min over constraint edges and a sibling-sum via per-objective
    bincount).
    """
    n = comp.num_agents
    g_plus = np.empty((r + 1, n), dtype=np.float64)
    g_minus = np.empty((r + 1, n), dtype=np.float64)
    if n == 0:
        return g_plus, g_minus
    g_plus[0] = comp.capacity
    for d in range(r + 1):
        if d >= 1:
            gm_prev = g_minus[d - 1]
            cand = (1.0 - comp.con_partner_coeff * gm_prev[comp.con_partner]) / comp.con_coeff
            g_plus[d] = np.minimum.reduceat(cand, comp.con_indptr[:-1])
        g_minus[d] = np.maximum(0.0, smoothed - comp.sibling_sums(g_plus[d]))
    return g_plus, g_minus


def output_kernel(g_plus: np.ndarray, g_minus: np.ndarray, R: int) -> np.ndarray:
    """Eq. 18: ``x_v = (1/2R) Σ_d (g⁺_{v,d} + g⁻_{v,d})`` — batched."""
    return (g_plus.sum(axis=0) + g_minus.sum(axis=0)) / (2.0 * R)


# ----------------------------------------------------------------------
# Confined (dirty-region) re-runs for the incremental solver
# ----------------------------------------------------------------------
def agent_hop_balls(
    comp: CompiledInstance, seeds: np.ndarray, radii: List[int]
) -> List[np.ndarray]:
    """Balls around ``seeds`` in the agent-level smoothing adjacency — one BFS.

    One hop of the smoothing adjacency (constraint partners ∪ objective
    siblings) equals two communication-graph edges, so a ball of hop radius
    ``h`` is the paper's graph-radius-``2h`` neighbourhood.  ``radii`` must be
    non-decreasing; the return value holds one sorted agent-position array
    per requested radius (each a superset of the previous — snapshots of a
    single breadth-first expansion).  This is the locality machinery of the
    incremental solver: §1.3's observation that an agent's output depends
    only on its radius-O(R) neighbourhood, applied in reverse to bound which
    outputs an edit can reach.
    """
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if any(b < a for a, b in zip(radii, radii[1:])):
        raise SolverError(f"agent_hop_balls radii must be non-decreasing, got {radii}")
    n = comp.num_agents
    visited = np.zeros(n, dtype=bool)
    visited[seeds] = True
    out: List[np.ndarray] = []
    if not radii:
        return out
    indptr, indices = comp.smoothing_adjacency
    deg = np.diff(indptr)
    frontier = seeds
    hop = 0
    for radius in radii:
        while hop < radius and len(frontier):
            neigh = indices[_segment_gather(indptr[frontier], deg[frontier])]
            frontier = np.unique(neigh[~visited[neigh]])
            visited[frontier] = True
            hop += 1
        out.append(np.flatnonzero(visited))
    return out


def safe_fallback_confined(comp: CompiledInstance, positions: np.ndarray) -> np.ndarray:
    """Plain §1.3 safe shares for the given agent rows only.

    ``x_v = min_{i ∈ I_v} 1 / (|V_i| · a_iv)``, evaluated over just the
    requested rows — the degradation fallback of the resilient runtime,
    sized to the fault ball rather than the instance.  The per-edge terms
    are the exact floats the safe protocol computes, so a ball agent's
    fallback value bitwise-matches what a full safe run would give it.
    Unconstrained rows come back ``+inf`` (the caller decides what a free
    variable degrades to).
    """
    positions = np.asarray(positions, dtype=np.int64)
    obs.count("kernels.confined_safe_rows", len(positions))
    out = np.full(len(positions), np.inf)
    if len(positions) == 0:
        return out
    deg = np.diff(comp.con_indptr)[positions]
    has = deg > 0
    if not has.any():
        return out
    adeg = deg[has]
    flat = _segment_gather(comp.con_indptr[positions[has]], adeg)
    terms = 1.0 / (
        comp.constraint_degrees[comp.con_indices[flat]].astype(np.float64)
        * comp.con_coeff[flat]
    )
    seg = np.zeros(len(adeg), dtype=np.int64)
    np.cumsum(adeg[:-1], out=seg[1:])
    out[has] = np.minimum.reduceat(terms, seg)
    return out


def smooth_bounds_confined(
    comp: CompiledInstance, t: np.ndarray, r: int, work: np.ndarray
) -> np.ndarray:
    """:func:`smooth_bounds_kernel` with propagation confined to ``work`` rows.

    Returns a full-length array equal to ``t`` outside the active rows; the
    caller splices only the positions whose 2r+1-hop ball lies inside
    ``work`` (for splice set ``S`` that means ``work ⊇ ball(S, 2r+1)`` —
    then every shortest path from a spliced agent to any ``t`` in its ball
    stays within active rows and the confined min equals the global min).
    ``s`` values are exact mins of ``t`` values, so any propagation schedule
    that covers the ball yields the bitwise-identical float.
    """
    s = np.array(t, dtype=np.float64, copy=True)
    if comp.num_agents == 0 or len(work) == 0:
        return s
    indptr, indices = comp.smoothing_adjacency
    deg = np.diff(indptr)
    active = work[deg[work] > 0]
    if len(active) == 0:
        return s
    adeg = deg[active]
    nb = indices[_segment_gather(indptr[active], adeg)]
    seg = np.zeros(len(active), dtype=np.int64)
    np.cumsum(adeg[:-1], out=seg[1:])
    rounds = 0
    for _ in range(2 * r + 1):
        rounds += 1
        neighbour_min = np.minimum.reduceat(s[nb], seg)
        updated = np.minimum(s[active], neighbour_min)
        if np.array_equal(updated, s[active]):
            break
        s[active] = updated
    obs.count("kernels.smoothing_rounds", rounds)
    obs.count("kernels.confined_smooth_rows", len(active))
    return s


def g_recursion_confined(
    comp: CompiledInstance,
    smoothed: np.ndarray,
    r: int,
    g_plus: np.ndarray,
    g_minus: np.ndarray,
    out: np.ndarray,
) -> None:
    """:func:`g_recursion_kernel` restricted to the ``out`` columns, in place.

    Rewrites ``g_plus[:, out]`` / ``g_minus[:, out]`` for all depths, reading
    retained values for partners / siblings outside ``out``.  Correct (and
    bitwise identical to a full re-run) when the true ``g`` changes are
    confined to ``out``'s interior: reads reach one hop outside ``out``,
    where retained values equal a fresh solve's by assumption.  The sibling
    sums accumulate via per-objective :func:`numpy.bincount` over the
    *compacted* member edges of the objectives touching ``out`` — bincount
    adds strictly in input (canonical member) order, so each per-objective
    sum is the bitwise-identical float the full kernel's global bincount
    produces (``np.add.reduceat`` would not be: pairwise association).
    """
    if len(out) == 0:
        return
    con_deg = np.diff(comp.con_indptr)[out]
    flat = _segment_gather(comp.con_indptr[out], con_deg)
    partner = comp.con_partner[flat]
    p_coeff = comp.con_partner_coeff[flat]
    s_coeff = comp.con_coeff[flat]
    seg = np.zeros(len(out), dtype=np.int64)
    np.cumsum(con_deg[:-1], out=seg[1:])

    objs = np.unique(comp.obj_of_agent[out])
    odeg = np.diff(comp.oagents_indptr)[objs]
    omem = comp.oagents_indices[_segment_gather(comp.oagents_indptr[objs], odeg)]
    oowner = np.repeat(np.arange(len(objs), dtype=np.int64), odeg)
    obj_pos = np.searchsorted(objs, comp.obj_of_agent[out])

    g_plus[0][out] = comp.capacity[out]
    for d in range(r + 1):
        if d >= 1:
            gm_prev = g_minus[d - 1]
            cand = (1.0 - p_coeff * gm_prev[partner]) / s_coeff
            g_plus[d][out] = np.minimum.reduceat(cand, seg)
        vals = g_plus[d]
        per_objective = np.bincount(oowner, weights=vals[omem], minlength=len(objs))
        sib = per_objective[obj_pos] - vals[out]
        g_minus[d][out] = np.maximum(0.0, smoothed[out] - sib)
    obs.count("kernels.confined_g_columns", len(out))
