"""Layers, up/down agents and the shifting strategy (paper §6).

The *analysis* of the algorithm partitions the agents of the (tree-shaped)
communication graph into **up-agents** and **down-agents** such that

* every constraint is adjacent to exactly one up-agent and one down-agent,
* every objective is adjacent to exactly one up-agent,

and assigns an integer **layer** to every node (Figure 3 weights) with the
residues of Lemma 8: objectives ``≡ 0``, down-agents ``≡ 1``, constraints
``≡ 2`` and up-agents ``≡ 3 (mod 4)``.

On top of a layering, the shifting strategy builds for every shift
``j = 0 … R−1`` the solution ``y(j)`` of Eq. 19 (passive layers get 0, the
rest read off the ``g±`` tables), whose average over ``j`` is Eq. 20.
Lemmata 9, 10 and 12 make quantitative claims about these vectors; the test
suite and experiment E8 verify them numerically using this module.

The layering is an analysis device — the algorithm itself never computes it
(that is the whole point of the averaging step).  A consistent layering need
not exist on graphs with cycles; :func:`assign_layers` raises
:class:`LayeringError` when it detects a conflict, and works on any tree.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from .._types import GraphNode, NodeId, NodeType, agent_node, constraint_node, objective_node
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..core.validation import require_special_form
from ..exceptions import ReproError
from .local_solver import GRecursionValues

__all__ = [
    "LayeringError",
    "Layering",
    "assign_layers",
    "is_layerable",
    "shifted_solution",
    "averaged_shifted_solution",
]


class LayeringError(ReproError):
    """Raised when no consistent layer / role assignment exists (e.g. odd cycles)."""


class Layering:
    """A consistent layer and role assignment for a special-form instance.

    Attributes
    ----------
    layers:
        Mapping from ``(NodeType, id)`` graph node to its integer layer.
    roles:
        Mapping from agent id to ``"up"`` or ``"down"``.
    root_objective:
        The objective fixed at layer 0.
    """

    __slots__ = ("instance", "layers", "roles", "root_objective")

    def __init__(
        self,
        instance: MaxMinInstance,
        layers: Dict[GraphNode, int],
        roles: Dict[NodeId, str],
        root_objective: NodeId,
    ) -> None:
        self.instance = instance
        self.layers = layers
        self.roles = roles
        self.root_objective = root_objective

    def layer_of_agent(self, v: NodeId) -> int:
        return self.layers[agent_node(v)]

    def layer_of_constraint(self, i: NodeId) -> int:
        return self.layers[constraint_node(i)]

    def layer_of_objective(self, k: NodeId) -> int:
        return self.layers[objective_node(k)]

    def is_up(self, v: NodeId) -> bool:
        return self.roles[v] == "up"

    def check(self) -> List[str]:
        """Verify the §6 invariants; returns a list of violations (empty = OK)."""
        problems: List[str] = []
        inst = self.instance
        for node, layer in self.layers.items():
            kind, name = node
            if kind is NodeType.OBJECTIVE and layer % 4 != 0:
                problems.append(f"objective {name!r} at layer {layer} (≢ 0 mod 4)")
            if kind is NodeType.CONSTRAINT and layer % 4 != 2:
                problems.append(f"constraint {name!r} at layer {layer} (≢ 2 mod 4)")
            if kind is NodeType.AGENT:
                expected = 3 if self.roles[name] == "up" else 1
                if layer % 4 != expected:
                    problems.append(
                        f"{self.roles[name]}-agent {name!r} at layer {layer} (≢ {expected} mod 4)"
                    )
        for i in inst.constraints:
            members = inst.agents_of_constraint(i)
            ups = [v for v in members if self.roles[v] == "up"]
            if len(members) == 2 and len(ups) != 1:
                problems.append(f"constraint {i!r} has {len(ups)} up-agents (expected 1)")
        for k in inst.objectives:
            ups = [v for v in inst.agents_of_objective(k) if self.roles[v] == "up"]
            if len(ups) != 1:
                problems.append(f"objective {k!r} has {len(ups)} up-agents (expected 1)")
        return problems

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Layering(root={self.root_objective!r}, nodes={len(self.layers)}, "
            f"up={sum(1 for r in self.roles.values() if r == 'up')}, "
            f"down={sum(1 for r in self.roles.values() if r == 'down')})"
        )


def assign_layers(
    instance: MaxMinInstance,
    root_objective: Optional[NodeId] = None,
    up_agent: Optional[NodeId] = None,
    modulus: Optional[int] = None,
) -> Layering:
    """Construct a consistent layering by breadth-first propagation.

    Parameters
    ----------
    instance:
        A connected special-form instance.
    root_objective:
        The objective fixed at layer 0 (default: the first one).
    up_agent:
        Which agent of the root objective plays the up role (default: the
        first adjacent agent).  The paper notes several layerings exist; any
        consistent choice satisfies the lemmas.
    modulus:
        When given (must be a positive multiple of 4), layers are only
        required to be consistent modulo this value.  The shifting strategy
        of §6.1 uses layers modulo ``4R`` only, so a ``modulus=4R`` layering
        is sufficient for Eqs. 19–20; this makes the analysis machinery
        applicable to finite instances such as long cycles (no *finite*
        special-form instance admits an exact layering — that is exactly why
        the paper works with infinite unfoldings).

    Raises
    ------
    LayeringError
        If a conflict is detected (the instance contains a cycle that cannot
        be layered consistently) or the instance is disconnected.
    """
    require_special_form(instance)
    if not instance.objectives:
        raise LayeringError("cannot layer an instance without objectives")
    if modulus is not None and (modulus <= 0 or modulus % 4 != 0):
        raise LayeringError(f"modulus must be a positive multiple of 4, got {modulus}")

    def reduce(layer: int) -> int:
        return layer % modulus if modulus is not None else layer

    root = root_objective if root_objective is not None else instance.objectives[0]
    if not instance.has_objective(root):
        raise LayeringError(f"unknown root objective {root!r}")
    root_members = instance.agents_of_objective(root)
    chosen_up = up_agent if up_agent is not None else root_members[0]
    if chosen_up not in root_members:
        raise LayeringError(f"agent {chosen_up!r} is not adjacent to root objective {root!r}")

    layers: Dict[GraphNode, int] = {objective_node(root): 0}
    roles: Dict[NodeId, str] = {}

    queue: deque = deque()

    def set_agent(v: NodeId, layer: int, role: str) -> None:
        layer = reduce(layer)
        node = agent_node(v)
        if node in layers:
            if layers[node] != layer or roles.get(v) != role:
                raise LayeringError(
                    f"conflicting assignment for agent {v!r}: "
                    f"({layers[node]}, {roles.get(v)}) vs ({layer}, {role})"
                )
            return
        layers[node] = layer
        roles[v] = role
        queue.append(agent_node(v))

    def set_non_agent(node: GraphNode, layer: int) -> None:
        layer = reduce(layer)
        if node in layers:
            if layers[node] != layer:
                raise LayeringError(
                    f"conflicting layer for {node[0].short}:{node[1]!r}: {layers[node]} vs {layer}"
                )
            return
        layers[node] = layer
        queue.append(node)

    # Seed: the root objective and its agents.
    set_agent(chosen_up, -1, "up")
    for w in root_members:
        if w != chosen_up:
            set_agent(w, 1, "down")
    queue.append(objective_node(root))

    while queue:
        node = queue.popleft()
        kind, name = node
        layer = layers[node]
        if kind is NodeType.OBJECTIVE:
            members = instance.agents_of_objective(name)
            assigned_up = [v for v in members if roles.get(v) == "up"]
            unassigned = [v for v in members if agent_node(v) not in layers]
            if not assigned_up:
                # Arrived from a down-agent: pick one unassigned member as up.
                if not unassigned:
                    raise LayeringError(f"objective {name!r} has no candidate up-agent")
                set_agent(unassigned[0], layer - 1, "up")
                unassigned = unassigned[1:]
            for v in unassigned:
                set_agent(v, layer + 1, "down")
        elif kind is NodeType.CONSTRAINT:
            members = instance.agents_of_constraint(name)
            for v in members:
                if agent_node(v) in layers:
                    continue
                # The other member decides: constraints pair one down-agent
                # (layer − 1) with one up-agent (layer + 1).
                partner_roles = {roles[w] for w in members if w != v and w in roles}
                if "down" in partner_roles:
                    set_agent(v, layer + 1, "up")
                else:
                    set_agent(v, layer - 1, "down")
        else:  # agent
            role = roles[name]
            k = instance.unique_objective(name)
            if role == "up":
                set_non_agent(objective_node(k), layer + 1)
                for i in instance.constraints_of_agent(name):
                    set_non_agent(constraint_node(i), layer - 1)
            else:
                set_non_agent(objective_node(k), layer - 1)
                for i in instance.constraints_of_agent(name):
                    set_non_agent(constraint_node(i), layer + 1)

    expected_nodes = instance.num_nodes
    if len(layers) != expected_nodes:
        raise LayeringError(
            f"layering reached {len(layers)} of {expected_nodes} nodes; instance is disconnected"
        )

    layering = Layering(instance, layers, roles, root)
    problems = layering.check()
    if problems:
        raise LayeringError("inconsistent layering: " + "; ".join(problems[:5]))
    return layering


def is_layerable(
    instance: MaxMinInstance,
    root_objective: Optional[NodeId] = None,
    up_agent: Optional[NodeId] = None,
) -> bool:
    """True if :func:`assign_layers` succeeds with the given choices."""
    try:
        assign_layers(instance, root_objective, up_agent)
    except LayeringError:
        return False
    return True


def _shift_decomposition(layer: int, role: str, R: int, j: int) -> Tuple[int, int]:
    """Decompose an agent layer as ``4(Rc + j) + 4d + e`` (Eq. 19).

    Returns ``(d, e)`` with ``0 ≤ d ≤ R − 1`` and ``e ∈ {−1, +1}``; up-agents
    always have ``e = −1`` and down-agents ``e = +1``.
    """
    e = -1 if role == "up" else 1
    base = (layer - e) // 4  # = Rc + j + d
    d = (base - j) % R
    return d, e


def shifted_solution(
    layering: Layering,
    g: GRecursionValues,
    R: int,
    j: int,
    label: Optional[str] = None,
) -> Solution:
    """The vector ``y(j)`` of Eq. 19 for shift parameter ``j``."""
    if not 0 <= j < R:
        raise ValueError(f"shift parameter j must satisfy 0 <= j < R, got {j}")
    r = R - 2
    if g.r != r:
        raise ValueError(f"g tables have depth r={g.r}, expected R-2={r}")
    inst = layering.instance
    values: Dict[NodeId, float] = {}
    for v in inst.agents:
        d, e = _shift_decomposition(layering.layer_of_agent(v), layering.roles[v], R, j)
        if d == R - 1:
            values[v] = 0.0
        elif e == -1:
            values[v] = g.minus(v, r - d)
        else:
            values[v] = g.plus(v, r - d)
    return Solution(inst, values, label=label or f"y(j={j})")


def averaged_shifted_solution(
    layering: Layering,
    g: GRecursionValues,
    R: int,
    label: str = "y-averaged",
) -> Solution:
    """The vector ``y`` of Eq. 20 — the average of ``y(j)`` over all shifts."""
    solutions = [shifted_solution(layering, g, R, j) for j in range(R)]
    return Solution.average(solutions, label=label)
