"""Compiled numeric views of a :class:`~repro.core.instance.MaxMinInstance`.

:class:`MaxMinInstance` is an object graph keyed by arbitrary hashable node
identifiers — ideal for correctness and for the structural machinery of the
paper, but every traversal pays Python dict/tuple overhead per node.  The
vectorized solver kernels (:mod:`repro.algo.kernels`) instead operate on a
:class:`CompiledInstance`: the same bipartite structure lowered once into
int-indexed CSR (compressed sparse row) arrays so that whole-instance sweeps
become a handful of :mod:`numpy` gather / segmented-reduce operations.

The lowering is *index-compressed*: agents, constraints and objectives are
numbered ``0 … n−1`` in their canonical (declaration) order, so positions in
every array line up with :attr:`MaxMinInstance.agents` etc.  A compiled view
is built once per instance and cached on the (immutable) instance via
:meth:`MaxMinInstance.compiled`.

Two layers are exposed:

* the *generic* CSR adjacency (any instance): per-agent constraint and
  objective edges with coefficients, and the reverse per-constraint /
  per-objective agent lists;
* the *special-form* view (``|V_i| = 2``, ``|K_v| = 1``): the partner agent
  behind every agent–constraint edge, the unique objective per agent, and
  the agent-level smoothing adjacency (constraint partners ∪ objective
  siblings — exactly the agents at communication-graph distance 2).  Built
  lazily on first access and rejected with :class:`NotSpecialFormError`
  when the degree structure does not match.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..exceptions import InvalidInstanceError, NotSpecialFormError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (instance imports us lazily)
    from .._types import NodeId
    from .instance import MaxMinInstance

__all__ = ["CompiledInstance", "CompiledBatch", "CompiledDelta", "DeltaResult", "stack_compiled"]


def _csr_from_rows(rows, index: Dict[object, int], coeff_lookup) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lower ``rows`` (an iterable of (owner, members) pairs) to CSR arrays.

    ``coeff_lookup(owner, member)`` supplies the edge coefficient; members are
    mapped through ``index``.  Returns ``(indptr, indices, coefficients)``.
    """
    indptr = [0]
    indices = []
    coeffs = []
    for owner, members in rows:
        for member in members:
            indices.append(index[member])
            coeffs.append(coeff_lookup(owner, member))
        indptr.append(len(indices))
    return (
        np.asarray(indptr, dtype=np.int64),
        np.asarray(indices, dtype=np.int64),
        np.asarray(coeffs, dtype=np.float64),
    )


def _transpose_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    coeff: np.ndarray,
    num_target_rows: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reverse a forward CSR (owner → members) into member → owners arrays.

    Both CSR families of an instance list row members in canonical order, so
    the reverse rows must come out sorted by owner position within each
    member row — exactly the order a stable ``(member, owner)`` lexsort
    produces.  The result is bitwise identical to building the reverse CSR
    from the instance's adjacency dicts with :func:`_csr_from_rows` (same
    int64/float64 values, same order), which is what lets delta-edited
    compiles reuse the forward arrays and derive the rest.
    """
    owner = np.repeat(np.arange(len(indptr) - 1, dtype=np.int64), np.diff(indptr))
    order = np.lexsort((owner, indices))
    t_indptr = np.zeros(num_target_rows + 1, dtype=np.int64)
    if len(indices):
        np.cumsum(np.bincount(indices, minlength=num_target_rows), out=t_indptr[1:])
    return t_indptr, owner[order], coeff[order]


class _SpecialFormView:
    """Special-form-only arrays derived from the generic CSR layer."""

    __slots__ = ("con_partner", "con_partner_coeff", "obj_of_agent", "adj_indptr", "adj_indices")

    def __init__(self, compiled: "CompiledInstance") -> None:
        inst = compiled.instance
        n = compiled.num_agents
        con_deg = np.diff(compiled.con_indptr)
        obj_deg = np.diff(compiled.obj_indptr)
        cagent_deg = np.diff(compiled.cagents_indptr)
        oagent_deg = np.diff(compiled.oagents_indptr)
        if compiled.num_constraints and not np.all(cagent_deg == 2):
            raise NotSpecialFormError(
                f"instance {inst.name!r} has constraints of degree != 2; "
                "the compiled special-form view requires |V_i| = 2"
            )
        if n and not (np.all(obj_deg == 1) and np.all(con_deg >= 1)):
            raise NotSpecialFormError(
                f"instance {inst.name!r} violates |K_v| = 1 / |I_v| >= 1; "
                "run the transformation pipeline before compiling the special-form view"
            )
        if compiled.num_objectives and not np.all(oagent_deg >= 2):
            raise NotSpecialFormError(
                f"instance {inst.name!r} has objectives of degree < 2"
            )

        # Partner behind each agent–constraint edge: the degree-2 constraint
        # row holds exactly {owner, partner}.
        owner = np.repeat(np.arange(n, dtype=np.int64), con_deg)
        row_start = compiled.cagents_indptr[compiled.con_indices]
        first = compiled.cagents_indices[row_start]
        second = compiled.cagents_indices[row_start + 1]
        first_coeff = compiled.cagents_coeff[row_start]
        second_coeff = compiled.cagents_coeff[row_start + 1]
        owner_is_first = first == owner
        self.con_partner = np.where(owner_is_first, second, first)
        self.con_partner_coeff = np.where(owner_is_first, second_coeff, first_coeff)

        # Unique objective per agent (|K_v| = 1 verified above).
        self.obj_of_agent = compiled.obj_indices[compiled.obj_indptr[:-1]].copy() if n else np.zeros(0, dtype=np.int64)

        # Agent-level smoothing adjacency: constraint partners plus objective
        # siblings.  These are exactly the agents at communication-graph
        # distance 2 (agents sit at even distances in the bipartite graph),
        # so one hop here equals two graph edges.
        sib_counts = (oagent_deg[self.obj_of_agent] - 1) if n else np.zeros(0, dtype=np.int64)
        sib_starts = compiled.oagents_indptr[self.obj_of_agent] if n else np.zeros(0, dtype=np.int64)
        flat = _segment_gather(sib_starts, oagent_deg[self.obj_of_agent]) if n else np.zeros(0, dtype=np.int64)
        members = compiled.oagents_indices[flat] if n else np.zeros(0, dtype=np.int64)
        member_owner = np.repeat(np.arange(n, dtype=np.int64), oagent_deg[self.obj_of_agent]) if n else np.zeros(0, dtype=np.int64)
        siblings = members[members != member_owner]

        counts = con_deg + sib_counts
        self.adj_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.adj_indptr[1:])
        adj = np.empty(int(self.adj_indptr[-1]), dtype=np.int64)
        # Interleave: per agent, first its constraint partners, then siblings.
        con_pos = _segment_gather(self.adj_indptr[:-1], con_deg)
        sib_pos = _segment_gather(self.adj_indptr[:-1] + con_deg, sib_counts)
        adj[con_pos] = self.con_partner
        adj[sib_pos] = siblings
        self.adj_indices = adj


def _segment_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat index array enumerating ``starts[j] … starts[j]+counts[j]−1`` per segment.

    The standard repeat/cumsum idiom: builds the concatenation of all segment
    ranges without a Python loop.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(offsets, counts) + np.repeat(starts, counts)


class CompiledInstance:
    """Int-indexed CSR arrays of one :class:`MaxMinInstance` (see module docs).

    Attributes
    ----------
    agents, constraints, objectives:
        Canonical node orders (tuples, identical to the instance's).
    agent_index, constraint_index, objective_index:
        Reverse maps ``identifier -> position``.
    con_indptr, con_indices, con_coeff:
        Per-agent constraint edges: agent ``v``'s edges occupy
        ``con_indptr[v]:con_indptr[v+1]``; ``con_indices`` holds constraint
        positions, ``con_coeff`` holds ``a_iv`` — both in the instance's
        canonical adjacency order, which the kernels rely on to match the
        reference implementation's floating-point evaluation order.
    obj_indptr, obj_indices, obj_coeff:
        Per-agent objective edges (``c_kv``).
    cagents_indptr, cagents_indices, cagents_coeff:
        Per-constraint agent lists (``V_i``) with coefficients.
    oagents_indptr, oagents_indices, oagents_coeff:
        Per-objective agent lists (``V_k``) with coefficients.
    capacity:
        ``min_{i∈I_v} 1/a_iv`` per agent (``inf`` for unconstrained agents).
    """

    __slots__ = (
        "instance",
        "agents",
        "constraints",
        "objectives",
        "agent_index",
        "constraint_index",
        "objective_index",
        "con_indptr",
        "con_indices",
        "con_coeff",
        "obj_indptr",
        "obj_indices",
        "obj_coeff",
        "cagents_indptr",
        "cagents_indices",
        "cagents_coeff",
        "oagents_indptr",
        "oagents_indices",
        "oagents_coeff",
        "capacity",
        "_special",
        "_constraint_degrees",
        "_objective_degrees",
        "_cagents_owner",
        "_oagents_owner",
    )

    def __init__(self, instance: "MaxMinInstance") -> None:
        self.instance = instance
        self.agents = instance.agents
        self.constraints = instance.constraints
        self.objectives = instance.objectives
        self.agent_index = {v: idx for idx, v in enumerate(self.agents)}
        self.constraint_index = {i: idx for idx, i in enumerate(self.constraints)}
        self.objective_index = {k: idx for idx, k in enumerate(self.objectives)}

        self.con_indptr, self.con_indices, self.con_coeff = _csr_from_rows(
            ((v, instance.constraints_of_agent(v)) for v in self.agents),
            self.constraint_index,
            lambda v, i: instance.a(i, v),
        )
        self.obj_indptr, self.obj_indices, self.obj_coeff = _csr_from_rows(
            ((v, instance.objectives_of_agent(v)) for v in self.agents),
            self.objective_index,
            lambda v, k: instance.c(k, v),
        )
        self.cagents_indptr, self.cagents_indices, self.cagents_coeff = _csr_from_rows(
            ((i, instance.agents_of_constraint(i)) for i in self.constraints),
            self.agent_index,
            lambda i, v: instance.a(i, v),
        )
        self.oagents_indptr, self.oagents_indices, self.oagents_coeff = _csr_from_rows(
            ((k, instance.agents_of_objective(k)) for k in self.objectives),
            self.agent_index,
            lambda k, v: instance.c(k, v),
        )

        self.capacity = self.agent_constraint_min(1.0 / self.con_coeff)

        self._special = None
        self._constraint_degrees = None
        self._objective_degrees = None
        self._cagents_owner = None
        self._oagents_owner = None

    @classmethod
    def from_arrays(
        cls,
        instance: "MaxMinInstance",
        con_indptr: np.ndarray,
        con_indices: np.ndarray,
        con_coeff: np.ndarray,
        obj_indptr: np.ndarray,
        obj_indices: np.ndarray,
        obj_coeff: np.ndarray,
    ) -> "CompiledInstance":
        """Build a compiled view directly from forward CSR arrays.

        Trusted constructor for callers that already hold the per-agent
        constraint / objective edge arrays in canonical adjacency order
        (delta application, preprocessing) — the Python-loop lowering of
        ``__init__`` is skipped entirely.  The reverse CSR families are
        derived by :func:`_transpose_csr` and every array is bitwise
        identical to a fresh ``CompiledInstance(instance)`` build.
        """
        self = cls.__new__(cls)
        self.instance = instance
        self.agents = instance.agents
        self.constraints = instance.constraints
        self.objectives = instance.objectives
        self.agent_index = {v: idx for idx, v in enumerate(self.agents)}
        self.constraint_index = {i: idx for idx, i in enumerate(self.constraints)}
        self.objective_index = {k: idx for idx, k in enumerate(self.objectives)}
        self.con_indptr = con_indptr
        self.con_indices = con_indices
        self.con_coeff = con_coeff
        self.obj_indptr = obj_indptr
        self.obj_indices = obj_indices
        self.obj_coeff = obj_coeff
        self.cagents_indptr, self.cagents_indices, self.cagents_coeff = _transpose_csr(
            con_indptr, con_indices, con_coeff, len(self.constraints)
        )
        self.oagents_indptr, self.oagents_indices, self.oagents_coeff = _transpose_csr(
            obj_indptr, obj_indices, obj_coeff, len(self.objectives)
        )
        self.capacity = self.agent_constraint_min(1.0 / self.con_coeff)
        self._special = None
        self._constraint_degrees = None
        self._objective_degrees = None
        self._cagents_owner = None
        self._oagents_owner = None
        return self

    # ------------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        return len(self.agents)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_objectives(self) -> int:
        return len(self.objectives)

    # ------------------------------------------------------------------
    # Degree views (any instance)
    # ------------------------------------------------------------------
    @property
    def constraint_degrees(self) -> np.ndarray:
        """``|V_i|`` per constraint position — the safe baseline's divisor."""
        if self._constraint_degrees is None:
            self._constraint_degrees = np.diff(self.cagents_indptr)
        return self._constraint_degrees

    @property
    def objective_degrees(self) -> np.ndarray:
        """``|V_k|`` per objective position."""
        if self._objective_degrees is None:
            self._objective_degrees = np.diff(self.oagents_indptr)
        return self._objective_degrees

    @property
    def cagents_owner(self) -> np.ndarray:
        """Constraint position owning each ``cagents_*`` edge (repeat-encoded rows)."""
        if self._cagents_owner is None:
            self._cagents_owner = np.repeat(
                np.arange(self.num_constraints, dtype=np.int64),
                np.diff(self.cagents_indptr),
            )
        return self._cagents_owner

    @property
    def oagents_owner(self) -> np.ndarray:
        """Objective position owning each ``oagents_*`` edge (repeat-encoded rows)."""
        if self._oagents_owner is None:
            self._oagents_owner = np.repeat(
                np.arange(self.num_objectives, dtype=np.int64),
                np.diff(self.oagents_indptr),
            )
        return self._oagents_owner

    def constraint_loads(self, values: np.ndarray) -> np.ndarray:
        """``Σ_{v ∈ V_i} a_iv x_v`` per constraint for a canonical-order vector.

        Accumulates through :func:`numpy.bincount`, whose C loop adds strictly
        in input (canonical adjacency) order — the per-constraint sums are
        therefore *bitwise* identical to the reference implementation's
        sequential Python summation (``np.add.reduceat`` would not be: its
        inner reduction associates differently).  Empty rows yield 0.0,
        matching ``sum(()) == 0``.
        """
        return np.bincount(
            self.cagents_owner,
            weights=self.cagents_coeff * values[self.cagents_indices],
            minlength=self.num_constraints,
        )

    def objective_values(self, values: np.ndarray) -> np.ndarray:
        """``ω_k(x) = Σ_{v ∈ V_k} c_kv x_v`` per objective — same bitwise
        contract as :meth:`constraint_loads`."""
        return np.bincount(
            self.oagents_owner,
            weights=self.oagents_coeff * values[self.oagents_indices],
            minlength=self.num_objectives,
        )

    def agent_constraint_min(self, edge_values: np.ndarray) -> np.ndarray:
        """``min_{i ∈ I_v} edge_values[e]`` per agent over its constraint edges.

        ``edge_values`` is aligned with ``con_indices`` (one value per
        agent–constraint edge).  Agents without constraints get ``inf`` — the
        same convention as :attr:`capacity` (which equals
        ``agent_constraint_min(1 / con_coeff)``).
        """
        out = np.full(self.num_agents, np.inf, dtype=np.float64)
        if len(edge_values):
            nonempty = np.flatnonzero(np.diff(self.con_indptr) > 0)
            out[nonempty] = np.minimum.reduceat(edge_values, self.con_indptr[nonempty])
        return out

    # ------------------------------------------------------------------
    # Special-form view
    # ------------------------------------------------------------------
    def _special_view(self) -> _SpecialFormView:
        if self._special is None:
            self._special = _SpecialFormView(self)
        return self._special

    @property
    def con_partner(self) -> np.ndarray:
        """Partner agent position behind each agent–constraint edge (|V_i| = 2)."""
        return self._special_view().con_partner

    @property
    def con_partner_coeff(self) -> np.ndarray:
        """``a_{i, n(v,i)}`` for each agent–constraint edge (|V_i| = 2)."""
        return self._special_view().con_partner_coeff

    @property
    def obj_of_agent(self) -> np.ndarray:
        """Position of the unique objective ``k(v)`` per agent (|K_v| = 1)."""
        return self._special_view().obj_of_agent

    @property
    def smoothing_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """Agent-level CSR adjacency ``(indptr, indices)`` for the smoothing kernel.

        Neighbours of agent ``v`` are its constraint partners and objective
        siblings — the agents at communication-graph distance exactly 2.
        ``2r + 1`` synchronous neighbour-min rounds over this adjacency
        therefore equal the paper's radius-``4r + 2`` smoothing ball (``4r + 2``
        rounds over the bipartite graph collapse pairwise, since agents only
        meet at even distances).
        """
        view = self._special_view()
        return view.adj_indptr, view.adj_indices

    def sibling_sums(self, values: np.ndarray) -> np.ndarray:
        """``Σ_{w ∈ N(v)} values[w]`` per agent (objective siblings, |K_v| = 1)."""
        obj_of_agent = self.obj_of_agent
        per_objective = np.bincount(
            obj_of_agent, weights=values, minlength=self.num_objectives
        )
        return per_objective[obj_of_agent] - values

    # ------------------------------------------------------------------
    # Delta editing
    # ------------------------------------------------------------------
    def delta(self) -> "CompiledDelta":
        """Start a :class:`CompiledDelta` edit batch against this view."""
        return CompiledDelta(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledInstance({self.instance.name!r}, |V|={self.num_agents}, "
            f"|I|={self.num_constraints}, |K|={self.num_objectives}, "
            f"nnz={len(self.con_indices) + len(self.obj_indices)})"
        )


class DeltaResult:
    """Outcome of :meth:`CompiledDelta.apply`.

    Attributes
    ----------
    instance, compiled:
        The edited :class:`MaxMinInstance` and its (array-patched) compiled
        view — bitwise and digest identical to re-lowering from scratch.
    dirty_agents:
        Sorted *new* agent positions whose local data changed: agents whose
        own edge rows were edited plus every surviving member of a touched
        constraint / objective (their capacities, partner coefficients or
        sibling sets changed) plus added agents.  These are the seeds the
        incremental solver expands to r-balls.
    old_to_new_agent, old_to_new_constraint, old_to_new_objective:
        Position maps over the *old* canonical orders (−1 for removed
        nodes).  Survivors keep their relative order; added nodes follow.
    changed_con_rows, changed_obj_rows:
        Old agent positions (survivors only) whose constraint / objective
        membership lists changed — the rows a :class:`MessagePlane` cannot
        translate and must re-pair.
    changed_constraints, changed_objectives:
        Old constraint / objective positions (survivors only) whose member
        lists changed.
    structural:
        False when every edit was a coefficient change on an existing edge
        (topology identical — planes and slot layouts can be reused as-is).
    num_edits:
        Number of edit operations recorded on the delta.
    """

    __slots__ = (
        "instance",
        "compiled",
        "dirty_agents",
        "old_to_new_agent",
        "old_to_new_constraint",
        "old_to_new_objective",
        "changed_con_rows",
        "changed_obj_rows",
        "changed_constraints",
        "changed_objectives",
        "structural",
        "num_edits",
    )

    def __init__(
        self,
        instance: "MaxMinInstance",
        compiled: "CompiledInstance",
        dirty_agents: np.ndarray,
        old_to_new_agent: np.ndarray,
        old_to_new_constraint: np.ndarray,
        old_to_new_objective: np.ndarray,
        changed_con_rows: np.ndarray,
        changed_obj_rows: np.ndarray,
        changed_constraints: np.ndarray,
        changed_objectives: np.ndarray,
        structural: bool,
        num_edits: int,
    ) -> None:
        self.instance = instance
        self.compiled = compiled
        self.dirty_agents = dirty_agents
        self.old_to_new_agent = old_to_new_agent
        self.old_to_new_constraint = old_to_new_constraint
        self.old_to_new_objective = old_to_new_objective
        self.changed_con_rows = changed_con_rows
        self.changed_obj_rows = changed_obj_rows
        self.changed_constraints = changed_constraints
        self.changed_objectives = changed_objectives
        self.structural = structural
        self.num_edits = num_edits

    @property
    def identity(self) -> bool:
        """True when the delta was empty (nothing changed)."""
        return self.num_edits == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaResult(edits={self.num_edits}, dirty={len(self.dirty_agents)}, "
            f"structural={self.structural})"
        )


def _check_coefficient(label: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise InvalidInstanceError(f"{label} = {value} must be positive and finite")
    return value


class CompiledDelta:
    """A batch of edits against one :class:`CompiledInstance`.

    Records edge additions / removals, coefficient changes and agent /
    constraint / objective additions and removals, then :meth:`apply` patches
    the base CSR arrays in one pass: untouched rows are block-copied with a
    vectorized position remap, only the touched rows are rebuilt from their
    edit dicts, and the reverse CSR families come from
    :func:`_transpose_csr`.  The resulting instance + compiled view are
    bitwise and digest identical to declaring the edited instance from
    scratch (pinned by ``tests/test_incremental.py``), but cost
    ``O(touched + E_copy_vectorized)`` instead of the full Python-loop
    validation and lowering.

    Coefficients are validated at edit time (the trusted
    ``MaxMinInstance.from_arrays`` constructor skips re-validation), node
    identifiers are resolved against the base instance plus this delta's own
    additions, and constraints / objectives referenced by a ``set_*`` call
    are created on first use.  Agents must exist or be declared via
    :meth:`add_agent` first.  A delta is single-use: apply it once.
    """

    __slots__ = (
        "base",
        "instance",
        "_removed_agents",
        "_removed_constraints",
        "_removed_objectives",
        "_added_agents",
        "_added_agent_pos",
        "_added_constraints",
        "_added_constraint_pos",
        "_added_objectives",
        "_added_objective_pos",
        "_con_edits",
        "_obj_edits",
        "_num_edits",
    )

    def __init__(self, base: "CompiledInstance") -> None:
        self.base = base
        self.instance = base.instance
        self._removed_agents: Set[int] = set()
        self._removed_constraints: Set[int] = set()
        self._removed_objectives: Set[int] = set()
        self._added_agents: List["NodeId"] = []
        self._added_agent_pos: Dict["NodeId", int] = {}
        self._added_constraints: List["NodeId"] = []
        self._added_constraint_pos: Dict["NodeId", int] = {}
        self._added_objectives: List["NodeId"] = []
        self._added_objective_pos: Dict["NodeId", int] = {}
        # Final per-edge state keyed by provisional (node, agent) positions:
        # a float sets the coefficient, None removes the edge.
        self._con_edits: Dict[Tuple[int, int], Optional[float]] = {}
        self._obj_edits: Dict[Tuple[int, int], Optional[float]] = {}
        self._num_edits = 0

    # ------------------------------------------------------------------
    @property
    def num_edits(self) -> int:
        return self._num_edits

    @property
    def is_empty(self) -> bool:
        return self._num_edits == 0

    # ------------------------------------------------------------------
    # Identifier resolution (provisional positions: old nodes keep their
    # base position, nodes added by this delta follow after the old count).
    # ------------------------------------------------------------------
    def _agent_pos(self, v: "NodeId") -> int:
        pos = self.base.agent_index.get(v)
        if pos is not None:
            if pos in self._removed_agents:
                raise InvalidInstanceError(f"agent {v!r} was removed by this delta")
            return pos
        pos = self._added_agent_pos.get(v)
        if pos is None:
            raise InvalidInstanceError(
                f"unknown agent {v!r} (declare it with add_agent first)"
            )
        return pos

    def _constraint_pos(self, i: "NodeId", create: bool = False) -> int:
        pos = self.base.constraint_index.get(i)
        if pos is not None:
            if pos in self._removed_constraints:
                raise InvalidInstanceError(f"constraint {i!r} was removed by this delta")
            return pos
        pos = self._added_constraint_pos.get(i)
        if pos is not None:
            return pos
        if not create:
            raise InvalidInstanceError(f"unknown constraint {i!r}")
        pos = self.base.num_constraints + len(self._added_constraints)
        self._added_constraints.append(i)
        self._added_constraint_pos[i] = pos
        return pos

    def _objective_pos(self, k: "NodeId", create: bool = False) -> int:
        pos = self.base.objective_index.get(k)
        if pos is not None:
            if pos in self._removed_objectives:
                raise InvalidInstanceError(f"objective {k!r} was removed by this delta")
            return pos
        pos = self._added_objective_pos.get(k)
        if pos is not None:
            return pos
        if not create:
            raise InvalidInstanceError(f"unknown objective {k!r}")
        pos = self.base.num_objectives + len(self._added_objectives)
        self._added_objectives.append(k)
        self._added_objective_pos[k] = pos
        return pos

    # ------------------------------------------------------------------
    # Edit operations
    # ------------------------------------------------------------------
    def add_agent(self, v: "NodeId") -> None:
        """Declare a new agent (connect it with ``set_*_coefficient`` calls)."""
        if v in self.base.agent_index:
            if self.base.agent_index[v] in self._removed_agents:
                raise InvalidInstanceError(
                    f"agent {v!r} cannot be re-added in the delta that removes it"
                )
            raise InvalidInstanceError(f"agent {v!r} already exists")
        if v in self._added_agent_pos:
            raise InvalidInstanceError(f"agent {v!r} already added by this delta")
        self._added_agent_pos[v] = self.base.num_agents + len(self._added_agents)
        self._added_agents.append(v)
        self._num_edits += 1

    def remove_agent(self, v: "NodeId") -> None:
        """Remove an agent and (implicitly) all of its edges."""
        if v in self._added_agent_pos:
            raise InvalidInstanceError(f"agent {v!r} was added by this delta; cannot remove it")
        pos = self._agent_pos(v)
        self._removed_agents.add(pos)
        self._con_edits = {key: val for key, val in self._con_edits.items() if key[1] != pos}
        self._obj_edits = {key: val for key, val in self._obj_edits.items() if key[1] != pos}
        self._num_edits += 1

    def remove_constraint(self, i: "NodeId") -> None:
        """Remove a constraint and all of its edges."""
        if i in self._added_constraint_pos:
            raise InvalidInstanceError(
                f"constraint {i!r} was added by this delta; cannot remove it"
            )
        pos = self._constraint_pos(i)
        self._removed_constraints.add(pos)
        self._con_edits = {key: val for key, val in self._con_edits.items() if key[0] != pos}
        self._num_edits += 1

    def remove_objective(self, k: "NodeId") -> None:
        """Remove an objective and all of its edges."""
        if k in self._added_objective_pos:
            raise InvalidInstanceError(
                f"objective {k!r} was added by this delta; cannot remove it"
            )
        pos = self._objective_pos(k)
        self._removed_objectives.add(pos)
        self._obj_edits = {key: val for key, val in self._obj_edits.items() if key[0] != pos}
        self._num_edits += 1

    def set_constraint_coefficient(self, i: "NodeId", v: "NodeId", coeff: float) -> None:
        """Set ``a_iv`` (creates the edge, and the constraint, when absent)."""
        coeff = _check_coefficient(f"constraint coefficient a[{i!r}, {v!r}]", coeff)
        self._con_edits[(self._constraint_pos(i, create=True), self._agent_pos(v))] = coeff
        self._num_edits += 1

    def remove_constraint_edge(self, i: "NodeId", v: "NodeId") -> None:
        """Remove the edge between constraint ``i`` and agent ``v``."""
        key = (self._constraint_pos(i), self._agent_pos(v))
        pending = self._con_edits.get(key, _MISSING)
        if pending is None:
            raise InvalidInstanceError(f"edge a[{i!r}, {v!r}] already removed by this delta")
        if pending is _MISSING and self.instance.a(i, v) <= 0.0:
            raise InvalidInstanceError(f"no edge a[{i!r}, {v!r}] to remove")
        self._con_edits[key] = None
        self._num_edits += 1

    def set_objective_coefficient(self, k: "NodeId", v: "NodeId", coeff: float) -> None:
        """Set ``c_kv`` (creates the edge, and the objective, when absent)."""
        coeff = _check_coefficient(f"objective coefficient c[{k!r}, {v!r}]", coeff)
        self._obj_edits[(self._objective_pos(k, create=True), self._agent_pos(v))] = coeff
        self._num_edits += 1

    def remove_objective_edge(self, k: "NodeId", v: "NodeId") -> None:
        """Remove the edge between objective ``k`` and agent ``v``."""
        key = (self._objective_pos(k), self._agent_pos(v))
        pending = self._obj_edits.get(key, _MISSING)
        if pending is None:
            raise InvalidInstanceError(f"edge c[{k!r}, {v!r}] already removed by this delta")
        if pending is _MISSING and self.instance.c(k, v) <= 0.0:
            raise InvalidInstanceError(f"no edge c[{k!r}, {v!r}] to remove")
        self._obj_edits[key] = None
        self._num_edits += 1

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, name: Optional[str] = None) -> "DeltaResult":
        """Materialise the edited instance + compiled view (see class docs)."""
        from .. import obs

        base = self.base
        inst = self.instance
        nA, nC, nK = base.num_agents, base.num_constraints, base.num_objectives
        if self._num_edits == 0:
            identity_a = np.arange(nA, dtype=np.int64)
            empty = np.zeros(0, dtype=np.int64)
            return DeltaResult(
                inst, base, empty, identity_a,
                np.arange(nC, dtype=np.int64), np.arange(nK, dtype=np.int64),
                empty, empty, empty, empty, False, 0,
            )
        obs.count("compiled.delta_applies")
        obs.count("compiled.delta_edits", self._num_edits)

        # --- position maps (provisional → new) -------------------------
        o2n_a, p2n_a = _position_maps(nA, self._removed_agents, len(self._added_agents))
        o2n_c, p2n_c = _position_maps(nC, self._removed_constraints, len(self._added_constraints))
        o2n_k, p2n_k = _position_maps(nK, self._removed_objectives, len(self._added_objectives))

        # --- classify edits against the base ---------------------------
        con = _classify_edits(
            self._con_edits, nC, nA,
            lambda ci, av: inst.a(base.constraints[ci], base.agents[av]),
            self._removed_agents, self._removed_constraints,
        )
        obj = _classify_edits(
            self._obj_edits, nK, nA,
            lambda ki, av: inst.c(base.objectives[ki], base.agents[av]),
            self._removed_agents, self._removed_objectives,
        )
        structural = bool(
            con.structural_rows or obj.structural_rows
            or self._removed_agents or self._removed_constraints or self._removed_objectives
            or self._added_agents or self._added_constraints or self._added_objectives
        )

        if not structural:
            new_inst, new_comp = self._apply_coefficient_only(con, obj, name)
            seeds = set(con.rows_to_rebuild) | set(obj.rows_to_rebuild)
            touched_c = np.asarray(sorted(con.touched_owners), dtype=np.int64)
            touched_k = np.asarray(sorted(obj.touched_owners), dtype=np.int64)
            seeds.update(_row_members(base.cagents_indptr, base.cagents_indices, touched_c).tolist())
            seeds.update(_row_members(base.oagents_indptr, base.oagents_indices, touched_k).tolist())
            dirty = np.asarray(sorted(seeds), dtype=np.int64)
            obs.count("compiled.delta_dirty_agents", len(dirty))
            empty = np.zeros(0, dtype=np.int64)
            return DeltaResult(
                new_inst, new_comp, dirty, o2n_a, o2n_c, o2n_k,
                empty, empty, empty, empty, False, self._num_edits,
            )

        removed_a = np.asarray(sorted(self._removed_agents), dtype=np.int64)
        # Constraints / objectives losing a member through agent removal.
        con.structural_owners.update(
            _row_members(base.con_indptr, base.con_indices, removed_a).tolist()
        )
        obj.structural_owners.update(
            _row_members(base.obj_indptr, base.obj_indices, removed_a).tolist()
        )
        # Surviving members of removed constraints / objectives see their own
        # forward rows change — and are dirty either way.
        con.structural_owners.update(self._removed_constraints)
        obj.structural_owners.update(self._removed_objectives)
        rm_c = np.asarray(sorted(self._removed_constraints), dtype=np.int64)
        rm_k = np.asarray(sorted(self._removed_objectives), dtype=np.int64)
        con.structural_rows.update(
            _row_members(base.cagents_indptr, base.cagents_indices, rm_c).tolist()
        )
        obj.structural_rows.update(
            _row_members(base.oagents_indptr, base.oagents_indices, rm_k).tolist()
        )

        # --- patch the forward CSR families -----------------------------
        new_agents = _new_nodes(base.agents, o2n_a, self._added_agents)
        new_cons = _new_nodes(base.constraints, o2n_c, self._added_constraints)
        new_objs = _new_nodes(base.objectives, o2n_k, self._added_objectives)
        n_new_agents = len(new_agents)

        con_arrays = self._patch_forward(
            base.con_indptr, base.con_indices, base.con_coeff,
            con, o2n_a, p2n_c, self._removed_constraints, n_new_agents,
        )
        obj_arrays = self._patch_forward(
            base.obj_indptr, base.obj_indices, base.obj_coeff,
            obj, o2n_a, p2n_k, self._removed_objectives, n_new_agents,
        )

        from .instance import MaxMinInstance

        new_inst = MaxMinInstance.from_arrays(
            new_agents, new_cons, new_objs, *con_arrays, *obj_arrays,
            name=inst.name if name is None else name,
        )
        new_comp = new_inst.compiled()

        # --- dirty seeds -------------------------------------------------
        seeds: Set[int] = set()
        seeds.update(row for row in con.rows_to_rebuild if row < nA)
        seeds.update(row for row in obj.rows_to_rebuild if row < nA)
        touched_c = np.asarray(
            sorted(o for o in (con.touched_owners | con.structural_owners) if o < nC),
            dtype=np.int64,
        )
        touched_k = np.asarray(
            sorted(o for o in (obj.touched_owners | obj.structural_owners) if o < nK),
            dtype=np.int64,
        )
        seeds.update(_row_members(base.cagents_indptr, base.cagents_indices, touched_c).tolist())
        seeds.update(_row_members(base.oagents_indptr, base.oagents_indices, touched_k).tolist())
        seeds -= self._removed_agents
        seed_old = np.asarray(sorted(seeds), dtype=np.int64)
        dirty_parts = [o2n_a[seed_old]] if len(seed_old) else []
        if self._added_agents:
            n_keep = n_new_agents - len(self._added_agents)
            dirty_parts.append(np.arange(n_keep, n_new_agents, dtype=np.int64))
        dirty = (
            np.unique(np.concatenate(dirty_parts)) if dirty_parts else np.zeros(0, dtype=np.int64)
        )
        obs.count("compiled.delta_dirty_agents", len(dirty))

        def _surviving(rows: Set[int], o2n: np.ndarray, limit: int) -> np.ndarray:
            keep = sorted(r for r in rows if r < limit and o2n[r] >= 0)
            return np.asarray(keep, dtype=np.int64)

        return DeltaResult(
            new_inst,
            new_comp,
            dirty,
            o2n_a,
            o2n_c,
            o2n_k,
            _surviving(con.structural_rows, o2n_a, nA),
            _surviving(obj.structural_rows, o2n_a, nA),
            _surviving(con.structural_owners, o2n_c, nC),
            _surviving(obj.structural_owners, o2n_k, nK),
            structural,
            self._num_edits,
        )

    def _apply_coefficient_only(
        self, con: "_EditPlan", obj: "_EditPlan", name: Optional[str]
    ) -> Tuple["MaxMinInstance", "CompiledInstance"]:
        """Non-structural fast path: every edit is a coefficient update on an
        existing edge, so all topology-derived structures — node tuples, index
        dicts, every indptr / indices array, the adjacency maps, and the
        special-form view's partner / adjacency arrays — are *shared* with the
        base.  Only the coefficient arrays, the capacity vector and the
        coefficient dicts are copied and patched, making a single-edge edit
        ``O(degree)`` instead of ``O(E)``.  Dict updates hit existing keys
        only, so insertion order (and with it repr / digest / equality) is
        preserved exactly.
        """
        from .. import obs
        from .instance import MaxMinInstance

        base = self.base
        inst = self.instance
        obs.count("compiled.delta_coeff_fast_paths")

        new_a = dict(inst._a)
        new_c = dict(inst._c)
        con_coeff = base.con_coeff.copy()
        obj_coeff = base.obj_coeff.copy()
        cagents_coeff = base.cagents_coeff.copy()
        oagents_coeff = base.oagents_coeff.copy()
        sp = base._special
        partner_coeff = sp.con_partner_coeff.copy() if sp is not None else None

        def _slot(indptr: np.ndarray, indices: np.ndarray, row: int, member: int) -> int:
            lo, hi = int(indptr[row]), int(indptr[row + 1])
            return lo + int(np.flatnonzero(indices[lo:hi] == member)[0])

        touched_agents: Set[int] = set()
        for row, row_edits in con.by_row.items():
            touched_agents.add(row)
            for (ci, av), val in row_edits.items():
                con_coeff[_slot(base.con_indptr, base.con_indices, av, ci)] = val
                cagents_coeff[_slot(base.cagents_indptr, base.cagents_indices, ci, av)] = val
                new_a[(base.constraints[ci], base.agents[av])] = val
                if partner_coeff is not None:
                    lo, hi = int(base.cagents_indptr[ci]), int(base.cagents_indptr[ci + 1])
                    for w in base.cagents_indices[lo:hi].tolist():
                        # The *partner's* slot on this constraint now sees
                        # the edited coefficient behind the shared edge.
                        if w != av:
                            partner_coeff[_slot(base.con_indptr, base.con_indices, w, ci)] = val
        for row, row_edits in obj.by_row.items():
            for (ki, av), val in row_edits.items():
                obj_coeff[_slot(base.obj_indptr, base.obj_indices, av, ki)] = val
                oagents_coeff[_slot(base.oagents_indptr, base.oagents_indices, ki, av)] = val
                new_c[(base.objectives[ki], base.agents[av])] = val

        capacity = base.capacity.copy()
        for av in touched_agents:
            lo, hi = int(base.con_indptr[av]), int(base.con_indptr[av + 1])
            if hi > lo:
                capacity[av] = np.minimum.reduceat(1.0 / con_coeff[lo:hi], [0])[0]

        new_inst = MaxMinInstance.__new__(MaxMinInstance)
        new_inst._agents = inst._agents
        new_inst._constraints = inst._constraints
        new_inst._objectives = inst._objectives
        new_inst.name = inst.name if name is None else name
        new_inst._a = new_a
        new_inst._c = new_c
        new_inst._agents_of_constraint = inst._agents_of_constraint
        new_inst._agents_of_objective = inst._agents_of_objective
        new_inst._constraints_of_agent = inst._constraints_of_agent
        new_inst._objectives_of_agent = inst._objectives_of_agent
        new_inst._agent_set = inst._agent_set
        new_inst._constraint_set = inst._constraint_set
        new_inst._objective_set = inst._objective_set
        new_inst._graph_cache = None  # nx edges carry the (edited) coefficients
        new_inst._transform_cache = None
        new_inst._preprocess_cache = None

        new_comp = CompiledInstance.__new__(CompiledInstance)
        new_comp.instance = new_inst
        new_comp.agents = base.agents
        new_comp.constraints = base.constraints
        new_comp.objectives = base.objectives
        new_comp.agent_index = base.agent_index
        new_comp.constraint_index = base.constraint_index
        new_comp.objective_index = base.objective_index
        new_comp.con_indptr = base.con_indptr
        new_comp.con_indices = base.con_indices
        new_comp.con_coeff = con_coeff
        new_comp.obj_indptr = base.obj_indptr
        new_comp.obj_indices = base.obj_indices
        new_comp.obj_coeff = obj_coeff
        new_comp.cagents_indptr = base.cagents_indptr
        new_comp.cagents_indices = base.cagents_indices
        new_comp.cagents_coeff = cagents_coeff
        new_comp.oagents_indptr = base.oagents_indptr
        new_comp.oagents_indices = base.oagents_indices
        new_comp.oagents_coeff = oagents_coeff
        new_comp.capacity = capacity
        new_comp._constraint_degrees = base._constraint_degrees
        new_comp._objective_degrees = base._objective_degrees
        new_comp._cagents_owner = base._cagents_owner
        new_comp._oagents_owner = base._oagents_owner
        if sp is not None:
            view = _SpecialFormView.__new__(_SpecialFormView)
            view.con_partner = sp.con_partner
            view.con_partner_coeff = partner_coeff
            view.obj_of_agent = sp.obj_of_agent
            view.adj_indptr = sp.adj_indptr
            view.adj_indices = sp.adj_indices
            new_comp._special = view
        else:
            new_comp._special = None
        new_inst._compiled_cache = new_comp
        return new_inst, new_comp

    def _patch_forward(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        coeff: np.ndarray,
        edits: "_EditPlan",
        o2n_row: np.ndarray,
        p2n_member: np.ndarray,
        removed_members: Set[int],
        n_new_rows: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """New forward CSR: block-copy clean rows, rebuild touched rows."""
        n_old = len(indptr) - 1
        old_deg = np.diff(indptr)
        # Rows to rebuild: edited rows + rows that lost a member + added rows.
        rebuild_old = sorted(
            row for row in (edits.rows_to_rebuild | edits.structural_rows)
            if row < n_old and row not in self._removed_agents
        )
        rebuild_set = set(rebuild_old)
        survivors = np.flatnonzero(o2n_row[:n_old] >= 0) if n_old else np.zeros(0, dtype=np.int64)
        clean_old = (
            survivors[~np.isin(survivors, np.asarray(rebuild_old, dtype=np.int64))]
            if rebuild_old
            else survivors
        )

        built: Dict[int, Tuple[List[int], List[float]]] = {}
        member_map = p2n_member  # provisional member position → new position
        indptr_l = indptr
        for row in rebuild_old:
            lo, hi = int(indptr_l[row]), int(indptr_l[row + 1])
            entries = {
                int(m): float(c)
                for m, c in zip(indices[lo:hi].tolist(), coeff[lo:hi].tolist())
                if int(m) not in removed_members
            }
            for (owner, agent), val in edits.by_row.get(row, {}).items():
                if val is None:
                    entries.pop(owner, None)
                else:
                    entries[owner] = val
            items = sorted((int(member_map[m]), c) for m, c in entries.items())
            built[int(o2n_row[row])] = ([m for m, _ in items], [c for _, c in items])
        n_keep = int(len(survivors))
        for j, _ in enumerate(self._added_agents):
            prov = n_old + j
            entries_add = {
                owner: val
                for (owner, agent), val in edits.by_row.get(prov, {}).items()
                if val is not None
            }
            items = sorted((int(member_map[m]), c) for m, c in entries_add.items())
            built[n_keep + j] = ([m for m, _ in items], [c for _, c in items])

        counts = np.zeros(n_new_rows, dtype=np.int64)
        clean_new = o2n_row[clean_old]
        counts[clean_new] = old_deg[clean_old]
        for new_row, (members, _) in built.items():
            counts[new_row] = len(members)
        new_indptr = np.zeros(n_new_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        total = int(new_indptr[-1])
        new_indices = np.empty(total, dtype=np.int64)
        new_coeff = np.empty(total, dtype=np.float64)
        if len(clean_old):
            dst = _segment_gather(new_indptr[clean_new], old_deg[clean_old])
            src = _segment_gather(indptr[clean_old], old_deg[clean_old])
            new_indices[dst] = member_map[indices[src]]
            new_coeff[dst] = coeff[src]
        for new_row, (members, coeffs) in built.items():
            lo = int(new_indptr[new_row])
            new_indices[lo : lo + len(members)] = members
            new_coeff[lo : lo + len(members)] = coeffs
        return new_indptr, new_indices, new_coeff


#: Sentinel distinguishing "no pending edit" from "pending removal" (None).
_MISSING = object()


class _EditPlan:
    """Edit classification for one CSR side (see :meth:`CompiledDelta.apply`)."""

    __slots__ = ("by_row", "rows_to_rebuild", "structural_rows", "touched_owners", "structural_owners")

    def __init__(self) -> None:
        # agent provisional position → {(owner, agent) key → value}
        self.by_row: Dict[int, Dict[Tuple[int, int], Optional[float]]] = {}
        self.rows_to_rebuild: Set[int] = set()
        self.structural_rows: Set[int] = set()
        self.touched_owners: Set[int] = set()
        self.structural_owners: Set[int] = set()


def _classify_edits(
    edits: Dict[Tuple[int, int], Optional[float]],
    n_owner_old: int,
    n_agent_old: int,
    base_coeff,
    removed_agents: Set[int],
    removed_owners: Set[int],
) -> _EditPlan:
    plan = _EditPlan()
    for (owner, agent), val in edits.items():
        if agent in removed_agents or owner in removed_owners:
            continue  # edits are dropped at removal time; belt and braces
        existed = owner < n_owner_old and agent < n_agent_old and base_coeff(owner, agent) > 0.0
        if val is None and not existed:
            continue  # add-then-remove inside one delta: net no-op
        plan.by_row.setdefault(agent, {})[(owner, agent)] = val
        plan.rows_to_rebuild.add(agent)
        plan.touched_owners.add(owner)
        if val is None or not existed:
            plan.structural_rows.add(agent)
            plan.structural_owners.add(owner)
    return plan


def _position_maps(n_old: int, removed: Set[int], n_added: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(old → new, provisional → new)`` position maps (−1 = removed)."""
    o2n = np.full(n_old, -1, dtype=np.int64)
    if removed:
        keep = np.ones(n_old, dtype=bool)
        keep[np.asarray(sorted(removed), dtype=np.int64)] = False
        kept = np.flatnonzero(keep)
    else:
        kept = np.arange(n_old, dtype=np.int64)
    o2n[kept] = np.arange(len(kept), dtype=np.int64)
    p2n = np.concatenate(
        [o2n, np.arange(len(kept), len(kept) + n_added, dtype=np.int64)]
    )
    return o2n, p2n


def _row_members(indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenated members of the given CSR rows."""
    if len(rows) == 0:
        return np.zeros(0, dtype=np.int64)
    deg = np.diff(indptr)[rows]
    return indices[_segment_gather(indptr[rows], deg)]


def _new_nodes(old_nodes: Tuple, o2n: np.ndarray, added: List) -> List:
    """Survivors in old canonical order, then the delta's additions."""
    survivors = [node for pos, node in enumerate(old_nodes) if o2n[pos] >= 0]
    return survivors + list(added)


def _cat_indptr(indptrs: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate CSR index pointers, shifting each block past the previous."""
    parts = [np.zeros(1, dtype=np.int64)]
    offset = 0
    for ptr in indptrs:
        parts.append(ptr[1:] + offset)
        offset += int(ptr[-1])
    return np.concatenate(parts)


def _cat_shifted(arrays: Sequence[np.ndarray], offsets: np.ndarray, dtype=np.int64) -> np.ndarray:
    """Concatenate index arrays, shifting block ``b`` by ``offsets[b]``."""
    if not arrays:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([arr + off for arr, off in zip(arrays, offsets)])


class CompiledBatch:
    """Several compiled instances stacked into one block-diagonal CSR view.

    The §5 kernels (:mod:`repro.algo.kernels`) only read per-agent adjacency
    arrays and reduce over row segments, so a *batch* of instances whose
    index arrays are concatenated with offset-shifted positions behaves
    exactly like one big (disconnected) instance: one
    :func:`~repro.algo.kernels.batched_upper_bounds` call builds every tree
    of every instance, one smoothing pass propagates every block, one ``g±``
    sweep covers all agents — the kernel-launch overhead is paid once per
    *batch* instead of once per instance.  Because every kernel is
    segment-local, the per-agent outputs are bitwise identical to running
    the instances one at a time (pinned by ``tests/test_kernels.py``).

    Exposes exactly the :class:`CompiledInstance` surface the kernels
    consume (``con_*``/``obj_*``/``oagents_*``, ``capacity``,
    ``con_partner``, ``obj_of_agent``, ``smoothing_adjacency``,
    ``sibling_sums``); ``agent_slices()`` recovers the per-instance output
    ranges.  The ``tu_method="lp"`` path needs a live instance per tree and
    is therefore not available on a batch (``instance`` is ``None``).
    """

    __slots__ = (
        "parts",
        "agent_offsets",
        "agents",
        "capacity",
        "con_indptr",
        "con_indices",
        "con_coeff",
        "con_partner",
        "con_partner_coeff",
        "obj_of_agent",
        "oagents_indptr",
        "oagents_indices",
        "_adj",
        "instance",
    )

    def __init__(self, parts: Sequence["CompiledInstance"]) -> None:
        if not parts:
            raise ValueError("CompiledBatch requires at least one compiled instance")
        self.parts: Tuple["CompiledInstance", ...] = tuple(parts)
        self.instance = None
        agent_counts = np.asarray([p.num_agents for p in self.parts], dtype=np.int64)
        self.agent_offsets = np.zeros(len(self.parts) + 1, dtype=np.int64)
        np.cumsum(agent_counts, out=self.agent_offsets[1:])
        con_offsets = np.zeros(len(self.parts), dtype=np.int64)
        obj_offsets = np.zeros(len(self.parts), dtype=np.int64)
        con_counts = np.asarray([p.num_constraints for p in self.parts[:-1]], dtype=np.int64)
        obj_counts = np.asarray([p.num_objectives for p in self.parts[:-1]], dtype=np.int64)
        np.cumsum(con_counts, out=con_offsets[1:])
        np.cumsum(obj_counts, out=obj_offsets[1:])

        agents: List[object] = []
        for p in self.parts:
            agents.extend(p.agents)
        self.agents = tuple(agents)

        offs = self.agent_offsets[:-1]
        self.capacity = np.concatenate([p.capacity for p in self.parts])
        self.con_indptr = _cat_indptr([p.con_indptr for p in self.parts])
        self.con_indices = _cat_shifted([p.con_indices for p in self.parts], con_offsets)
        self.con_coeff = np.concatenate([p.con_coeff for p in self.parts])
        # Special-form arrays: building them validates each part's form.
        self.con_partner = _cat_shifted([p.con_partner for p in self.parts], offs)
        self.con_partner_coeff = np.concatenate(
            [p.con_partner_coeff for p in self.parts]
        )
        self.obj_of_agent = _cat_shifted([p.obj_of_agent for p in self.parts], obj_offsets)
        self.oagents_indptr = _cat_indptr([p.oagents_indptr for p in self.parts])
        self.oagents_indices = _cat_shifted([p.oagents_indices for p in self.parts], offs)
        adj_parts = [p.smoothing_adjacency for p in self.parts]
        self._adj = (
            _cat_indptr([a[0] for a in adj_parts]),
            _cat_shifted([a[1] for a in adj_parts], offs),
        )

    # ------------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        return int(self.agent_offsets[-1])

    @property
    def num_objectives(self) -> int:
        return sum(p.num_objectives for p in self.parts)

    @property
    def num_constraints(self) -> int:
        return sum(p.num_constraints for p in self.parts)

    @property
    def smoothing_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._adj

    def sibling_sums(self, values: np.ndarray) -> np.ndarray:
        """``Σ_{w ∈ N(v)} values[w]`` per agent — same formula as the per-instance view."""
        per_objective = np.bincount(
            self.obj_of_agent, weights=values, minlength=self.num_objectives
        )
        return per_objective[self.obj_of_agent] - values

    def agent_slices(self) -> List[slice]:
        """Per-instance slices into any ``num_agents``-long kernel output."""
        return [
            slice(int(self.agent_offsets[b]), int(self.agent_offsets[b + 1]))
            for b in range(len(self.parts))
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledBatch(instances={len(self.parts)}, |V|={self.num_agents}, "
            f"|I|={self.num_constraints}, |K|={self.num_objectives})"
        )


def stack_compiled(parts: Sequence["CompiledInstance"]) -> CompiledBatch:
    """Stack compiled special-form instances into one :class:`CompiledBatch`."""
    return CompiledBatch(parts)
