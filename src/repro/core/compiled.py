"""Compiled numeric views of a :class:`~repro.core.instance.MaxMinInstance`.

:class:`MaxMinInstance` is an object graph keyed by arbitrary hashable node
identifiers — ideal for correctness and for the structural machinery of the
paper, but every traversal pays Python dict/tuple overhead per node.  The
vectorized solver kernels (:mod:`repro.algo.kernels`) instead operate on a
:class:`CompiledInstance`: the same bipartite structure lowered once into
int-indexed CSR (compressed sparse row) arrays so that whole-instance sweeps
become a handful of :mod:`numpy` gather / segmented-reduce operations.

The lowering is *index-compressed*: agents, constraints and objectives are
numbered ``0 … n−1`` in their canonical (declaration) order, so positions in
every array line up with :attr:`MaxMinInstance.agents` etc.  A compiled view
is built once per instance and cached on the (immutable) instance via
:meth:`MaxMinInstance.compiled`.

Two layers are exposed:

* the *generic* CSR adjacency (any instance): per-agent constraint and
  objective edges with coefficients, and the reverse per-constraint /
  per-objective agent lists;
* the *special-form* view (``|V_i| = 2``, ``|K_v| = 1``): the partner agent
  behind every agent–constraint edge, the unique objective per agent, and
  the agent-level smoothing adjacency (constraint partners ∪ objective
  siblings — exactly the agents at communication-graph distance 2).  Built
  lazily on first access and rejected with :class:`NotSpecialFormError`
  when the degree structure does not match.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import NotSpecialFormError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (instance imports us lazily)
    from .instance import MaxMinInstance

__all__ = ["CompiledInstance", "CompiledBatch", "stack_compiled"]


def _csr_from_rows(rows, index: Dict[object, int], coeff_lookup) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lower ``rows`` (an iterable of (owner, members) pairs) to CSR arrays.

    ``coeff_lookup(owner, member)`` supplies the edge coefficient; members are
    mapped through ``index``.  Returns ``(indptr, indices, coefficients)``.
    """
    indptr = [0]
    indices = []
    coeffs = []
    for owner, members in rows:
        for member in members:
            indices.append(index[member])
            coeffs.append(coeff_lookup(owner, member))
        indptr.append(len(indices))
    return (
        np.asarray(indptr, dtype=np.int64),
        np.asarray(indices, dtype=np.int64),
        np.asarray(coeffs, dtype=np.float64),
    )


class _SpecialFormView:
    """Special-form-only arrays derived from the generic CSR layer."""

    __slots__ = ("con_partner", "con_partner_coeff", "obj_of_agent", "adj_indptr", "adj_indices")

    def __init__(self, compiled: "CompiledInstance") -> None:
        inst = compiled.instance
        n = compiled.num_agents
        con_deg = np.diff(compiled.con_indptr)
        obj_deg = np.diff(compiled.obj_indptr)
        cagent_deg = np.diff(compiled.cagents_indptr)
        oagent_deg = np.diff(compiled.oagents_indptr)
        if compiled.num_constraints and not np.all(cagent_deg == 2):
            raise NotSpecialFormError(
                f"instance {inst.name!r} has constraints of degree != 2; "
                "the compiled special-form view requires |V_i| = 2"
            )
        if n and not (np.all(obj_deg == 1) and np.all(con_deg >= 1)):
            raise NotSpecialFormError(
                f"instance {inst.name!r} violates |K_v| = 1 / |I_v| >= 1; "
                "run the transformation pipeline before compiling the special-form view"
            )
        if compiled.num_objectives and not np.all(oagent_deg >= 2):
            raise NotSpecialFormError(
                f"instance {inst.name!r} has objectives of degree < 2"
            )

        # Partner behind each agent–constraint edge: the degree-2 constraint
        # row holds exactly {owner, partner}.
        owner = np.repeat(np.arange(n, dtype=np.int64), con_deg)
        row_start = compiled.cagents_indptr[compiled.con_indices]
        first = compiled.cagents_indices[row_start]
        second = compiled.cagents_indices[row_start + 1]
        first_coeff = compiled.cagents_coeff[row_start]
        second_coeff = compiled.cagents_coeff[row_start + 1]
        owner_is_first = first == owner
        self.con_partner = np.where(owner_is_first, second, first)
        self.con_partner_coeff = np.where(owner_is_first, second_coeff, first_coeff)

        # Unique objective per agent (|K_v| = 1 verified above).
        self.obj_of_agent = compiled.obj_indices[compiled.obj_indptr[:-1]].copy() if n else np.zeros(0, dtype=np.int64)

        # Agent-level smoothing adjacency: constraint partners plus objective
        # siblings.  These are exactly the agents at communication-graph
        # distance 2 (agents sit at even distances in the bipartite graph),
        # so one hop here equals two graph edges.
        sib_counts = (oagent_deg[self.obj_of_agent] - 1) if n else np.zeros(0, dtype=np.int64)
        sib_starts = compiled.oagents_indptr[self.obj_of_agent] if n else np.zeros(0, dtype=np.int64)
        flat = _segment_gather(sib_starts, oagent_deg[self.obj_of_agent]) if n else np.zeros(0, dtype=np.int64)
        members = compiled.oagents_indices[flat] if n else np.zeros(0, dtype=np.int64)
        member_owner = np.repeat(np.arange(n, dtype=np.int64), oagent_deg[self.obj_of_agent]) if n else np.zeros(0, dtype=np.int64)
        siblings = members[members != member_owner]

        counts = con_deg + sib_counts
        self.adj_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.adj_indptr[1:])
        adj = np.empty(int(self.adj_indptr[-1]), dtype=np.int64)
        # Interleave: per agent, first its constraint partners, then siblings.
        con_pos = _segment_gather(self.adj_indptr[:-1], con_deg)
        sib_pos = _segment_gather(self.adj_indptr[:-1] + con_deg, sib_counts)
        adj[con_pos] = self.con_partner
        adj[sib_pos] = siblings
        self.adj_indices = adj


def _segment_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat index array enumerating ``starts[j] … starts[j]+counts[j]−1`` per segment.

    The standard repeat/cumsum idiom: builds the concatenation of all segment
    ranges without a Python loop.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(offsets, counts) + np.repeat(starts, counts)


class CompiledInstance:
    """Int-indexed CSR arrays of one :class:`MaxMinInstance` (see module docs).

    Attributes
    ----------
    agents, constraints, objectives:
        Canonical node orders (tuples, identical to the instance's).
    agent_index, constraint_index, objective_index:
        Reverse maps ``identifier -> position``.
    con_indptr, con_indices, con_coeff:
        Per-agent constraint edges: agent ``v``'s edges occupy
        ``con_indptr[v]:con_indptr[v+1]``; ``con_indices`` holds constraint
        positions, ``con_coeff`` holds ``a_iv`` — both in the instance's
        canonical adjacency order, which the kernels rely on to match the
        reference implementation's floating-point evaluation order.
    obj_indptr, obj_indices, obj_coeff:
        Per-agent objective edges (``c_kv``).
    cagents_indptr, cagents_indices, cagents_coeff:
        Per-constraint agent lists (``V_i``) with coefficients.
    oagents_indptr, oagents_indices, oagents_coeff:
        Per-objective agent lists (``V_k``) with coefficients.
    capacity:
        ``min_{i∈I_v} 1/a_iv`` per agent (``inf`` for unconstrained agents).
    """

    __slots__ = (
        "instance",
        "agents",
        "constraints",
        "objectives",
        "agent_index",
        "constraint_index",
        "objective_index",
        "con_indptr",
        "con_indices",
        "con_coeff",
        "obj_indptr",
        "obj_indices",
        "obj_coeff",
        "cagents_indptr",
        "cagents_indices",
        "cagents_coeff",
        "oagents_indptr",
        "oagents_indices",
        "oagents_coeff",
        "capacity",
        "_special",
        "_constraint_degrees",
        "_objective_degrees",
        "_cagents_owner",
        "_oagents_owner",
    )

    def __init__(self, instance: "MaxMinInstance") -> None:
        self.instance = instance
        self.agents = instance.agents
        self.constraints = instance.constraints
        self.objectives = instance.objectives
        self.agent_index = {v: idx for idx, v in enumerate(self.agents)}
        self.constraint_index = {i: idx for idx, i in enumerate(self.constraints)}
        self.objective_index = {k: idx for idx, k in enumerate(self.objectives)}

        self.con_indptr, self.con_indices, self.con_coeff = _csr_from_rows(
            ((v, instance.constraints_of_agent(v)) for v in self.agents),
            self.constraint_index,
            lambda v, i: instance.a(i, v),
        )
        self.obj_indptr, self.obj_indices, self.obj_coeff = _csr_from_rows(
            ((v, instance.objectives_of_agent(v)) for v in self.agents),
            self.objective_index,
            lambda v, k: instance.c(k, v),
        )
        self.cagents_indptr, self.cagents_indices, self.cagents_coeff = _csr_from_rows(
            ((i, instance.agents_of_constraint(i)) for i in self.constraints),
            self.agent_index,
            lambda i, v: instance.a(i, v),
        )
        self.oagents_indptr, self.oagents_indices, self.oagents_coeff = _csr_from_rows(
            ((k, instance.agents_of_objective(k)) for k in self.objectives),
            self.agent_index,
            lambda k, v: instance.c(k, v),
        )

        self.capacity = self.agent_constraint_min(1.0 / self.con_coeff)

        self._special = None
        self._constraint_degrees = None
        self._objective_degrees = None
        self._cagents_owner = None
        self._oagents_owner = None

    # ------------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        return len(self.agents)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_objectives(self) -> int:
        return len(self.objectives)

    # ------------------------------------------------------------------
    # Degree views (any instance)
    # ------------------------------------------------------------------
    @property
    def constraint_degrees(self) -> np.ndarray:
        """``|V_i|`` per constraint position — the safe baseline's divisor."""
        if self._constraint_degrees is None:
            self._constraint_degrees = np.diff(self.cagents_indptr)
        return self._constraint_degrees

    @property
    def objective_degrees(self) -> np.ndarray:
        """``|V_k|`` per objective position."""
        if self._objective_degrees is None:
            self._objective_degrees = np.diff(self.oagents_indptr)
        return self._objective_degrees

    @property
    def cagents_owner(self) -> np.ndarray:
        """Constraint position owning each ``cagents_*`` edge (repeat-encoded rows)."""
        if self._cagents_owner is None:
            self._cagents_owner = np.repeat(
                np.arange(self.num_constraints, dtype=np.int64),
                np.diff(self.cagents_indptr),
            )
        return self._cagents_owner

    @property
    def oagents_owner(self) -> np.ndarray:
        """Objective position owning each ``oagents_*`` edge (repeat-encoded rows)."""
        if self._oagents_owner is None:
            self._oagents_owner = np.repeat(
                np.arange(self.num_objectives, dtype=np.int64),
                np.diff(self.oagents_indptr),
            )
        return self._oagents_owner

    def constraint_loads(self, values: np.ndarray) -> np.ndarray:
        """``Σ_{v ∈ V_i} a_iv x_v`` per constraint for a canonical-order vector.

        Accumulates through :func:`numpy.bincount`, whose C loop adds strictly
        in input (canonical adjacency) order — the per-constraint sums are
        therefore *bitwise* identical to the reference implementation's
        sequential Python summation (``np.add.reduceat`` would not be: its
        inner reduction associates differently).  Empty rows yield 0.0,
        matching ``sum(()) == 0``.
        """
        return np.bincount(
            self.cagents_owner,
            weights=self.cagents_coeff * values[self.cagents_indices],
            minlength=self.num_constraints,
        )

    def objective_values(self, values: np.ndarray) -> np.ndarray:
        """``ω_k(x) = Σ_{v ∈ V_k} c_kv x_v`` per objective — same bitwise
        contract as :meth:`constraint_loads`."""
        return np.bincount(
            self.oagents_owner,
            weights=self.oagents_coeff * values[self.oagents_indices],
            minlength=self.num_objectives,
        )

    def agent_constraint_min(self, edge_values: np.ndarray) -> np.ndarray:
        """``min_{i ∈ I_v} edge_values[e]`` per agent over its constraint edges.

        ``edge_values`` is aligned with ``con_indices`` (one value per
        agent–constraint edge).  Agents without constraints get ``inf`` — the
        same convention as :attr:`capacity` (which equals
        ``agent_constraint_min(1 / con_coeff)``).
        """
        out = np.full(self.num_agents, np.inf, dtype=np.float64)
        if len(edge_values):
            nonempty = np.flatnonzero(np.diff(self.con_indptr) > 0)
            out[nonempty] = np.minimum.reduceat(edge_values, self.con_indptr[nonempty])
        return out

    # ------------------------------------------------------------------
    # Special-form view
    # ------------------------------------------------------------------
    def _special_view(self) -> _SpecialFormView:
        if self._special is None:
            self._special = _SpecialFormView(self)
        return self._special

    @property
    def con_partner(self) -> np.ndarray:
        """Partner agent position behind each agent–constraint edge (|V_i| = 2)."""
        return self._special_view().con_partner

    @property
    def con_partner_coeff(self) -> np.ndarray:
        """``a_{i, n(v,i)}`` for each agent–constraint edge (|V_i| = 2)."""
        return self._special_view().con_partner_coeff

    @property
    def obj_of_agent(self) -> np.ndarray:
        """Position of the unique objective ``k(v)`` per agent (|K_v| = 1)."""
        return self._special_view().obj_of_agent

    @property
    def smoothing_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """Agent-level CSR adjacency ``(indptr, indices)`` for the smoothing kernel.

        Neighbours of agent ``v`` are its constraint partners and objective
        siblings — the agents at communication-graph distance exactly 2.
        ``2r + 1`` synchronous neighbour-min rounds over this adjacency
        therefore equal the paper's radius-``4r + 2`` smoothing ball (``4r + 2``
        rounds over the bipartite graph collapse pairwise, since agents only
        meet at even distances).
        """
        view = self._special_view()
        return view.adj_indptr, view.adj_indices

    def sibling_sums(self, values: np.ndarray) -> np.ndarray:
        """``Σ_{w ∈ N(v)} values[w]`` per agent (objective siblings, |K_v| = 1)."""
        obj_of_agent = self.obj_of_agent
        per_objective = np.bincount(
            obj_of_agent, weights=values, minlength=self.num_objectives
        )
        return per_objective[obj_of_agent] - values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledInstance({self.instance.name!r}, |V|={self.num_agents}, "
            f"|I|={self.num_constraints}, |K|={self.num_objectives}, "
            f"nnz={len(self.con_indices) + len(self.obj_indices)})"
        )


def _cat_indptr(indptrs: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate CSR index pointers, shifting each block past the previous."""
    parts = [np.zeros(1, dtype=np.int64)]
    offset = 0
    for ptr in indptrs:
        parts.append(ptr[1:] + offset)
        offset += int(ptr[-1])
    return np.concatenate(parts)


def _cat_shifted(arrays: Sequence[np.ndarray], offsets: np.ndarray, dtype=np.int64) -> np.ndarray:
    """Concatenate index arrays, shifting block ``b`` by ``offsets[b]``."""
    if not arrays:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([arr + off for arr, off in zip(arrays, offsets)])


class CompiledBatch:
    """Several compiled instances stacked into one block-diagonal CSR view.

    The §5 kernels (:mod:`repro.algo.kernels`) only read per-agent adjacency
    arrays and reduce over row segments, so a *batch* of instances whose
    index arrays are concatenated with offset-shifted positions behaves
    exactly like one big (disconnected) instance: one
    :func:`~repro.algo.kernels.batched_upper_bounds` call builds every tree
    of every instance, one smoothing pass propagates every block, one ``g±``
    sweep covers all agents — the kernel-launch overhead is paid once per
    *batch* instead of once per instance.  Because every kernel is
    segment-local, the per-agent outputs are bitwise identical to running
    the instances one at a time (pinned by ``tests/test_kernels.py``).

    Exposes exactly the :class:`CompiledInstance` surface the kernels
    consume (``con_*``/``obj_*``/``oagents_*``, ``capacity``,
    ``con_partner``, ``obj_of_agent``, ``smoothing_adjacency``,
    ``sibling_sums``); ``agent_slices()`` recovers the per-instance output
    ranges.  The ``tu_method="lp"`` path needs a live instance per tree and
    is therefore not available on a batch (``instance`` is ``None``).
    """

    __slots__ = (
        "parts",
        "agent_offsets",
        "agents",
        "capacity",
        "con_indptr",
        "con_indices",
        "con_coeff",
        "con_partner",
        "con_partner_coeff",
        "obj_of_agent",
        "oagents_indptr",
        "oagents_indices",
        "_adj",
        "instance",
    )

    def __init__(self, parts: Sequence["CompiledInstance"]) -> None:
        if not parts:
            raise ValueError("CompiledBatch requires at least one compiled instance")
        self.parts: Tuple["CompiledInstance", ...] = tuple(parts)
        self.instance = None
        agent_counts = np.asarray([p.num_agents for p in self.parts], dtype=np.int64)
        self.agent_offsets = np.zeros(len(self.parts) + 1, dtype=np.int64)
        np.cumsum(agent_counts, out=self.agent_offsets[1:])
        con_offsets = np.zeros(len(self.parts), dtype=np.int64)
        obj_offsets = np.zeros(len(self.parts), dtype=np.int64)
        con_counts = np.asarray([p.num_constraints for p in self.parts[:-1]], dtype=np.int64)
        obj_counts = np.asarray([p.num_objectives for p in self.parts[:-1]], dtype=np.int64)
        np.cumsum(con_counts, out=con_offsets[1:])
        np.cumsum(obj_counts, out=obj_offsets[1:])

        agents: List[object] = []
        for p in self.parts:
            agents.extend(p.agents)
        self.agents = tuple(agents)

        offs = self.agent_offsets[:-1]
        self.capacity = np.concatenate([p.capacity for p in self.parts])
        self.con_indptr = _cat_indptr([p.con_indptr for p in self.parts])
        self.con_indices = _cat_shifted([p.con_indices for p in self.parts], con_offsets)
        self.con_coeff = np.concatenate([p.con_coeff for p in self.parts])
        # Special-form arrays: building them validates each part's form.
        self.con_partner = _cat_shifted([p.con_partner for p in self.parts], offs)
        self.con_partner_coeff = np.concatenate(
            [p.con_partner_coeff for p in self.parts]
        )
        self.obj_of_agent = _cat_shifted([p.obj_of_agent for p in self.parts], obj_offsets)
        self.oagents_indptr = _cat_indptr([p.oagents_indptr for p in self.parts])
        self.oagents_indices = _cat_shifted([p.oagents_indices for p in self.parts], offs)
        adj_parts = [p.smoothing_adjacency for p in self.parts]
        self._adj = (
            _cat_indptr([a[0] for a in adj_parts]),
            _cat_shifted([a[1] for a in adj_parts], offs),
        )

    # ------------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        return int(self.agent_offsets[-1])

    @property
    def num_objectives(self) -> int:
        return sum(p.num_objectives for p in self.parts)

    @property
    def num_constraints(self) -> int:
        return sum(p.num_constraints for p in self.parts)

    @property
    def smoothing_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._adj

    def sibling_sums(self, values: np.ndarray) -> np.ndarray:
        """``Σ_{w ∈ N(v)} values[w]`` per agent — same formula as the per-instance view."""
        per_objective = np.bincount(
            self.obj_of_agent, weights=values, minlength=self.num_objectives
        )
        return per_objective[self.obj_of_agent] - values

    def agent_slices(self) -> List[slice]:
        """Per-instance slices into any ``num_agents``-long kernel output."""
        return [
            slice(int(self.agent_offsets[b]), int(self.agent_offsets[b + 1]))
            for b in range(len(self.parts))
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledBatch(instances={len(self.parts)}, |V|={self.num_agents}, "
            f"|I|={self.num_constraints}, |K|={self.num_objectives})"
        )


def stack_compiled(parts: Sequence["CompiledInstance"]) -> CompiledBatch:
    """Stack compiled special-form instances into one :class:`CompiledBatch`."""
    return CompiledBatch(parts)
