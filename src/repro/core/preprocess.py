"""Degenerate-case preprocessing (paper §4, opening remarks).

The transformations and the local algorithm assume a *non-degenerate*
instance: every constraint and objective touches at least one agent, and
every agent touches at least one constraint and at least one objective.
The paper dispenses with the degenerate cases in one sentence:

    "isolated constraints can be deleted, isolated objectives force the
    optimum to zero, non-contributing agents can be set to zero, and
    unconstrained agents can be set to +∞"

This module turns that sentence into code.  :func:`preprocess` returns a
cleaned instance together with a :class:`PreprocessResult` that remembers
what was removed and can lift a solution of the cleaned instance back to the
original one.

Notes on the individual cases
-----------------------------
* *Isolated constraints* (no agents): trivially satisfied; removed.
* *Isolated objectives* (no agents): their value is always 0, so the optimum
  of the whole instance is 0.  The result is flagged ``optimum_is_zero`` and
  the cleaned instance keeps only the structure needed to emit an all-zero
  solution.
* *Non-contributing agents* (no objectives): setting them to 0 never hurts;
  they are removed and remembered in ``forced_zero_agents``.
* *Unconstrained agents* (no constraints): they can be made arbitrarily
  large, hence any objective containing one can reach any target value and
  never binds.  Such objectives are removed; when lifting, the unconstrained
  agents are assigned a value large enough to push the removed objectives to
  the utility of the lifted solution (or any requested target).
* Removal can cascade (an agent whose only objective was removed becomes
  non-contributing), so the cleanup iterates to a fixed point.

Backends
--------
:func:`preprocess` takes ``backend="vectorized"`` (default) or
``backend="reference"``.  The vectorized backend runs the fixed point as
iterative degree-peeling over the compiled CSR arrays
(:meth:`MaxMinInstance.compiled`): per-node *live-degree* counters, one
:func:`numpy.flatnonzero` scan per phase and frontier updates via
``np.bincount`` over the gathered adjacency rows of just-removed nodes.  Both
backends produce identical removed sets, flags and lift behaviour (pinned by
``tests/test_record_path.py``); the reference backend is the readable
per-node oracle.  When nothing is removed, both backends return the original
instance object itself as the cleaned instance, so downstream per-instance
caches (``compiled()``, the §4 transform cache) stay warm across repeated
solves.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import obs
from .._types import NodeId
from ..exceptions import DegenerateInstanceError
from .compiled import _segment_gather
from .instance import MaxMinInstance
from .solution import Solution

__all__ = ["PreprocessResult", "preprocess"]


class PreprocessResult:
    """Outcome of :func:`preprocess`.

    Attributes
    ----------
    original:
        The instance that was preprocessed.
    instance:
        The cleaned (non-degenerate) instance.  May have zero agents when the
        optimum is zero or unbounded.
    forced_zero_agents:
        Agents removed because they contribute to no (surviving) objective;
        they are set to 0 when lifting.
    unconstrained_agents:
        Agents removed because they have no constraints; they are set to a
        sufficiently large finite value when lifting.
    removed_constraints / removed_objectives:
        Constraint / objective ids dropped during cleaning.
    optimum_is_zero:
        True when an isolated objective forces the optimum to 0.
    optimum_is_unbounded:
        True when *every* objective can be made arbitrarily large (so the
        max-min value is unbounded above).
    """

    __slots__ = (
        "original",
        "instance",
        "forced_zero_agents",
        "unconstrained_agents",
        "removed_constraints",
        "removed_objectives",
        "optimum_is_zero",
        "optimum_is_unbounded",
    )

    def __init__(
        self,
        original: MaxMinInstance,
        instance: MaxMinInstance,
        forced_zero_agents: Tuple[NodeId, ...],
        unconstrained_agents: Tuple[NodeId, ...],
        removed_constraints: Tuple[NodeId, ...],
        removed_objectives: Tuple[NodeId, ...],
        optimum_is_zero: bool,
        optimum_is_unbounded: bool,
    ) -> None:
        self.original = original
        self.instance = instance
        self.forced_zero_agents = forced_zero_agents
        self.unconstrained_agents = unconstrained_agents
        self.removed_constraints = removed_constraints
        self.removed_objectives = removed_objectives
        self.optimum_is_zero = optimum_is_zero
        self.optimum_is_unbounded = optimum_is_unbounded

    @property
    def changed(self) -> bool:
        """True if preprocessing modified the instance at all."""
        return (
            bool(self.forced_zero_agents)
            or bool(self.unconstrained_agents)
            or bool(self.removed_constraints)
            or bool(self.removed_objectives)
        )

    def lift(
        self,
        solution: Solution,
        target_utility: Optional[float] = None,
        label: Optional[str] = None,
    ) -> Solution:
        """Lift a solution of the cleaned instance back to the original one.

        Forced-zero agents get 0; unconstrained agents get a value large
        enough that every removed objective reaches ``target_utility``
        (default: the utility of ``solution`` itself, or 0 when that is not
        finite).  The lifted solution is feasible whenever ``solution`` is,
        and its utility is ``min(utility(solution), target_utility)`` which
        equals ``utility(solution)`` for the default target.
        """
        if solution.instance != self.instance:
            raise DegenerateInstanceError("lift() expects a solution of the cleaned instance")

        values: Dict[NodeId, float] = {v: 0.0 for v in self.original.agents}
        for v in self.instance.agents:
            values[v] = solution[v]
        for v in self.forced_zero_agents:
            values[v] = 0.0

        if target_utility is None:
            util = solution.utility()
            target_utility = util if math.isfinite(util) else 0.0

        # Every removed objective contains at least one unconstrained agent
        # (that is why it was removed); give that agent enough value.
        unconstrained = set(self.unconstrained_agents)
        for k in self.removed_objectives:
            members = self.original.agents_of_objective(k)
            carriers = [v for v in members if v in unconstrained]
            if not carriers:
                # Objective removed because it became isolated after its
                # agents were removed; it forces optimum zero, nothing to do.
                continue
            current = sum(self.original.c(k, v) * values[v] for v in members)
            deficit = target_utility - current
            if deficit > 0.0:
                carrier = carriers[0]
                values[carrier] = max(values[carrier], values[carrier] + deficit / self.original.c(k, carrier))

        return Solution(self.original, values, label=label or f"{solution.label}+lifted")

    def zero_solution(self, label: str = "zero") -> Solution:
        """The all-zero solution of the original instance."""
        return Solution(self.original, {v: 0.0 for v in self.original.agents}, label=label)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PreprocessResult(changed={self.changed}, zero={self.optimum_is_zero}, "
            f"unbounded={self.optimum_is_unbounded}, "
            f"removed_constraints={len(self.removed_constraints)}, "
            f"removed_objectives={len(self.removed_objectives)})"
        )


class _FixedPoint:
    """Outcome of one backend's degenerate-structure fixed point.

    ``agents`` / ``constraints`` / ``objectives`` are the *surviving* nodes
    in canonical (declaration) order — ready to feed
    :meth:`MaxMinInstance.sub_instance` directly.
    """

    __slots__ = (
        "agents",
        "constraints",
        "objectives",
        "forced_zero",
        "unconstrained",
        "removed_constraints",
        "removed_objectives",
        "optimum_is_zero",
        "alive_masks",
    )

    def __init__(
        self,
        agents: Sequence[NodeId],
        constraints: Sequence[NodeId],
        objectives: Sequence[NodeId],
        forced_zero: List[NodeId],
        unconstrained: List[NodeId],
        removed_constraints: List[NodeId],
        removed_objectives: List[NodeId],
        optimum_is_zero: bool,
        alive_masks: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
    ) -> None:
        self.agents = agents
        self.constraints = constraints
        self.objectives = objectives
        self.forced_zero = forced_zero
        self.unconstrained = unconstrained
        self.removed_constraints = removed_constraints
        self.removed_objectives = removed_objectives
        self.optimum_is_zero = optimum_is_zero
        #: (alive_agent, alive_con, alive_obj) position masks when the fixed
        #: point ran on the compiled arrays — enables the array-level
        #: materialisation of the cleaned instance.
        self.alive_masks = alive_masks


def _reference_fixed_point(instance: MaxMinInstance) -> _FixedPoint:
    """The original per-node fixed point (readable oracle)."""
    agents: Set[NodeId] = set(instance.agents)
    constraints: Set[NodeId] = set(instance.constraints)
    objectives: Set[NodeId] = set(instance.objectives)

    forced_zero: List[NodeId] = []
    unconstrained: List[NodeId] = []
    forced_zero_set: Set[NodeId] = set()
    unconstrained_set: Set[NodeId] = set()
    removed_constraints: List[NodeId] = []
    removed_objectives: List[NodeId] = []
    optimum_is_zero = False

    # Isolated objectives in the *original* instance force the optimum to 0.
    for k in instance.objectives:
        if not instance.agents_of_objective(k):
            optimum_is_zero = True

    peel_rounds = 0
    changed = True
    while changed:
        changed = False
        peel_rounds += 1

        # Constraints with no surviving agents are trivially satisfied.
        for i in list(constraints):
            members = [v for v in instance.agents_of_constraint(i) if v in agents]
            if not members:
                constraints.discard(i)
                removed_constraints.append(i)
                changed = True

        # Unconstrained agents: every objective containing one never binds.
        for v in list(agents):
            live_constraints = [i for i in instance.constraints_of_agent(v) if i in constraints]
            if not live_constraints:
                agents.discard(v)
                unconstrained.append(v)
                unconstrained_set.add(v)
                for k in instance.objectives_of_agent(v):
                    if k in objectives:
                        objectives.discard(k)
                        removed_objectives.append(k)
                changed = True

        # Objectives that lost all their agents (but had some originally)
        # would force the optimum to 0 — unless they were removed above
        # because an unconstrained agent can satisfy them.
        for k in list(objectives):
            members = [v for v in instance.agents_of_objective(k) if v in agents]
            originally_empty = not instance.agents_of_objective(k)
            if not members:
                objectives.discard(k)
                removed_objectives.append(k)
                if not originally_empty:
                    # All its agents were forced to zero: the objective value
                    # is stuck at 0, hence the optimum is 0.
                    survivors_were_zeroed = any(
                        v in forced_zero_set for v in instance.agents_of_objective(k)
                    )
                    unconstrained_members = any(
                        v in unconstrained_set for v in instance.agents_of_objective(k)
                    )
                    if survivors_were_zeroed and not unconstrained_members:
                        optimum_is_zero = True
                if originally_empty:
                    optimum_is_zero = True
                changed = True

        # Non-contributing agents: no surviving objective.
        for v in list(agents):
            live_objectives = [k for k in instance.objectives_of_agent(v) if k in objectives]
            if not live_objectives:
                agents.discard(v)
                forced_zero.append(v)
                forced_zero_set.add(v)
                changed = True

    obs.count("preprocess.peel_rounds", peel_rounds)
    return _FixedPoint(
        [v for v in instance.agents if v in agents],
        [i for i in instance.constraints if i in constraints],
        [k for k in instance.objectives if k in objectives],
        forced_zero,
        unconstrained,
        removed_constraints,
        removed_objectives,
        optimum_is_zero,
    )


def _row_members(indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenated adjacency rows (``indices`` entries) of the given rows."""
    counts = np.diff(indptr)[rows]
    return indices[_segment_gather(indptr[rows], counts)]


def _vectorized_fixed_point(instance: MaxMinInstance) -> _FixedPoint:
    """Iterative degree-peeling over the compiled CSR arrays.

    Mirrors the reference fixed point phase for phase: per-node *live degree*
    counters start at the compiled degrees; each phase selects the depleted
    nodes with one ``flatnonzero`` scan and pushes the removals to the
    neighbouring counters with ``np.bincount`` over the gathered adjacency
    rows of just-removed nodes (a csgraph-style frontier update).  Node
    positions translate back to identifiers only once, at the end.
    """
    comp = instance.compiled()
    n, m_con, m_obj = comp.num_agents, comp.num_constraints, comp.num_objectives

    alive_agent = np.ones(n, dtype=bool)
    alive_con = np.ones(m_con, dtype=bool)
    alive_obj = np.ones(m_obj, dtype=bool)

    # Live-degree counters: number of *alive* neighbours per node.
    live_con_members = comp.constraint_degrees.copy()
    live_obj_members = comp.objective_degrees.copy()
    live_agent_cons = np.diff(comp.con_indptr).copy()
    live_agent_objs = np.diff(comp.obj_indptr).copy()

    forced_zero_mask = np.zeros(n, dtype=bool)
    unconstrained_mask = np.zeros(n, dtype=bool)
    forced_zero_rounds: List[np.ndarray] = []
    unconstrained_rounds: List[np.ndarray] = []
    removed_con_rounds: List[np.ndarray] = []
    removed_obj_rounds: List[np.ndarray] = []

    # Isolated objectives in the *original* instance force the optimum to 0.
    optimum_is_zero = bool(m_obj) and bool((comp.objective_degrees == 0).any())

    peel_rounds = 0
    changed = True
    while changed:
        changed = False
        peel_rounds += 1

        # Phase 1 — constraints with no surviving agents.
        dead_cons = np.flatnonzero(alive_con & (live_con_members == 0))
        if len(dead_cons):
            alive_con[dead_cons] = False
            removed_con_rounds.append(dead_cons)
            changed = True

        # Phase 2 — unconstrained agents; their objectives never bind.
        unc = np.flatnonzero(alive_agent & (live_agent_cons == 0))
        if len(unc):
            alive_agent[unc] = False
            unconstrained_mask[unc] = True
            unconstrained_rounds.append(unc)
            touched_cons = _row_members(comp.con_indptr, comp.con_indices, unc)
            if len(touched_cons):
                live_con_members -= np.bincount(touched_cons, minlength=m_con)
            touched_objs = _row_members(comp.obj_indptr, comp.obj_indices, unc)
            dead_objs = np.unique(touched_objs[alive_obj[touched_objs]]) if len(touched_objs) else touched_objs
            if len(dead_objs):
                alive_obj[dead_objs] = False
                removed_obj_rounds.append(dead_objs)
                members = _row_members(comp.oagents_indptr, comp.oagents_indices, dead_objs)
                if len(members):
                    live_agent_objs -= np.bincount(members, minlength=n)
            if len(touched_objs):
                live_obj_members -= np.bincount(touched_objs, minlength=m_obj)
            changed = True

        # Phase 3 — objectives that lost all their agents.
        dead_objs = np.flatnonzero(alive_obj & (live_obj_members == 0))
        if len(dead_objs):
            alive_obj[dead_objs] = False
            removed_obj_rounds.append(dead_objs)
            originally_empty = comp.objective_degrees[dead_objs] == 0
            nonempty = dead_objs[~originally_empty]
            if len(nonempty):
                # All agents forced to zero (and none unconstrained) pins the
                # objective — and hence the optimum — at 0.
                counts = comp.objective_degrees[nonempty]
                members = _row_members(comp.oagents_indptr, comp.oagents_indices, nonempty)
                owner = np.repeat(np.arange(len(nonempty), dtype=np.int64), counts)
                any_fz = np.bincount(owner, weights=forced_zero_mask[members].astype(np.float64), minlength=len(nonempty)) > 0
                any_unc = np.bincount(owner, weights=unconstrained_mask[members].astype(np.float64), minlength=len(nonempty)) > 0
                if bool((any_fz & ~any_unc).any()):
                    optimum_is_zero = True
                live_agent_objs -= np.bincount(members, minlength=n)
            if bool(originally_empty.any()):
                optimum_is_zero = True
            changed = True

        # Phase 4 — non-contributing agents: no surviving objective.
        fz = np.flatnonzero(alive_agent & (live_agent_objs == 0))
        if len(fz):
            alive_agent[fz] = False
            forced_zero_mask[fz] = True
            forced_zero_rounds.append(fz)
            touched_cons = _row_members(comp.con_indptr, comp.con_indices, fz)
            if len(touched_cons):
                live_con_members -= np.bincount(touched_cons, minlength=m_con)
            touched_objs = _row_members(comp.obj_indptr, comp.obj_indices, fz)
            if len(touched_objs):
                live_obj_members -= np.bincount(touched_objs, minlength=m_obj)
            changed = True

    obs.count("preprocess.peel_rounds", peel_rounds)

    def _ids(rounds: List[np.ndarray], names) -> List[NodeId]:
        return [names[p] for chunk in rounds for p in chunk.tolist()]

    agent_ids = instance.agents
    constraint_ids = instance.constraints
    objective_ids = instance.objectives
    if not (forced_zero_rounds or unconstrained_rounds or removed_con_rounds or removed_obj_rounds):
        # Nothing removed: the survivors are everyone, no position decoding.
        return _FixedPoint(
            agent_ids, constraint_ids, objective_ids, [], [], [], [], optimum_is_zero
        )
    return _FixedPoint(
        [agent_ids[p] for p in np.flatnonzero(alive_agent).tolist()],
        [constraint_ids[p] for p in np.flatnonzero(alive_con).tolist()],
        [objective_ids[p] for p in np.flatnonzero(alive_obj).tolist()],
        _ids(forced_zero_rounds, agent_ids),
        _ids(unconstrained_rounds, agent_ids),
        _ids(removed_con_rounds, constraint_ids),
        _ids(removed_obj_rounds, objective_ids),
        optimum_is_zero,
        alive_masks=(alive_agent, alive_con, alive_obj),
    )


def _materialize_cleaned(instance: MaxMinInstance, fp: _FixedPoint, name: str) -> MaxMinInstance:
    """Build the cleaned instance straight from the compiled CSR arrays.

    Compacts the surviving agent rows (dropping edges into removed
    constraints / objectives, remapping member positions) and hands the
    arrays to the trusted :meth:`MaxMinInstance.from_arrays` constructor —
    no per-edge dict rebuilding and no re-validation, producing an instance
    equal (and digest-identical) to :meth:`MaxMinInstance.sub_instance`.
    """
    comp = instance.compiled()
    alive_agent, alive_con, alive_obj = fp.alive_masks
    keep_a = np.flatnonzero(alive_agent)

    def compact(indptr, indices, coeff, alive_member, n_new_members):
        member_map = np.full(len(alive_member), -1, dtype=np.int64)
        member_map[alive_member] = np.arange(n_new_members, dtype=np.int64)
        counts = np.diff(indptr)[keep_a]
        edges = _segment_gather(indptr[keep_a], counts)
        owner = np.repeat(np.arange(len(keep_a), dtype=np.int64), counts)
        keep_e = alive_member[indices[edges]]
        new_indptr = np.zeros(len(keep_a) + 1, dtype=np.int64)
        if len(owner):
            np.cumsum(np.bincount(owner[keep_e], minlength=len(keep_a)), out=new_indptr[1:])
        return (
            new_indptr,
            member_map[indices[edges[keep_e]]],
            coeff[edges[keep_e]],
        )

    con_arrays = compact(comp.con_indptr, comp.con_indices, comp.con_coeff, alive_con, len(fp.constraints))
    obj_arrays = compact(comp.obj_indptr, comp.obj_indices, comp.obj_coeff, alive_obj, len(fp.objectives))
    obs.count("preprocess.array_materializations")
    return MaxMinInstance.from_arrays(
        fp.agents, fp.constraints, fp.objectives, *con_arrays, *obj_arrays, name=name
    )


def preprocess(instance: MaxMinInstance, *, backend: str = "vectorized") -> PreprocessResult:
    """Remove degenerate structure from an instance (see module docstring).

    ``backend="vectorized"`` (default) runs the fixed point as degree-peeling
    over the compiled CSR arrays; ``backend="reference"`` keeps the per-node
    oracle.  Both produce identical removed sets, flags and lift behaviour.

    The result is cached on the (immutable) instance per backend, like
    :meth:`MaxMinInstance.compiled`: repeated solves of one instance clean it
    once and share the same cleaned-instance object, keeping its compiled
    view and §4 transform cache warm across an R-sweep.  Treat the result as
    read-only.
    """
    cached = instance._preprocess_cache
    if cached is not None and backend in cached:
        obs.count("preprocess.cache_hits")
        return cached[backend]
    obs.count("preprocess.runs")
    with obs.span("solve.preprocess", agents=instance.num_agents, backend=backend):
        if backend == "vectorized":
            fp = _vectorized_fixed_point(instance)
        elif backend == "reference":
            fp = _reference_fixed_point(instance)
        else:
            raise ValueError(
                f"unknown preprocess backend {backend!r} (expected 'vectorized' or 'reference')"
            )

    optimum_is_zero = fp.optimum_is_zero
    optimum_is_unbounded = not optimum_is_zero and not fp.objectives and bool(instance.objectives)
    if not instance.objectives:
        # No objectives at all: the max-min value is vacuously unbounded.
        optimum_is_unbounded = True

    removed_anything = (
        bool(fp.forced_zero)
        or bool(fp.unconstrained)
        or bool(fp.removed_constraints)
        or bool(fp.removed_objectives)
    )
    if removed_anything:
        obs.count("preprocess.removed_agents", len(fp.forced_zero) + len(fp.unconstrained))
        obs.count("preprocess.removed_constraints", len(fp.removed_constraints))
        obs.count("preprocess.removed_objectives", len(fp.removed_objectives))
        if fp.alive_masks is not None:
            cleaned = _materialize_cleaned(instance, fp, f"{instance.name}#clean")
        else:
            cleaned = instance.sub_instance(
                fp.agents, fp.constraints, fp.objectives, name=f"{instance.name}#clean"
            )
    else:
        # Nothing removed: hand back the original object so per-instance
        # caches (compiled view, §4 transform results) survive preprocessing.
        cleaned = instance

    result = PreprocessResult(
        original=instance,
        instance=cleaned,
        forced_zero_agents=tuple(fp.forced_zero),
        unconstrained_agents=tuple(fp.unconstrained),
        removed_constraints=tuple(fp.removed_constraints),
        removed_objectives=tuple(fp.removed_objectives),
        optimum_is_zero=optimum_is_zero,
        optimum_is_unbounded=optimum_is_unbounded,
    )
    if instance._preprocess_cache is None:
        instance._preprocess_cache = {}
    instance._preprocess_cache[backend] = result
    return result
