"""Degenerate-case preprocessing (paper §4, opening remarks).

The transformations and the local algorithm assume a *non-degenerate*
instance: every constraint and objective touches at least one agent, and
every agent touches at least one constraint and at least one objective.
The paper dispenses with the degenerate cases in one sentence:

    "isolated constraints can be deleted, isolated objectives force the
    optimum to zero, non-contributing agents can be set to zero, and
    unconstrained agents can be set to +∞"

This module turns that sentence into code.  :func:`preprocess` returns a
cleaned instance together with a :class:`PreprocessResult` that remembers
what was removed and can lift a solution of the cleaned instance back to the
original one.

Notes on the individual cases
-----------------------------
* *Isolated constraints* (no agents): trivially satisfied; removed.
* *Isolated objectives* (no agents): their value is always 0, so the optimum
  of the whole instance is 0.  The result is flagged ``optimum_is_zero`` and
  the cleaned instance keeps only the structure needed to emit an all-zero
  solution.
* *Non-contributing agents* (no objectives): setting them to 0 never hurts;
  they are removed and remembered in ``forced_zero_agents``.
* *Unconstrained agents* (no constraints): they can be made arbitrarily
  large, hence any objective containing one can reach any target value and
  never binds.  Such objectives are removed; when lifting, the unconstrained
  agents are assigned a value large enough to push the removed objectives to
  the utility of the lifted solution (or any requested target).
* Removal can cascade (an agent whose only objective was removed becomes
  non-contributing), so the cleanup iterates to a fixed point.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from .._types import NodeId
from ..exceptions import DegenerateInstanceError
from .instance import MaxMinInstance
from .solution import Solution

__all__ = ["PreprocessResult", "preprocess"]


class PreprocessResult:
    """Outcome of :func:`preprocess`.

    Attributes
    ----------
    original:
        The instance that was preprocessed.
    instance:
        The cleaned (non-degenerate) instance.  May have zero agents when the
        optimum is zero or unbounded.
    forced_zero_agents:
        Agents removed because they contribute to no (surviving) objective;
        they are set to 0 when lifting.
    unconstrained_agents:
        Agents removed because they have no constraints; they are set to a
        sufficiently large finite value when lifting.
    removed_constraints / removed_objectives:
        Constraint / objective ids dropped during cleaning.
    optimum_is_zero:
        True when an isolated objective forces the optimum to 0.
    optimum_is_unbounded:
        True when *every* objective can be made arbitrarily large (so the
        max-min value is unbounded above).
    """

    __slots__ = (
        "original",
        "instance",
        "forced_zero_agents",
        "unconstrained_agents",
        "removed_constraints",
        "removed_objectives",
        "optimum_is_zero",
        "optimum_is_unbounded",
    )

    def __init__(
        self,
        original: MaxMinInstance,
        instance: MaxMinInstance,
        forced_zero_agents: Tuple[NodeId, ...],
        unconstrained_agents: Tuple[NodeId, ...],
        removed_constraints: Tuple[NodeId, ...],
        removed_objectives: Tuple[NodeId, ...],
        optimum_is_zero: bool,
        optimum_is_unbounded: bool,
    ) -> None:
        self.original = original
        self.instance = instance
        self.forced_zero_agents = forced_zero_agents
        self.unconstrained_agents = unconstrained_agents
        self.removed_constraints = removed_constraints
        self.removed_objectives = removed_objectives
        self.optimum_is_zero = optimum_is_zero
        self.optimum_is_unbounded = optimum_is_unbounded

    @property
    def changed(self) -> bool:
        """True if preprocessing modified the instance at all."""
        return (
            bool(self.forced_zero_agents)
            or bool(self.unconstrained_agents)
            or bool(self.removed_constraints)
            or bool(self.removed_objectives)
        )

    def lift(
        self,
        solution: Solution,
        target_utility: Optional[float] = None,
        label: Optional[str] = None,
    ) -> Solution:
        """Lift a solution of the cleaned instance back to the original one.

        Forced-zero agents get 0; unconstrained agents get a value large
        enough that every removed objective reaches ``target_utility``
        (default: the utility of ``solution`` itself, or 0 when that is not
        finite).  The lifted solution is feasible whenever ``solution`` is,
        and its utility is ``min(utility(solution), target_utility)`` which
        equals ``utility(solution)`` for the default target.
        """
        if solution.instance != self.instance:
            raise DegenerateInstanceError("lift() expects a solution of the cleaned instance")

        values: Dict[NodeId, float] = {v: 0.0 for v in self.original.agents}
        for v in self.instance.agents:
            values[v] = solution[v]
        for v in self.forced_zero_agents:
            values[v] = 0.0

        if target_utility is None:
            util = solution.utility()
            target_utility = util if math.isfinite(util) else 0.0

        # Every removed objective contains at least one unconstrained agent
        # (that is why it was removed); give that agent enough value.
        unconstrained = set(self.unconstrained_agents)
        for k in self.removed_objectives:
            members = self.original.agents_of_objective(k)
            carriers = [v for v in members if v in unconstrained]
            if not carriers:
                # Objective removed because it became isolated after its
                # agents were removed; it forces optimum zero, nothing to do.
                continue
            current = sum(self.original.c(k, v) * values[v] for v in members)
            deficit = target_utility - current
            if deficit > 0.0:
                carrier = carriers[0]
                values[carrier] = max(values[carrier], values[carrier] + deficit / self.original.c(k, carrier))

        return Solution(self.original, values, label=label or f"{solution.label}+lifted")

    def zero_solution(self, label: str = "zero") -> Solution:
        """The all-zero solution of the original instance."""
        return Solution(self.original, {v: 0.0 for v in self.original.agents}, label=label)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PreprocessResult(changed={self.changed}, zero={self.optimum_is_zero}, "
            f"unbounded={self.optimum_is_unbounded}, "
            f"removed_constraints={len(self.removed_constraints)}, "
            f"removed_objectives={len(self.removed_objectives)})"
        )


def preprocess(instance: MaxMinInstance) -> PreprocessResult:
    """Remove degenerate structure from an instance (see module docstring)."""
    agents: Set[NodeId] = set(instance.agents)
    constraints: Set[NodeId] = set(instance.constraints)
    objectives: Set[NodeId] = set(instance.objectives)

    forced_zero: List[NodeId] = []
    unconstrained: List[NodeId] = []
    removed_constraints: List[NodeId] = []
    removed_objectives: List[NodeId] = []
    optimum_is_zero = False

    # Isolated objectives in the *original* instance force the optimum to 0.
    for k in instance.objectives:
        if not instance.agents_of_objective(k):
            optimum_is_zero = True

    changed = True
    while changed:
        changed = False

        # Constraints with no surviving agents are trivially satisfied.
        for i in list(constraints):
            members = [v for v in instance.agents_of_constraint(i) if v in agents]
            if not members:
                constraints.discard(i)
                removed_constraints.append(i)
                changed = True

        # Unconstrained agents: every objective containing one never binds.
        for v in list(agents):
            live_constraints = [i for i in instance.constraints_of_agent(v) if i in constraints]
            if not live_constraints:
                agents.discard(v)
                unconstrained.append(v)
                for k in instance.objectives_of_agent(v):
                    if k in objectives:
                        objectives.discard(k)
                        removed_objectives.append(k)
                changed = True

        # Objectives that lost all their agents (but had some originally)
        # would force the optimum to 0 — unless they were removed above
        # because an unconstrained agent can satisfy them.
        for k in list(objectives):
            members = [v for v in instance.agents_of_objective(k) if v in agents]
            originally_empty = not instance.agents_of_objective(k)
            if not members:
                objectives.discard(k)
                removed_objectives.append(k)
                if not originally_empty:
                    # All its agents were forced to zero: the objective value
                    # is stuck at 0, hence the optimum is 0.
                    survivors_were_zeroed = any(
                        v in set(forced_zero) for v in instance.agents_of_objective(k)
                    )
                    unconstrained_members = any(
                        v in set(unconstrained) for v in instance.agents_of_objective(k)
                    )
                    if survivors_were_zeroed and not unconstrained_members:
                        optimum_is_zero = True
                if originally_empty:
                    optimum_is_zero = True
                changed = True

        # Non-contributing agents: no surviving objective.
        for v in list(agents):
            live_objectives = [k for k in instance.objectives_of_agent(v) if k in objectives]
            if not live_objectives:
                agents.discard(v)
                forced_zero.append(v)
                changed = True

    optimum_is_unbounded = not optimum_is_zero and not objectives and bool(instance.objectives)
    if not instance.objectives:
        # No objectives at all: the max-min value is vacuously unbounded.
        optimum_is_unbounded = True

    cleaned = instance.sub_instance(
        [v for v in instance.agents if v in agents],
        [i for i in instance.constraints if i in constraints],
        [k for k in instance.objectives if k in objectives],
        name=f"{instance.name}#clean",
    )

    return PreprocessResult(
        original=instance,
        instance=cleaned,
        forced_zero_agents=tuple(forced_zero),
        unconstrained_agents=tuple(unconstrained),
        removed_constraints=tuple(removed_constraints),
        removed_objectives=tuple(removed_objectives),
        optimum_is_zero=optimum_is_zero,
        optimum_is_unbounded=optimum_is_unbounded,
    )
