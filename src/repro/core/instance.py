"""The :class:`MaxMinInstance` data model.

A max-min linear program (max-min LP) in the sense of Floréen, Kaasinen,
Kaski and Suomela (SPAA 2009) is

.. math::

    \\text{maximise } \\omega(x) = \\min_{k \\in K} \\sum_{v \\in V_k} c_{kv} x_v
    \\quad\\text{subject to}\\quad
    \\sum_{v \\in V_i} a_{iv} x_v \\le 1 \\;\\forall i \\in I, \\qquad x \\ge 0,

with strictly positive sparse coefficients.  The instance is represented by
its bipartite communication graph: agents ``V`` (variables), constraints
``I`` (rows of ``A``) and objectives ``K`` (rows of ``C``), with an edge
``{v, i}`` whenever ``a_iv > 0`` and an edge ``{v, k}`` whenever
``c_kv > 0``.

:class:`MaxMinInstance` is an immutable value object: all adjacency
structures are precomputed at construction time and the public accessors are
O(1) per call (degrees are bounded by the constants ``ΔI`` and ``ΔK``, so
"per-node work" really is constant — this matters for the locality claims
measured in the benchmarks).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from .._types import (
    CoefficientMap,
    GraphNode,
    NodeId,
    NodeType,
    agent_node,
    constraint_node,
    objective_node,
)
from ..exceptions import InvalidInstanceError

__all__ = ["MaxMinInstance", "DegreeStatistics"]


def _adjacency_from_csr(owners, members, indptr, indices, coeff):
    """Adjacency dicts of one CSR side (trusted, see ``from_arrays``).

    ``owners`` are the row nodes (agents), ``members`` the column nodes
    (constraints or objectives); rows must list members in canonical order.
    Returns ``(coeff_map, rows_of_owner, rows_of_member)`` where
    ``coeff_map`` is keyed ``(member_id, owner_id)`` — the ``(i, v)`` /
    ``(k, v)`` convention of the instance's ``_a`` / ``_c`` dicts — and the
    reverse rows come out sorted by owner canonical position (the same order
    ``__init__``'s insertion + sort produces).
    """
    import numpy as np

    idx = indices.tolist()
    indptr_l = indptr.tolist()
    member_ids = [members[p] for p in idx]
    rows_of_owner = {
        owner: tuple(member_ids[indptr_l[row] : indptr_l[row + 1]])
        for row, owner in enumerate(owners)
    }
    owner_rep = np.repeat(np.arange(len(owners), dtype=np.int64), np.diff(indptr))
    owner_ids = [owners[p] for p in owner_rep.tolist()]
    coeff_map = dict(zip(zip(member_ids, owner_ids), coeff.tolist()))
    order = np.lexsort((owner_rep, indices)).tolist()
    counts = (
        np.bincount(indices, minlength=len(members)).tolist()
        if len(idx)
        else [0] * len(members)
    )
    rows_of_member = {}
    pos = 0
    for m, mid in enumerate(members):
        cnt = counts[m]
        rows_of_member[mid] = tuple(owner_ids[p] for p in order[pos : pos + cnt])
        pos += cnt
    return coeff_map, rows_of_owner, rows_of_member


class DegreeStatistics:
    """Summary of the degree structure of an instance.

    Attributes
    ----------
    delta_I:
        Maximum constraint degree ``max_i |V_i|`` (0 if there are no
        constraints).
    delta_K:
        Maximum objective degree ``max_k |V_k|`` (0 if there are no
        objectives).
    max_agent_constraint_degree:
        ``max_v |I_v|``.
    max_agent_objective_degree:
        ``max_v |K_v|``.
    """

    __slots__ = (
        "delta_I",
        "delta_K",
        "max_agent_constraint_degree",
        "max_agent_objective_degree",
        "mean_constraint_degree",
        "mean_objective_degree",
    )

    def __init__(
        self,
        delta_I: int,
        delta_K: int,
        max_agent_constraint_degree: int,
        max_agent_objective_degree: int,
        mean_constraint_degree: float,
        mean_objective_degree: float,
    ) -> None:
        self.delta_I = delta_I
        self.delta_K = delta_K
        self.max_agent_constraint_degree = max_agent_constraint_degree
        self.max_agent_objective_degree = max_agent_objective_degree
        self.mean_constraint_degree = mean_constraint_degree
        self.mean_objective_degree = mean_objective_degree

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary (for reporting)."""
        return {
            "delta_I": self.delta_I,
            "delta_K": self.delta_K,
            "max_agent_constraint_degree": self.max_agent_constraint_degree,
            "max_agent_objective_degree": self.max_agent_objective_degree,
            "mean_constraint_degree": self.mean_constraint_degree,
            "mean_objective_degree": self.mean_objective_degree,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DegreeStatistics(delta_I={self.delta_I}, delta_K={self.delta_K}, "
            f"max|I_v|={self.max_agent_constraint_degree}, "
            f"max|K_v|={self.max_agent_objective_degree})"
        )


class MaxMinInstance:
    """An immutable max-min LP instance.

    Parameters
    ----------
    agents:
        Iterable of agent identifiers (the variables ``x_v``).
    constraints:
        Iterable of constraint identifiers (rows of ``A``).
    objectives:
        Iterable of objective identifiers (rows of ``C``).
    a:
        Mapping ``(constraint_id, agent_id) -> a_iv`` with ``a_iv > 0``.
        Pairs not present are treated as zero (no edge).
    c:
        Mapping ``(objective_id, agent_id) -> c_kv`` with ``c_kv > 0``.
    name:
        Optional human-readable name used in reports.

    Raises
    ------
    InvalidInstanceError
        If a coefficient is non-positive or refers to an undeclared node, or
        if identifiers within one node class are duplicated.
    """

    __slots__ = (
        "_agents",
        "_constraints",
        "_objectives",
        "_a",
        "_c",
        "_agents_of_constraint",
        "_agents_of_objective",
        "_constraints_of_agent",
        "_objectives_of_agent",
        "_agent_set",
        "_constraint_set",
        "_objective_set",
        "_graph_cache",
        "_compiled_cache",
        "_transform_cache",
        "_preprocess_cache",
        "name",
    )

    def __init__(
        self,
        agents: Iterable[NodeId],
        constraints: Iterable[NodeId],
        objectives: Iterable[NodeId],
        a: Mapping[Tuple[NodeId, NodeId], float],
        c: Mapping[Tuple[NodeId, NodeId], float],
        name: str = "max-min-lp",
    ) -> None:
        self._agents: Tuple[NodeId, ...] = tuple(agents)
        self._constraints: Tuple[NodeId, ...] = tuple(constraints)
        self._objectives: Tuple[NodeId, ...] = tuple(objectives)
        self.name = name

        self._graph_cache: Optional["nx.Graph"] = None
        self._compiled_cache = None
        # §4 pipeline results cached per (backend, verify) key, exactly like
        # the compiled view: the instance is immutable, so a cached
        # TransformResult can never go stale.  Populated by
        # :func:`repro.transforms.pipeline.to_special_form`; an R-sweep that
        # revisits this instance runs the pipeline once.  (The result holds a
        # back-reference to this instance — a plain reference cycle, handled
        # by the cycle collector just like ``_compiled_cache``.)
        self._transform_cache: Optional[dict] = None
        # Preprocessing outcomes cached per backend (same rationale): a sweep
        # revisiting this instance cleans it once, and the *same* cleaned
        # instance object is reused — which is what keeps the cleaned
        # instance's own compiled/transform caches warm across R values.
        self._preprocess_cache: Optional[dict] = None

        self._agent_set = frozenset(self._agents)
        self._constraint_set = frozenset(self._constraints)
        self._objective_set = frozenset(self._objectives)

        if len(self._agent_set) != len(self._agents):
            raise InvalidInstanceError("duplicate agent identifiers")
        if len(self._constraint_set) != len(self._constraints):
            raise InvalidInstanceError("duplicate constraint identifiers")
        if len(self._objective_set) != len(self._objectives):
            raise InvalidInstanceError("duplicate objective identifiers")

        self._a: CoefficientMap = {}
        self._c: CoefficientMap = {}

        agents_of_constraint: Dict[NodeId, List[NodeId]] = {i: [] for i in self._constraints}
        agents_of_objective: Dict[NodeId, List[NodeId]] = {k: [] for k in self._objectives}
        constraints_of_agent: Dict[NodeId, List[NodeId]] = {v: [] for v in self._agents}
        objectives_of_agent: Dict[NodeId, List[NodeId]] = {v: [] for v in self._agents}

        # Canonical identity maps: coefficient keys may be equal-but-distinct
        # objects (e.g. ``numpy.str_`` leaking out of a generator's sampling).
        # Normalising them to the *declared* node objects keeps every derived
        # structure — reprs, JSON sort order, hashes, content digests —
        # dependent only on node values, never on key object identity.
        canon_agent: Dict[NodeId, NodeId] = {v: v for v in self._agents}
        canon_constraint: Dict[NodeId, NodeId] = {i: i for i in self._constraints}
        canon_objective: Dict[NodeId, NodeId] = {k: k for k in self._objectives}

        for (i, v), coeff in a.items():
            if i not in agents_of_constraint:
                raise InvalidInstanceError(f"coefficient a[{i!r}, {v!r}] refers to unknown constraint {i!r}")
            if v not in constraints_of_agent:
                raise InvalidInstanceError(f"coefficient a[{i!r}, {v!r}] refers to unknown agent {v!r}")
            i = canon_constraint[i]
            v = canon_agent[v]
            coeff = float(coeff)
            if not math.isfinite(coeff) or coeff <= 0.0:
                raise InvalidInstanceError(
                    f"constraint coefficient a[{i!r}, {v!r}] = {coeff} must be positive and finite"
                )
            if (i, v) in self._a:
                raise InvalidInstanceError(f"duplicate constraint coefficient for ({i!r}, {v!r})")
            self._a[(i, v)] = coeff
            agents_of_constraint[i].append(v)
            constraints_of_agent[v].append(i)

        for (k, v), coeff in c.items():
            if k not in agents_of_objective:
                raise InvalidInstanceError(f"coefficient c[{k!r}, {v!r}] refers to unknown objective {k!r}")
            if v not in objectives_of_agent:
                raise InvalidInstanceError(f"coefficient c[{k!r}, {v!r}] refers to unknown agent {v!r}")
            k = canon_objective[k]
            v = canon_agent[v]
            coeff = float(coeff)
            if not math.isfinite(coeff) or coeff <= 0.0:
                raise InvalidInstanceError(
                    f"objective coefficient c[{k!r}, {v!r}] = {coeff} must be positive and finite"
                )
            if (k, v) in self._c:
                raise InvalidInstanceError(f"duplicate objective coefficient for ({k!r}, {v!r})")
            self._c[(k, v)] = coeff
            agents_of_objective[k].append(v)
            objectives_of_agent[v].append(k)

        # Freeze adjacency lists (sorted by insertion order of node tuples for
        # determinism; the declared node order defines the canonical order).
        agent_order = {v: idx for idx, v in enumerate(self._agents)}
        constraint_order = {i: idx for idx, i in enumerate(self._constraints)}
        objective_order = {k: idx for idx, k in enumerate(self._objectives)}

        self._agents_of_constraint: Dict[NodeId, Tuple[NodeId, ...]] = {
            i: tuple(sorted(vs, key=agent_order.__getitem__)) for i, vs in agents_of_constraint.items()
        }
        self._agents_of_objective: Dict[NodeId, Tuple[NodeId, ...]] = {
            k: tuple(sorted(vs, key=agent_order.__getitem__)) for k, vs in agents_of_objective.items()
        }
        self._constraints_of_agent: Dict[NodeId, Tuple[NodeId, ...]] = {
            v: tuple(sorted(is_, key=constraint_order.__getitem__))
            for v, is_ in constraints_of_agent.items()
        }
        self._objectives_of_agent: Dict[NodeId, Tuple[NodeId, ...]] = {
            v: tuple(sorted(ks, key=objective_order.__getitem__))
            for v, ks in objectives_of_agent.items()
        }

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def agents(self) -> Tuple[NodeId, ...]:
        """The agents ``V`` in canonical (declaration) order."""
        return self._agents

    @property
    def constraints(self) -> Tuple[NodeId, ...]:
        """The constraints ``I`` in canonical order."""
        return self._constraints

    @property
    def objectives(self) -> Tuple[NodeId, ...]:
        """The objectives ``K`` in canonical order."""
        return self._objectives

    @property
    def num_agents(self) -> int:
        return len(self._agents)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def num_objectives(self) -> int:
        return len(self._objectives)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes of the communication graph."""
        return self.num_agents + self.num_constraints + self.num_objectives

    @property
    def num_edges(self) -> int:
        """Total number of edges of the communication graph."""
        return len(self._a) + len(self._c)

    @property
    def agent_set(self) -> "frozenset[NodeId]":
        """The agents as a frozenset (for C-speed membership batch checks)."""
        return self._agent_set

    def has_agent(self, v: NodeId) -> bool:
        return v in self._agent_set

    def has_constraint(self, i: NodeId) -> bool:
        return i in self._constraint_set

    def has_objective(self, k: NodeId) -> bool:
        return k in self._objective_set

    # ------------------------------------------------------------------
    # Coefficients and adjacency
    # ------------------------------------------------------------------
    def a(self, i: NodeId, v: NodeId) -> float:
        """The constraint coefficient ``a_iv`` (0.0 if the edge is absent)."""
        return self._a.get((i, v), 0.0)

    def c(self, k: NodeId, v: NodeId) -> float:
        """The objective coefficient ``c_kv`` (0.0 if the edge is absent)."""
        return self._c.get((k, v), 0.0)

    @property
    def a_coefficients(self) -> CoefficientMap:
        """A copy of the sparse constraint coefficient map."""
        return dict(self._a)

    @property
    def c_coefficients(self) -> CoefficientMap:
        """A copy of the sparse objective coefficient map."""
        return dict(self._c)

    def agents_of_constraint(self, i: NodeId) -> Tuple[NodeId, ...]:
        """``V_i``: the agents adjacent to constraint ``i``."""
        try:
            return self._agents_of_constraint[i]
        except KeyError:
            raise InvalidInstanceError(f"unknown constraint {i!r}") from None

    def agents_of_objective(self, k: NodeId) -> Tuple[NodeId, ...]:
        """``V_k``: the agents adjacent to objective ``k``."""
        try:
            return self._agents_of_objective[k]
        except KeyError:
            raise InvalidInstanceError(f"unknown objective {k!r}") from None

    def constraints_of_agent(self, v: NodeId) -> Tuple[NodeId, ...]:
        """``I_v``: the constraints adjacent to agent ``v``."""
        try:
            return self._constraints_of_agent[v]
        except KeyError:
            raise InvalidInstanceError(f"unknown agent {v!r}") from None

    def objectives_of_agent(self, v: NodeId) -> Tuple[NodeId, ...]:
        """``K_v``: the objectives adjacent to agent ``v``."""
        try:
            return self._objectives_of_agent[v]
        except KeyError:
            raise InvalidInstanceError(f"unknown agent {v!r}") from None

    def other_agent(self, i: NodeId, v: NodeId) -> NodeId:
        """``n(v, i)``: the unique agent other than ``v`` in a degree-2 constraint.

        Only meaningful for special-form instances where ``|V_i| = 2``.
        """
        members = self.agents_of_constraint(i)
        if len(members) != 2:
            raise InvalidInstanceError(
                f"other_agent requires |V_i| = 2 but constraint {i!r} has degree {len(members)}"
            )
        if members[0] == v:
            return members[1]
        if members[1] == v:
            return members[0]
        raise InvalidInstanceError(f"agent {v!r} is not adjacent to constraint {i!r}")

    def unique_objective(self, v: NodeId) -> NodeId:
        """``k(v)``: the unique objective of agent ``v`` (special form only)."""
        ks = self.objectives_of_agent(v)
        if len(ks) != 1:
            raise InvalidInstanceError(
                f"unique_objective requires |K_v| = 1 but agent {v!r} has {len(ks)} objectives"
            )
        return ks[0]

    def objective_siblings(self, v: NodeId) -> Tuple[NodeId, ...]:
        """``N(v) = V_{k(v)} \\ {v}`` (special form only)."""
        k = self.unique_objective(v)
        return tuple(w for w in self.agents_of_objective(k) if w != v)

    def agent_capacity(self, v: NodeId) -> float:
        """``min_{i ∈ I_v} 1 / a_iv`` — the largest value ``x_v`` can take alone.

        Returns ``math.inf`` for agents with no adjacent constraint.
        """
        best = math.inf
        for i in self.constraints_of_agent(v):
            cap = 1.0 / self._a[(i, v)]
            if cap < best:
                best = cap
        return best

    def trivial_upper_bound(self) -> float:
        """A finite upper bound on the optimum of a non-degenerate instance.

        ``min_k Σ_{v ∈ V_k} c_kv · capacity(v)`` — every objective value is at
        most the sum of its agents' individual capacities.
        """
        best = math.inf
        for k in self._objectives:
            total = 0.0
            for v in self.agents_of_objective(k):
                cap = self.agent_capacity(v)
                if math.isinf(cap):
                    total = math.inf
                    break
                total += self._c[(k, v)] * cap
            if total < best:
                best = total
        return best

    # ------------------------------------------------------------------
    # Degree structure
    # ------------------------------------------------------------------
    @property
    def delta_I(self) -> int:
        """``ΔI = max_i |V_i|`` (0 when there are no constraints)."""
        if not self._constraints:
            return 0
        return max(len(vs) for vs in self._agents_of_constraint.values())

    @property
    def delta_K(self) -> int:
        """``ΔK = max_k |V_k|`` (0 when there are no objectives)."""
        if not self._objectives:
            return 0
        return max(len(vs) for vs in self._agents_of_objective.values())

    def degree_statistics(self) -> DegreeStatistics:
        """Compute :class:`DegreeStatistics` for this instance."""
        max_iv = max((len(x) for x in self._constraints_of_agent.values()), default=0)
        max_kv = max((len(x) for x in self._objectives_of_agent.values()), default=0)
        mean_i = (
            sum(len(x) for x in self._agents_of_constraint.values()) / self.num_constraints
            if self.num_constraints
            else 0.0
        )
        mean_k = (
            sum(len(x) for x in self._agents_of_objective.values()) / self.num_objectives
            if self.num_objectives
            else 0.0
        )
        return DegreeStatistics(
            delta_I=self.delta_I,
            delta_K=self.delta_K,
            max_agent_constraint_degree=max_iv,
            max_agent_objective_degree=max_kv,
            mean_constraint_degree=mean_i,
            mean_objective_degree=mean_k,
        )

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    def is_degenerate(self) -> bool:
        """True if some node has degree 0 (see paper §4, opening remarks)."""
        return bool(self.degeneracies())

    def degeneracies(self) -> Dict[str, Tuple[NodeId, ...]]:
        """Classify degree-0 nodes.

        Returns a dict with keys ``isolated_constraints``,
        ``isolated_objectives``, ``non_contributing_agents`` (agents with no
        objective) and ``unconstrained_agents`` (agents with no constraint);
        only non-empty categories are present.
        """
        out: Dict[str, Tuple[NodeId, ...]] = {}
        iso_i = tuple(i for i in self._constraints if not self._agents_of_constraint[i])
        iso_k = tuple(k for k in self._objectives if not self._agents_of_objective[k])
        no_obj = tuple(v for v in self._agents if not self._objectives_of_agent[v])
        no_con = tuple(v for v in self._agents if not self._constraints_of_agent[v])
        if iso_i:
            out["isolated_constraints"] = iso_i
        if iso_k:
            out["isolated_objectives"] = iso_k
        if no_obj:
            out["non_contributing_agents"] = no_obj
        if no_con:
            out["unconstrained_agents"] = no_con
        return out

    def is_special_form(self, tol: float = 1e-12) -> bool:
        """True if the instance satisfies the §5 preconditions.

        The special form requires ``|V_i| = 2``, ``|V_k| ≥ 2``, ``|K_v| = 1``,
        ``|I_v| ≥ 1`` and ``c_kv = 1`` for every node / edge.

        Evaluated as whole-array degree checks over the cached compiled view
        (this runs before *every* §5 solve, so it must not cost a per-node
        Python loop); :meth:`special_form_violations` remains the per-node
        reporting oracle and defines the semantics.
        """
        import numpy as np

        comp = self.compiled()
        if comp.num_constraints and not bool(
            (np.diff(comp.cagents_indptr) == 2).all()
        ):
            return False
        if comp.num_objectives and not bool(
            (np.diff(comp.oagents_indptr) >= 2).all()
        ):
            return False
        if comp.num_agents:
            if not bool((np.diff(comp.obj_indptr) == 1).all()):
                return False
            if not bool((np.diff(comp.con_indptr) >= 1).all()):
                return False
        if len(comp.oagents_coeff) and not bool(
            (np.abs(comp.oagents_coeff - 1.0) <= tol).all()
        ):
            return False
        return True

    def special_form_violations(self, tol: float = 1e-12) -> List[str]:
        """Human-readable list of §5 precondition violations (empty if none)."""
        problems: List[str] = []
        for i in self._constraints:
            if len(self._agents_of_constraint[i]) != 2:
                problems.append(
                    f"constraint {i!r} has degree {len(self._agents_of_constraint[i])}, expected 2"
                )
        for k in self._objectives:
            if len(self._agents_of_objective[k]) < 2:
                problems.append(
                    f"objective {k!r} has degree {len(self._agents_of_objective[k])}, expected >= 2"
                )
        for v in self._agents:
            if len(self._objectives_of_agent[v]) != 1:
                problems.append(
                    f"agent {v!r} has {len(self._objectives_of_agent[v])} objectives, expected 1"
                )
            if len(self._constraints_of_agent[v]) < 1:
                problems.append(f"agent {v!r} has no constraints")
        for (k, v), coeff in self._c.items():
            if abs(coeff - 1.0) > tol:
                problems.append(f"objective coefficient c[{k!r}, {v!r}] = {coeff} != 1")
        return problems

    def has_zero_one_coefficients(self, tol: float = 1e-12) -> bool:
        """True if every coefficient equals 1 (the {0,1}-coefficient case)."""
        return all(abs(x - 1.0) <= tol for x in self._a.values()) and all(
            abs(x - 1.0) <= tol for x in self._c.values()
        )

    def is_bipartite_maxmin(self) -> bool:
        """True in the paper's "bipartite max-min LP" sense.

        Each agent is adjacent to exactly one constraint and exactly one
        objective (each column of ``A`` and of ``C`` has a single non-zero).
        """
        return all(
            len(self._constraints_of_agent[v]) == 1 and len(self._objectives_of_agent[v]) == 1
            for v in self._agents
        )

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def communication_graph(self) -> "nx.Graph":
        """The communication graph ``G`` as a :class:`networkx.Graph`.

        Nodes are ``(NodeType, id)`` pairs carrying a ``kind`` attribute;
        edges carry the coefficient in attribute ``coeff``.

        The instance is immutable, so the graph is built once and the *same*
        object is returned on every call (``is_connected``, dynamics diffing
        and GraphML export previously each paid a full reconstruction).
        Treat it as read-only — call ``.copy()`` before mutating.
        """
        if self._graph_cache is not None:
            return self._graph_cache
        g = nx.Graph(name=self.name)
        for v in self._agents:
            g.add_node(agent_node(v), kind=NodeType.AGENT)
        for i in self._constraints:
            g.add_node(constraint_node(i), kind=NodeType.CONSTRAINT)
        for k in self._objectives:
            g.add_node(objective_node(k), kind=NodeType.OBJECTIVE)
        for (i, v), coeff in self._a.items():
            g.add_edge(constraint_node(i), agent_node(v), coeff=coeff)
        for (k, v), coeff in self._c.items():
            g.add_edge(objective_node(k), agent_node(v), coeff=coeff)
        self._graph_cache = g
        return g

    def compiled(self) -> "CompiledInstance":
        """The cached :class:`~repro.core.compiled.CompiledInstance` view.

        Lowers the instance to int-indexed CSR arrays for the vectorized
        solver kernels; built on first call and reused afterwards (the
        instance is immutable, so the view can never go stale).
        """
        if self._compiled_cache is None:
            from .. import obs
            from .compiled import CompiledInstance

            obs.count("compile.builds")
            self._compiled_cache = CompiledInstance(self)
        return self._compiled_cache

    def neighbours(self, node: GraphNode) -> Tuple[GraphNode, ...]:
        """Neighbours of a ``(NodeType, id)`` node in the communication graph."""
        kind, name = node
        if kind is NodeType.AGENT:
            return tuple(constraint_node(i) for i in self.constraints_of_agent(name)) + tuple(
                objective_node(k) for k in self.objectives_of_agent(name)
            )
        if kind is NodeType.CONSTRAINT:
            return tuple(agent_node(v) for v in self.agents_of_constraint(name))
        if kind is NodeType.OBJECTIVE:
            return tuple(agent_node(v) for v in self.agents_of_objective(name))
        raise InvalidInstanceError(f"unknown node kind {kind!r}")

    def is_connected(self) -> bool:
        """True if the communication graph is connected (or empty)."""
        if self.num_nodes == 0:
            return True
        return nx.is_connected(self.communication_graph())

    def connected_components(self) -> List["MaxMinInstance"]:
        """Split the instance into one sub-instance per connected component.

        Each component is a max-min LP in its own right; the optimum of the
        whole instance is the minimum of the component optima, and solutions
        of components concatenate to a solution of the whole instance.
        """
        if self.num_nodes == 0:
            return []
        g = self.communication_graph()
        components = []
        for idx, nodes in enumerate(nx.connected_components(g)):
            agents = [n for t, n in nodes if t is NodeType.AGENT]
            constraints = [n for t, n in nodes if t is NodeType.CONSTRAINT]
            objectives = [n for t, n in nodes if t is NodeType.OBJECTIVE]
            components.append(self.sub_instance(agents, constraints, objectives, name=f"{self.name}#cc{idx}"))
        return components

    def sub_instance(
        self,
        agents: Sequence[NodeId],
        constraints: Sequence[NodeId],
        objectives: Sequence[NodeId],
        name: Optional[str] = None,
    ) -> "MaxMinInstance":
        """Restrict the instance to the given node subsets.

        Coefficients are kept only when both endpoints survive.  The canonical
        order of the parent instance is preserved.
        """
        agent_sel = set(agents)
        constraint_sel = set(constraints)
        objective_sel = set(objectives)
        a = {
            (i, v): coeff
            for (i, v), coeff in self._a.items()
            if i in constraint_sel and v in agent_sel
        }
        c = {
            (k, v): coeff
            for (k, v), coeff in self._c.items()
            if k in objective_sel and v in agent_sel
        }
        return MaxMinInstance(
            agents=[v for v in self._agents if v in agent_sel],
            constraints=[i for i in self._constraints if i in constraint_sel],
            objectives=[k for k in self._objectives if k in objective_sel],
            a=a,
            c=c,
            name=name or f"{self.name}#sub",
        )

    # ------------------------------------------------------------------
    # Equality / hashing / representation
    # ------------------------------------------------------------------
    def structurally_equal(self, other: "MaxMinInstance", tol: float = 0.0) -> bool:
        """True if both instances have identical nodes, edges and coefficients.

        With ``tol > 0`` coefficients may differ by at most ``tol``.
        """
        if (
            set(self._agents) != set(other._agents)
            or set(self._constraints) != set(other._constraints)
            or set(self._objectives) != set(other._objectives)
            or set(self._a) != set(other._a)
            or set(self._c) != set(other._c)
        ):
            return False
        for key, val in self._a.items():
            if abs(val - other._a[key]) > tol:
                return False
        for key, val in self._c.items():
            if abs(val - other._c[key]) > tol:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaxMinInstance):
            return NotImplemented
        return self.structurally_equal(other, tol=0.0)

    def __hash__(self) -> int:
        return hash(
            (
                self._agents,
                self._constraints,
                self._objectives,
                tuple(sorted(self._a.items(), key=repr)),
                tuple(sorted(self._c.items(), key=repr)),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MaxMinInstance(name={self.name!r}, |V|={self.num_agents}, "
            f"|I|={self.num_constraints}, |K|={self.num_objectives}, "
            f"deltaI={self.delta_I}, deltaK={self.delta_K})"
        )

    # ------------------------------------------------------------------
    # Serialization helpers (thin; full logic lives in repro.io)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-compatible dictionary (node ids are converted to strings
        only by :mod:`repro.io.serialization`; here they are passed through).
        """
        return {
            "name": self.name,
            "agents": list(self._agents),
            "constraints": list(self._constraints),
            "objectives": list(self._objectives),
            "a": [[i, v, coeff] for (i, v), coeff in sorted(self._a.items(), key=repr)],
            "c": [[k, v, coeff] for (k, v), coeff in sorted(self._c.items(), key=repr)],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MaxMinInstance":
        """Inverse of :meth:`to_dict`."""
        a = {(i, v): float(coeff) for i, v, coeff in data["a"]}  # type: ignore[index]
        c = {(k, v): float(coeff) for k, v, coeff in data["c"]}  # type: ignore[index]
        return cls(
            agents=list(data["agents"]),  # type: ignore[arg-type]
            constraints=list(data["constraints"]),  # type: ignore[arg-type]
            objectives=list(data["objectives"]),  # type: ignore[arg-type]
            a=a,
            c=c,
            name=str(data.get("name", "max-min-lp")),
        )

    @classmethod
    def from_arrays(
        cls,
        agents: Sequence[NodeId],
        constraints: Sequence[NodeId],
        objectives: Sequence[NodeId],
        con_indptr,
        con_indices,
        con_coeff,
        obj_indptr,
        obj_indices,
        obj_coeff,
        name: str = "max-min-lp",
        compile: bool = True,
    ) -> "MaxMinInstance":
        """Trusted constructor from pre-validated CSR arrays.

        ``con_*`` holds the per-agent constraint edges (``con_indices`` are
        positions into ``constraints``, rows in canonical adjacency order),
        ``obj_*`` the per-agent objective edges.  The caller vouches that the
        arrays describe a valid instance — node identifiers unique,
        coefficients positive and finite, no duplicate edges, rows sorted by
        member canonical position — so the O(E) re-validation and adjacency
        sorting of ``__init__`` is skipped (it dominates ``preprocess()`` and
        delta application at n ≈ 1e4).  With ``compile=True`` the matching
        :class:`~repro.core.compiled.CompiledInstance` is attached to the
        compiled-view cache directly from the same arrays, so the Python-loop
        lowering is skipped as well.  The result is indistinguishable (equal
        dicts, digest, hash, compiled arrays) from declaring the instance via
        ``__init__``.
        """
        self = cls.__new__(cls)
        self._agents = tuple(agents)
        self._constraints = tuple(constraints)
        self._objectives = tuple(objectives)
        self.name = name
        self._graph_cache = None
        self._compiled_cache = None
        self._transform_cache = None
        self._preprocess_cache = None
        self._agent_set = frozenset(self._agents)
        self._constraint_set = frozenset(self._constraints)
        self._objective_set = frozenset(self._objectives)
        self._a, self._constraints_of_agent, self._agents_of_constraint = _adjacency_from_csr(
            self._agents, self._constraints, con_indptr, con_indices, con_coeff
        )
        self._c, self._objectives_of_agent, self._agents_of_objective = _adjacency_from_csr(
            self._agents, self._objectives, obj_indptr, obj_indices, obj_coeff
        )
        if compile:
            from .. import obs
            from .compiled import CompiledInstance

            obs.count("compile.from_arrays")
            self._compiled_cache = CompiledInstance.from_arrays(
                self, con_indptr, con_indices, con_coeff, obj_indptr, obj_indices, obj_coeff
            )
        return self
