"""Solution objects: assignments of values to agents plus evaluation helpers.

A solution of a max-min LP is a non-negative vector ``x`` indexed by agents.
Its *utility* is ``ω(x) = min_k Σ_{v ∈ V_k} c_kv x_v``; it is *feasible* when
``Σ_{v ∈ V_i} a_iv x_v ≤ 1`` for every constraint ``i`` (up to a tolerance,
since the algorithms work in floating point).

Evaluation backends
-------------------
The whole-solution evaluators (:meth:`Solution.utility`,
:meth:`Solution.objective_values`, :meth:`Solution.check_feasibility`,
:meth:`Solution.bottleneck_objectives`) take ``backend="array"`` (default) or
``backend="dict"``.  The array backend caches a dense value vector aligned
with the instance's canonical agent order (free when the solution was built
by :meth:`Solution.from_agent_array`, one gather otherwise) and evaluates
every constraint / objective in one CSR pass over the compiled instance
(:meth:`~repro.core.compiled.CompiledInstance.constraint_loads` /
``objective_values``).  Loads and utilities are *bitwise* identical to the
dict backend — the CSR accumulation adds in the same canonical adjacency
order as the reference loops — which the equivalence tests in
``tests/test_record_path.py`` pin.  The load and objective vectors are cached
on the solution, so e.g. ``utility()`` followed by ``bottleneck_objectives()``
or repeated feasibility checks evaluate each edge exactly once.  The dict
backend is the readable per-node oracle.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from .. import obs
from .._types import DEFAULT_FEASIBILITY_TOL, NodeId, ValueMap
from ..exceptions import InfeasibleSolutionError, InvalidInstanceError
from .instance import MaxMinInstance


def _require_backend(backend: str) -> None:
    if backend not in ("array", "dict"):
        raise ValueError(f"unknown evaluation backend {backend!r} (expected 'array' or 'dict')")

__all__ = ["Solution", "FeasibilityReport"]


class FeasibilityReport:
    """Detailed result of a feasibility check.

    Attributes
    ----------
    feasible:
        True if no constraint is violated beyond tolerance and no value is
        negative beyond tolerance.
    max_violation:
        Largest amount by which a constraint exceeds its right-hand side 1
        (0.0 if none).
    violated_constraints:
        Tuple of ``(constraint_id, load)`` pairs for violated constraints.
    negative_agents:
        Tuple of ``(agent_id, value)`` pairs with values below ``-tol``.
    tol:
        Tolerance that was used.
    """

    __slots__ = ("feasible", "max_violation", "violated_constraints", "negative_agents", "tol")

    def __init__(
        self,
        feasible: bool,
        max_violation: float,
        violated_constraints: Tuple[Tuple[NodeId, float], ...],
        negative_agents: Tuple[Tuple[NodeId, float], ...],
        tol: float,
    ) -> None:
        self.feasible = feasible
        self.max_violation = max_violation
        self.violated_constraints = violated_constraints
        self.negative_agents = negative_agents
        self.tol = tol

    def __bool__(self) -> bool:
        return self.feasible

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeasibilityReport(feasible={self.feasible}, "
            f"max_violation={self.max_violation:.3e}, "
            f"violations={len(self.violated_constraints)})"
        )


class Solution:
    """A (candidate) solution of a max-min LP instance.

    Parameters
    ----------
    instance:
        The instance the solution refers to.
    values:
        Mapping from agent id to value.  Missing agents default to 0.0;
        unknown agents raise :class:`InvalidInstanceError`.
    label:
        Optional provenance label (e.g. ``"local-R3"``, ``"lp-optimum"``).
    require_complete:
        If true, ``values`` must cover *every* agent of the instance;
        missing agents raise :class:`InvalidInstanceError` instead of being
        backfilled with 0.0.  Algorithms that are supposed to produce a
        value for each agent (e.g. the distributed protocol solvers) pass
        this so a silently broken run cannot masquerade as a feasible
        all-zero solution.

    A solution produced by a faulty distributed run additionally carries a
    :class:`~repro.distributed.resilient.DegradationCertificate` on
    ``degradation`` (``None`` on every clean path).
    """

    __slots__ = ("instance", "_values", "label", "_dense", "_loads", "_objvals", "degradation")

    def __init__(
        self,
        instance: MaxMinInstance,
        values: Mapping[NodeId, float],
        label: str = "solution",
        *,
        require_complete: bool = False,
    ) -> None:
        self.instance = instance
        self.label = label
        self._dense = None
        self._loads = None
        self._objvals = None
        self.degradation = None
        vals: Dict[NodeId, float] = {v: float(x) for v, x in values.items()}
        if vals and not instance.agent_set.issuperset(vals):
            unknown = next(v for v in vals if not instance.has_agent(v))
            raise InvalidInstanceError(f"solution refers to unknown agent {unknown!r}")
        if len(vals) < instance.num_agents:
            if require_complete:
                missing = [v for v in instance.agents if v not in vals]
                raise InvalidInstanceError(
                    f"solution {label!r} is missing values for {len(missing)} agent(s) "
                    f"(first few: {missing[:5]!r}) and require_complete=True"
                )
            for v in instance.agents:
                vals.setdefault(v, 0.0)
        self._values = vals

    @classmethod
    def from_agent_array(
        cls, instance: MaxMinInstance, values: Iterable[float], label: str = "solution"
    ) -> "Solution":
        """Trusted fast path for compiled backends.

        ``values`` must hold one value per agent in the instance's canonical
        agent order (e.g. an output vector of the CSR kernels).  Skips the
        per-item membership validation of the regular constructor —
        alignment is guaranteed by construction on the compiled paths — but
        still verifies the length.  The vector is kept as the solution's
        dense evaluation cache, so array-backend evaluation starts without a
        gather.
        """
        if not isinstance(values, np.ndarray):
            values = list(values)
        dense = np.array(values, dtype=np.float64)
        if dense.ndim != 1 or len(dense) != instance.num_agents:
            raise InvalidInstanceError(
                f"solution {label!r} got {len(dense)} values for "
                f"{instance.num_agents} agents"
            )
        solution = cls.__new__(cls)
        solution.instance = instance
        solution.label = label
        solution._values = dict(zip(instance.agents, dense.tolist()))
        solution._dense = dense
        solution._loads = None
        solution._objvals = None
        solution.degradation = None
        return solution

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def __getitem__(self, v: NodeId) -> float:
        return self._values[v]

    def get(self, v: NodeId, default: float = 0.0) -> float:
        return self._values.get(v, default)

    def as_dict(self) -> ValueMap:
        """A copy of the value mapping."""
        return dict(self._values)

    def __iter__(self):
        return iter(self.instance.agents)

    def __len__(self) -> int:
        return len(self._values)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def value_array(self) -> np.ndarray:
        """Dense value vector in the instance's canonical agent order.

        Built once (one gather over the value dict — or inherited for free
        from :meth:`from_agent_array`) and cached; treat it as read-only.
        """
        if self._dense is None:
            vals = self._values
            self._dense = np.asarray(
                [vals[v] for v in self.instance.agents], dtype=np.float64
            )
        return self._dense

    def constraint_loads(self) -> np.ndarray:
        """All constraint loads in canonical constraint order (cached CSR pass)."""
        if self._loads is None:
            obs.count("solution.load_passes")
            self._loads = self.instance.compiled().constraint_loads(self.value_array())
        return self._loads

    def objective_value_array(self) -> np.ndarray:
        """All objective values in canonical objective order (cached CSR pass)."""
        if self._objvals is None:
            obs.count("solution.objective_passes")
            self._objvals = self.instance.compiled().objective_values(self.value_array())
        return self._objvals

    def constraint_load(self, i: NodeId) -> float:
        """``Σ_{v ∈ V_i} a_iv x_v`` for constraint ``i``."""
        inst = self.instance
        return sum(inst.a(i, v) * self._values[v] for v in inst.agents_of_constraint(i))

    def constraint_slack(self, i: NodeId) -> float:
        """``1 − load(i)`` (negative when violated)."""
        return 1.0 - self.constraint_load(i)

    def objective_value(self, k: NodeId) -> float:
        """``ω_k(x) = Σ_{v ∈ V_k} c_kv x_v`` for objective ``k``."""
        inst = self.instance
        return sum(inst.c(k, v) * self._values[v] for v in inst.agents_of_objective(k))

    def objective_values(self, *, backend: str = "array") -> Dict[NodeId, float]:
        """All objective values keyed by objective id."""
        _require_backend(backend)
        if backend == "array":
            return dict(zip(self.instance.objectives, self.objective_value_array().tolist()))
        return {k: self.objective_value(k) for k in self.instance.objectives}

    def utility(self, *, backend: str = "array") -> float:
        """``ω(x) = min_k ω_k(x)``; ``inf`` when the instance has no objective."""
        _require_backend(backend)
        if not self.instance.objectives:
            return math.inf
        if backend == "array":
            return float(self.objective_value_array().min())
        return min(self.objective_value(k) for k in self.instance.objectives)

    def bottleneck_objectives(
        self, tol: float = 1e-9, *, backend: str = "array"
    ) -> Tuple[NodeId, ...]:
        """The objectives attaining the minimum utility (within ``tol``).

        Shares the cached objective-value pass with :meth:`utility` on the
        array backend, so calling both evaluates each objective edge once.
        """
        _require_backend(backend)
        if not self.instance.objectives:
            return ()
        if backend == "array":
            vals_arr = self.objective_value_array()
            best_val = vals_arr.min()
            hits = np.flatnonzero(vals_arr <= best_val + tol)
            objectives = self.instance.objectives
            return tuple(objectives[int(j)] for j in hits)
        vals = self.objective_values(backend="dict")
        best = min(vals.values())
        return tuple(k for k, val in vals.items() if val <= best + tol)

    def check_feasibility(
        self, tol: float = DEFAULT_FEASIBILITY_TOL, *, backend: str = "array"
    ) -> FeasibilityReport:
        """Check non-negativity and every packing constraint.

        The array backend reuses the cached load vector, so repeated checks
        (or a check following :meth:`constraint_loads`) cost one CSR pass in
        total.  Violated constraints are reported in canonical constraint
        order on both backends; negative agents come out in canonical agent
        order on the array backend (value-dict insertion order on the dict
        backend).
        """
        _require_backend(backend)
        if backend == "array":
            loads = self.constraint_loads()
            dense = self.value_array()
            viol_idx = np.flatnonzero(loads > 1.0 + tol)
            constraints = self.instance.constraints
            violated = tuple(
                (constraints[int(j)], float(loads[j])) for j in viol_idx
            )
            max_violation = float((loads[viol_idx] - 1.0).max()) if len(viol_idx) else 0.0
            neg_idx = np.flatnonzero(dense < -tol)
            agents = self.instance.agents
            negative = tuple((agents[int(j)], float(dense[j])) for j in neg_idx)
        else:
            violated_list = []
            max_violation = 0.0
            for i in self.instance.constraints:
                load = self.constraint_load(i)
                if load > 1.0 + tol:
                    violated_list.append((i, load))
                    max_violation = max(max_violation, load - 1.0)
            violated = tuple(violated_list)
            negative = tuple((v, x) for v, x in self._values.items() if x < -tol)
        feasible = not violated and not negative
        return FeasibilityReport(
            feasible=feasible,
            max_violation=max_violation,
            violated_constraints=violated,
            negative_agents=negative,
            tol=tol,
        )

    def is_feasible(self, tol: float = DEFAULT_FEASIBILITY_TOL, *, backend: str = "array") -> bool:
        """Shorthand for ``check_feasibility(tol).feasible``."""
        return self.check_feasibility(tol, backend=backend).feasible

    def require_feasible(self, tol: float = DEFAULT_FEASIBILITY_TOL) -> "Solution":
        """Raise :class:`InfeasibleSolutionError` unless feasible; returns self."""
        report = self.check_feasibility(tol)
        if not report.feasible:
            raise InfeasibleSolutionError(
                f"solution {self.label!r} infeasible: max violation {report.max_violation:.3e}, "
                f"{len(report.violated_constraints)} constraint(s) violated, "
                f"{len(report.negative_agents)} negative value(s)"
            )
        return self

    # ------------------------------------------------------------------
    # Arithmetic helpers (used by the shifting / averaging analysis)
    # ------------------------------------------------------------------
    def scaled(self, factor: float, label: Optional[str] = None) -> "Solution":
        """Return ``factor · x`` as a new solution."""
        return Solution(
            self.instance,
            {v: factor * x for v, x in self._values.items()},
            label=label or f"{self.label}*{factor:g}",
        )

    @staticmethod
    def average(solutions: Iterable["Solution"], label: str = "average") -> "Solution":
        """Pointwise average of several solutions over the same instance.

        Feasibility is preserved because the feasible region is convex.
        """
        sols = list(solutions)
        if not sols:
            raise InvalidInstanceError("cannot average an empty collection of solutions")
        inst = sols[0].instance
        for s in sols[1:]:
            if s.instance is not inst and s.instance != inst:
                raise InvalidInstanceError("cannot average solutions of different instances")
        n = len(sols)
        values = {
            v: sum(s[v] for s in sols) / n for v in inst.agents
        }
        return Solution(inst, values, label=label)

    def clipped_nonnegative(self, label: Optional[str] = None) -> "Solution":
        """Return a copy with tiny negative values (from round-off) set to 0."""
        return Solution(
            self.instance,
            {v: (x if x > 0.0 else 0.0) for v, x in self._values.items()},
            label=label or self.label,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        try:
            util = self.utility()
        except Exception:  # noqa: BLE001 - repr must not raise
            util = float("nan")
        return f"Solution(label={self.label!r}, utility={util:.6g}, n={len(self._values)})"
