"""Solution objects: assignments of values to agents plus evaluation helpers.

A solution of a max-min LP is a non-negative vector ``x`` indexed by agents.
Its *utility* is ``ω(x) = min_k Σ_{v ∈ V_k} c_kv x_v``; it is *feasible* when
``Σ_{v ∈ V_i} a_iv x_v ≤ 1`` for every constraint ``i`` (up to a tolerance,
since the algorithms work in floating point).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Tuple

from .._types import DEFAULT_FEASIBILITY_TOL, NodeId, ValueMap
from ..exceptions import InfeasibleSolutionError, InvalidInstanceError
from .instance import MaxMinInstance

__all__ = ["Solution", "FeasibilityReport"]


class FeasibilityReport:
    """Detailed result of a feasibility check.

    Attributes
    ----------
    feasible:
        True if no constraint is violated beyond tolerance and no value is
        negative beyond tolerance.
    max_violation:
        Largest amount by which a constraint exceeds its right-hand side 1
        (0.0 if none).
    violated_constraints:
        Tuple of ``(constraint_id, load)`` pairs for violated constraints.
    negative_agents:
        Tuple of ``(agent_id, value)`` pairs with values below ``-tol``.
    tol:
        Tolerance that was used.
    """

    __slots__ = ("feasible", "max_violation", "violated_constraints", "negative_agents", "tol")

    def __init__(
        self,
        feasible: bool,
        max_violation: float,
        violated_constraints: Tuple[Tuple[NodeId, float], ...],
        negative_agents: Tuple[Tuple[NodeId, float], ...],
        tol: float,
    ) -> None:
        self.feasible = feasible
        self.max_violation = max_violation
        self.violated_constraints = violated_constraints
        self.negative_agents = negative_agents
        self.tol = tol

    def __bool__(self) -> bool:
        return self.feasible

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeasibilityReport(feasible={self.feasible}, "
            f"max_violation={self.max_violation:.3e}, "
            f"violations={len(self.violated_constraints)})"
        )


class Solution:
    """A (candidate) solution of a max-min LP instance.

    Parameters
    ----------
    instance:
        The instance the solution refers to.
    values:
        Mapping from agent id to value.  Missing agents default to 0.0;
        unknown agents raise :class:`InvalidInstanceError`.
    label:
        Optional provenance label (e.g. ``"local-R3"``, ``"lp-optimum"``).
    require_complete:
        If true, ``values`` must cover *every* agent of the instance;
        missing agents raise :class:`InvalidInstanceError` instead of being
        backfilled with 0.0.  Algorithms that are supposed to produce a
        value for each agent (e.g. the distributed protocol solvers) pass
        this so a silently broken run cannot masquerade as a feasible
        all-zero solution.
    """

    __slots__ = ("instance", "_values", "label")

    def __init__(
        self,
        instance: MaxMinInstance,
        values: Mapping[NodeId, float],
        label: str = "solution",
        *,
        require_complete: bool = False,
    ) -> None:
        self.instance = instance
        self.label = label
        vals: Dict[NodeId, float] = {v: float(x) for v, x in values.items()}
        if vals and not instance.agent_set.issuperset(vals):
            unknown = next(v for v in vals if not instance.has_agent(v))
            raise InvalidInstanceError(f"solution refers to unknown agent {unknown!r}")
        if len(vals) < instance.num_agents:
            if require_complete:
                missing = [v for v in instance.agents if v not in vals]
                raise InvalidInstanceError(
                    f"solution {label!r} is missing values for {len(missing)} agent(s) "
                    f"(first few: {missing[:5]!r}) and require_complete=True"
                )
            for v in instance.agents:
                vals.setdefault(v, 0.0)
        self._values = vals

    @classmethod
    def from_agent_array(
        cls, instance: MaxMinInstance, values: Iterable[float], label: str = "solution"
    ) -> "Solution":
        """Trusted fast path for compiled backends.

        ``values`` must hold one value per agent in the instance's canonical
        agent order (e.g. an output vector of the CSR kernels, via
        ``.tolist()``).  Skips the per-item membership validation of the
        regular constructor — alignment is guaranteed by construction on the
        compiled paths — but still verifies the length.
        """
        floats = [float(x) for x in values]
        if len(floats) != instance.num_agents:
            raise InvalidInstanceError(
                f"solution {label!r} got {len(floats)} values for "
                f"{instance.num_agents} agents"
            )
        solution = cls.__new__(cls)
        solution.instance = instance
        solution.label = label
        solution._values = dict(zip(instance.agents, floats))
        return solution

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def __getitem__(self, v: NodeId) -> float:
        return self._values[v]

    def get(self, v: NodeId, default: float = 0.0) -> float:
        return self._values.get(v, default)

    def as_dict(self) -> ValueMap:
        """A copy of the value mapping."""
        return dict(self._values)

    def __iter__(self):
        return iter(self.instance.agents)

    def __len__(self) -> int:
        return len(self._values)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def constraint_load(self, i: NodeId) -> float:
        """``Σ_{v ∈ V_i} a_iv x_v`` for constraint ``i``."""
        inst = self.instance
        return sum(inst.a(i, v) * self._values[v] for v in inst.agents_of_constraint(i))

    def constraint_slack(self, i: NodeId) -> float:
        """``1 − load(i)`` (negative when violated)."""
        return 1.0 - self.constraint_load(i)

    def objective_value(self, k: NodeId) -> float:
        """``ω_k(x) = Σ_{v ∈ V_k} c_kv x_v`` for objective ``k``."""
        inst = self.instance
        return sum(inst.c(k, v) * self._values[v] for v in inst.agents_of_objective(k))

    def objective_values(self) -> Dict[NodeId, float]:
        """All objective values keyed by objective id."""
        return {k: self.objective_value(k) for k in self.instance.objectives}

    def utility(self) -> float:
        """``ω(x) = min_k ω_k(x)``; ``inf`` when the instance has no objective."""
        if not self.instance.objectives:
            return math.inf
        return min(self.objective_value(k) for k in self.instance.objectives)

    def bottleneck_objectives(self, tol: float = 1e-9) -> Tuple[NodeId, ...]:
        """The objectives attaining the minimum utility (within ``tol``)."""
        if not self.instance.objectives:
            return ()
        vals = self.objective_values()
        best = min(vals.values())
        return tuple(k for k, val in vals.items() if val <= best + tol)

    def check_feasibility(self, tol: float = DEFAULT_FEASIBILITY_TOL) -> FeasibilityReport:
        """Check non-negativity and every packing constraint."""
        violated = []
        max_violation = 0.0
        for i in self.instance.constraints:
            load = self.constraint_load(i)
            if load > 1.0 + tol:
                violated.append((i, load))
                max_violation = max(max_violation, load - 1.0)
        negative = tuple(
            (v, x) for v, x in self._values.items() if x < -tol
        )
        feasible = not violated and not negative
        return FeasibilityReport(
            feasible=feasible,
            max_violation=max_violation,
            violated_constraints=tuple(violated),
            negative_agents=negative,
            tol=tol,
        )

    def is_feasible(self, tol: float = DEFAULT_FEASIBILITY_TOL) -> bool:
        """Shorthand for ``check_feasibility(tol).feasible``."""
        return self.check_feasibility(tol).feasible

    def require_feasible(self, tol: float = DEFAULT_FEASIBILITY_TOL) -> "Solution":
        """Raise :class:`InfeasibleSolutionError` unless feasible; returns self."""
        report = self.check_feasibility(tol)
        if not report.feasible:
            raise InfeasibleSolutionError(
                f"solution {self.label!r} infeasible: max violation {report.max_violation:.3e}, "
                f"{len(report.violated_constraints)} constraint(s) violated, "
                f"{len(report.negative_agents)} negative value(s)"
            )
        return self

    # ------------------------------------------------------------------
    # Arithmetic helpers (used by the shifting / averaging analysis)
    # ------------------------------------------------------------------
    def scaled(self, factor: float, label: Optional[str] = None) -> "Solution":
        """Return ``factor · x`` as a new solution."""
        return Solution(
            self.instance,
            {v: factor * x for v, x in self._values.items()},
            label=label or f"{self.label}*{factor:g}",
        )

    @staticmethod
    def average(solutions: Iterable["Solution"], label: str = "average") -> "Solution":
        """Pointwise average of several solutions over the same instance.

        Feasibility is preserved because the feasible region is convex.
        """
        sols = list(solutions)
        if not sols:
            raise InvalidInstanceError("cannot average an empty collection of solutions")
        inst = sols[0].instance
        for s in sols[1:]:
            if s.instance is not inst and s.instance != inst:
                raise InvalidInstanceError("cannot average solutions of different instances")
        n = len(sols)
        values = {
            v: sum(s[v] for s in sols) / n for v in inst.agents
        }
        return Solution(inst, values, label=label)

    def clipped_nonnegative(self, label: Optional[str] = None) -> "Solution":
        """Return a copy with tiny negative values (from round-off) set to 0."""
        return Solution(
            self.instance,
            {v: (x if x > 0.0 else 0.0) for v, x in self._values.items()},
            label=label or self.label,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        try:
            util = self.utility()
        except Exception:  # noqa: BLE001 - repr must not raise
            util = float("nan")
        return f"Solution(label={self.label!r}, utility={util:.6g}, n={len(self._values)})"
