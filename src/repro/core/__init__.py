"""Core data model and exact solvers for max-min linear programs.

This subpackage contains everything that is *not* specific to the local
algorithm: the instance model, a builder, solution objects, validation,
degenerate-case preprocessing and an exact LP solver used as ground truth.
"""

from .builder import InstanceBuilder
from .compiled import CompiledInstance
from .instance import DegreeStatistics, MaxMinInstance
from .lp import LPResult, best_response_value, optimum_value, solve_maxmin_lp
from .preprocess import PreprocessResult, preprocess
from .solution import FeasibilityReport, Solution
from .validation import (
    check_degree_bounds,
    require_nondegenerate,
    require_special_form,
    validate_instance,
    validation_issues,
)

__all__ = [
    "InstanceBuilder",
    "CompiledInstance",
    "MaxMinInstance",
    "DegreeStatistics",
    "Solution",
    "FeasibilityReport",
    "LPResult",
    "solve_maxmin_lp",
    "optimum_value",
    "best_response_value",
    "PreprocessResult",
    "preprocess",
    "validate_instance",
    "validation_issues",
    "require_nondegenerate",
    "require_special_form",
    "check_degree_bounds",
]
