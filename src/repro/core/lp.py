"""Exact (global, centralized) solution of max-min LPs via :mod:`scipy`.

The max-min LP

.. math::

    \\max \\omega \\quad\\text{s.t.}\\quad A x \\le 1,\\; C x \\ge \\omega 1,\\; x \\ge 0

is an ordinary linear program in the variables ``(x, ω)``.  This module
reduces it to the standard form expected by :func:`scipy.optimize.linprog`
(HiGHS backend) using sparse matrices, and wraps the result in library
objects.

The constraint matrix is assembled straight from the instance's compiled CSR
view (:meth:`MaxMinInstance.compiled`): the COO triplets of ``A_ub`` are the
concatenated per-constraint and per-objective adjacency arrays with an
``ω`` column appended — no per-edge Python loop.  With
``split_components=True`` a disconnected instance is solved in **one**
block-diagonal ``linprog`` call: each connected component gets its own
``ω_j`` column and the objective maximises ``Σ_j ω_j``, which — because the
blocks share no variables or rows — optimises every component independently
and recovers each component's individual optimum from a single solve.

The exact optimum serves two roles in the reproduction:

* it is the denominator of every measured approximation ratio (the paper's
  guarantees are *relative to the global optimum*, which a local algorithm
  cannot compute);
* Lemma 3 states that the tree recursion of §5.2 computes the optimum of the
  finite tree ``A_u`` — the tests cross-check the recursion against this
  solver on those trees.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph
from scipy.optimize import linprog

from .. import obs
from .._types import NodeId
from ..exceptions import InvalidInstanceError, SolverError
from .compiled import _segment_gather
from .instance import MaxMinInstance
from .preprocess import preprocess
from .solution import Solution

__all__ = ["LPResult", "solve_maxmin_lp", "optimum_value", "best_response_value"]


class LPResult:
    """Result of an exact max-min LP solve.

    Attributes
    ----------
    optimum:
        The optimal utility ``ω*`` (``0.0`` for instances whose optimum is
        forced to zero, ``math.inf`` for unbounded instances).
    solution:
        An optimal :class:`Solution` (for unbounded instances, a finite
        witness achieving at least the requested ``unbounded_target``).
    status:
        ``"optimal"``, ``"zero"`` or ``"unbounded"``.
    """

    __slots__ = ("optimum", "solution", "status")

    def __init__(self, optimum: float, solution: Solution, status: str) -> None:
        self.optimum = optimum
        self.solution = solution
        self.status = status

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LPResult(optimum={self.optimum:.6g}, status={self.status!r})"


def _assembly_triplets(
    instance: MaxMinInstance,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets of the packing and covering rows (without the ω column).

    Row ``r < |I|`` is packing constraint ``r`` (``Σ a_iv x_v ≤ 1``); row
    ``|I| + r`` is covering objective ``r`` (the ``− Σ c_kv x_v`` half of
    ``ω − Σ c_kv x_v ≤ 0``).  Taken directly from the compiled CSR arrays —
    identical entries, in identical order, to the historical per-edge loop.
    """
    comp = instance.compiled()
    n_con = comp.num_constraints
    rows = np.concatenate(
        [
            np.repeat(np.arange(n_con, dtype=np.int64), comp.constraint_degrees),
            n_con
            + np.repeat(
                np.arange(comp.num_objectives, dtype=np.int64), comp.objective_degrees
            ),
        ]
    )
    cols = np.concatenate([comp.cagents_indices, comp.oagents_indices])
    data = np.concatenate([comp.cagents_coeff, -comp.oagents_coeff])
    return rows, cols, data


def _solve_clean(instance: MaxMinInstance, method: str) -> LPResult:
    """Solve a non-degenerate instance (every node has positive degree)."""
    n = instance.num_agents
    n_con = instance.num_constraints
    n_obj = instance.num_objectives

    if n == 0 or n_obj == 0:
        # No variables or no objectives: handled by callers; be defensive.
        zero = Solution(instance, {v: 0.0 for v in instance.agents}, label="lp-zero")
        return LPResult(math.inf if n_obj == 0 else 0.0, zero, "unbounded" if n_obj == 0 else "zero")

    with obs.span("lp.assemble", rows=n_con + n_obj, cols=n + 1):
        rows, cols, data = _assembly_triplets(instance)
        # The ω column: coefficient +1 in every covering row.
        rows = np.concatenate([rows, n_con + np.arange(n_obj, dtype=np.int64)])
        cols = np.concatenate([cols, np.full(n_obj, n, dtype=np.int64)])
        data = np.concatenate([data, np.ones(n_obj)])

        a_ub = sparse.csr_matrix((data, (rows, cols)), shape=(n_con + n_obj, n + 1))
        b_ub = np.concatenate([np.ones(n_con), np.zeros(n_obj)])

        cost = np.zeros(n + 1)
        cost[n] = -1.0  # maximise ω

        bounds = [(0.0, None)] * (n + 1)

    with obs.span("lp.linprog", method=method):
        result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method=method)
    if not result.success:
        raise SolverError(
            f"linprog failed on instance {instance.name!r}: status={result.status}, "
            f"message={result.message!r}"
        )

    omega = float(result.x[n])
    solution = Solution.from_agent_array(
        instance, result.x[:n], label="lp-optimum"
    ).clipped_nonnegative()
    return LPResult(omega, solution, "optimal")


def _component_labels(instance: MaxMinInstance) -> Tuple[int, np.ndarray]:
    """Connected components of the communication graph, CSR-natively.

    Returns ``(count, objective_labels)`` computed by
    :func:`scipy.sparse.csgraph.connected_components` over the compiled
    bipartite adjacency — no networkx traversal, no per-component
    sub-instance construction.  Only the objective labels matter to the
    block-diagonal solve (they pick each covering row's ``ω_j`` column; the
    agent columns need no labelling because the blocks share no rows).
    """
    comp = instance.compiled()
    n = comp.num_agents
    n_con = comp.num_constraints
    n_obj = comp.num_objectives
    total = n + n_con + n_obj
    # Node numbering: agents, then constraints, then objectives.
    heads = np.concatenate(
        [
            n + np.repeat(np.arange(n_con, dtype=np.int64), comp.constraint_degrees),
            n + n_con + np.repeat(np.arange(n_obj, dtype=np.int64), comp.objective_degrees),
        ]
    )
    tails = np.concatenate([comp.cagents_indices, comp.oagents_indices])
    graph = sparse.coo_matrix(
        (np.ones(len(heads)), (heads, tails)), shape=(total, total)
    ).tocsr()
    count, labels = csgraph.connected_components(graph, directed=False)
    return count, labels[n + n_con :]


def _solve_components(
    instance: MaxMinInstance, method: str, obj_label: np.ndarray, n_comp: int
) -> LPResult:
    """Solve every connected component in one block-diagonal ``linprog`` call.

    Component ``j`` gets its own column ``ω_j`` and the objective maximises
    ``Σ_j ω_j``; the blocks share nothing, so the single solve optimises each
    component independently — the per-component optima are read off the
    ``ω_j`` entries and the overall optimum is their minimum, exactly the
    semantics of the historical per-component loop (without its per-component
    sub-instance construction and ``linprog`` calls).  Components without
    objectives are vacuously unbounded: they get no ``ω`` column (their
    agents take 0) and are excluded from the minimum — they never trigger an
    LP solve of their own.
    """
    n = instance.num_agents
    n_con = instance.num_constraints
    n_obj = instance.num_objectives

    # ω columns only for components that actually have objectives.
    has_objective = np.zeros(n_comp, dtype=bool)
    has_objective[obj_label] = True
    omega_col = np.full(n_comp, -1, dtype=np.int64)
    active = np.flatnonzero(has_objective)
    omega_col[active] = n + np.arange(len(active), dtype=np.int64)
    n_omega = len(active)
    if n_omega == 0:  # pragma: no cover - clean instances always have objectives
        zero = Solution(instance, {v: 0.0 for v in instance.agents}, label="lp-zero")
        return LPResult(math.inf, zero, "unbounded")

    with obs.span("lp.assemble", rows=n_con + n_obj, cols=n + n_omega):
        rows, cols, data = _assembly_triplets(instance)
        rows = np.concatenate([rows, n_con + np.arange(n_obj, dtype=np.int64)])
        cols = np.concatenate([cols, omega_col[obj_label]])
        data = np.concatenate([data, np.ones(n_obj)])

        a_ub = sparse.csr_matrix((data, (rows, cols)), shape=(n_con + n_obj, n + n_omega))
        b_ub = np.concatenate([np.ones(n_con), np.zeros(n_obj)])
        cost = np.zeros(n + n_omega)
        cost[n:] = -1.0  # maximise Σ_j ω_j — decomposes per block
        bounds = [(0.0, None)] * (n + n_omega)

    with obs.span("lp.linprog", method=method, components=n_comp):
        result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method=method)
    if not result.success:
        raise SolverError(
            f"linprog failed on instance {instance.name!r} "
            f"({n_comp} components): status={result.status}, message={result.message!r}"
        )

    omegas = result.x[n:]
    optimum = float(omegas.min())
    solution = Solution.from_agent_array(
        instance, result.x[:n], label="lp-optimum"
    ).clipped_nonnegative()
    return LPResult(optimum, solution, "optimal")


def solve_maxmin_lp(
    instance: MaxMinInstance,
    *,
    method: str = "highs",
    split_components: bool = False,
    unbounded_target: float = 1.0,
) -> LPResult:
    """Compute the exact optimum of a max-min LP.

    Degenerate instances are handled according to §4 of the paper (isolated
    objectives force optimum 0; instances whose every objective contains an
    unconstrained agent are unbounded).

    Parameters
    ----------
    instance:
        The instance to solve.
    method:
        ``scipy.optimize.linprog`` method (default HiGHS).
    split_components:
        If true, give each connected component its own ``ω_j`` variable and
        report the per-component optima's minimum.  The components are still
        solved in a *single* block-diagonal ``linprog`` call (the matrix is
        block diagonal anyway); component detection runs on the compiled CSR
        arrays, so no per-component sub-instances are built and empty or
        objective-free components never cost an LP solve.
    unbounded_target:
        For unbounded instances, the returned witness solution achieves at
        least this utility.
    """
    with obs.span("lp.solve", agents=instance.num_agents):
        return _solve_maxmin_lp(
            instance,
            method=method,
            split_components=split_components,
            unbounded_target=unbounded_target,
        )


def _solve_maxmin_lp(
    instance: MaxMinInstance,
    *,
    method: str,
    split_components: bool,
    unbounded_target: float,
) -> LPResult:
    pre = preprocess(instance)

    if pre.optimum_is_zero:
        return LPResult(0.0, pre.zero_solution(label="lp-zero"), "zero")

    if pre.optimum_is_unbounded:
        witness = pre.lift(
            Solution(pre.instance, {v: 0.0 for v in pre.instance.agents}, label="lp-unbounded"),
            target_utility=unbounded_target,
        )
        return LPResult(math.inf, witness, "unbounded")

    clean = pre.instance

    if split_components and clean.num_agents:
        n_comp, obj_label = _component_labels(clean)
        if n_comp > 1:
            result = _solve_components(clean, method, obj_label, n_comp)
            if pre.changed:
                lifted = pre.lift(result.solution, label="lp-optimum")
                return LPResult(result.optimum, lifted, result.status)
            return result

    result = _solve_clean(clean, method)
    if pre.changed:
        lifted = pre.lift(result.solution, label="lp-optimum")
        return LPResult(result.optimum, lifted, "optimal")
    return result


def optimum_value(instance: MaxMinInstance, **kwargs: object) -> float:
    """Convenience wrapper returning only the optimal utility."""
    return solve_maxmin_lp(instance, **kwargs).optimum  # type: ignore[arg-type]


def best_response_value(
    instance: MaxMinInstance,
    fixed: Dict[NodeId, float],
    free_agent: NodeId,
) -> float:
    """Largest feasible value of ``x_v`` for one agent, all others fixed.

    ``min_{i ∈ I_v} (1 − Σ_{w ≠ v} a_iw x_w) / a_iv`` clipped at 0; ``inf``
    when the agent has no constraints (the
    :meth:`CompiledInstance.agent_constraint_min` convention).  Used by the
    safe baseline tests and by the lower-bound experiment.

    Computed over the compiled CSR view, localized to the free agent's
    constraint rows (gathered via ``con_indptr``/``cagents_indptr``): one
    ordered row-load accumulation with the free agent's own entry zeroed.
    ``np.add.at`` accumulates strictly in edge order (unlike ``reduceat``,
    whose unrolled reduction reassociates the sum), so each row load —
    and hence the result — matches the historical per-constraint Python
    loop bit for bit.
    """
    comp = instance.compiled()
    try:
        free_pos = comp.agent_index[free_agent]
    except KeyError:
        raise InvalidInstanceError(f"unknown agent {free_agent!r}") from None
    own = slice(int(comp.con_indptr[free_pos]), int(comp.con_indptr[free_pos + 1]))
    rows = comp.con_indices[own]
    if not len(rows):
        return math.inf

    x = np.zeros(comp.num_agents, dtype=np.float64)
    for v, value in fixed.items():
        pos = comp.agent_index.get(v)
        if pos is not None:
            x[pos] = value
    x[free_pos] = 0.0  # excluded from every row load (w ≠ v)

    # Σ_{w ≠ v} a_iw x_w over just the rows in I_v, in canonical row order.
    degrees = comp.constraint_degrees[rows]
    flat = _segment_gather(comp.cagents_indptr[rows], degrees)
    members = comp.cagents_indices[flat]
    coeffs = comp.cagents_coeff[flat]
    loads = np.zeros(len(rows), dtype=np.float64)
    np.add.at(
        loads, np.repeat(np.arange(len(rows), dtype=np.int64), degrees), coeffs * x[members]
    )
    best = float(np.min((1.0 - loads) / comp.con_coeff[own]))
    return max(best, 0.0)
