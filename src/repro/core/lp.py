"""Exact (global, centralized) solution of max-min LPs via :mod:`scipy`.

The max-min LP

.. math::

    \\max \\omega \\quad\\text{s.t.}\\quad A x \\le 1,\\; C x \\ge \\omega 1,\\; x \\ge 0

is an ordinary linear program in the variables ``(x, ω)``.  This module
reduces it to the standard form expected by :func:`scipy.optimize.linprog`
(HiGHS backend) using sparse matrices, and wraps the result in library
objects.

The exact optimum serves two roles in the reproduction:

* it is the denominator of every measured approximation ratio (the paper's
  guarantees are *relative to the global optimum*, which a local algorithm
  cannot compute);
* Lemma 3 states that the tree recursion of §5.2 computes the optimum of the
  finite tree ``A_u`` — the tests cross-check the recursion against this
  solver on those trees.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .._types import NodeId
from ..exceptions import SolverError
from .instance import MaxMinInstance
from .preprocess import preprocess
from .solution import Solution

__all__ = ["LPResult", "solve_maxmin_lp", "optimum_value", "best_response_value"]


class LPResult:
    """Result of an exact max-min LP solve.

    Attributes
    ----------
    optimum:
        The optimal utility ``ω*`` (``0.0`` for instances whose optimum is
        forced to zero, ``math.inf`` for unbounded instances).
    solution:
        An optimal :class:`Solution` (for unbounded instances, a finite
        witness achieving at least the requested ``unbounded_target``).
    status:
        ``"optimal"``, ``"zero"`` or ``"unbounded"``.
    """

    __slots__ = ("optimum", "solution", "status")

    def __init__(self, optimum: float, solution: Solution, status: str) -> None:
        self.optimum = optimum
        self.solution = solution
        self.status = status

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LPResult(optimum={self.optimum:.6g}, status={self.status!r})"


def _solve_clean(instance: MaxMinInstance, method: str) -> LPResult:
    """Solve a non-degenerate instance (every node has positive degree)."""
    agents = instance.agents
    n = len(agents)
    agent_index: Dict[NodeId, int] = {v: idx for idx, v in enumerate(agents)}

    n_con = instance.num_constraints
    n_obj = instance.num_objectives

    if n == 0 or n_obj == 0:
        # No variables or no objectives: handled by callers; be defensive.
        zero = Solution(instance, {v: 0.0 for v in agents}, label="lp-zero")
        return LPResult(math.inf if n_obj == 0 else 0.0, zero, "unbounded" if n_obj == 0 else "zero")

    rows = []
    cols = []
    data = []

    # Packing rows:  Σ a_iv x_v ≤ 1
    for r, i in enumerate(instance.constraints):
        for v in instance.agents_of_constraint(i):
            rows.append(r)
            cols.append(agent_index[v])
            data.append(instance.a(i, v))

    # Covering rows:  ω − Σ c_kv x_v ≤ 0
    for r, k in enumerate(instance.objectives):
        row = n_con + r
        for v in instance.agents_of_objective(k):
            rows.append(row)
            cols.append(agent_index[v])
            data.append(-instance.c(k, v))
        rows.append(row)
        cols.append(n)  # the ω column
        data.append(1.0)

    a_ub = sparse.csr_matrix(
        (np.asarray(data, dtype=float), (np.asarray(rows), np.asarray(cols))),
        shape=(n_con + n_obj, n + 1),
    )
    b_ub = np.concatenate([np.ones(n_con), np.zeros(n_obj)])

    cost = np.zeros(n + 1)
    cost[n] = -1.0  # maximise ω

    bounds = [(0.0, None)] * (n + 1)

    result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method=method)
    if not result.success:
        raise SolverError(
            f"linprog failed on instance {instance.name!r}: status={result.status}, "
            f"message={result.message!r}"
        )

    omega = float(result.x[n])
    values = {v: float(result.x[agent_index[v]]) for v in agents}
    solution = Solution(instance, values, label="lp-optimum").clipped_nonnegative()
    return LPResult(omega, solution, "optimal")


def solve_maxmin_lp(
    instance: MaxMinInstance,
    *,
    method: str = "highs",
    split_components: bool = False,
    unbounded_target: float = 1.0,
) -> LPResult:
    """Compute the exact optimum of a max-min LP.

    Degenerate instances are handled according to §4 of the paper (isolated
    objectives force optimum 0; instances whose every objective contains an
    unconstrained agent are unbounded).

    Parameters
    ----------
    instance:
        The instance to solve.
    method:
        ``scipy.optimize.linprog`` method (default HiGHS).
    split_components:
        If true, solve each connected component separately and combine; this
        keeps the individual LPs small on large, loosely connected networks.
    unbounded_target:
        For unbounded instances, the returned witness solution achieves at
        least this utility.
    """
    pre = preprocess(instance)

    if pre.optimum_is_zero:
        return LPResult(0.0, pre.zero_solution(label="lp-zero"), "zero")

    if pre.optimum_is_unbounded:
        witness = pre.lift(
            Solution(pre.instance, {v: 0.0 for v in pre.instance.agents}, label="lp-unbounded"),
            target_utility=unbounded_target,
        )
        return LPResult(math.inf, witness, "unbounded")

    clean = pre.instance

    if split_components:
        components = clean.connected_components()
        if len(components) > 1:
            optimum = math.inf
            values: Dict[NodeId, float] = {}
            for comp in components:
                sub = _solve_clean(comp, method)
                optimum = min(optimum, sub.optimum)
                values.update(sub.solution.as_dict())
            combined = Solution(clean, values, label="lp-optimum")
            lifted = pre.lift(combined, label="lp-optimum") if pre.changed else combined
            return LPResult(optimum, lifted, "optimal")

    result = _solve_clean(clean, method)
    if pre.changed:
        lifted = pre.lift(result.solution, label="lp-optimum")
        return LPResult(result.optimum, lifted, "optimal")
    return result


def optimum_value(instance: MaxMinInstance, **kwargs: object) -> float:
    """Convenience wrapper returning only the optimal utility."""
    return solve_maxmin_lp(instance, **kwargs).optimum  # type: ignore[arg-type]


def best_response_value(
    instance: MaxMinInstance,
    fixed: Dict[NodeId, float],
    free_agent: NodeId,
) -> float:
    """Largest feasible value of ``x_v`` for one agent, all others fixed.

    ``min_{i ∈ I_v} (1 − Σ_{w ≠ v} a_iw x_w) / a_iv`` clipped at 0; ``inf``
    when the agent has no constraints.  Used by the safe baseline tests and
    by the lower-bound experiment.
    """
    best = math.inf
    for i in instance.constraints_of_agent(free_agent):
        load = sum(
            instance.a(i, w) * fixed.get(w, 0.0)
            for w in instance.agents_of_constraint(i)
            if w != free_agent
        )
        cap = (1.0 - load) / instance.a(i, free_agent)
        best = min(best, cap)
    return max(best, 0.0)
