"""Validation utilities for max-min LP instances.

:class:`~repro.core.instance.MaxMinInstance` already enforces *structural*
well-formedness (positive coefficients, declared nodes, no duplicates).  The
functions in this module check the *semantic* requirements of the different
algorithms in the library:

* non-degeneracy (paper §4, opening remarks);
* declared degree bounds ``ΔI``, ``ΔK``;
* the special form required by the §5 algorithm;
* connectivity.
"""

from __future__ import annotations

from typing import List, Optional

from ..exceptions import DegenerateInstanceError, InvalidInstanceError, NotSpecialFormError
from .instance import MaxMinInstance

__all__ = [
    "validation_issues",
    "validate_instance",
    "require_nondegenerate",
    "require_special_form",
    "check_degree_bounds",
]


def validation_issues(
    instance: MaxMinInstance,
    *,
    require_connected: bool = False,
    require_nondegenerate: bool = False,
    max_delta_I: Optional[int] = None,
    max_delta_K: Optional[int] = None,
) -> List[str]:
    """Return a list of human-readable validation problems (empty if valid).

    Parameters
    ----------
    instance:
        The instance to check.
    require_connected:
        If true, report a problem when the communication graph is not
        connected.
    require_nondegenerate:
        If true, report degree-0 nodes (isolated constraints / objectives,
        non-contributing or unconstrained agents).
    max_delta_I, max_delta_K:
        Optional declared degree bounds; exceeding them is reported.
    """
    issues: List[str] = []

    if instance.num_agents == 0:
        issues.append("instance has no agents")

    if require_nondegenerate:
        for category, nodes in instance.degeneracies().items():
            issues.append(f"{category}: {sorted(map(repr, nodes))}")

    if max_delta_I is not None and instance.delta_I > max_delta_I:
        issues.append(
            f"constraint degree {instance.delta_I} exceeds declared bound delta_I={max_delta_I}"
        )
    if max_delta_K is not None and instance.delta_K > max_delta_K:
        issues.append(
            f"objective degree {instance.delta_K} exceeds declared bound delta_K={max_delta_K}"
        )

    if require_connected and not instance.is_connected():
        issues.append("communication graph is not connected")

    return issues


def validate_instance(
    instance: MaxMinInstance,
    *,
    require_connected: bool = False,
    require_nondegenerate: bool = False,
    max_delta_I: Optional[int] = None,
    max_delta_K: Optional[int] = None,
) -> None:
    """Raise :class:`InvalidInstanceError` when :func:`validation_issues` is non-empty."""
    issues = validation_issues(
        instance,
        require_connected=require_connected,
        require_nondegenerate=require_nondegenerate,
        max_delta_I=max_delta_I,
        max_delta_K=max_delta_K,
    )
    if issues:
        raise InvalidInstanceError(
            f"instance {instance.name!r} failed validation:\n  - " + "\n  - ".join(issues)
        )


def require_nondegenerate(instance: MaxMinInstance) -> None:
    """Raise :class:`DegenerateInstanceError` if the instance has degree-0 nodes."""
    degeneracies = instance.degeneracies()
    if degeneracies:
        details = "; ".join(f"{cat}={sorted(map(repr, nodes))}" for cat, nodes in degeneracies.items())
        raise DegenerateInstanceError(
            f"instance {instance.name!r} is degenerate ({details}); "
            "run repro.core.preprocess.preprocess() first"
        )


def require_special_form(instance: MaxMinInstance, tol: float = 1e-12) -> None:
    """Raise :class:`NotSpecialFormError` unless the §5 preconditions hold.

    The happy path is one whole-array degree check
    (:meth:`MaxMinInstance.is_special_form`); the per-node violation report
    is only built when the check fails.
    """
    if instance.is_special_form(tol):
        return
    problems = instance.special_form_violations(tol)
    raise NotSpecialFormError(
        f"instance {instance.name!r} is not in special form:\n  - " + "\n  - ".join(problems[:20])
    )


def check_degree_bounds(instance: MaxMinInstance, delta_I: int, delta_K: int) -> bool:
    """True if ``|V_i| ≤ delta_I`` and ``|V_k| ≤ delta_K`` everywhere."""
    return instance.delta_I <= delta_I and instance.delta_K <= delta_K
