"""A fluent builder for :class:`~repro.core.instance.MaxMinInstance`.

The builder is convenient in tests, generators and example scripts: nodes can
be declared implicitly by simply referring to them in a coefficient, and the
instance is validated once at :meth:`InstanceBuilder.build` time.

Example
-------
>>> from repro.core.builder import InstanceBuilder
>>> b = InstanceBuilder(name="tiny")
>>> b.add_constraint_term("i1", "v1", 1.0)
>>> b.add_constraint_term("i1", "v2", 1.0)
>>> b.add_objective_term("k1", "v1", 1.0)
>>> b.add_objective_term("k1", "v2", 1.0)
>>> inst = b.build()
>>> inst.num_agents, inst.num_constraints, inst.num_objectives
(2, 1, 1)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .._types import NodeId
from ..exceptions import InvalidInstanceError
from .instance import MaxMinInstance

__all__ = ["InstanceBuilder"]


class InstanceBuilder:
    """Incrementally assemble a max-min LP instance.

    Nodes are recorded in first-mention order, which becomes the canonical
    order of the built instance (generators rely on this for determinism).
    """

    def __init__(self, name: str = "max-min-lp") -> None:
        self.name = name
        self._agents: List[NodeId] = []
        self._constraints: List[NodeId] = []
        self._objectives: List[NodeId] = []
        self._agent_seen: set = set()
        self._constraint_seen: set = set()
        self._objective_seen: set = set()
        self._a: Dict[Tuple[NodeId, NodeId], float] = {}
        self._c: Dict[Tuple[NodeId, NodeId], float] = {}

    # ------------------------------------------------------------------
    # Node declaration
    # ------------------------------------------------------------------
    def add_agent(self, v: NodeId) -> "InstanceBuilder":
        """Declare an agent (idempotent)."""
        if v not in self._agent_seen:
            self._agent_seen.add(v)
            self._agents.append(v)
        return self

    def add_agents(self, vs: Iterable[NodeId]) -> "InstanceBuilder":
        for v in vs:
            self.add_agent(v)
        return self

    def add_constraint(self, i: NodeId) -> "InstanceBuilder":
        """Declare a constraint (idempotent)."""
        if i not in self._constraint_seen:
            self._constraint_seen.add(i)
            self._constraints.append(i)
        return self

    def add_constraints(self, is_: Iterable[NodeId]) -> "InstanceBuilder":
        for i in is_:
            self.add_constraint(i)
        return self

    def add_objective(self, k: NodeId) -> "InstanceBuilder":
        """Declare an objective (idempotent)."""
        if k not in self._objective_seen:
            self._objective_seen.add(k)
            self._objectives.append(k)
        return self

    def add_objectives(self, ks: Iterable[NodeId]) -> "InstanceBuilder":
        for k in ks:
            self.add_objective(k)
        return self

    # ------------------------------------------------------------------
    # Coefficients
    # ------------------------------------------------------------------
    def add_constraint_term(self, i: NodeId, v: NodeId, a_iv: float) -> "InstanceBuilder":
        """Add the term ``a_iv · x_v`` to constraint ``i`` (declares nodes)."""
        if a_iv <= 0:
            raise InvalidInstanceError(f"constraint coefficient a[{i!r},{v!r}]={a_iv} must be > 0")
        if (i, v) in self._a:
            raise InvalidInstanceError(f"constraint term ({i!r}, {v!r}) added twice")
        self.add_constraint(i)
        self.add_agent(v)
        self._a[(i, v)] = float(a_iv)
        return self

    def add_objective_term(self, k: NodeId, v: NodeId, c_kv: float) -> "InstanceBuilder":
        """Add the term ``c_kv · x_v`` to objective ``k`` (declares nodes)."""
        if c_kv <= 0:
            raise InvalidInstanceError(f"objective coefficient c[{k!r},{v!r}]={c_kv} must be > 0")
        if (k, v) in self._c:
            raise InvalidInstanceError(f"objective term ({k!r}, {v!r}) added twice")
        self.add_objective(k)
        self.add_agent(v)
        self._c[(k, v)] = float(c_kv)
        return self

    def add_packing_constraint(
        self, i: NodeId, terms: Dict[NodeId, float]
    ) -> "InstanceBuilder":
        """Add a whole constraint row ``Σ a_iv x_v ≤ 1`` at once."""
        for v, coeff in terms.items():
            self.add_constraint_term(i, v, coeff)
        return self

    def add_covering_objective(
        self, k: NodeId, terms: Dict[NodeId, float]
    ) -> "InstanceBuilder":
        """Add a whole objective row ``Σ c_kv x_v`` at once."""
        for v, coeff in terms.items():
            self.add_objective_term(k, v, coeff)
        return self

    # ------------------------------------------------------------------
    # Introspection / build
    # ------------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        return len(self._agents)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def num_objectives(self) -> int:
        return len(self._objectives)

    def build(self, name: Optional[str] = None) -> MaxMinInstance:
        """Create the immutable :class:`MaxMinInstance`.

        The builder remains usable afterwards (building is non-destructive).
        """
        return MaxMinInstance(
            agents=list(self._agents),
            constraints=list(self._constraints),
            objectives=list(self._objectives),
            a=dict(self._a),
            c=dict(self._c),
            name=name or self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InstanceBuilder(name={self.name!r}, |V|={self.num_agents}, "
            f"|I|={self.num_constraints}, |K|={self.num_objectives})"
        )
