"""Command-line interface: ``maxmin-lp``.

Sub-commands
------------
``generate``
    Create an instance from one of the built-in generators and write it to a
    JSON file.
``solve``
    Solve an instance file with the local algorithm (and optionally the safe
    baseline and the exact LP) and print a comparison table.
``compare``
    Sweep the local algorithm over several values of R on an instance file.
``sweep``
    Run a full (family × size × R) parameter sweep through the batch engine
    (:mod:`repro.engine`), optionally fanned out over worker processes
    (``--jobs``) and backed by an on-disk result cache (``--cache-dir``).
``info``
    Print structural statistics of an instance file.
``dynamics``
    Stream random churn over a special-form instance and re-solve it
    incrementally per tick (:class:`repro.distributed.dynamics.DynamicNetwork`).
``serve``
    Run the resilient allocation server (:mod:`repro.serve`): JSON over
    HTTP with admission control, deadlines, a degradation ladder down to
    the safe baseline, micro-batching and graceful drain on SIGTERM.

Exit codes follow convention: ``0`` success, ``1`` a run that completed
with recorded failures (e.g. a sweep with failed jobs), ``2`` usage errors
— including unreadable or malformed instance files, which are reported as
a one-line message rather than a traceback.

The CLI is a thin veneer over the library — every code path it exercises is
also covered by the test suite through the Python API.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, List, Optional

from . import obs
from .algo.general_solver import LocalMaxMinSolver
from .algo.safe_algorithm import SafeAlgorithm
from .analysis.ratios import compare_algorithms
from .analysis.reporting import format_table
from .analysis.sweeps import run_ratio_sweep_batch, worst_case_by
from .core.instance import MaxMinInstance
from .core.lp import solve_maxmin_lp
from .core.preprocess import preprocess
from .engine.cache import ResultCache
from .engine.resilience import RetryPolicy
from .generators import (
    cycle_instance,
    objective_ring_instance,
    random_instance,
    random_special_form_instance,
    sensor_network_instance,
    torus_instance,
)
from .exceptions import SerializationError
from .io.serialization import load_instance, save_instance, save_solution

__all__ = ["main", "build_parser"]

#: Instance families understood by ``generate`` and ``sweep``.
FAMILIES = ("random", "special-form", "cycle", "torus", "sensor", "ring")


class _CliError(Exception):
    """A user-facing CLI failure: printed as one line, exit code 2."""


def _load_instance_friendly(path: str) -> MaxMinInstance:
    """Load an instance file, turning failures into one-line CLI errors.

    A missing path or a malformed/invalid JSON document is a usage error,
    not a crash: the caller's traceback would bury the actual problem.
    """
    try:
        return load_instance(path)
    except FileNotFoundError:
        raise _CliError(f"instance file not found: {path}") from None
    except IsADirectoryError:
        raise _CliError(f"instance path is a directory, not a file: {path}") from None
    except SerializationError as exc:
        raise _CliError(f"invalid instance file {path}: {exc}") from None
    except OSError as exc:
        raise _CliError(f"cannot read instance file {path}: {exc}") from None


def _add_obs_flags(sub_parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by ``solve`` and ``sweep``."""
    sub_parser.add_argument(
        "--profile",
        action="store_true",
        help="trace the run and print the span tree and counter table",
    )
    sub_parser.add_argument(
        "--trace-out",
        dest="trace_out",
        help="trace the run and write the versioned trace JSON to this path",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="maxmin-lp",
        description="Local approximation algorithms for max-min linear programs (SPAA 2009 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate an instance and write it to JSON")
    gen.add_argument("family", choices=list(FAMILIES), help="instance family")
    gen.add_argument("output", help="output JSON path")
    gen.add_argument("--size", type=int, default=24, help="number of agents / segments / sensors")
    gen.add_argument("--delta-i", type=int, default=3, dest="delta_I", help="max constraint degree")
    gen.add_argument("--delta-k", type=int, default=3, dest="delta_K", help="max objective degree")
    gen.add_argument("--seed", type=int, default=0)

    solve = sub.add_parser("solve", help="solve an instance JSON with the local algorithm")
    solve.add_argument("input", help="instance JSON path")
    solve.add_argument("-R", type=int, default=3, help="shifting parameter (>= 2)")
    solve.add_argument(
        "--backend",
        choices=["vectorized", "reference"],
        default="vectorized",
        help="local-solver backend (compiled CSR kernels vs per-node reference)",
    )
    solve.add_argument(
        "--transform-backend",
        choices=["auto", "vectorized", "reference"],
        default="auto",
        dest="transform_backend",
        help="§4 transformation pipeline backend (auto follows --backend)",
    )
    solve.add_argument("--output", help="write the solution to this JSON path")
    solve.add_argument("--with-safe", action="store_true", help="also run the safe baseline")
    solve.add_argument(
        "--safe-backend",
        choices=["vectorized", "reference"],
        default="vectorized",
        help="safe-baseline backend (CSR segment-min vs per-node dicts)",
    )
    solve.add_argument("--with-optimum", action="store_true", help="also solve the exact LP")
    solve.add_argument(
        "--dist",
        action="store_true",
        help="run the §5 protocol on the fault-tolerant distributed runtime "
        "(special-form instances only) and print the degradation certificate",
    )
    solve.add_argument(
        "--retransmit-budget",
        type=int,
        default=2,
        dest="retransmit_budget",
        help="per-round retransmissions before a dropped message counts as lost",
    )
    solve.add_argument(
        "--drop-fraction",
        type=float,
        default=0.0,
        dest="drop_fraction",
        help="inject link loss: fraction of slots dropped in --drop-round",
    )
    solve.add_argument(
        "--drop-round",
        type=int,
        default=3,
        dest="drop_round",
        help="round the injected link loss hits (1-based)",
    )
    solve.add_argument(
        "--persistent-loss",
        action="store_true",
        dest="persistent_loss",
        help="injected loss hits every retransmission attempt (failed links, "
        "not a transient glitch)",
    )
    solve.add_argument(
        "--crash-agent",
        type=int,
        action="append",
        default=[],
        dest="crash_agents",
        metavar="POS",
        help="crash the agent at this canonical position (repeatable)",
    )
    solve.add_argument(
        "--crash-round",
        type=int,
        default=1,
        dest="crash_round",
        help="round the injected crashes hit (1-based)",
    )
    solve.add_argument(
        "--faults-seed",
        type=int,
        default=0,
        dest="faults_seed",
        help="seed of the injected fault plan",
    )
    _add_obs_flags(solve)

    compare = sub.add_parser("compare", help="compare R values and baselines on an instance")
    compare.add_argument("input", help="instance JSON path")
    compare.add_argument("--r-values", type=int, nargs="+", default=[2, 3, 4])

    sweep = sub.add_parser(
        "sweep",
        help="run a (family x size x R) sweep through the parallel batch engine",
    )
    sweep.add_argument("family", choices=list(FAMILIES), help="instance family")
    sweep.add_argument(
        "--sizes", type=int, nargs="+", default=[8, 16, 24], help="instance size grid"
    )
    sweep.add_argument("--r-values", type=int, nargs="+", default=[2, 3, 4], help="R grid")
    sweep.add_argument("--delta-i", type=int, default=3, dest="delta_I", help="max constraint degree")
    sweep.add_argument("--delta-k", type=int, default=3, dest="delta_K", help="max objective degree")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial execution)"
    )
    sweep.add_argument(
        "--cache-dir", help="content-addressed result cache directory (reused across runs)"
    )
    sweep.add_argument("--no-safe", action="store_true", help="skip the safe baseline")
    sweep.add_argument(
        "--tu-method",
        choices=["recursion", "lp"],
        default="recursion",
        help="per-agent bound computation method",
    )
    sweep.add_argument(
        "--backend",
        choices=["vectorized", "reference"],
        default="vectorized",
        help="local-solver backend (compiled CSR kernels vs per-node reference)",
    )
    sweep.add_argument(
        "--safe-backend",
        choices=["vectorized", "reference"],
        default="vectorized",
        help="safe-baseline backend (CSR segment-min vs per-node dicts)",
    )
    sweep.add_argument(
        "--transform-backend",
        choices=["auto", "vectorized", "reference"],
        default="auto",
        dest="transform_backend",
        help="§4 transformation pipeline backend (auto follows --backend)",
    )
    sweep.add_argument(
        "--dispatch",
        choices=["per-job", "batched"],
        default="per-job",
        help="batched = one multi-instance kernel dispatch per local parameter set",
    )
    sweep.add_argument(
        "--full-table", action="store_true", help="print every record, not just the summary"
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry each failing job up to N extra times (exponential backoff); "
        "failures that survive the retries are recorded, not fatal",
    )
    sweep.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        dest="timeout_s",
        metavar="S",
        help="per-attempt deadline in seconds for each job",
    )
    sweep.add_argument(
        "--resume-from",
        dest="resume_from",
        metavar="JOURNAL",
        help="checkpoint journal path: completed jobs are recorded there as the "
        "sweep runs and skipped when the sweep is re-run after an interruption",
    )
    _add_obs_flags(sweep)

    info = sub.add_parser("info", help="print structural statistics of an instance")
    info.add_argument("input", help="instance JSON path")
    info.add_argument(
        "--cache-dir",
        help="also print hit/miss statistics for this result-cache directory",
    )

    dyn = sub.add_parser(
        "dynamics",
        help="stream random churn over a special-form instance and re-solve incrementally",
    )
    dyn.add_argument("family", choices=list(FAMILIES), help="instance family (must be special form)")
    dyn.add_argument("--size", type=int, default=60, help="number of agents / segments")
    dyn.add_argument("--ticks", type=int, default=20, help="churn ticks to stream")
    dyn.add_argument("--churn", type=int, default=1, help="edit operations per tick")
    dyn.add_argument(
        "--structural-prob",
        type=float,
        default=0.3,
        dest="structural_prob",
        help="probability that an operation changes topology instead of a coefficient",
    )
    dyn.add_argument("-R", type=int, default=3, help="shifting parameter (>= 2)")
    dyn.add_argument("--delta-i", type=int, default=3, dest="delta_I", help="max constraint degree")
    dyn.add_argument("--delta-k", type=int, default=3, dest="delta_K", help="max objective degree")
    dyn.add_argument("--seed", type=int, default=0)
    dyn.add_argument(
        "--verify",
        action="store_true",
        help="check every tick against a from-scratch solve and the locality oracle",
    )
    _add_obs_flags(dyn)

    serve = sub.add_parser(
        "serve",
        help="run the resilient allocation server (JSON over HTTP, drains on SIGTERM)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377, help="0 picks an ephemeral port")
    serve.add_argument("--workers", type=int, default=4, help="solver threads")
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        dest="max_pending",
        help="in-flight requests before admission control sheds with 'overloaded'",
    )
    serve.add_argument(
        "--deadline-s",
        type=float,
        default=30.0,
        dest="deadline_s",
        help="default per-request deadline (requests may set their own deadline_s)",
    )
    serve.add_argument(
        "--safe-grace-s",
        type=float,
        default=2.0,
        dest="safe_grace_s",
        help="minimum budget the final safe-baseline rung always gets",
    )
    serve.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=2.0,
        dest="coalesce_window_ms",
        help="micro-batching collection window (0 disables coalescing)",
    )
    serve.add_argument(
        "--registry-capacity",
        type=int,
        default=64,
        dest="registry_capacity",
        help="resident-instance LRU capacity",
    )
    serve.add_argument(
        "--cache-dir", help="persistent result-cache directory for solve responses"
    )
    serve.add_argument(
        "--preload",
        nargs="*",
        default=[],
        metavar="INSTANCE_JSON",
        help="instance files made resident at startup",
    )

    return parser


def _make_instance(
    family: str, size: int, delta_I: int, delta_K: int, seed: int
) -> MaxMinInstance:
    """Build one instance of a named family at the given size."""
    if family == "random":
        return random_instance(size, delta_I=delta_I, delta_K=delta_K, seed=seed)
    if family == "special-form":
        return random_special_form_instance(size, delta_K=delta_K, seed=seed)
    if family == "cycle":
        return cycle_instance(max(size, 2), seed=seed)
    if family == "torus":
        side = max(2, int(round(size ** 0.5)))
        return torus_instance(side, side, seed=seed)
    if family == "sensor":
        return sensor_network_instance(size, max(2, size // 4), seed=seed).instance
    if family == "ring":
        return objective_ring_instance(max(size, 2), max(delta_K, 2))
    raise ValueError(f"unknown family {family!r}")


def _generate(args: argparse.Namespace) -> int:
    instance = _make_instance(args.family, args.size, args.delta_I, args.delta_K, args.seed)
    path = save_instance(instance, args.output)
    print(f"wrote {instance!r} to {path}")
    return 0


def _sweep(args: argparse.Namespace) -> int:
    if args.dispatch == "batched" and args.jobs > 1:
        print(
            "error: --dispatch batched runs in-process; drop --jobs (or use --dispatch per-job)",
            file=sys.stderr,
        )
        return 2
    resilient = (
        args.retries is not None or args.timeout_s is not None or args.resume_from is not None
    )
    if args.dispatch == "batched" and resilient:
        print(
            "error: --dispatch batched has no per-job attempt boundary; "
            "--retries/--timeout-s/--resume-from need per-job dispatch",
            file=sys.stderr,
        )
        return 2
    retry = None
    if args.retries is not None:
        if args.retries < 0:
            print("error: --retries must be >= 0", file=sys.stderr)
            return 2
        retry = RetryPolicy(max_retries=args.retries, timeout_s=args.timeout_s)
    instances = [
        _make_instance(args.family, size, args.delta_I, args.delta_K, args.seed)
        for size in args.sizes
    ]
    sizes_by_id = {id(inst): size for inst, size in zip(instances, args.sizes)}
    rows, batch_result = run_ratio_sweep_batch(
        instances,
        R_values=tuple(args.r_values),
        include_safe=not args.no_safe,
        tu_method=args.tu_method,
        backend=args.backend,
        safe_backend=args.safe_backend,
        transform_backend=args.transform_backend,
        extra_fields={
            "family": lambda inst: args.family,
            "size": lambda inst: sizes_by_id[id(inst)],
        },
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        dispatch=args.dispatch,
        retry=retry,
        timeout_s=args.timeout_s,
        resume_from=args.resume_from,
        # A sweep run with resilience knobs should report failures and keep
        # the surviving records; without them, behaviour stays pre-existing.
        on_error="record" if resilient else "raise",
    )
    if args.full_table:
        columns = [
            "family",
            "size",
            "instance",
            "algorithm",
            "optimum",
            "utility",
            "measured_ratio",
            "guaranteed_ratio",
            "within_guarantee",
        ]
        print(format_table(rows, columns, title=f"sweep: {args.family}"))
        print()
    summary = worst_case_by(rows, keys=("algorithm",))
    print(format_table(summary, title=f"worst-case summary: {args.family}"))
    journal_note = (
        f", {batch_result.journal_jobs} journaled" if batch_result.journal_jobs else ""
    )
    print(
        f"jobs: {batch_result.executed_jobs} executed, {batch_result.cached_jobs} cached"
        f"{journal_note} "
        f"({batch_result.elapsed_s:.2f}s, jobs={args.jobs}, dispatch={args.dispatch}"
        + (f", cache={args.cache_dir}" if args.cache_dir else "")
        + (f", journal={args.resume_from}" if args.resume_from else "")
        + ")"
    )
    recovery = {
        name: batch_result.metrics[name]
        for name in ("retries", "timeouts", "redispatches", "downgrades")
        if batch_result.metrics.get(name)
    }
    if recovery:
        print("recovery: " + ", ".join(f"{k}={v}" for k, v in recovery.items()))
    failed = batch_result.failed_jobs
    if failed:
        print(f"failed jobs ({len(failed)}):", file=sys.stderr)
        for result in failed:
            error = result.error or {}
            print(
                f"  {result.spec.describe()}: {error.get('type', '?')}: "
                f"{error.get('message', '')} (attempts={result.attempts})",
                file=sys.stderr,
            )
        return 1
    return 0


def _solve_dist(args: argparse.Namespace, instance: MaxMinInstance) -> int:
    from .distributed import ResilientLocalSolver
    from .faults import AgentFault, FaultPlan, MessageFault

    if not instance.is_special_form():
        raise _CliError(
            "--dist runs the actual message-passing protocol, which needs a "
            "special-form instance; transform first (or use plain solve, "
            "which applies the §4 transformations internally)"
        )
    message_faults = ()
    if args.drop_fraction > 0.0:
        message_faults = (
            MessageFault(
                round_number=args.drop_round,
                fraction=args.drop_fraction,
                attempts=None if args.persistent_loss else (0,),
            ),
        )
    agent_faults = ()
    if args.crash_agents:
        bad = [p for p in args.crash_agents if not 0 <= p < instance.num_agents]
        if bad:
            raise _CliError(
                f"--crash-agent positions {bad} out of range "
                f"[0, {instance.num_agents})"
            )
        agent_faults = (
            AgentFault(
                kind="crash",
                round_number=args.crash_round,
                agents=tuple(args.crash_agents),
            ),
        )
    plan = None
    if message_faults or agent_faults:
        plan = FaultPlan(
            seed=args.faults_seed,
            message_faults=message_faults,
            agent_faults=agent_faults,
        )
    solver = ResilientLocalSolver(
        R=args.R, retransmit_budget=args.retransmit_budget, faults=plan
    )
    solution, result = solver.solve(instance)
    cert = solution.degradation
    counts = cert.counts()
    rows = [
        {
            "algorithm": solution.label,
            "utility": solution.utility(),
            "feasible": solution.is_feasible(),
            "rounds": result.rounds,
            "messages": result.total_messages,
            "exact": counts["exact"],
            "safe": counts["safe"],
            "failed": counts["failed"],
        }
    ]
    print(format_table(rows, title=f"{instance.name} (n={instance.num_agents}, distributed)"))
    print(cert.summary())
    for event in cert.events:
        suffix = f" [{event.detail}]" if event.detail else ""
        print(f"  round {event.round_number}: {event.kind} {event.subject}{suffix}")
    if args.output:
        save_solution(solution, args.output)
        print(f"solution written to {args.output}")
    return 0


def _solve(args: argparse.Namespace) -> int:
    instance = _load_instance_friendly(args.input)
    if args.dist:
        return _solve_dist(args, instance)
    solver = LocalMaxMinSolver(
        R=args.R, backend=args.backend, transform_backend=args.transform_backend
    )
    result = solver.solve(instance)
    rows = [
        {
            "algorithm": solver.name,
            "utility": result.utility(),
            "feasible": result.solution.is_feasible(),
            "guaranteed_ratio": result.certificate.guaranteed_ratio,
        }
    ]
    if args.with_safe:
        safe = SafeAlgorithm(backend=args.safe_backend)
        solution, certificate = safe.solve_with_certificate(instance)
        rows.append(
            {
                "algorithm": safe.name,
                "utility": solution.utility(),
                "feasible": solution.is_feasible(),
                "guaranteed_ratio": certificate.guaranteed_ratio,
            }
        )
    if args.with_optimum:
        lp = solve_maxmin_lp(instance)
        rows.append(
            {
                "algorithm": "lp-optimum",
                "utility": lp.optimum,
                "feasible": True,
                "guaranteed_ratio": 1.0,
            }
        )
        for row in rows:
            utility = float(row["utility"])
            row["measured_ratio"] = lp.optimum / utility if utility > 0 else float("inf")
    print(format_table(rows, title=f"{instance.name} (n={instance.num_agents})"))
    if args.output:
        save_solution(result.solution, args.output)
        print(f"solution written to {args.output}")
    return 0


def _compare(args: argparse.Namespace) -> int:
    instance = _load_instance_friendly(args.input)
    rows = compare_algorithms(instance, R_values=tuple(args.r_values), include_optimum_row=True)
    columns = [
        "algorithm",
        "utility",
        "optimum",
        "measured_ratio",
        "guaranteed_ratio",
        "within_guarantee",
        "feasible",
    ]
    print(format_table(rows, columns, title=f"{instance.name}"))
    return 0


def _info(args: argparse.Namespace) -> int:
    instance = _load_instance_friendly(args.input)
    stats = instance.degree_statistics().as_dict()
    rows = [
        {"property": "agents", "value": instance.num_agents},
        {"property": "constraints", "value": instance.num_constraints},
        {"property": "objectives", "value": instance.num_objectives},
        {"property": "edges", "value": instance.num_edges},
        {"property": "connected", "value": instance.is_connected()},
        {"property": "special form", "value": instance.is_special_form()},
        {"property": "bipartite max-min LP", "value": instance.is_bipartite_maxmin()},
        {"property": "0/1 coefficients", "value": instance.has_zero_one_coefficients()},
    ]
    rows.extend({"property": key, "value": value} for key, value in stats.items())
    pre = preprocess(instance)
    rows.append({"property": "preprocess: changed", "value": pre.changed})
    if pre.changed:
        rows.extend(
            [
                {"property": "preprocess: forced-zero agents", "value": len(pre.forced_zero_agents)},
                {"property": "preprocess: unconstrained agents", "value": len(pre.unconstrained_agents)},
                {"property": "preprocess: removed constraints", "value": len(pre.removed_constraints)},
                {"property": "preprocess: removed objectives", "value": len(pre.removed_objectives)},
            ]
        )
    if pre.optimum_is_zero:
        rows.append({"property": "preprocess: optimum", "value": "zero"})
    elif pre.optimum_is_unbounded:
        rows.append({"property": "preprocess: optimum", "value": "unbounded"})
    print(format_table(rows, ["property", "value"], title=instance.name))
    if args.cache_dir:
        cache = ResultCache(args.cache_dir)
        stats = cache.stats()
        print()
        print(
            format_table(
                [{"property": key, "value": value} for key, value in stats.items()],
                ["property", "value"],
                title=f"result cache: {args.cache_dir}",
            )
        )
    return 0


def _dynamics(args: argparse.Namespace) -> int:
    import numpy as np

    from .distributed.dynamics import DynamicNetwork

    instance = _make_instance(args.family, args.size, args.delta_I, args.delta_K, args.seed)
    if not instance.is_special_form():
        print(
            f"error: family {args.family!r} does not produce special-form instances; "
            "dynamics streams the §5 incremental solver and needs special form",
            file=sys.stderr,
        )
        return 2
    if args.R < 2:
        print("error: -R must be >= 2", file=sys.stderr)
        return 2

    net = DynamicNetwork(instance, args.R, verify=args.verify)
    rng = np.random.default_rng(args.seed)
    rows = []
    for _ in range(max(0, args.ticks)):
        tick = net.random_tick(rng, edits=args.churn, structural_prob=args.structural_prob)
        row = {
            "tick": tick.tick,
            "agents": tick.num_agents,
            "dirty": len(tick.dirty_agents),
            "recomputed": len(tick.recomputed_agents),
            "reused": tick.reused_agents,
            "structural": tick.structural,
            "utility": f"{net.solution.utility():.6f}",
        }
        if args.verify:
            row["local"] = tick.is_local
        rows.append(row)
    print(format_table(rows, title=f"dynamics: {instance.name} (R={args.R}, horizon={net.horizon})"))
    total_dirty = sum(row["dirty"] for row in rows)
    total_recomputed = sum(row["recomputed"] for row in rows)
    total_reused = sum(row["reused"] for row in rows)
    print(
        f"ticks: {len(rows)}, dirty agents: {total_dirty}, "
        f"recomputed: {total_recomputed}, reused: {total_reused}"
        + (", every tick verified bitwise + local" if args.verify and rows else "")
    )
    return 0


def _serve_config_from_args(args: argparse.Namespace):
    """Build a :class:`repro.serve.ServeConfig` from parsed CLI flags."""
    from .serve import ServeConfig

    if args.workers < 1:
        raise _CliError("--workers must be >= 1")
    if args.max_pending < 1:
        raise _CliError("--max-pending must be >= 1")
    if args.registry_capacity < 1:
        raise _CliError("--registry-capacity must be >= 1")
    if args.deadline_s <= 0:
        raise _CliError("--deadline-s must be > 0")
    if args.coalesce_window_ms < 0:
        raise _CliError("--coalesce-window-ms must be >= 0")
    return ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        default_deadline_s=args.deadline_s,
        safe_grace_s=args.safe_grace_s,
        coalesce_window_s=args.coalesce_window_ms / 1000.0,
        registry_capacity=args.registry_capacity,
        cache_dir=args.cache_dir,
    )


def _serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve import AllocationServer

    config = _serve_config_from_args(args)
    server = AllocationServer(config)
    for path in args.preload:
        instance = _load_instance_friendly(path)
        entry = server.registry.admit_instance(instance)
        print(f"preloaded {entry.digest[:12]}… from {path}")

    async def run() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(server.drain())
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        print(
            f"maxmin-lp serve listening on http://{config.host}:{server.port} "
            f"(workers={config.workers}, max_pending={config.max_pending}; "
            "SIGTERM drains gracefully)"
        )
        sys.stdout.flush()
        await server.wait_closed()
        print("serve: drained and stopped")

    asyncio.run(run())
    return 0


def _run_with_obs(
    handler: Callable[[argparse.Namespace], int], args: argparse.Namespace
) -> int:
    """Run a handler under tracing when ``--profile``/``--trace-out`` ask for it.

    The prior tracing state is restored afterwards, so in-process callers of
    :func:`main` (tests, notebooks) never observe a leaked global flag.
    """
    profile = bool(getattr(args, "profile", False))
    trace_out = getattr(args, "trace_out", None)
    if not profile and not trace_out:
        return handler(args)
    prior = obs.enabled()
    obs.configure(enabled=True)
    try:
        code = handler(args)
        if profile:
            print()
            print(obs.format_span_tree())
            print()
            print(obs.format_counter_table())
        if trace_out:
            payload = obs.trace_payload(meta={"command": args.command})
            with open(trace_out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            print(f"trace written to {trace_out}")
        return code
    finally:
        obs.configure(enabled=prior)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``maxmin-lp`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _generate,
        "solve": _solve,
        "compare": _compare,
        "sweep": _sweep,
        "info": _info,
        "dynamics": _dynamics,
        "serve": _serve,
    }
    try:
        return _run_with_obs(handlers[args.command], args)
    except _CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
