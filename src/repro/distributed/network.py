"""Construction of communication networks from max-min LP instances.

A :class:`CommunicationNetwork` bundles the graph topology, the deterministic
port numbering and the per-node local inputs (paper §1.1) — everything the
synchronous runtime needs to run a protocol, and nothing more than what the
model grants each node.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from .._types import GraphNode, NodeType, agent_node, constraint_node, objective_node
from ..core.instance import MaxMinInstance
from .node import LocalInput
from .port_numbering import PortNumbering

__all__ = ["CommunicationNetwork", "build_network"]


class CommunicationNetwork:
    """Topology + port numbering + local inputs for one instance."""

    __slots__ = ("instance", "ports", "local_inputs")

    def __init__(
        self,
        instance: MaxMinInstance,
        ports: PortNumbering,
        local_inputs: Dict[GraphNode, LocalInput],
    ) -> None:
        self.instance = instance
        self.ports = ports
        self.local_inputs = local_inputs

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.local_inputs)

    @property
    def num_edges(self) -> int:
        return self.instance.num_edges

    def nodes(self) -> Iterator[GraphNode]:
        return iter(self.local_inputs)

    def agent_nodes(self) -> Tuple[GraphNode, ...]:
        return tuple(agent_node(v) for v in self.instance.agents)

    def local_input(self, node: GraphNode) -> LocalInput:
        return self.local_inputs[node]

    def endpoint(self, node: GraphNode, port: int) -> Tuple[GraphNode, int]:
        """The neighbour reached through ``port`` and the port on its side."""
        neighbour = self.ports.neighbour_at(node, port)
        return neighbour, self.ports.port_to(neighbour, node)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommunicationNetwork(instance={self.instance.name!r}, "
            f"nodes={self.num_nodes}, edges={self.num_edges})"
        )


def build_network(instance: MaxMinInstance) -> CommunicationNetwork:
    """Create the communication network of an instance.

    Local inputs follow paper §1.1 exactly:

    * an agent ``v`` knows, per port, whether the neighbour is a constraint
      or an objective and the coefficient on that edge;
    * a constraint or objective only knows its degree (its set of incident
      edges, identified by ports).
    """
    ports = PortNumbering(instance)
    local_inputs: Dict[GraphNode, LocalInput] = {}

    for v in instance.agents:
        node = agent_node(v)
        port_kinds: Dict[int, NodeType] = {}
        port_coefficients: Dict[int, float] = {}
        for port, neighbour in enumerate(ports.neighbours(node), start=1):
            kind, name = neighbour
            port_kinds[port] = kind
            if kind is NodeType.CONSTRAINT:
                port_coefficients[port] = instance.a(name, v)
            else:
                port_coefficients[port] = instance.c(name, v)
        local_inputs[node] = LocalInput(NodeType.AGENT, ports.degree(node), port_kinds, port_coefficients)

    for i in instance.constraints:
        node = constraint_node(i)
        degree = ports.degree(node)
        local_inputs[node] = LocalInput(
            NodeType.CONSTRAINT, degree, {p: NodeType.AGENT for p in ports.ports(node)}, {}
        )

    for k in instance.objectives:
        node = objective_node(k)
        degree = ports.degree(node)
        local_inputs[node] = LocalInput(
            NodeType.OBJECTIVE, degree, {p: NodeType.AGENT for p in ports.ports(node)}, {}
        )

    return CommunicationNetwork(instance, ports, local_inputs)
