"""Port numbering (paper §1.2).

Each node of the communication graph orders its incident edges ``1 … deg``.
The algorithm of the paper needs nothing more — no globally unique node
identifiers — and the inapproximability result holds even *with* unique
identifiers, so simulating the weaker model is the honest choice.

:class:`PortNumbering` assigns ports deterministically from the canonical
node order of the instance (any assignment would do; determinism makes runs
reproducible and lets the tests compare centralized and distributed
executions).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .._types import GraphNode, NodeType, agent_node, constraint_node, objective_node
from ..core.instance import MaxMinInstance
from ..exceptions import SimulationError

__all__ = ["PortNumbering"]


class PortNumbering:
    """Deterministic port assignment for every node of an instance's graph.

    Ports are numbered ``1 … deg(node)``.  For an agent the constraint ports
    come first (in canonical constraint order) followed by the objective
    ports; for constraints and objectives the agent ports follow canonical
    agent order.  This mirrors the paper's convention in §4.2 where "the last
    edge" of a node is meaningful.
    """

    __slots__ = ("_neighbours", "_port_of")

    def __init__(self, instance: MaxMinInstance) -> None:
        self._neighbours: Dict[GraphNode, Tuple[GraphNode, ...]] = {}
        self._port_of: Dict[Tuple[GraphNode, GraphNode], int] = {}

        for v in instance.agents:
            node = agent_node(v)
            ordered: List[GraphNode] = [constraint_node(i) for i in instance.constraints_of_agent(v)]
            ordered.extend(objective_node(k) for k in instance.objectives_of_agent(v))
            self._register(node, ordered)
        for i in instance.constraints:
            node = constraint_node(i)
            self._register(node, [agent_node(v) for v in instance.agents_of_constraint(i)])
        for k in instance.objectives:
            node = objective_node(k)
            self._register(node, [agent_node(v) for v in instance.agents_of_objective(k)])

    def _register(self, node: GraphNode, neighbours: List[GraphNode]) -> None:
        self._neighbours[node] = tuple(neighbours)
        for port, neighbour in enumerate(neighbours, start=1):
            self._port_of[(node, neighbour)] = port

    # ------------------------------------------------------------------
    def degree(self, node: GraphNode) -> int:
        return len(self._neighbours[node])

    def neighbours(self, node: GraphNode) -> Tuple[GraphNode, ...]:
        """Neighbours in port order (index 0 ↔ port 1)."""
        return self._neighbours[node]

    def neighbour_at(self, node: GraphNode, port: int) -> GraphNode:
        """The neighbour reached through the given port (1-based)."""
        try:
            return self._neighbours[node][port - 1]
        except IndexError:
            raise SimulationError(
                f"node {node[0].short}:{node[1]!r} has no port {port} (degree {self.degree(node)})"
            ) from None

    def port_to(self, node: GraphNode, neighbour: GraphNode) -> int:
        """The port of ``node`` that leads to ``neighbour``."""
        try:
            return self._port_of[(node, neighbour)]
        except KeyError:
            raise SimulationError(
                f"{node[0].short}:{node[1]!r} is not adjacent to {neighbour[0].short}:{neighbour[1]!r}"
            ) from None

    def ports(self, node: GraphNode) -> Tuple[int, ...]:
        """All ports of a node, ``(1, …, deg)``."""
        return tuple(range(1, self.degree(node) + 1))

    def __contains__(self, node: GraphNode) -> bool:
        return node in self._neighbours

    def __len__(self) -> int:
        return len(self._neighbours)
