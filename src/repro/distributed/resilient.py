"""Fault-tolerant synchronous execution with locality-bounded degradation.

The plain :class:`~repro.distributed.runtime.SynchronousRuntime` dies on the
first fault it cannot hide: a dropped slot leaves some agent waiting for a
sibling sum and :class:`~repro.exceptions.SimulationError` kills the whole
simulation.  This module is the missing systems half of the paper's central
property — every §5 output is determined by a radius-``(4r+2)`` view
(smoothing-hop radius ``2r+1``), so a fault should cost its hop-ball, not
the network.

Three layers implement that:

**Retransmission** (:class:`ResilientRuntime`).  Every round the runtime
compares the composed slot set against the attempt-0 drop set of the
:class:`~repro.faults.FaultPlan` and re-sends each dropped slot up to
``retransmit_budget`` times (``runtime.retransmits``); a
:class:`~repro.faults.MessageFault` with the default ``attempts=(0,)``
glitch profile is fully healed, so loss under the budget yields outputs
**bitwise-identical** to the fault-free run.  Slots still dropped after the
budget — persistent faults with ``attempts=None`` — are *lost*
(``runtime.lost_messages``) and become degradation seeds.

**Recovery by re-execution.**  A lost slot or faulty agent does not poison
the arithmetic of its neighbours: the §5 dependency structure means every
agent outside the fault ball can recompute its exact value from its own
radius-``(4r+2)`` view, which the fault never touched.  The runtime models
this by executing the protocol on the healed message flow and charging the
faults to a ledger instead of the number stream; babbling payloads are
detected (non-finite on the wire) and quarantined rather than delivered.
The ledger — who lost what, when — is returned on the
:class:`ResilientRunResult`.

**Local degradation** (:class:`ResilientLocalSolver` /
:class:`ResilientSafeSolver`).  Agents whose exact output cannot be trusted
— the ``(2r+1)`` smoothing-hop ball around every fault site, computed with
:func:`~repro.algo.kernels.agent_hop_balls` — fall back to the §1.3 safe
share, additionally capped by the residual slack of any *exact* constraint
partner so the mixed exact/safe assignment stays feasible by construction
(an exact partner may legitimately use more than half a constraint; the
degraded agent yields the difference).  Crashed and babbling agents output
0.0 and are reported ``failed``.  Every agent outside the ball keeps its
exact §5 output bitwise-unchanged.  The per-agent verdict ships as a
:class:`DegradationCertificate` on ``Solution.degradation``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from .. import obs
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..core.validation import require_nondegenerate, require_special_form
from ..exceptions import SimulationError
from ..faults import FaultInjector, FaultPlan
from .agents import PhaseSchedule, VectorizedMaxMinProtocol
from .plane import MessagePlane
from .runtime import (
    RoundStatistics,
    RunResult,
    SynchronousRuntime,
    require_agent_outputs,
)
from .safe_agents import SAFE_ALGORITHM_ROUNDS, VectorizedSafeProtocol

__all__ = [
    "AGENT_EXACT",
    "AGENT_SAFE",
    "AGENT_FAILED",
    "FaultEvent",
    "DegradationCertificate",
    "ResilientRunResult",
    "ResilientRuntime",
    "ResilientLocalSolver",
    "ResilientSafeSolver",
]

#: Certificate status codes (per agent, canonical agent order).
AGENT_EXACT = 0
AGENT_SAFE = 1
AGENT_FAILED = 2

_STATUS_NAMES = {AGENT_EXACT: "exact", AGENT_SAFE: "safe", AGENT_FAILED: "failed"}


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the run's fault ledger.

    ``kind`` is ``"link_loss"`` (aggregated per round; ``count`` slots lost
    beyond the retransmit budget), or ``"agent_crash"`` / ``"agent_silent"``
    / ``"agent_babbling"`` (one event per agent, at the first afflicted
    round).  ``subject`` names the agent id or summarises the slots;
    ``detail`` carries the human-readable link descriptions.
    """

    kind: str
    round_number: int
    subject: str
    count: int = 1
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "round": self.round_number,
            "subject": self.subject,
            "count": self.count,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class DegradationCertificate:
    """Per-agent verdict of a faulty distributed run.

    ``statuses`` holds one of :data:`AGENT_EXACT` / :data:`AGENT_SAFE` /
    :data:`AGENT_FAILED` per agent in canonical agent order; ``ball`` the
    agent positions inside the degradation ball (radius ``2r+1`` smoothing
    hops around every fault site).  The retransmit accounting makes the
    budget auditable: ``dropped_messages`` attempt-0 drops, of which
    ``lost_messages`` survived all ``retransmit_budget`` retries.
    """

    agents: Tuple[Any, ...]
    statuses: np.ndarray
    ball: np.ndarray
    events: Tuple[FaultEvent, ...] = ()
    retransmits: int = 0
    retransmit_budget: int = 0
    dropped_messages: int = 0
    lost_messages: int = 0
    rounds: int = 0

    @property
    def clean(self) -> bool:
        """Whether the run saw no faults at all (not even recovered drops)."""
        return (
            not self.events
            and self.dropped_messages == 0
            and bool((self.statuses == AGENT_EXACT).all())
        )

    def counts(self) -> Dict[str, int]:
        return {
            name: int((self.statuses == code).sum())
            for code, name in _STATUS_NAMES.items()
        }

    def status_of(self, agent: Any) -> str:
        try:
            position = self.agents.index(agent)
        except ValueError:
            raise SimulationError(f"certificate has no agent {agent!r}") from None
        return _STATUS_NAMES[int(self.statuses[position])]

    def positions_with(self, status: str) -> np.ndarray:
        codes = {name: code for code, name in _STATUS_NAMES.items()}
        if status not in codes:
            raise SimulationError(f"unknown certificate status {status!r}")
        return np.flatnonzero(self.statuses == codes[status])

    def agents_with(self, status: str) -> Tuple[Any, ...]:
        return tuple(self.agents[int(p)] for p in self.positions_with(status))

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (statuses as counts plus the non-exact ids)."""
        return {
            "counts": self.counts(),
            "ball_size": int(len(self.ball)),
            "degraded_agents": [repr(a) for a in self.agents_with("safe")],
            "failed_agents": [repr(a) for a in self.agents_with("failed")],
            "retransmits": self.retransmits,
            "retransmit_budget": self.retransmit_budget,
            "dropped_messages": self.dropped_messages,
            "lost_messages": self.lost_messages,
            "rounds": self.rounds,
            "events": [e.as_dict() for e in self.events],
        }

    def summary(self) -> str:
        c = self.counts()
        return (
            f"certificate: {c['exact']} exact / {c['safe']} safe / "
            f"{c['failed']} failed; {self.retransmits} retransmit(s), "
            f"{self.lost_messages}/{self.dropped_messages} message(s) lost "
            f"(budget {self.retransmit_budget}), {len(self.events)} fault event(s)"
        )


class ResilientRunResult(RunResult):
    """A :class:`RunResult` plus the run's fault ledger."""

    __slots__ = ("retransmits", "dropped_messages", "lost_slots", "agent_fault_rounds", "events")

    def __init__(
        self,
        base: RunResult,
        retransmits: int,
        dropped_messages: int,
        lost_slots: Dict[int, Tuple[int, ...]],
        agent_fault_rounds: Dict[str, Dict[int, int]],
        events: Tuple[FaultEvent, ...],
    ) -> None:
        super().__init__(
            outputs=base.outputs,
            rounds=base.rounds,
            total_messages=base.total_messages,
            total_bytes=base.total_bytes,
            per_round=base.per_round,
            node_outputs=base.node_outputs,
        )
        self.retransmits = retransmits
        self.dropped_messages = dropped_messages
        self.lost_slots = lost_slots
        self.agent_fault_rounds = agent_fault_rounds
        self.events = events

    @property
    def lost_messages(self) -> int:
        return sum(len(slots) for slots in self.lost_slots.values())

    def faulty_agent_positions(self) -> Dict[str, Tuple[int, ...]]:
        return {
            kind: tuple(sorted(rounds_by_pos))
            for kind, rounds_by_pos in self.agent_fault_rounds.items()
        }


def _slot_agent_endpoints(plane: MessagePlane, slots) -> Set[int]:
    """Agent positions a faulty slot could influence (both link directions).

    A lost agent→relay message starves the relay's aggregate, which feeds
    every member agent; a lost relay→agent message starves that agent.  We
    seed the degradation ball with the agent endpoint *and* the relay's full
    membership — conservative by at most one smoothing hop.
    """
    comp = plane.comp
    seeds: Set[int] = set()
    for raw in slots:
        for s in (int(raw), int(plane.reverse[int(raw)])):
            if s < plane.con_base:
                pos = int(np.searchsorted(plane.agent_indptr, s, side="right")) - 1
                seeds.add(pos)
            elif s < plane.obj_base:
                rel = s - plane.con_base
                row = int(np.searchsorted(comp.cagents_indptr, rel, side="right")) - 1
                lo, hi = comp.cagents_indptr[row], comp.cagents_indptr[row + 1]
                seeds.update(int(m) for m in comp.cagents_indices[lo:hi])
            else:
                rel = s - plane.obj_base
                row = int(np.searchsorted(comp.oagents_indptr, rel, side="right")) - 1
                lo, hi = comp.oagents_indptr[row], comp.oagents_indptr[row + 1]
                seeds.update(int(m) for m in comp.oagents_indices[lo:hi])
    return seeds


class ResilientRuntime(SynchronousRuntime):
    """Synchronous runtime with per-round ack/retransmit and a fault ledger.

    The delivery contract (see module docstring): attempt-0 drops are
    detected against the composed slot mask and re-sent up to
    ``retransmit_budget`` times; what the budget recovers is delivered as
    if the link had never glitched, what it cannot recover is charged to
    the ledger and healed by re-execution, so downstream protocol state is
    never silently corrupted.  The plain runtime's behaviour is the
    degenerate case ``retransmit_budget=0`` *plus* treating every loss as
    fatal.
    """

    def __init__(
        self,
        network=None,
        *,
        plane: Optional[MessagePlane] = None,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
        retransmit_budget: int = 2,
    ) -> None:
        if retransmit_budget < 0:
            raise SimulationError("retransmit_budget must be >= 0")
        super().__init__(network, plane=plane, faults=faults)
        self.retransmit_budget = retransmit_budget

    def run(self, *args, **kwargs):  # pragma: no cover - guard
        raise SimulationError(
            "ResilientRuntime drives the vectorized path only; use "
            "SynchronousRuntime.run for the dict-based oracle"
        )

    def run_vectorized(self, protocol, rounds, *, stop_when_silent=False) -> ResilientRunResult:
        if self.measure_bytes:
            raise SimulationError("byte accounting is dict-path only")
        plane = self.plane
        with obs.span(
            "runtime.run_resilient",
            slots=plane.num_slots,
            rounds=rounds,
            budget=self.retransmit_budget,
        ):
            return self._run_resilient(protocol, rounds, plane, stop_when_silent)

    def _run_resilient(
        self,
        protocol,
        rounds: int,
        plane: MessagePlane,
        stop_when_silent: bool,
    ) -> ResilientRunResult:
        inbox_mask, inbox_values = plane.empty_round()
        protocol.begin(plane)
        n = plane.num_agents

        per_round: List[RoundStatistics] = []
        total_messages = 0
        executed = 0
        retransmits = 0
        dropped_total = 0
        lost_slots: Dict[int, Tuple[int, ...]] = {}
        agent_fault_rounds: Dict[str, Dict[int, int]] = {
            "crash": {},
            "silent": {},
            "babbling": {},
        }
        events: List[FaultEvent] = []

        for round_number in range(1, rounds + 1):
            executed = round_number
            out_mask, out_values = protocol.compose(
                round_number, inbox_mask, inbox_values, plane
            )
            sent = np.flatnonzero(out_mask)
            round_messages = len(sent)

            # Protocol-state corruption is still fatal — resilience covers
            # *injected* faults, not bugs.  Injected babblers are handled
            # below without ever putting garbage on the wire.
            finite = np.isfinite(out_values[sent])
            if not finite.all():
                bad = sent[~finite]
                links = "; ".join(plane.describe_slot(int(s)) for s in bad[:5])
                raise SimulationError(
                    f"round {round_number}: {len(bad)} outgoing message(s) are "
                    f"NaN/inf ({links}); a non-finite value on the wire means "
                    "the protocol state is corrupt — refusing to deliver it"
                )

            # Agent faults: record first-afflicted rounds.  A babbler's
            # garbage is detected at the receivers (non-finite payloads) and
            # discarded; from the ledger's perspective it is a crashed node.
            if self.faults is not None:
                states = self.faults.agent_faults(round_number, n)
                for kind, afflicted in states.items():
                    ledger = agent_fault_rounds[kind]
                    for pos in sorted(afflicted):
                        if pos not in ledger:
                            ledger[pos] = round_number
                            obs.count(f"faults.agent_{kind}")
                            events.append(
                                FaultEvent(
                                    kind=f"agent_{kind}",
                                    round_number=round_number,
                                    subject=repr(plane.comp.agents[pos]),
                                )
                            )

            # Link faults: detect attempt-0 drops, retransmit up to the
            # budget, charge the rest to the ledger.  Delivery itself is the
            # healed flow — see "recovery by re-execution" in the module
            # docstring.
            if self.faults is not None:
                drop = self.faults.dropped_slots(round_number, plane.num_slots, 0)
                if drop:
                    outstanding = sorted(
                        int(s) for s in sent if int(s) in drop
                    )
                    if outstanding:
                        dropped_total += len(outstanding)
                        obs.count("faults.dropped_messages", len(outstanding))
                    attempt = 0
                    while outstanding and attempt < self.retransmit_budget:
                        attempt += 1
                        retransmits += len(outstanding)
                        obs.count("runtime.retransmits", len(outstanding))
                        redrop = self.faults.dropped_slots(
                            round_number, plane.num_slots, attempt
                        ) or set()
                        recovered = [s for s in outstanding if s not in redrop]
                        if recovered:
                            obs.count("runtime.recovered_messages", len(recovered))
                        outstanding = [s for s in outstanding if s in redrop]
                    if outstanding:
                        lost_slots[round_number] = tuple(outstanding)
                        obs.count("runtime.lost_messages", len(outstanding))
                        links = "; ".join(
                            plane.describe_slot(s) for s in outstanding[:3]
                        )
                        events.append(
                            FaultEvent(
                                kind="link_loss",
                                round_number=round_number,
                                subject=f"{len(outstanding)} slot(s)",
                                count=len(outstanding),
                                detail=links,
                            )
                        )

            inbox_mask, inbox_values = plane.empty_round()
            received = plane.reverse[sent]
            inbox_mask[received] = True
            inbox_values[received] = out_values[sent]

            total_messages += round_messages
            per_round.append(RoundStatistics(round_number, round_messages, 0))

            if stop_when_silent and round_messages == 0:
                break

        values = protocol.outputs(plane)
        node_outputs: Dict[Any, Any] = {}
        outputs: Dict[Any, float] = {}
        from .._types import agent_node

        for position, v in enumerate(plane.comp.agents):
            value = float(values[position])
            node_outputs[agent_node(v)] = None if np.isnan(values[position]) else value
            if not np.isnan(values[position]):
                outputs[v] = value

        obs.count("runtime.rounds", executed)
        obs.count("runtime.messages", total_messages)
        base = RunResult(
            outputs=outputs,
            rounds=executed,
            total_messages=total_messages,
            total_bytes=0,
            per_round=per_round,
            node_outputs=node_outputs,
        )
        return ResilientRunResult(
            base,
            retransmits=retransmits,
            dropped_messages=dropped_total,
            lost_slots=lost_slots,
            agent_fault_rounds=agent_fault_rounds,
            events=tuple(events),
        )


def _certificate(
    plane: MessagePlane,
    result: ResilientRunResult,
    statuses: np.ndarray,
    ball: np.ndarray,
    retransmit_budget: int,
) -> DegradationCertificate:
    return DegradationCertificate(
        agents=tuple(plane.comp.agents),
        statuses=statuses,
        ball=ball,
        events=result.events,
        retransmits=result.retransmits,
        retransmit_budget=retransmit_budget,
        dropped_messages=result.dropped_messages,
        lost_messages=result.lost_messages,
        rounds=result.rounds,
    )


class ResilientLocalSolver:
    """The §5 protocol on the resilient runtime, with certified degradation.

    Without faults (or with loss fully recovered by the retransmit budget)
    the solution is bitwise-identical to
    :class:`~repro.distributed.agents.DistributedLocalSolver` and the
    certificate is all-exact.  Beyond the budget, degradation is confined to
    the ``(2r+1)`` smoothing-hop ball around the fault sites: ball agents
    fall back to a slack-capped §1.3 safe share, crashed/babbling agents
    output 0.0 and report ``failed``, everyone else keeps the exact §5
    output bitwise-unchanged.

    The slack cap is what keeps the *mixed* assignment feasible: a degraded
    agent ``w`` takes ``min(safe share, min over exact partners u of
    max(0, (1 − a_iu·x_u) / a_iw))`` — exact partners may own more than
    half a constraint, so ``w`` yields the remaining slack (one extra local
    exchange in protocol terms; evaluated by the confined kernel here).
    Case analysis per constraint: exact+exact is §5-feasible, safe+safe
    sums to ≤ ½ + ½, exact+safe is capped, failed contributes 0.
    """

    def __init__(
        self,
        R: int = 3,
        *,
        tu_tol: float = 1e-10,
        retransmit_budget: int = 2,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    ) -> None:
        self.schedule = PhaseSchedule(R)
        self.tu_tol = tu_tol
        self.retransmit_budget = retransmit_budget
        self.faults = faults

    @property
    def R(self) -> int:
        return self.schedule.R

    @property
    def local_horizon(self) -> int:
        return self.schedule.total_rounds

    def solve(self, instance: MaxMinInstance) -> Tuple[Solution, ResilientRunResult]:
        require_special_form(instance)
        plane = MessagePlane(instance)
        runtime = ResilientRuntime(
            plane=plane, faults=self.faults, retransmit_budget=self.retransmit_budget
        )
        with obs.span("resilient.solve", agents=plane.num_agents):
            result = runtime.run_vectorized(
                VectorizedMaxMinProtocol(self.schedule, tu_tol=self.tu_tol),
                rounds=self.schedule.total_rounds,
            )
            require_agent_outputs(instance, result)
            comp = plane.comp
            n = comp.num_agents
            values = np.array([result.outputs[v] for v in comp.agents], dtype=np.float64)

            failed = sorted(
                set(result.agent_fault_rounds["crash"])
                | set(result.agent_fault_rounds["babbling"])
            )
            silent = sorted(result.agent_fault_rounds["silent"])
            seeds: Set[int] = set(failed) | set(silent)
            for slots in result.lost_slots.values():
                seeds |= _slot_agent_endpoints(plane, slots)

            statuses = np.full(n, AGENT_EXACT, dtype=np.int8)
            if seeds:
                from ..algo.kernels import agent_hop_balls

                radius = 2 * self.schedule.r + 1
                (ball,) = agent_hop_balls(
                    comp, np.fromiter(seeds, dtype=np.int64), [radius]
                )
                statuses[ball] = AGENT_SAFE
            else:
                ball = np.empty(0, dtype=np.int64)
            failed_arr = np.asarray(failed, dtype=np.int64)
            statuses[failed_arr] = AGENT_FAILED

            safe_pos = np.flatnonzero(statuses == AGENT_SAFE)
            if len(safe_pos):
                values = self._degrade(comp, values, statuses, safe_pos)
            values[failed_arr] = 0.0

            obs.count("runtime.exact_agents", int((statuses == AGENT_EXACT).sum()))
            obs.count("runtime.degraded_agents", len(safe_pos))
            obs.count("runtime.crashed_agents", len(result.agent_fault_rounds["crash"]))
            obs.count("resilient.solves")

            cert = _certificate(plane, result, statuses, ball, self.retransmit_budget)
            solution = Solution.from_agent_array(
                instance, values, label=f"resilient-R{self.R}"
            )
            solution.degradation = cert
            return solution, result

    def _degrade(
        self,
        comp,
        values: np.ndarray,
        statuses: np.ndarray,
        safe_pos: np.ndarray,
    ) -> np.ndarray:
        """Slack-capped §1.3 fallback on ``safe_pos``, other rows untouched."""
        from ..algo.kernels import safe_fallback_confined
        from ..core.compiled import _segment_gather

        obs.count("resilient.fallback_rows", len(safe_pos))
        fallback = safe_fallback_confined(comp, safe_pos)

        deg = np.diff(comp.con_indptr)[safe_pos]
        has = deg > 0
        if has.any():
            adeg = deg[has]
            flat = _segment_gather(comp.con_indptr[safe_pos[has]], adeg)
            partner = comp.con_partner[flat]
            a_self = comp.con_coeff[flat]
            a_partner = comp.con_partner_coeff[flat]
            exact_partner = statuses[partner] == AGENT_EXACT
            cap = np.where(
                exact_partner,
                np.maximum(0.0, (1.0 - a_partner * values[partner]) / a_self),
                np.inf,
            )
            seg = np.zeros(len(adeg), dtype=np.int64)
            np.cumsum(adeg[:-1], out=seg[1:])
            capped = fallback.copy()
            capped[has] = np.minimum(fallback[has], np.minimum.reduceat(cap, seg))
        else:
            capped = fallback
        out = values.copy()
        # A free variable has no safe share (min over nothing = inf);
        # degrade it to 0 rather than ship an unbounded value.
        out[safe_pos] = np.where(np.isfinite(capped), capped, 0.0)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResilientLocalSolver(R={self.R}, budget={self.retransmit_budget}, "
            f"faults={'yes' if self.faults is not None else 'no'})"
        )


class ResilientSafeSolver:
    """The 2-round safe protocol on the resilient runtime.

    The safe protocol's dependency radius is a single constraint edge, so
    the degradation ball is just the fault sites themselves.  An agent that
    misses a constraint's degree announcement beyond the budget substitutes
    the global degree bound ``Δ_I`` (paper §1: the degree bounds are global
    parameters, like ``R``): ``1/(Δ_I·a_iv) ≤ 1/(|V_i|·a_iv)``, so the
    degraded share only shrinks and stays feasible.  Crashed/babbling
    agents output 0.0 and report ``failed``; a merely *silent* agent stays
    exact — agents never send in this protocol, so its silence costs
    nobody anything.
    """

    def __init__(
        self,
        *,
        retransmit_budget: int = 2,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    ) -> None:
        self.retransmit_budget = retransmit_budget
        self.faults = faults

    @property
    def local_horizon(self) -> int:
        return SAFE_ALGORITHM_ROUNDS

    def solve(self, instance: MaxMinInstance) -> Tuple[Solution, ResilientRunResult]:
        require_nondegenerate(instance)
        plane = MessagePlane(instance)
        runtime = ResilientRuntime(
            plane=plane, faults=self.faults, retransmit_budget=self.retransmit_budget
        )
        with obs.span("resilient.safe_solve", agents=plane.num_agents):
            result = runtime.run_vectorized(
                VectorizedSafeProtocol(), rounds=SAFE_ALGORITHM_ROUNDS
            )
            require_agent_outputs(instance, result)
            comp = plane.comp
            n = comp.num_agents
            values = np.array([result.outputs[v] for v in comp.agents], dtype=np.float64)

            failed = sorted(
                set(result.agent_fault_rounds["crash"])
                | set(result.agent_fault_rounds["babbling"])
            )
            # Which constraint announcements were lost, per receiving agent.
            missed: Dict[int, Set[int]] = {}
            for slots in result.lost_slots.values():
                for s in slots:
                    s = int(s)
                    if not plane.con_base <= s < plane.obj_base:
                        continue
                    rel = s - plane.con_base
                    row = int(
                        np.searchsorted(comp.cagents_indptr, rel, side="right")
                    ) - 1
                    missed.setdefault(int(comp.cagents_indices[rel]), set()).add(row)

            statuses = np.full(n, AGENT_EXACT, dtype=np.int8)
            delta_i = (
                int(comp.constraint_degrees.max()) if comp.num_constraints else 1
            )
            for pos, rows in sorted(missed.items()):
                statuses[pos] = AGENT_SAFE
                lo, hi = comp.con_indptr[pos], comp.con_indptr[pos + 1]
                best = np.inf
                for e in range(lo, hi):
                    i_row = int(comp.con_indices[e])
                    a_iv = float(comp.con_coeff[e])
                    d = delta_i if i_row in rows else int(comp.constraint_degrees[i_row])
                    best = min(best, 1.0 / (float(d) * a_iv))
                values[pos] = best if np.isfinite(best) else 0.0
            failed_arr = np.asarray(failed, dtype=np.int64)
            statuses[failed_arr] = AGENT_FAILED
            values[failed_arr] = 0.0
            ball = np.flatnonzero(statuses != AGENT_EXACT)

            safe_count = int((statuses == AGENT_SAFE).sum())
            obs.count("runtime.exact_agents", int((statuses == AGENT_EXACT).sum()))
            obs.count("runtime.degraded_agents", safe_count)
            obs.count("runtime.crashed_agents", len(result.agent_fault_rounds["crash"]))
            obs.count("resilient.solves")

            cert = _certificate(plane, result, statuses, ball, self.retransmit_budget)
            solution = Solution.from_agent_array(instance, values, label="resilient-safe")
            solution.degradation = cert
            return solution, result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResilientSafeSolver(budget={self.retransmit_budget})"
