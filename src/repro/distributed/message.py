"""Messages exchanged in the synchronous message-passing model.

A message is addressed purely by *port*: in the port-numbering model (paper
§1.2) a node only knows "I send this on my port 3" and the recipient only
knows "this arrived on my port 1".  The :class:`Message` wrapper carries the
payload plus a phase tag so that multi-phase protocols can assert they never
mix up rounds.
"""

from __future__ import annotations

import pickle
from typing import Any, Optional

__all__ = ["Message", "message_size_bytes"]


class Message:
    """A single message travelling over one edge in one round.

    Attributes
    ----------
    payload:
        Arbitrary picklable content.
    phase:
        Optional protocol-phase tag (e.g. ``"view"``, ``"smooth"``, ``"g"``).
    """

    __slots__ = ("payload", "phase")

    def __init__(self, payload: Any, phase: Optional[str] = None) -> None:
        self.payload = payload
        self.phase = phase

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Message(phase={self.phase!r}, payload={self.payload!r})"


def message_size_bytes(message: "Message") -> int:
    """Approximate wire size of a message (pickle length).

    Only used when the runtime is asked to account for bandwidth; the model
    itself places no bound on message size (the paper's algorithms ship whole
    neighbourhood views).
    """
    try:
        return len(pickle.dumps((message.phase, message.payload), protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 - size accounting must never crash a run
        return len(repr(message.payload))
