"""Protocol node base class for the synchronous model (paper §1.2).

During each synchronous round every node, in parallel,

1. performs local computation,
2. sends one (possibly empty) message to each neighbour, and
3. receives the messages its neighbours sent in the same round.

A protocol node therefore only implements :meth:`ProtocolNode.compose` (what
to put on each port this round, given what arrived last round) plus, for
agents, :meth:`ProtocolNode.output`.  The runtime drives the rounds and
delivers messages; nodes never see anything but port numbers and their own
local input.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

from .._types import GraphNode, NodeType
from .message import Message

__all__ = ["LocalInput", "ProtocolNode"]


class LocalInput:
    """The local input of one node (paper §1.1).

    Attributes
    ----------
    kind:
        Whether the node is an agent, constraint or objective.
    degree:
        Number of incident edges (= number of ports).
    port_kinds:
        For agents: mapping port → :class:`NodeType` of the neighbour
        (constraint or objective).  Constraints/objectives only see agents,
        so the mapping is constant for them.
    port_coefficients:
        For agents: mapping port → the coefficient ``a_iv`` or ``c_kv`` on
        that edge.  Constraints and objectives have no coefficients in their
        local input (the paper gives them only the incident edge set).
    """

    __slots__ = ("kind", "degree", "port_kinds", "port_coefficients")

    def __init__(
        self,
        kind: NodeType,
        degree: int,
        port_kinds: Dict[int, NodeType],
        port_coefficients: Dict[int, float],
    ) -> None:
        self.kind = kind
        self.degree = degree
        self.port_kinds = port_kinds
        self.port_coefficients = port_coefficients

    def constraint_ports(self) -> tuple:
        """Ports leading to constraints (agents only)."""
        return tuple(p for p, kind in self.port_kinds.items() if kind is NodeType.CONSTRAINT)

    def objective_ports(self) -> tuple:
        """Ports leading to objectives (agents only)."""
        return tuple(p for p, kind in self.port_kinds.items() if kind is NodeType.OBJECTIVE)

    def capacity(self) -> float:
        """``min_i 1/a_iv`` computed from the local input alone (agents only)."""
        caps = [1.0 / self.port_coefficients[p] for p in self.constraint_ports()]
        return min(caps) if caps else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalInput(kind={self.kind.short}, degree={self.degree})"


class ProtocolNode(abc.ABC):
    """Base class of every distributed protocol participant.

    Subclasses must not inspect anything beyond :attr:`local_input`, the
    port-indexed inbox handed to :meth:`compose`, and their own state — in
    particular not the :attr:`graph_node` identity, which exists only so the
    runtime can collect outputs (the port-numbering model has no node ids).
    """

    def __init__(self, graph_node: GraphNode, local_input: LocalInput) -> None:
        self.graph_node = graph_node
        self.local_input = local_input

    @property
    def kind(self) -> NodeType:
        return self.local_input.kind

    @property
    def degree(self) -> int:
        return self.local_input.degree

    @abc.abstractmethod
    def compose(self, round_number: int, inbox: Dict[int, Message]) -> Dict[int, Message]:
        """Produce this round's outgoing messages.

        Parameters
        ----------
        round_number:
            1-based round counter.
        inbox:
            Messages received at the *end of the previous round*, keyed by the
            port they arrived on (empty dict in round 1).

        Returns
        -------
        Mapping from port to :class:`Message`.  Ports may be omitted (nothing
        is sent on them this round).
        """

    def output(self) -> Optional[Any]:
        """The node's final output (agents return their ``x_v``; others ``None``)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind, name = self.graph_node
        return f"{type(self).__name__}({kind.short}:{name!r})"
