"""The synchronous round-based runtime (paper §1.2).

The runtime owns the clock: in every round it asks each node for its
outgoing messages, delivers them along edges (translating the sender's port
into the receiver's port), and hands each node its inbox at the start of the
next round.  It also keeps the accounting that the scalability experiment
(E5) reports: rounds, messages, and (optionally) bytes.

The runtime is deliberately single-threaded and deterministic — the point of
simulating a distributed algorithm for a *theory* reproduction is fidelity
and reproducibility, not wall-clock parallel speed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .._types import GraphNode, NodeType
from ..exceptions import SimulationError
from .message import Message, message_size_bytes
from .network import CommunicationNetwork
from .node import ProtocolNode

__all__ = ["RoundStatistics", "RunResult", "SynchronousRuntime"]

#: A factory mapping (graph_node, local_input) to a ProtocolNode.
NodeFactory = Callable[[CommunicationNetwork, GraphNode], ProtocolNode]


class RoundStatistics:
    """Per-round accounting."""

    __slots__ = ("round_number", "messages", "bytes_sent")

    def __init__(self, round_number: int, messages: int, bytes_sent: int) -> None:
        self.round_number = round_number
        self.messages = messages
        self.bytes_sent = bytes_sent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RoundStatistics(round={self.round_number}, messages={self.messages})"


class RunResult:
    """Outcome of one protocol execution.

    Attributes
    ----------
    outputs:
        Mapping from agent id to the value it output (only agents produce
        outputs in this library's protocols).
    rounds:
        Number of synchronous rounds executed.
    total_messages:
        Total number of (non-empty) messages delivered.
    total_bytes:
        Total approximate message bytes (0 when byte accounting is off).
    per_round:
        List of :class:`RoundStatistics`.
    node_outputs:
        Raw outputs per graph node (including Nones from relays).
    """

    __slots__ = ("outputs", "rounds", "total_messages", "total_bytes", "per_round", "node_outputs")

    def __init__(
        self,
        outputs: Dict[Any, float],
        rounds: int,
        total_messages: int,
        total_bytes: int,
        per_round: List[RoundStatistics],
        node_outputs: Dict[GraphNode, Any],
    ) -> None:
        self.outputs = outputs
        self.rounds = rounds
        self.total_messages = total_messages
        self.total_bytes = total_bytes
        self.per_round = per_round
        self.node_outputs = node_outputs

    @property
    def messages_per_round(self) -> float:
        return self.total_messages / self.rounds if self.rounds else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(rounds={self.rounds}, messages={self.total_messages}, "
            f"agents={len(self.outputs)})"
        )


class SynchronousRuntime:
    """Drives a protocol over a :class:`CommunicationNetwork`.

    Parameters
    ----------
    network:
        The communication network to run on.
    measure_bytes:
        If true, every message is pickled once to estimate bandwidth; this is
        meaningful but slow for view-gathering protocols, so it is off by
        default.
    """

    def __init__(self, network: CommunicationNetwork, *, measure_bytes: bool = False) -> None:
        self.network = network
        self.measure_bytes = measure_bytes

    def run(
        self,
        node_factory: NodeFactory,
        rounds: int,
        *,
        stop_when_silent: bool = False,
    ) -> RunResult:
        """Execute ``rounds`` synchronous rounds of the protocol.

        Parameters
        ----------
        node_factory:
            Called once per graph node to create its :class:`ProtocolNode`.
        rounds:
            The local horizon ``D``: how many rounds to run.
        stop_when_silent:
            Stop early if some round delivers no messages at all (useful for
            protocols that finish before their declared horizon).
        """
        network = self.network
        nodes: Dict[GraphNode, ProtocolNode] = {
            node: node_factory(network, node) for node in network.nodes()
        }
        inboxes: Dict[GraphNode, Dict[int, Message]] = {node: {} for node in nodes}

        per_round: List[RoundStatistics] = []
        total_messages = 0
        total_bytes = 0
        executed = 0

        for round_number in range(1, rounds + 1):
            executed = round_number
            next_inboxes: Dict[GraphNode, Dict[int, Message]] = {node: {} for node in nodes}
            round_messages = 0
            round_bytes = 0

            for node_id, node in nodes.items():
                outbox = node.compose(round_number, inboxes[node_id])
                if not outbox:
                    continue
                degree = network.local_input(node_id).degree
                for port, message in outbox.items():
                    if not 1 <= port <= degree:
                        raise SimulationError(
                            f"node {node_id[0].short}:{node_id[1]!r} sent on invalid port {port}"
                        )
                    if not isinstance(message, Message):
                        message = Message(message)
                    neighbour, remote_port = network.endpoint(node_id, port)
                    next_inboxes[neighbour][remote_port] = message
                    round_messages += 1
                    if self.measure_bytes:
                        round_bytes += message_size_bytes(message)

            inboxes = next_inboxes
            total_messages += round_messages
            total_bytes += round_bytes
            per_round.append(RoundStatistics(round_number, round_messages, round_bytes))

            if stop_when_silent and round_messages == 0:
                break

        # Give every node one final delivery so that messages sent in the last
        # round are visible to outputs (nodes may cache them in compose of a
        # hypothetical next round; our protocols are written so that the last
        # round's inbox is only needed by nodes that already produced output,
        # hence we simply expose outputs now).
        node_outputs: Dict[GraphNode, Any] = {}
        outputs: Dict[Any, float] = {}
        for node_id, node in nodes.items():
            value = node.output()
            node_outputs[node_id] = value
            if node_id[0] is NodeType.AGENT and value is not None:
                outputs[node_id[1]] = value

        return RunResult(
            outputs=outputs,
            rounds=executed,
            total_messages=total_messages,
            total_bytes=total_bytes,
            per_round=per_round,
            node_outputs=node_outputs,
        )
