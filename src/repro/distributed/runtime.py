"""The synchronous round-based runtime (paper §1.2).

The runtime owns the clock: in every round it asks each node for its
outgoing messages, delivers them along edges (translating the sender's port
into the receiver's port), and hands each node its inbox at the start of the
next round.  It also keeps the accounting that the scalability experiment
(E5) reports: rounds, messages, and (optionally) bytes.

Two execution paths share the accounting:

* :meth:`SynchronousRuntime.run` — the original per-node dict walk.  It is
  deliberately single-threaded and deterministic — the point of simulating a
  distributed algorithm for a *theory* reproduction is fidelity and
  reproducibility — and is kept as the oracle the vectorized path is tested
  against.
* :meth:`SynchronousRuntime.run_vectorized` — the same clock driven over an
  int-indexed :class:`~repro.distributed.plane.MessagePlane`: one
  :meth:`~repro.distributed.plane.VectorizedProtocol.compose` call per round
  for the whole network, delivery as a single gather through the plane's
  ``reverse`` permutation.  Per-round message statistics are computed from
  the same sent-slot sets the dict path would produce, so E5-style
  measurements are backend-independent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Union

import numpy as np

from .. import obs
from .._types import GraphNode, NodeType, agent_node
from ..exceptions import SimulationError
from ..faults import FaultInjector, FaultPlan
from .message import Message, message_size_bytes
from .network import CommunicationNetwork
from .node import ProtocolNode
from .plane import MessagePlane, VectorizedProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.compiled import DeltaResult

__all__ = ["RoundStatistics", "RunResult", "SynchronousRuntime", "require_agent_outputs"]

#: A factory mapping (graph_node, local_input) to a ProtocolNode.
NodeFactory = Callable[[CommunicationNetwork, GraphNode], ProtocolNode]


def require_agent_outputs(instance, result: "RunResult") -> None:
    """Raise :class:`SimulationError` unless every agent produced an output.

    Shared by the protocol solvers: an agent that stays silent is a protocol
    bug, and backfilling 0.0 for it would turn a broken run into a "feasible"
    all-wrong solution.
    """
    missing = [v for v in instance.agents if v not in result.outputs]
    if missing:
        raise SimulationError(
            f"protocol finished with {len(missing)} agent(s) producing no "
            f"output (first few: {missing[:5]!r}); refusing to backfill zeros"
        )


class RoundStatistics:
    """Per-round accounting."""

    __slots__ = ("round_number", "messages", "bytes_sent")

    def __init__(self, round_number: int, messages: int, bytes_sent: int) -> None:
        self.round_number = round_number
        self.messages = messages
        self.bytes_sent = bytes_sent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RoundStatistics(round={self.round_number}, messages={self.messages})"


class RunResult:
    """Outcome of one protocol execution.

    Attributes
    ----------
    outputs:
        Mapping from agent id to the value it output (only agents produce
        outputs in this library's protocols).
    rounds:
        Number of synchronous rounds executed.
    total_messages:
        Total number of (non-empty) messages delivered.
    total_bytes:
        Total approximate message bytes (0 when byte accounting is off).
    per_round:
        List of :class:`RoundStatistics`.
    node_outputs:
        Raw outputs per graph node (including Nones from relays; the
        vectorized path only materialises agent entries).
    """

    __slots__ = ("outputs", "rounds", "total_messages", "total_bytes", "per_round", "node_outputs")

    def __init__(
        self,
        outputs: Dict[Any, float],
        rounds: int,
        total_messages: int,
        total_bytes: int,
        per_round: List[RoundStatistics],
        node_outputs: Dict[GraphNode, Any],
    ) -> None:
        self.outputs = outputs
        self.rounds = rounds
        self.total_messages = total_messages
        self.total_bytes = total_bytes
        self.per_round = per_round
        self.node_outputs = node_outputs

    @property
    def messages_per_round(self) -> float:
        return self.total_messages / self.rounds if self.rounds else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(rounds={self.rounds}, messages={self.total_messages}, "
            f"agents={len(self.outputs)})"
        )


class SynchronousRuntime:
    """Drives a protocol over a :class:`CommunicationNetwork` or a plane.

    Parameters
    ----------
    network:
        The communication network to run on (required for :meth:`run`;
        optional when only :meth:`run_vectorized` is used with an explicit
        ``plane``).
    plane:
        An explicit :class:`~repro.distributed.plane.MessagePlane` for the
        vectorized path; built lazily from ``network.instance`` when absent.
        Passing the plane directly lets vectorized solvers skip building the
        per-node ``LocalInput`` dicts entirely.
    measure_bytes:
        If true, every message is pickled once to estimate bandwidth; this is
        meaningful but slow for view-gathering protocols, so it is off by
        default.  Byte accounting needs real message objects, so it is only
        available on the dict path (:meth:`run_vectorized` raises).
    faults:
        A :class:`~repro.faults.plan.FaultPlan` (or live injector) whose
        message faults drop delivery slots on *both* execution paths: the
        vectorized path filters the sent-slot array, the dict path maps each
        ``(node, port)`` send to its plane slot so the same plan drops the
        same messages on either backend (the chaos-equivalence contract of
        ``tests/test_resilient.py``).  Dropped messages count as *sent* —
        the sender paid for them — but never arrive, modelling a failed
        link for robustness experiments.
    """

    def __init__(
        self,
        network: Optional[CommunicationNetwork] = None,
        *,
        plane: Optional[MessagePlane] = None,
        measure_bytes: bool = False,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    ) -> None:
        if network is None and plane is None:
            raise SimulationError("SynchronousRuntime needs a network or a message plane")
        self.network = network
        self._plane = plane
        self.measure_bytes = measure_bytes
        if isinstance(faults, FaultPlan):
            faults = faults.injector()
        self.faults: Optional[FaultInjector] = faults

    @property
    def plane(self) -> MessagePlane:
        """The message plane (built from the network's instance on demand)."""
        if self._plane is None:
            assert self.network is not None  # __init__ invariant
            self._plane = MessagePlane(self.network.instance)
        return self._plane

    def refresh_plane(self, delta: "DeltaResult") -> MessagePlane:
        """Carry the message plane across an instance delta.

        Uses :meth:`MessagePlane.updated`, so coefficient-only deltas reuse
        every slot array and structural deltas rebuild only the dirty rows.
        Only valid on plane-backed runtimes: a dict-based network cannot be
        patched in place, so refreshing one raises.
        """
        if self.network is not None:
            raise SimulationError(
                "refresh_plane is only supported on plane-backed runtimes; "
                "rebuild the CommunicationNetwork for the dict-based path"
            )
        self._plane = self.plane.updated(delta)
        return self._plane

    def run(
        self,
        node_factory: NodeFactory,
        rounds: int,
        *,
        stop_when_silent: bool = False,
    ) -> RunResult:
        """Execute ``rounds`` synchronous rounds of the protocol (dict path).

        Parameters
        ----------
        node_factory:
            Called once per graph node to create its :class:`ProtocolNode`.
        rounds:
            The local horizon ``D``: how many rounds to run.
        stop_when_silent:
            Stop early if some round sends no messages at all (useful for
            protocols that finish before their declared horizon).  A round
            that goes quiet because the *previous* round's messages were all
            dropped by a fault does not count as convergence — the stop is
            suppressed (``runtime.suppressed_quiet_stops``) so injected loss
            cannot fake an early finish.
        """
        network = self.network
        if network is None:
            raise SimulationError("the dict-based run() needs a CommunicationNetwork")
        with obs.span("runtime.run", rounds=rounds):
            return self._run_dict(network, node_factory, rounds, stop_when_silent)

    def _sender_slot(self, plane: MessagePlane, node_id: GraphNode, port: int) -> int:
        """The plane slot a dict-path ``(node, port)`` send occupies.

        This is the bridge that lets one :class:`MessageFault` (stated in
        plane slots) hit both execution paths identically.
        """
        kind, nid = node_id
        comp = plane.comp
        if kind is NodeType.AGENT:
            return int(plane.agent_indptr[comp.agent_index[nid]]) + port - 1
        if kind is NodeType.CONSTRAINT:
            return (
                plane.con_base
                + int(comp.cagents_indptr[comp.constraint_index[nid]])
                + port
                - 1
            )
        return (
            plane.obj_base + int(comp.oagents_indptr[comp.objective_index[nid]]) + port - 1
        )

    def _run_dict(
        self,
        network: CommunicationNetwork,
        node_factory: NodeFactory,
        rounds: int,
        stop_when_silent: bool,
    ) -> RunResult:
        nodes: Dict[GraphNode, ProtocolNode] = {
            node: node_factory(network, node) for node in network.nodes()
        }
        inboxes: Dict[GraphNode, Dict[int, Message]] = {node: {} for node in nodes}

        per_round: List[RoundStatistics] = []
        total_messages = 0
        total_bytes = 0
        executed = 0
        dropped_last_round = False

        for round_number in range(1, rounds + 1):
            executed = round_number
            next_inboxes: Dict[GraphNode, Dict[int, Message]] = {node: {} for node in nodes}
            round_messages = 0
            round_bytes = 0
            round_dropped = 0
            drop = (
                self.faults.dropped_slots(round_number, self.plane.num_slots)
                if self.faults is not None
                else None
            )

            for node_id, node in nodes.items():
                outbox = node.compose(round_number, inboxes[node_id])
                if not outbox:
                    continue
                degree = network.local_input(node_id).degree
                for port, message in outbox.items():
                    if not 1 <= port <= degree:
                        raise SimulationError(
                            f"node {node_id[0].short}:{node_id[1]!r} sent on invalid port {port}"
                        )
                    if not isinstance(message, Message):
                        message = Message(message)
                    round_messages += 1
                    if self.measure_bytes:
                        round_bytes += message_size_bytes(message)
                    if drop and self._sender_slot(self.plane, node_id, port) in drop:
                        # Sent (counted above) but the link ate it.
                        round_dropped += 1
                        continue
                    neighbour, remote_port = network.endpoint(node_id, port)
                    next_inboxes[neighbour][remote_port] = message

            if round_dropped:
                obs.count("faults.dropped_messages", round_dropped)
            inboxes = next_inboxes
            total_messages += round_messages
            total_bytes += round_bytes
            per_round.append(RoundStatistics(round_number, round_messages, round_bytes))

            if stop_when_silent and round_messages == 0:
                # Silence after a lossy round is starvation, not convergence:
                # the nodes never saw the previous round's messages, so their
                # quiet says nothing about the protocol being done.
                if dropped_last_round:
                    obs.count("runtime.suppressed_quiet_stops")
                else:
                    break
            dropped_last_round = round_dropped > 0

        # Give every node one final delivery so that messages sent in the last
        # round are visible to outputs (nodes may cache them in compose of a
        # hypothetical next round; our protocols are written so that the last
        # round's inbox is only needed by nodes that already produced output,
        # hence we simply expose outputs now).
        node_outputs: Dict[GraphNode, Any] = {}
        outputs: Dict[Any, float] = {}
        for node_id, node in nodes.items():
            value = node.output()
            node_outputs[node_id] = value
            if node_id[0] is NodeType.AGENT and value is not None:
                outputs[node_id[1]] = value

        obs.count("runtime.rounds", executed)
        obs.count("runtime.messages", total_messages)
        obs.count("runtime.bytes", total_bytes)
        return RunResult(
            outputs=outputs,
            rounds=executed,
            total_messages=total_messages,
            total_bytes=total_bytes,
            per_round=per_round,
            node_outputs=node_outputs,
        )

    def run_vectorized(
        self,
        protocol: VectorizedProtocol,
        rounds: int,
        *,
        stop_when_silent: bool = False,
    ) -> RunResult:
        """Execute ``rounds`` synchronous rounds on the int-indexed plane.

        The clock is identical to :meth:`run`: each round the protocol
        composes the whole network's outgoing messages (slot mask + values),
        the runtime delivers them through the plane's ``reverse`` permutation
        and records the round's message count, and the delivered slots become
        the next round's inbox.
        """
        if self.measure_bytes:
            raise SimulationError(
                "byte accounting requires real message objects; use the dict-based "
                "run() (reference backend) when measure_bytes=True"
            )
        plane = self.plane
        with obs.span("runtime.run_vectorized", slots=plane.num_slots, rounds=rounds):
            return self._run_vectorized(protocol, rounds, plane, stop_when_silent)

    def _run_vectorized(
        self,
        protocol: VectorizedProtocol,
        rounds: int,
        plane: MessagePlane,
        stop_when_silent: bool,
    ) -> RunResult:
        inbox_mask, inbox_values = plane.empty_round()
        protocol.begin(plane)

        per_round: List[RoundStatistics] = []
        total_messages = 0
        executed = 0
        dropped_last_round = False

        for round_number in range(1, rounds + 1):
            executed = round_number
            out_mask, out_values = protocol.compose(
                round_number, inbox_mask, inbox_values, plane
            )
            sent = np.flatnonzero(out_mask)
            round_messages = len(sent)

            finite = np.isfinite(out_values[sent])
            if not finite.all():
                bad = sent[~finite]
                obs.count("runtime.nonfinite_messages", len(bad))
                agent_slots = bad[bad < plane.con_base]
                owners = np.searchsorted(plane.agent_indptr, agent_slots, side="right") - 1
                agent_ids = sorted({plane.comp.agents[int(i)] for i in owners})
                relay_slots = int((bad >= plane.con_base).sum())
                detail = f"agents {agent_ids[:5]!r}" if agent_ids else "no agent slots"
                if relay_slots:
                    detail += f", {relay_slots} relay slot(s)"
                raise SimulationError(
                    f"round {round_number}: {len(bad)} outgoing message(s) are "
                    f"NaN/inf ({detail}); a non-finite value on the wire means "
                    "the protocol state is corrupt — refusing to deliver it"
                )

            round_dropped = 0
            if self.faults is not None:
                drop = self.faults.dropped_slots(round_number, plane.num_slots)
                if drop:
                    # Dropped messages were sent (counted above) but are
                    # withheld from delivery, as if the link failed.
                    drop_mask = np.isin(sent, np.fromiter(drop, dtype=np.int64))
                    if drop_mask.any():
                        round_dropped = int(drop_mask.sum())
                        obs.count("faults.dropped_messages", round_dropped)
                        sent = sent[~drop_mask]

            inbox_mask, inbox_values = plane.empty_round()
            received = plane.reverse[sent]
            inbox_mask[received] = True
            inbox_values[received] = out_values[sent]

            total_messages += round_messages
            per_round.append(RoundStatistics(round_number, round_messages, 0))

            if stop_when_silent and round_messages == 0:
                # Same starvation-vs-convergence distinction as the dict
                # path: a quiet round right after a lossy one is not proof
                # the protocol finished.
                if dropped_last_round:
                    obs.count("runtime.suppressed_quiet_stops")
                else:
                    break
            dropped_last_round = round_dropped > 0

        values = protocol.outputs(plane)
        node_outputs: Dict[GraphNode, Any] = {}
        outputs: Dict[Any, float] = {}
        for position, v in enumerate(plane.comp.agents):
            value = float(values[position])
            node_outputs[agent_node(v)] = None if np.isnan(values[position]) else value
            if not np.isnan(values[position]):
                outputs[v] = value

        obs.count("runtime.rounds", executed)
        obs.count("runtime.messages", total_messages)
        return RunResult(
            outputs=outputs,
            rounds=executed,
            total_messages=total_messages,
            total_bytes=0,
            per_round=per_round,
            node_outputs=node_outputs,
        )
