"""The int-indexed message plane of the synchronous runtime.

The dict-based runtime (:meth:`~repro.distributed.runtime.SynchronousRuntime.run`)
delivers messages by walking per-node Python dicts — faithful, but every
round pays dict/tuple overhead per edge, which caps protocol experiments
(E5) at toy sizes.  :class:`MessagePlane` lowers the communication graph
once into flat arrays, after which a whole round is a handful of numpy
operations:

* every *directed* edge ``(node, port)`` gets one integer slot;  a node's
  slots are contiguous and ordered by port, so "agent ``v``'s constraint
  ports" is a slice and per-node aggregation is a segmented reduce;
* :attr:`MessagePlane.reverse` is the delivery permutation: the message a
  node puts on slot ``e`` arrives on slot ``reverse[e]`` of its neighbour —
  the whole round's delivery is one fancy-indexed gather;
* slot order is pinned to :class:`~repro.distributed.port_numbering.PortNumbering`
  (constraint ports before objective ports for agents, canonical adjacency
  order everywhere), so an array-aware protocol sees messages in exactly the
  order the dict-based oracle sees them.

The plane is built directly from the compiled CSR arrays
(:meth:`MaxMinInstance.compiled`) — the ``PortNumbering`` / ``LocalInput``
dicts are never materialised on the vectorized path; the equivalence of the
two numbering schemes is pinned by ``tests/test_runtime_vectorized.py``.

Array-aware protocols implement :class:`VectorizedProtocol`: per round they
receive the delivered slot mask/values and return the slots they send on.
Payloads on the plane are ``float64`` — enough for the numeric protocols in
this library; protocols whose payloads are structural (the §5 view-flooding
phase ships whole view trees) mark the flood on the plane for accounting and
evaluate the structural computation with the batched kernels at the phase
boundary (each agent's final view is a deterministic function of the
instance, so the kernel computes exactly what the agent would read off its
assembled view).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Tuple

import numpy as np

from .. import obs
from ..core.compiled import CompiledInstance, _segment_gather

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.compiled import DeltaResult
    from ..core.instance import MaxMinInstance

__all__ = ["MessagePlane", "VectorizedProtocol"]


def _pair_with_reverse_rows(
    fwd_indptr: np.ndarray,
    fwd_indices: np.ndarray,
    rev_indptr: np.ndarray,
    rev_indices: np.ndarray,
) -> np.ndarray:
    """Match each forward CSR entry with its mirror entry in the reverse CSR.

    ``fwd`` holds per-agent rows of neighbour positions (e.g. agent → its
    constraints); ``rev`` holds the mirrored rows (constraint → its agents).
    Returns ``pair`` with ``pair[e]`` = index of the rev entry for the same
    undirected edge.  Both CSRs list row members in canonical order, so the
    rev entries in natural order are sorted by (row, member); sorting the fwd
    entries by (neighbour row, owner) aligns the two enumerations 1:1.
    """
    n_fwd = len(fwd_indices)
    owner = np.repeat(
        np.arange(len(fwd_indptr) - 1, dtype=np.int64), np.diff(fwd_indptr)
    )
    order = np.lexsort((owner, fwd_indices))
    pair = np.empty(n_fwd, dtype=np.int64)
    pair[order] = np.arange(n_fwd, dtype=np.int64)
    if len(rev_indices) != n_fwd:  # pragma: no cover - CSR mirror invariant
        raise ValueError("forward/reverse CSR edge counts disagree")
    return pair


class MessagePlane:
    """Flat directed-edge arrays of one instance's communication graph.

    Attributes
    ----------
    comp:
        The underlying :class:`~repro.core.compiled.CompiledInstance`.
    num_slots:
        Total directed-edge slots (``2 ×`` undirected edges).
    agent_indptr:
        Per-agent slot ranges: agent ``v`` sends/receives on slots
        ``agent_indptr[v]:agent_indptr[v+1]``, ports in
        :class:`PortNumbering` order (constraint edges first, then
        objective edges, each in canonical adjacency order).
    agent_con_slots, agent_obj_slots:
        Slot of each agent–constraint / agent–objective edge on the agent's
        side, aligned with the compiled ``con_*`` / ``obj_*`` CSR entries.
    con_base, obj_base:
        First slot of the constraint-side / objective-side block; constraint
        ``i``'s slots are ``con_base + cagents_indptr[i] : …[i+1]`` (aligned
        with the ``cagents_*`` entries), objectives analogously.
    reverse:
        Delivery permutation over all slots (an involution).
    """

    __slots__ = (
        "comp",
        "num_slots",
        "agent_indptr",
        "agent_con_slots",
        "agent_obj_slots",
        "con_base",
        "obj_base",
        "reverse",
    )

    def __init__(self, instance: "MaxMinInstance") -> None:
        obs.count("plane.builds")
        self._build_skeleton(instance.compiled())

        comp = self.comp
        con_pair = _pair_with_reverse_rows(
            comp.con_indptr, comp.con_indices, comp.cagents_indptr, comp.cagents_indices
        )
        obj_pair = _pair_with_reverse_rows(
            comp.obj_indptr, comp.obj_indices, comp.oagents_indptr, comp.oagents_indices
        )

        self.reverse = np.empty(self.num_slots, dtype=np.int64)
        self.reverse[self.agent_con_slots] = self.con_base + con_pair
        self.reverse[self.agent_obj_slots] = self.obj_base + obj_pair
        self.reverse[self.con_base + con_pair] = self.agent_con_slots
        self.reverse[self.obj_base + obj_pair] = self.agent_obj_slots

    def _build_skeleton(self, comp: CompiledInstance) -> None:
        """Slot layout (everything except :attr:`reverse`) from the CSR arrays."""
        self.comp = comp
        A = len(comp.con_indices)
        B = len(comp.obj_indices)
        n = comp.num_agents
        self.num_slots = 2 * (A + B)
        self.con_base = A + B
        self.obj_base = A + B + A

        con_deg = np.diff(comp.con_indptr)
        obj_deg = np.diff(comp.obj_indptr)
        self.agent_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(con_deg + obj_deg, out=self.agent_indptr[1:])
        self.agent_con_slots = _segment_gather(self.agent_indptr[:-1], con_deg)
        self.agent_obj_slots = _segment_gather(self.agent_indptr[:-1] + con_deg, obj_deg)

    # ------------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        return self.comp.num_agents

    @property
    def num_constraints(self) -> int:
        return self.comp.num_constraints

    @property
    def num_objectives(self) -> int:
        return self.comp.num_objectives

    def con_slot_range(self) -> Tuple[int, int]:
        """The slot block of all constraint-side directed edges."""
        return self.con_base, self.obj_base

    def obj_slot_range(self) -> Tuple[int, int]:
        """The slot block of all objective-side directed edges."""
        return self.obj_base, self.num_slots

    def empty_round(self) -> Tuple[np.ndarray, np.ndarray]:
        """A fresh (mask, values) pair with nothing sent."""
        return (
            np.zeros(self.num_slots, dtype=bool),
            np.zeros(self.num_slots, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # slot introspection (fault diagnostics)
    # ------------------------------------------------------------------
    def slot_owner(self, slot: int) -> Tuple[str, object, int]:
        """``(kind, node_id, port)`` of the node that *sends* on ``slot``.

        The inverse of the slot layout: agent slots are looked up through
        :attr:`agent_indptr`, relay slots through the mirrored
        ``cagents``/``oagents`` CSRs.  ``port`` is the node's 1-based local
        port, i.e. exactly the key the dict-based oracle would use — so a
        fault report names the same coordinates on both execution paths.
        """
        comp = self.comp
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")
        if slot < self.con_base:
            pos = int(np.searchsorted(self.agent_indptr, slot, side="right")) - 1
            return "agent", comp.agents[pos], slot - int(self.agent_indptr[pos]) + 1
        if slot < self.obj_base:
            rel = slot - self.con_base
            row = int(np.searchsorted(comp.cagents_indptr, rel, side="right")) - 1
            return "constraint", comp.constraints[row], rel - int(comp.cagents_indptr[row]) + 1
        rel = slot - self.obj_base
        row = int(np.searchsorted(comp.oagents_indptr, rel, side="right")) - 1
        return "objective", comp.objectives[row], rel - int(comp.oagents_indptr[row]) + 1

    def describe_slot(self, slot: int) -> str:
        """Human-readable ``sender port → receiver port`` line for ``slot``."""
        kind, node, port = self.slot_owner(slot)
        rkind, rnode, rport = self.slot_owner(int(self.reverse[slot]))
        return f"{kind} {node!r} port {port} -> {rkind} {rnode!r} port {rport}"

    # ------------------------------------------------------------------
    # dirty-region tracking
    # ------------------------------------------------------------------
    def dirty_region(self, agents: np.ndarray, radius: int) -> np.ndarray:
        """Agent positions within graph distance ``radius`` of ``agents``.

        ``radius`` is measured in *communication-graph* edges (agent → relay
        node → agent is distance 2); it is rounded down to whole agent-to-agent
        hops, matching how :func:`~repro.distributed.dynamics.local_horizon_radius`
        is stated.
        """
        from ..algo.kernels import agent_hop_balls

        (ball,) = agent_hop_balls(self.comp, np.asarray(agents), [radius // 2])
        return ball

    def updated(self, delta: "DeltaResult") -> "MessagePlane":
        """The plane of ``delta.compiled``, reusing this plane's arrays.

        Coefficient-only deltas keep the communication graph intact — every
        slot array depends only on the CSR ``indptr``/``indices`` — so the
        update is a constant-time clone with ``comp`` swapped.  Structural
        deltas rebuild the slot skeleton (cheap cumulative sums) and then
        recover :attr:`reverse` by translating the slots of every untouched
        row; only slots in rows whose membership changed are re-paired.
        """
        if delta.identity:
            return self
        new = object.__new__(MessagePlane)
        new._build_skeleton(delta.compiled)
        if not delta.structural:
            obs.count("plane.delta_reuses")
            # Same topology: positions are unchanged, so the skeleton (and
            # hence reverse) is bitwise what we already have.
            new.reverse = self.reverse
            return new

        obs.count("plane.delta_rebuilds")
        old_comp = self.comp

        # Slot translation old → new for every row whose membership (and
        # hence slot block content/order) is unchanged.  An agent row is
        # clean only if both its constraint and objective memberships are:
        # the two blocks are interleaved per agent, so either change shifts
        # the whole block.
        trans = np.full(self.num_slots, -1, dtype=np.int64)

        def translate(old_rows, o2n, old_starts_all, old_deg_all, new_starts_all):
            rows = np.asarray(old_rows, dtype=np.int64)
            if len(rows) == 0:
                return
            counts = old_deg_all[rows]
            src = _segment_gather(old_starts_all[rows], counts)
            dst = _segment_gather(new_starts_all[o2n[rows]], counts)
            trans[src] = dst

        o2n_a = delta.old_to_new_agent
        o2n_c = delta.old_to_new_constraint
        o2n_k = delta.old_to_new_objective

        dirty_a = np.zeros(old_comp.num_agents, dtype=bool)
        dirty_a[delta.changed_con_rows] = True
        dirty_a[delta.changed_obj_rows] = True
        clean_a = np.flatnonzero((o2n_a >= 0) & ~dirty_a)
        translate(
            clean_a,
            o2n_a,
            self.agent_indptr[:-1],
            np.diff(self.agent_indptr),
            new.agent_indptr[:-1],
        )

        dirty_c = np.zeros(old_comp.num_constraints, dtype=bool)
        dirty_c[delta.changed_constraints] = True
        clean_c = np.flatnonzero((o2n_c >= 0) & ~dirty_c)
        translate(
            clean_c,
            o2n_c,
            self.con_base + old_comp.cagents_indptr[:-1],
            np.diff(old_comp.cagents_indptr),
            new.con_base + new.comp.cagents_indptr[:-1],
        )

        dirty_k = np.zeros(old_comp.num_objectives, dtype=bool)
        dirty_k[delta.changed_objectives] = True
        clean_k = np.flatnonzero((o2n_k >= 0) & ~dirty_k)
        translate(
            clean_k,
            o2n_k,
            self.obj_base + old_comp.oagents_indptr[:-1],
            np.diff(old_comp.oagents_indptr),
            new.obj_base + new.comp.oagents_indptr[:-1],
        )

        # Carry over every reverse pair whose slots both translate.
        new.reverse = np.full(new.num_slots, -1, dtype=np.int64)
        mirror = trans[self.reverse]
        both = np.flatnonzero((trans >= 0) & (mirror >= 0))
        new.reverse[trans[both]] = mirror[both]
        obs.count("plane.delta_slots_reused", len(both))

        # Re-pair the remaining slots family by family.  Within a family the
        # unfilled forward entries and unfilled reverse entries describe the
        # same undirected edges; sorting both by (relay row, agent) aligns
        # them 1:1, exactly as in _pair_with_reverse_rows but restricted to
        # the dirty edges.
        comp = new.comp

        def repair(fwd_slots, fwd_indptr, fwd_indices, rev_base, rev_indptr, rev_indices):
            open_f = np.flatnonzero(new.reverse[fwd_slots] < 0)
            open_r = np.flatnonzero(new.reverse[rev_base + np.arange(len(rev_indices))] < 0)
            if len(open_f) != len(open_r):  # pragma: no cover - mirror invariant
                raise ValueError("dirty forward/reverse edge counts disagree")
            if len(open_f) == 0:
                return 0
            owner = np.repeat(
                np.arange(len(fwd_indptr) - 1, dtype=np.int64), np.diff(fwd_indptr)
            )
            order_f = open_f[np.lexsort((owner[open_f], fwd_indices[open_f]))]
            # rev entries in natural order are already sorted by (row, member)
            a_slots = fwd_slots[order_f]
            r_slots = rev_base + open_r
            new.reverse[a_slots] = r_slots
            new.reverse[r_slots] = a_slots
            return 2 * len(open_f)

        rebuilt = repair(
            new.agent_con_slots,
            comp.con_indptr,
            comp.con_indices,
            new.con_base,
            comp.cagents_indptr,
            comp.cagents_indices,
        )
        rebuilt += repair(
            new.agent_obj_slots,
            comp.obj_indptr,
            comp.obj_indices,
            new.obj_base,
            comp.oagents_indptr,
            comp.oagents_indices,
        )
        obs.count("plane.delta_slots_rebuilt", rebuilt)
        if len(both) + rebuilt != new.num_slots:  # pragma: no cover - invariant
            raise ValueError("plane delta update left unpaired slots")
        return new

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MessagePlane({self.comp.instance.name!r}, slots={self.num_slots}, "
            f"agents={self.num_agents})"
        )


class VectorizedProtocol(abc.ABC):
    """An array-aware protocol: one :meth:`compose` call per round, whole plane.

    The contract mirrors :class:`~repro.distributed.node.ProtocolNode` lifted
    to arrays: ``compose`` receives the messages delivered at the end of the
    previous round (slot mask + slot values, empty in round 1) and returns
    the slots this round's messages go out on.  The runtime delivers via
    :attr:`MessagePlane.reverse` and keeps the round/message accounting, so
    per-round statistics are directly comparable with the dict-based oracle.
    """

    def begin(self, plane: MessagePlane) -> None:
        """Hook called once before round 1 (allocate state here)."""

    @abc.abstractmethod
    def compose(
        self,
        round_number: int,
        inbox_mask: np.ndarray,
        inbox_values: np.ndarray,
        plane: MessagePlane,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Produce this round's outgoing messages as (slot mask, slot values)."""

    @abc.abstractmethod
    def outputs(self, plane: MessagePlane) -> np.ndarray:
        """Per-agent outputs after the final round (NaN = no output)."""
