"""The int-indexed message plane of the synchronous runtime.

The dict-based runtime (:meth:`~repro.distributed.runtime.SynchronousRuntime.run`)
delivers messages by walking per-node Python dicts — faithful, but every
round pays dict/tuple overhead per edge, which caps protocol experiments
(E5) at toy sizes.  :class:`MessagePlane` lowers the communication graph
once into flat arrays, after which a whole round is a handful of numpy
operations:

* every *directed* edge ``(node, port)`` gets one integer slot;  a node's
  slots are contiguous and ordered by port, so "agent ``v``'s constraint
  ports" is a slice and per-node aggregation is a segmented reduce;
* :attr:`MessagePlane.reverse` is the delivery permutation: the message a
  node puts on slot ``e`` arrives on slot ``reverse[e]`` of its neighbour —
  the whole round's delivery is one fancy-indexed gather;
* slot order is pinned to :class:`~repro.distributed.port_numbering.PortNumbering`
  (constraint ports before objective ports for agents, canonical adjacency
  order everywhere), so an array-aware protocol sees messages in exactly the
  order the dict-based oracle sees them.

The plane is built directly from the compiled CSR arrays
(:meth:`MaxMinInstance.compiled`) — the ``PortNumbering`` / ``LocalInput``
dicts are never materialised on the vectorized path; the equivalence of the
two numbering schemes is pinned by ``tests/test_runtime_vectorized.py``.

Array-aware protocols implement :class:`VectorizedProtocol`: per round they
receive the delivered slot mask/values and return the slots they send on.
Payloads on the plane are ``float64`` — enough for the numeric protocols in
this library; protocols whose payloads are structural (the §5 view-flooding
phase ships whole view trees) mark the flood on the plane for accounting and
evaluate the structural computation with the batched kernels at the phase
boundary (each agent's final view is a deterministic function of the
instance, so the kernel computes exactly what the agent would read off its
assembled view).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Tuple

import numpy as np

from .. import obs
from ..core.compiled import CompiledInstance, _segment_gather

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.instance import MaxMinInstance

__all__ = ["MessagePlane", "VectorizedProtocol"]


def _pair_with_reverse_rows(
    fwd_indptr: np.ndarray,
    fwd_indices: np.ndarray,
    rev_indptr: np.ndarray,
    rev_indices: np.ndarray,
) -> np.ndarray:
    """Match each forward CSR entry with its mirror entry in the reverse CSR.

    ``fwd`` holds per-agent rows of neighbour positions (e.g. agent → its
    constraints); ``rev`` holds the mirrored rows (constraint → its agents).
    Returns ``pair`` with ``pair[e]`` = index of the rev entry for the same
    undirected edge.  Both CSRs list row members in canonical order, so the
    rev entries in natural order are sorted by (row, member); sorting the fwd
    entries by (neighbour row, owner) aligns the two enumerations 1:1.
    """
    n_fwd = len(fwd_indices)
    owner = np.repeat(
        np.arange(len(fwd_indptr) - 1, dtype=np.int64), np.diff(fwd_indptr)
    )
    order = np.lexsort((owner, fwd_indices))
    pair = np.empty(n_fwd, dtype=np.int64)
    pair[order] = np.arange(n_fwd, dtype=np.int64)
    if len(rev_indices) != n_fwd:  # pragma: no cover - CSR mirror invariant
        raise ValueError("forward/reverse CSR edge counts disagree")
    return pair


class MessagePlane:
    """Flat directed-edge arrays of one instance's communication graph.

    Attributes
    ----------
    comp:
        The underlying :class:`~repro.core.compiled.CompiledInstance`.
    num_slots:
        Total directed-edge slots (``2 ×`` undirected edges).
    agent_indptr:
        Per-agent slot ranges: agent ``v`` sends/receives on slots
        ``agent_indptr[v]:agent_indptr[v+1]``, ports in
        :class:`PortNumbering` order (constraint edges first, then
        objective edges, each in canonical adjacency order).
    agent_con_slots, agent_obj_slots:
        Slot of each agent–constraint / agent–objective edge on the agent's
        side, aligned with the compiled ``con_*`` / ``obj_*`` CSR entries.
    con_base, obj_base:
        First slot of the constraint-side / objective-side block; constraint
        ``i``'s slots are ``con_base + cagents_indptr[i] : …[i+1]`` (aligned
        with the ``cagents_*`` entries), objectives analogously.
    reverse:
        Delivery permutation over all slots (an involution).
    """

    __slots__ = (
        "comp",
        "num_slots",
        "agent_indptr",
        "agent_con_slots",
        "agent_obj_slots",
        "con_base",
        "obj_base",
        "reverse",
    )

    def __init__(self, instance: "MaxMinInstance") -> None:
        obs.count("plane.builds")
        comp = instance.compiled()
        self.comp = comp
        A = len(comp.con_indices)
        B = len(comp.obj_indices)
        n = comp.num_agents
        self.num_slots = 2 * (A + B)
        self.con_base = A + B
        self.obj_base = A + B + A

        con_deg = np.diff(comp.con_indptr)
        obj_deg = np.diff(comp.obj_indptr)
        self.agent_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(con_deg + obj_deg, out=self.agent_indptr[1:])
        self.agent_con_slots = _segment_gather(self.agent_indptr[:-1], con_deg)
        self.agent_obj_slots = _segment_gather(self.agent_indptr[:-1] + con_deg, obj_deg)

        con_pair = _pair_with_reverse_rows(
            comp.con_indptr, comp.con_indices, comp.cagents_indptr, comp.cagents_indices
        )
        obj_pair = _pair_with_reverse_rows(
            comp.obj_indptr, comp.obj_indices, comp.oagents_indptr, comp.oagents_indices
        )

        self.reverse = np.empty(self.num_slots, dtype=np.int64)
        self.reverse[self.agent_con_slots] = self.con_base + con_pair
        self.reverse[self.agent_obj_slots] = self.obj_base + obj_pair
        self.reverse[self.con_base + con_pair] = self.agent_con_slots
        self.reverse[self.obj_base + obj_pair] = self.agent_obj_slots

    # ------------------------------------------------------------------
    @property
    def num_agents(self) -> int:
        return self.comp.num_agents

    @property
    def num_constraints(self) -> int:
        return self.comp.num_constraints

    @property
    def num_objectives(self) -> int:
        return self.comp.num_objectives

    def con_slot_range(self) -> Tuple[int, int]:
        """The slot block of all constraint-side directed edges."""
        return self.con_base, self.obj_base

    def obj_slot_range(self) -> Tuple[int, int]:
        """The slot block of all objective-side directed edges."""
        return self.obj_base, self.num_slots

    def empty_round(self) -> Tuple[np.ndarray, np.ndarray]:
        """A fresh (mask, values) pair with nothing sent."""
        return (
            np.zeros(self.num_slots, dtype=bool),
            np.zeros(self.num_slots, dtype=np.float64),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MessagePlane({self.comp.instance.name!r}, slots={self.num_slots}, "
            f"agents={self.num_agents})"
        )


class VectorizedProtocol(abc.ABC):
    """An array-aware protocol: one :meth:`compose` call per round, whole plane.

    The contract mirrors :class:`~repro.distributed.node.ProtocolNode` lifted
    to arrays: ``compose`` receives the messages delivered at the end of the
    previous round (slot mask + slot values, empty in round 1) and returns
    the slots this round's messages go out on.  The runtime delivers via
    :attr:`MessagePlane.reverse` and keeps the round/message accounting, so
    per-round statistics are directly comparable with the dict-based oracle.
    """

    def begin(self, plane: MessagePlane) -> None:
        """Hook called once before round 1 (allocate state here)."""

    @abc.abstractmethod
    def compose(
        self,
        round_number: int,
        inbox_mask: np.ndarray,
        inbox_values: np.ndarray,
        plane: MessagePlane,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Produce this round's outgoing messages as (slot mask, slot values)."""

    @abc.abstractmethod
    def outputs(self, plane: MessagePlane) -> np.ndarray:
        """Per-agent outputs after the final round (NaN = no output)."""
