"""Synchronous message-passing substrate and distributed protocols.

This subpackage is the "systems" half of the reproduction: it simulates the
model of computation of paper §1.2 (synchronous rounds, port numbering, no
node identifiers) faithfully enough that round counts, message counts and
locality radii are meaningful measurements, and implements the paper's
algorithm — plus the safe baseline — as actual protocols on that substrate.
"""

from .agents import (
    DistributedLocalSolver,
    MaxMinAgentNode,
    MaxMinConstraintNode,
    MaxMinObjectiveNode,
    PhaseSchedule,
    VectorizedMaxMinProtocol,
    maxmin_node_factory,
)
from .plane import MessagePlane, VectorizedProtocol
from .dynamics import (
    ChangeImpact,
    DynamicNetwork,
    TickResult,
    changed_agent_positions,
    changed_sites,
    local_horizon_radius,
    measure_change_impact,
    random_churn_delta,
)
from .local_view import ViewTree, view_feasible_omega, view_tree_optimum
from .message import Message, message_size_bytes
from .network import CommunicationNetwork, build_network
from .node import LocalInput, ProtocolNode
from .port_numbering import PortNumbering
from .resilient import (
    AGENT_EXACT,
    AGENT_FAILED,
    AGENT_SAFE,
    DegradationCertificate,
    FaultEvent,
    ResilientLocalSolver,
    ResilientRunResult,
    ResilientRuntime,
    ResilientSafeSolver,
)
from .runtime import RoundStatistics, RunResult, SynchronousRuntime, require_agent_outputs
from .safe_agents import DistributedSafeSolver, SAFE_ALGORITHM_ROUNDS, VectorizedSafeProtocol

__all__ = [
    "Message",
    "message_size_bytes",
    "PortNumbering",
    "LocalInput",
    "ProtocolNode",
    "CommunicationNetwork",
    "build_network",
    "MessagePlane",
    "VectorizedProtocol",
    "VectorizedSafeProtocol",
    "VectorizedMaxMinProtocol",
    "SynchronousRuntime",
    "RunResult",
    "RoundStatistics",
    "require_agent_outputs",
    "ViewTree",
    "view_tree_optimum",
    "view_feasible_omega",
    "PhaseSchedule",
    "MaxMinAgentNode",
    "MaxMinConstraintNode",
    "MaxMinObjectiveNode",
    "maxmin_node_factory",
    "DistributedLocalSolver",
    "DistributedSafeSolver",
    "SAFE_ALGORITHM_ROUNDS",
    "AGENT_EXACT",
    "AGENT_SAFE",
    "AGENT_FAILED",
    "FaultEvent",
    "DegradationCertificate",
    "ResilientRunResult",
    "ResilientRuntime",
    "ResilientLocalSolver",
    "ResilientSafeSolver",
    "ChangeImpact",
    "DynamicNetwork",
    "TickResult",
    "changed_agent_positions",
    "changed_sites",
    "measure_change_impact",
    "local_horizon_radius",
    "random_churn_delta",
]
