"""Distributed realisation of the §5 local algorithm.

The protocol runs in ``12r + 7`` synchronous rounds (``r = R − 2``) and uses
only port numbering:

* **View phase** (rounds ``1 … 4r+2``): every node floods anonymous view
  trees (:class:`~repro.distributed.local_view.ViewTree`).  At the start of
  round ``4r+3`` each agent holds its radius-``(4r+2)`` view — exactly deep
  enough to evaluate the ``f±`` recursion of its alternating tree ``A_u`` —
  and computes ``t_u`` by local binary search.
* **Smoothing phase** (rounds ``4r+3 … 8r+4``): the values ``t_u`` are
  min-flooded for ``4r+2`` rounds, so that at the start of round ``8r+5``
  each agent knows ``s_v = min {t_u : dist(u, v) ≤ 4r+2}`` exactly.
* **g-recursion phase** (rounds ``8r+5 … 12r+7``): the tables ``g±_{v,d}``
  of Eqs. 12–14 are computed with two-round exchanges — objectives return
  sibling sums, constraints forward the partner's contribution — and each
  agent finally outputs Eq. 18.

Agents, constraints and objectives all know the global parameter ``R`` (it
is part of the algorithm, not of the input) but nothing else beyond their
local input; the tests check the outputs coincide with the centralized
reference implementation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._types import NodeType
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..core.validation import require_special_form
from ..exceptions import SimulationError
from .local_view import ViewTree, view_tree_optimum
from .message import Message
from .network import CommunicationNetwork, build_network
from .node import LocalInput, ProtocolNode
from .plane import MessagePlane, VectorizedProtocol
from .runtime import RunResult, SynchronousRuntime, require_agent_outputs

__all__ = [
    "PhaseSchedule",
    "MaxMinAgentNode",
    "MaxMinConstraintNode",
    "MaxMinObjectiveNode",
    "VectorizedMaxMinProtocol",
    "maxmin_node_factory",
    "DistributedLocalSolver",
]


class PhaseSchedule:
    """Round arithmetic shared by every node of the protocol."""

    __slots__ = ("R", "r", "view_rounds", "smooth_rounds", "view_end", "smooth_end", "g_start", "total_rounds")

    def __init__(self, R: int) -> None:
        if R < 2:
            raise ValueError(f"R must be at least 2, got {R}")
        self.R = R
        self.r = R - 2
        self.view_rounds = 4 * self.r + 2
        self.smooth_rounds = 4 * self.r + 2
        self.view_end = self.view_rounds                      # last round of view flooding
        self.smooth_end = self.view_end + self.smooth_rounds  # last round of min flooding
        self.g_start = self.smooth_end + 1                    # first round of the g phase
        self.total_rounds = self.g_start + 4 * self.r + 2     # = 12r + 7

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhaseSchedule(R={self.R}, total_rounds={self.total_rounds})"


class _ViewFloodingMixin:
    """Shared view-flooding behaviour of all three node kinds (rounds 1 … view_end)."""

    def _view_round(self, round_number: int, inbox: Dict[int, Message]) -> Dict[int, Message]:
        if round_number == 1:
            self._view = ViewTree.leaf(self.local_input)
        else:
            received: Dict[int, Tuple[ViewTree, int]] = {}
            for port, message in inbox.items():
                subview, remote_port = message.payload
                received[port] = (subview, remote_port)
            self._view = ViewTree.extend(self.local_input, received)
        outbox: Dict[int, Message] = {}
        for port in range(1, self.degree + 1):
            outbox[port] = Message((self._view, port), phase="view")
        return outbox

    def _assemble_final_view(self, inbox: Dict[int, Message]) -> ViewTree:
        received: Dict[int, Tuple[ViewTree, int]] = {}
        for port, message in inbox.items():
            if message.phase != "view":
                continue
            subview, remote_port = message.payload
            received[port] = (subview, remote_port)
        return ViewTree.extend(self.local_input, received)


class MaxMinAgentNode(ProtocolNode, _ViewFloodingMixin):
    """Protocol behaviour of an agent ``v`` (produces the output ``x_v``)."""

    def __init__(self, graph_node, local_input: LocalInput, schedule: PhaseSchedule, tu_tol: float = 1e-10) -> None:
        super().__init__(graph_node, local_input)
        self.schedule = schedule
        self.tu_tol = tu_tol
        self._view: Optional[ViewTree] = None
        self.t_u: Optional[float] = None
        self.s_v: Optional[float] = None
        self._smooth_min = math.inf
        self.g_plus: List[Optional[float]] = [None] * (schedule.r + 1)
        self.g_minus: List[Optional[float]] = [None] * (schedule.r + 1)
        self._output: Optional[float] = None

    # -- helpers -------------------------------------------------------
    def _objective_port(self) -> int:
        ports = self.local_input.objective_ports()
        if len(ports) != 1:
            raise SimulationError("agent does not have a unique objective port (not special form)")
        return ports[0]

    def _broadcast(self, value: float, phase: str) -> Dict[int, Message]:
        return {port: Message(value, phase=phase) for port in range(1, self.degree + 1)}

    def _maybe_finalize(self) -> None:
        if all(g is not None for g in self.g_plus) and all(g is not None for g in self.g_minus):
            factor = 1.0 / (2.0 * self.schedule.R)
            self._output = factor * sum(
                self.g_plus[d] + self.g_minus[d] for d in range(self.schedule.r + 1)  # type: ignore[operator]
            )

    # -- protocol ------------------------------------------------------
    def compose(self, round_number: int, inbox: Dict[int, Message]) -> Dict[int, Message]:
        sched = self.schedule

        # Phase 1: view flooding.
        if round_number <= sched.view_end:
            return self._view_round(round_number, inbox)

        # Round view_end + 1: final view, local binary search for t_u, start smoothing.
        if round_number == sched.view_end + 1:
            final_view = self._assemble_final_view(inbox)
            self.t_u = view_tree_optimum(final_view, sched.r, tol=self.tu_tol)
            self._smooth_min = self.t_u
            return self._broadcast(self._smooth_min, phase="smooth")

        # Phase 2: min flooding of the t_u values.
        if round_number <= sched.smooth_end:
            for message in inbox.values():
                if message.phase == "smooth":
                    self._smooth_min = min(self._smooth_min, message.payload)
            return self._broadcast(self._smooth_min, phase="smooth")

        # Phase 3: the g recursion.  Offsets are relative to g_start.
        offset = round_number - sched.g_start

        if offset == 0:
            # Final smoothing update: messages sent in round smooth_end have
            # travelled exactly 4r + 2 hops.
            for message in inbox.values():
                if message.phase == "smooth":
                    self._smooth_min = min(self._smooth_min, message.payload)
            self.s_v = self._smooth_min
            self.g_plus[0] = self.local_input.capacity()
            return {self._objective_port(): Message(self.g_plus[0], phase="g-obj")}

        if offset < 0 or offset > 4 * sched.r + 2:
            return {}

        if offset % 4 == 2:
            # Sibling sums arrive from the objective: compute g⁻ at depth d.
            d = offset // 4
            message = inbox.get(self._objective_port())
            if message is None or message.phase != "g-obj-sum":
                raise SimulationError(
                    f"agent {self.graph_node[1]!r} expected a sibling sum on "
                    f"port {self._objective_port()} in round {round_number} "
                    "(message dropped or objective relay failed)"
                )
            sibling_sum = message.payload
            assert self.s_v is not None
            self.g_minus[d] = max(0.0, self.s_v - sibling_sum)
            self._maybe_finalize()
            if d < sched.r:
                # Ship a_iv · g⁻_{v,d} towards every constraint for the next g⁺.
                outbox = {}
                for port in self.local_input.constraint_ports():
                    a_iv = self.local_input.port_coefficients[port]
                    outbox[port] = Message(a_iv * self.g_minus[d], phase="g-con")
                return outbox
            return {}

        if offset % 4 == 0 and offset > 0:
            # Partner contributions arrive from the constraints: compute g⁺ at depth d.
            d = offset // 4
            best = math.inf
            for port in self.local_input.constraint_ports():
                message = inbox.get(port)
                if message is None or message.phase != "g-con-fwd":
                    raise SimulationError(
                        f"agent {self.graph_node[1]!r} expected a partner value "
                        f"on port {port} in round {round_number} "
                        "(message dropped or constraint relay failed)"
                    )
                a_iv = self.local_input.port_coefficients[port]
                candidate = (1.0 - message.payload) / a_iv
                if candidate < best:
                    best = candidate
            self.g_plus[d] = best
            return {self._objective_port(): Message(self.g_plus[d], phase="g-obj")}

        # Odd offsets: relays are working; agents idle.
        return {}

    def output(self) -> Optional[float]:
        return self._output


class MaxMinConstraintNode(ProtocolNode, _ViewFloodingMixin):
    """Constraint relay: floods views, relays minima, forwards partner values."""

    def __init__(self, graph_node, local_input: LocalInput, schedule: PhaseSchedule) -> None:
        super().__init__(graph_node, local_input)
        self.schedule = schedule
        self._view: Optional[ViewTree] = None
        self._smooth_min = math.inf

    def compose(self, round_number: int, inbox: Dict[int, Message]) -> Dict[int, Message]:
        sched = self.schedule
        if round_number <= sched.view_end:
            return self._view_round(round_number, inbox)

        if round_number <= sched.smooth_end:
            for message in inbox.values():
                if message.phase == "smooth":
                    self._smooth_min = min(self._smooth_min, message.payload)
            if math.isfinite(self._smooth_min):
                return {port: Message(self._smooth_min, phase="smooth") for port in range(1, self.degree + 1)}
            return {}

        # g phase: cross-forward whatever the two member agents sent.
        g_messages = {port: m for port, m in inbox.items() if m.phase == "g-con"}
        if g_messages:
            if self.degree != 2:
                raise SimulationError("constraint relay requires degree 2 (special form)")
            outbox: Dict[int, Message] = {}
            for port in (1, 2):
                other = 2 if port == 1 else 1
                if other in g_messages:
                    outbox[port] = Message(g_messages[other].payload, phase="g-con-fwd")
            return outbox
        return {}


class MaxMinObjectiveNode(ProtocolNode, _ViewFloodingMixin):
    """Objective relay: floods views, relays minima, returns sibling sums."""

    def __init__(self, graph_node, local_input: LocalInput, schedule: PhaseSchedule) -> None:
        super().__init__(graph_node, local_input)
        self.schedule = schedule
        self._view: Optional[ViewTree] = None
        self._smooth_min = math.inf

    def compose(self, round_number: int, inbox: Dict[int, Message]) -> Dict[int, Message]:
        sched = self.schedule
        if round_number <= sched.view_end:
            return self._view_round(round_number, inbox)

        if round_number <= sched.smooth_end:
            for message in inbox.values():
                if message.phase == "smooth":
                    self._smooth_min = min(self._smooth_min, message.payload)
            if math.isfinite(self._smooth_min):
                return {port: Message(self._smooth_min, phase="smooth") for port in range(1, self.degree + 1)}
            return {}

        g_messages = {port: m for port, m in inbox.items() if m.phase == "g-obj"}
        if g_messages:
            if len(g_messages) != self.degree:
                missing = [p for p in range(1, self.degree + 1) if p not in g_messages]
                raise SimulationError(
                    f"objective relay {self.graph_node[1]!r} expected g values on "
                    f"all {self.degree} ports, got {len(g_messages)} "
                    f"(missing ports {missing[:5]})"
                )
            total = sum(m.payload for m in g_messages.values())
            return {
                port: Message(total - g_messages[port].payload, phase="g-obj-sum")
                for port in range(1, self.degree + 1)
            }
        return {}


class VectorizedMaxMinProtocol(VectorizedProtocol):
    """The §5 protocol as whole-plane array operations per round.

    The round structure, message pattern and arithmetic follow the per-node
    classes above exactly — the equivalence tests pin outputs and per-round
    message counts against the dict-based oracle.  The one deliberate
    difference is the view phase: its payloads are structural (whole
    anonymous view trees), which a float-valued plane cannot carry, so the
    flood is marked on the plane for accounting while the quantity each
    agent would read off its assembled view — the alternating-tree optimum
    ``t_u`` — is evaluated at the phase boundary by the batched bisection
    kernel (:func:`repro.algo.kernels.batched_upper_bounds`), which computes
    the same binary search each agent performs locally in the oracle.
    """

    def __init__(self, schedule: PhaseSchedule, tu_tol: float = 1e-10) -> None:
        self.schedule = schedule
        self.tu_tol = tu_tol

    # -- lifecycle -----------------------------------------------------
    def begin(self, plane: MessagePlane) -> None:
        comp = plane.comp
        n, m, K = comp.num_agents, comp.num_constraints, comp.num_objectives
        r = self.schedule.r
        self._plane = plane
        # Slot/entry owners for broadcast scatters.
        self._agent_slot_owner = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(plane.agent_indptr)
        )
        self._con_entry_owner = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(comp.con_indptr)
        )
        self._con_slot_owner = np.repeat(
            np.arange(m, dtype=np.int64), comp.constraint_degrees
        )
        self._obj_slot_owner = np.repeat(
            np.arange(K, dtype=np.int64), comp.objective_degrees
        )
        self.t_u: Optional[np.ndarray] = None
        self.s_v: Optional[np.ndarray] = None
        self._agent_min = np.full(n, math.inf)
        self._con_min = np.full(m, math.inf)
        self._obj_min = np.full(K, math.inf)
        self.g_plus: List[Optional[np.ndarray]] = [None] * (r + 1)
        self.g_minus: List[Optional[np.ndarray]] = [None] * (r + 1)

    # -- helpers -------------------------------------------------------
    def _expect(self, inbox_mask: np.ndarray, slots: np.ndarray, what: str, rn: int) -> None:
        ok = inbox_mask[slots]
        if not ok.all():
            plane = self._plane
            missing = np.asarray(slots)[~ok]
            links = "; ".join(
                plane.describe_slot(int(plane.reverse[s])) for s in missing[:5]
            )
            raise SimulationError(
                f"round {rn}: expected {what} but {len(missing)} message(s) "
                f"never arrived (missing: {links})"
            )

    def _smooth_update(
        self, inbox_mask: np.ndarray, inbox_values: np.ndarray, plane: MessagePlane
    ) -> None:
        """Fold the delivered ``smooth`` broadcasts into every node's min."""
        comp = plane.comp
        # Agents: constraint relays arrive on the con slots, the unique
        # objective relay on the obj slot (|K_v| = 1 in special form).
        con_in = np.where(
            inbox_mask[plane.agent_con_slots], inbox_values[plane.agent_con_slots], math.inf
        )
        obj_in = np.where(
            inbox_mask[plane.agent_obj_slots], inbox_values[plane.agent_obj_slots], math.inf
        )
        np.minimum(self._agent_min, comp.agent_constraint_min(con_in), out=self._agent_min)
        np.minimum(self._agent_min, obj_in, out=self._agent_min)
        # Constraint and objective relays: min over their member agents.
        lo, hi = plane.con_slot_range()
        if hi > lo:
            con_block = np.where(inbox_mask[lo:hi], inbox_values[lo:hi], math.inf)
            np.minimum(
                self._con_min,
                np.minimum.reduceat(con_block, comp.cagents_indptr[:-1]),
                out=self._con_min,
            )
        lo, hi = plane.obj_slot_range()
        if hi > lo:
            obj_block = np.where(inbox_mask[lo:hi], inbox_values[lo:hi], math.inf)
            np.minimum(
                self._obj_min,
                np.minimum.reduceat(obj_block, comp.oagents_indptr[:-1]),
                out=self._obj_min,
            )

    def _broadcast_smooth(self, plane: MessagePlane) -> Tuple[np.ndarray, np.ndarray]:
        """Agents always re-broadcast; relays broadcast once their min is finite."""
        mask, values = plane.empty_round()
        n_agent_slots = plane.con_base
        mask[:n_agent_slots] = True
        values[:n_agent_slots] = self._agent_min[self._agent_slot_owner]
        lo, hi = plane.con_slot_range()
        finite = np.isfinite(self._con_min)
        mask[lo:hi] = finite[self._con_slot_owner]
        values[lo:hi] = np.where(mask[lo:hi], self._con_min[self._con_slot_owner], 0.0)
        lo, hi = plane.obj_slot_range()
        finite = np.isfinite(self._obj_min)
        mask[lo:hi] = finite[self._obj_slot_owner]
        values[lo:hi] = np.where(mask[lo:hi], self._obj_min[self._obj_slot_owner], 0.0)
        return mask, values

    # -- protocol ------------------------------------------------------
    def compose(
        self,
        round_number: int,
        inbox_mask: np.ndarray,
        inbox_values: np.ndarray,
        plane: MessagePlane,
    ) -> Tuple[np.ndarray, np.ndarray]:
        sched = self.schedule
        comp = plane.comp

        # Phase 1: view flooding — every node sends on every port.
        if round_number <= sched.view_end:
            return np.ones(plane.num_slots, dtype=bool), np.zeros(plane.num_slots)

        # Round view_end + 1: t_u from the assembled views, start smoothing.
        if round_number == sched.view_end + 1:
            from ..algo.kernels import batched_upper_bounds

            self.t_u = batched_upper_bounds(comp, sched.r, method="recursion", tol=self.tu_tol)
            self._agent_min = self.t_u.copy()
            return self._broadcast_smooth(plane)

        # Phase 2: min flooding of the t_u values.
        if round_number <= sched.smooth_end:
            self._smooth_update(inbox_mask, inbox_values, plane)
            return self._broadcast_smooth(plane)

        # Phase 3: the g recursion.  Offsets are relative to g_start.
        offset = round_number - sched.g_start
        mask, values = plane.empty_round()

        if offset == 0:
            # Final smoothing update (messages from round smooth_end), then
            # kick off the recursion with g⁺_{v,0} = capacity.
            self._smooth_update(inbox_mask, inbox_values, plane)
            self.s_v = self._agent_min.copy()
            self.g_plus[0] = comp.capacity
            mask[plane.agent_obj_slots] = True
            values[plane.agent_obj_slots] = self.g_plus[0]
            return mask, values

        if offset < 0 or offset > 4 * sched.r + 2:
            return mask, values

        if offset % 4 == 1:
            # Objectives return sibling sums for the g values they received.
            lo, hi = plane.obj_slot_range()
            self._expect(inbox_mask, np.arange(lo, hi), "g values on all objective ports", round_number)
            g_in = inbox_values[lo:hi]
            totals = np.add.reduceat(g_in, comp.oagents_indptr[:-1])
            mask[lo:hi] = True
            values[lo:hi] = totals[self._obj_slot_owner] - g_in
            return mask, values

        if offset % 4 == 2:
            # Sibling sums arrive from the objective: compute g⁻ at depth d.
            d = offset // 4
            self._expect(inbox_mask, plane.agent_obj_slots, "a sibling sum", round_number)
            sibling_sum = inbox_values[plane.agent_obj_slots]
            assert self.s_v is not None
            self.g_minus[d] = np.maximum(0.0, self.s_v - sibling_sum)
            if d < sched.r:
                # Ship a_iv · g⁻_{v,d} towards every constraint for the next g⁺.
                mask[plane.agent_con_slots] = True
                values[plane.agent_con_slots] = (
                    comp.con_coeff * self.g_minus[d][self._con_entry_owner]
                )
            return mask, values

        if offset % 4 == 3:
            # Constraints cross-forward the two member contributions.
            lo, hi = plane.con_slot_range()
            self._expect(inbox_mask, np.arange(lo, hi), "partner values on both ports", round_number)
            mask[lo:hi] = True
            values[lo:hi] = inbox_values[lo:hi].reshape(-1, 2)[:, ::-1].ravel()
            return mask, values

        # offset % 4 == 0, offset > 0: partner contributions arrive from the
        # constraints — compute g⁺ at depth d and hand it to the objective.
        d = offset // 4
        self._expect(inbox_mask, plane.agent_con_slots, "a partner value", round_number)
        forwarded = inbox_values[plane.agent_con_slots]
        self.g_plus[d] = comp.agent_constraint_min((1.0 - forwarded) / comp.con_coeff)
        mask[plane.agent_obj_slots] = True
        values[plane.agent_obj_slots] = self.g_plus[d]
        return mask, values

    def outputs(self, plane: MessagePlane) -> np.ndarray:
        if any(g is None for g in self.g_plus) or any(g is None for g in self.g_minus):
            return np.full(plane.num_agents, np.nan)
        factor = 1.0 / (2.0 * self.schedule.R)
        total = np.zeros(plane.num_agents)
        for d in range(self.schedule.r + 1):
            total += self.g_plus[d] + self.g_minus[d]  # type: ignore[operator]
        return factor * total


def maxmin_node_factory(schedule: PhaseSchedule, tu_tol: float = 1e-10):
    """Create the node factory used by :class:`SynchronousRuntime`."""

    def factory(network: CommunicationNetwork, graph_node) -> ProtocolNode:
        local_input = network.local_input(graph_node)
        if local_input.kind is NodeType.AGENT:
            return MaxMinAgentNode(graph_node, local_input, schedule, tu_tol=tu_tol)
        if local_input.kind is NodeType.CONSTRAINT:
            return MaxMinConstraintNode(graph_node, local_input, schedule)
        return MaxMinObjectiveNode(graph_node, local_input, schedule)

    return factory


class DistributedLocalSolver:
    """Run the §5 algorithm as an actual message-passing protocol.

    Only special-form instances are accepted: the §4 transformations are
    locally computable (paper §4.1) but are performed centrally in this
    library; use :class:`repro.algo.LocalMaxMinSolver` for arbitrary
    instances (or transform first and map the solution back yourself).

    ``backend="vectorized"`` (default) drives :class:`VectorizedMaxMinProtocol`
    over the int-indexed message plane; ``"reference"`` walks the per-node
    dicts and is kept as the fidelity oracle.  Byte accounting needs real
    message objects, so ``measure_bytes=True`` always takes the reference
    path.
    """

    def __init__(
        self,
        R: int = 3,
        *,
        tu_tol: float = 1e-10,
        backend: str = "vectorized",
        measure_bytes: bool = False,
    ) -> None:
        if backend not in ("vectorized", "reference"):
            raise ValueError(f"unknown backend {backend!r} (expected 'vectorized' or 'reference')")
        self.schedule = PhaseSchedule(R)
        self.tu_tol = tu_tol
        self.backend = backend
        self.measure_bytes = measure_bytes

    @property
    def R(self) -> int:
        return self.schedule.R

    @property
    def local_horizon(self) -> int:
        """The number of synchronous rounds the protocol needs (``12r + 7``)."""
        return self.schedule.total_rounds

    def solve(self, instance: MaxMinInstance) -> Tuple[Solution, RunResult]:
        """Execute the protocol and return the solution plus run statistics."""
        require_special_form(instance)
        if self.backend == "vectorized" and not self.measure_bytes:
            runtime = SynchronousRuntime(plane=MessagePlane(instance))
            result = runtime.run_vectorized(
                VectorizedMaxMinProtocol(self.schedule, tu_tol=self.tu_tol),
                rounds=self.schedule.total_rounds,
            )
        else:
            network = build_network(instance)
            runtime = SynchronousRuntime(network, measure_bytes=self.measure_bytes)
            result = runtime.run(
                maxmin_node_factory(self.schedule, tu_tol=self.tu_tol),
                rounds=self.schedule.total_rounds,
            )
        require_agent_outputs(instance, result)
        solution = Solution(instance, result.outputs, label=f"distributed-R{self.R}")
        return solution, result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedLocalSolver(R={self.R}, rounds={self.local_horizon}, "
            f"backend={self.backend!r})"
        )
