"""Distributed realisation of the *safe algorithm* baseline.

The safe algorithm (prior work [8, 16]) needs a single exchange: every
constraint tells its members its degree ``|V_i|``, and every agent outputs

.. math:: x_v = \\min_{i \\in I_v} \\frac{1}{|V_i| \\, a_{iv}}.

Two synchronous rounds therefore suffice — the protocol is mostly useful as
the baseline for the round/message accounting of experiment E5 and as the
simplest possible example of a protocol on the runtime.

Both runtime backends are implemented: the per-node classes below run on the
dict-based oracle, and :class:`VectorizedSafeProtocol` runs the identical
exchange on the int-indexed message plane (degrees go out as one
``np.repeat``, the safe share comes back as one segment-min).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from .._types import NodeType
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..core.validation import require_nondegenerate
from ..exceptions import SimulationError
from .message import Message
from .network import CommunicationNetwork, build_network
from .node import LocalInput, ProtocolNode
from .plane import MessagePlane, VectorizedProtocol
from .runtime import RunResult, SynchronousRuntime, require_agent_outputs

__all__ = [
    "SafeAgentNode",
    "SafeConstraintNode",
    "SafeSilentNode",
    "VectorizedSafeProtocol",
    "DistributedSafeSolver",
]

#: The safe protocol's local horizon.
SAFE_ALGORITHM_ROUNDS = 2


class SafeConstraintNode(ProtocolNode):
    """Round 1: announce the constraint degree to every member agent."""

    def compose(self, round_number: int, inbox: Dict[int, Message]) -> Dict[int, Message]:
        if round_number == 1:
            return {port: Message(self.degree, phase="safe-degree") for port in range(1, self.degree + 1)}
        return {}


class SafeSilentNode(ProtocolNode):
    """Objectives take no part in the safe algorithm."""

    def compose(self, round_number: int, inbox: Dict[int, Message]) -> Dict[int, Message]:
        return {}


class SafeAgentNode(ProtocolNode):
    """Round 2: combine the received degrees with the local coefficients."""

    def __init__(self, graph_node, local_input: LocalInput) -> None:
        super().__init__(graph_node, local_input)
        self._output: Optional[float] = None

    def compose(self, round_number: int, inbox: Dict[int, Message]) -> Dict[int, Message]:
        if round_number == 2:
            best = math.inf
            for port in self.local_input.constraint_ports():
                message = inbox.get(port)
                if message is None or message.phase != "safe-degree":
                    raise SimulationError(
                        f"safe agent {self.graph_node[1]!r} did not receive a "
                        f"constraint degree on port {port} in round {round_number} "
                        "(message dropped or constraint failed)"
                    )
                a_iv = self.local_input.port_coefficients[port]
                best = min(best, 1.0 / (message.payload * a_iv))
            self._output = best
        return {}

    def output(self) -> Optional[float]:
        return self._output


class VectorizedSafeProtocol(VectorizedProtocol):
    """The same two-round exchange as whole-plane array operations."""

    def begin(self, plane: MessagePlane) -> None:
        self._x: Optional[np.ndarray] = None

    def compose(
        self,
        round_number: int,
        inbox_mask: np.ndarray,
        inbox_values: np.ndarray,
        plane: MessagePlane,
    ) -> Tuple[np.ndarray, np.ndarray]:
        comp = plane.comp
        mask, values = plane.empty_round()
        if round_number == 1:
            # Every constraint broadcasts its degree on all its ports.
            lo, hi = plane.con_slot_range()
            mask[lo:hi] = True
            degrees = comp.constraint_degrees
            values[lo:hi] = np.repeat(degrees, degrees).astype(np.float64)
        elif round_number == 2:
            received = inbox_values[plane.agent_con_slots]
            got = inbox_mask[plane.agent_con_slots]
            if not got.all():
                missing = plane.agent_con_slots[~got]
                links = "; ".join(
                    plane.describe_slot(int(plane.reverse[s])) for s in missing[:5]
                )
                raise SimulationError(
                    f"round {round_number}: {len(missing)} safe agent(s) did not "
                    f"receive a constraint degree (missing: {links})"
                )
            self._x = comp.agent_constraint_min(1.0 / (received * comp.con_coeff))
        return mask, values

    def outputs(self, plane: MessagePlane) -> np.ndarray:
        if self._x is None:
            return np.full(plane.num_agents, np.nan)
        return self._x


def _safe_node_factory(network: CommunicationNetwork, graph_node) -> ProtocolNode:
    local_input = network.local_input(graph_node)
    if local_input.kind is NodeType.AGENT:
        return SafeAgentNode(graph_node, local_input)
    if local_input.kind is NodeType.CONSTRAINT:
        return SafeConstraintNode(graph_node, local_input)
    return SafeSilentNode(graph_node, local_input)


class DistributedSafeSolver:
    """Run the safe algorithm as a 2-round message-passing protocol.

    Parameters
    ----------
    backend:
        ``"vectorized"`` (default) drives the protocol over the int-indexed
        message plane; ``"reference"`` walks the per-node dicts.  Byte
        accounting needs real message objects, so ``measure_bytes=True``
        always takes the reference path.
    """

    def __init__(self, *, backend: str = "vectorized", measure_bytes: bool = False) -> None:
        if backend not in ("vectorized", "reference"):
            raise ValueError(f"unknown backend {backend!r} (expected 'vectorized' or 'reference')")
        self.backend = backend
        self.measure_bytes = measure_bytes

    @property
    def local_horizon(self) -> int:
        return SAFE_ALGORITHM_ROUNDS

    def solve(self, instance: MaxMinInstance) -> Tuple[Solution, RunResult]:
        require_nondegenerate(instance)
        if self.backend == "vectorized" and not self.measure_bytes:
            runtime = SynchronousRuntime(plane=MessagePlane(instance))
            result = runtime.run_vectorized(VectorizedSafeProtocol(), rounds=SAFE_ALGORITHM_ROUNDS)
        else:
            network = build_network(instance)
            runtime = SynchronousRuntime(network, measure_bytes=self.measure_bytes)
            result = runtime.run(_safe_node_factory, rounds=SAFE_ALGORITHM_ROUNDS)
        require_agent_outputs(instance, result)
        solution = Solution(instance, result.outputs, label="distributed-safe")
        return solution, result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistributedSafeSolver(backend={self.backend!r})"
