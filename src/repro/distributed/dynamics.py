"""Locality as a dynamic-graph property — measurement and a streaming workload.

A local algorithm with horizon ``D`` is automatically a dynamic graph
algorithm: when the input changes at one node, only the outputs within
distance ``D`` of the change can be affected (paper §1.3).  This module has
two layers:

* the *oracle* layer (:func:`changed_sites`, :func:`measure_change_impact`)
  finds where two instances differ, re-runs a solver on both, and reports
  how far from the change any output actually moved — the tests assert no
  output changes outside the horizon;
* the *streaming* layer (:class:`DynamicNetwork`) turns the locality bound
  into an incremental solver: it holds an
  :class:`~repro.algo.local_solver.IncrementalSolveState`, applies churn
  tick by tick via :class:`~repro.core.compiled.CompiledDelta`, re-solves
  only the dirty r-ball, and (in ``verify`` mode) checks every tick against
  the from-scratch solve and the locality oracle.  The ``maxmin-lp
  dynamics`` CLI command and ``benchmarks/bench_dynamics.py`` drive it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple, Union

import networkx as nx
import numpy as np

from .. import obs
from .._types import GraphNode, NodeId, agent_node
from ..core.compiled import CompiledDelta, DeltaResult
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..exceptions import SimulationError

__all__ = [
    "ChangeImpact",
    "DynamicNetwork",
    "TickResult",
    "changed_agent_positions",
    "changed_sites",
    "local_horizon_radius",
    "measure_change_impact",
    "random_churn_delta",
]


def local_horizon_radius(R: int) -> int:
    """Graph-distance radius within which the output of the §5 algorithm may depend on the input.

    The distributed protocol runs ``12r + 7`` rounds, but information only
    has to travel along the three phases: view gathering (``4r + 2``),
    smoothing (``4r + 2``) and the ``g`` exchanges (``4r + 2`` edge hops).
    An input change at distance larger than the sum cannot influence an
    agent's output.
    """
    r = R - 2
    return 3 * (4 * r + 2)


def changed_agent_positions(before: MaxMinInstance, after: MaxMinInstance) -> np.ndarray:
    """Positions (in ``after``) of agents incident to any difference.

    The vectorized counterpart of :func:`changed_sites`: when the node
    tuples agree the comparison runs entirely on the compiled CSR arrays —
    equal-topology instances diff in three array comparisons, membership
    changes fall back to a sorted edge-key merge.  Instances with different
    node tuples take the dict-based path and map the sites into ``after``'s
    agent order (vanished agents have no position there; their surviving
    neighbours are flagged through the edges they lost).
    """
    if before is after:
        return np.empty(0, dtype=np.int64)
    bc = before.compiled()
    ac = after.compiled()
    if (
        before.agents == after.agents
        and before.constraints == after.constraints
        and before.objectives == after.objectives
    ):
        n = ac.num_agents
        dirty = np.zeros(n, dtype=bool)
        sides = (
            (bc.con_indptr, bc.con_indices, bc.con_coeff,
             ac.con_indptr, ac.con_indices, ac.con_coeff),
            (bc.obj_indptr, bc.obj_indices, bc.obj_coeff,
             ac.obj_indptr, ac.obj_indices, ac.obj_coeff),
        )
        for b_ip, b_ix, b_co, a_ip, a_ix, a_co in sides:
            if np.array_equal(b_ip, a_ip) and np.array_equal(b_ix, a_ix):
                diff = b_co != a_co
                if diff.any():
                    owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(a_ip))
                    dirty[owner[diff]] = True
                continue
            # Membership changed: compare (agent, relay) edge keys.  Forward
            # CSR rows are sorted by member, so owner-major keys are sorted.
            span = max(int(b_ix.max(initial=-1)), int(a_ix.max(initial=-1))) + 1
            b_owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(b_ip))
            a_owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(a_ip))
            b_key = b_owner * span + b_ix
            a_key = a_owner * span + a_ix
            b_common = np.isin(b_key, a_key)
            a_common = np.isin(a_key, b_key)
            dirty[b_owner[~b_common]] = True
            dirty[a_owner[~a_common]] = True
            pos = np.searchsorted(a_key, b_key[b_common])
            edited = b_co[b_common] != a_co[pos]
            dirty[b_owner[b_common][edited]] = True
        return np.flatnonzero(dirty)

    sites = _changed_sites_dicts(before, after)
    index = ac.agent_index
    positions = sorted(
        index[node_id]
        for kind, node_id in sites
        if node_id in index and after.has_agent(node_id)
    )
    return np.asarray(positions, dtype=np.int64)


def changed_sites(before: MaxMinInstance, after: MaxMinInstance) -> Set[GraphNode]:
    """Graph nodes incident to any structural or coefficient difference."""
    if (
        before.agents == after.agents
        and before.constraints == after.constraints
        and before.objectives == after.objectives
    ):
        positions = changed_agent_positions(before, after)
        return {agent_node(after.agents[int(p)]) for p in positions}
    return _changed_sites_dicts(before, after)


def _changed_sites_dicts(before: MaxMinInstance, after: MaxMinInstance) -> Set[GraphNode]:
    """Dict-based reference diff (handles differing node sets)."""
    sites: Set[GraphNode] = set()

    before_a = before.a_coefficients
    after_a = after.a_coefficients
    for key in set(before_a) | set(after_a):
        if before_a.get(key) != after_a.get(key):
            i, v = key
            sites.add(agent_node(v))
    before_c = before.c_coefficients
    after_c = after.c_coefficients
    for key in set(before_c) | set(after_c):
        if before_c.get(key) != after_c.get(key):
            k, v = key
            sites.add(agent_node(v))

    for v in set(before.agents) ^ set(after.agents):
        sites.add(agent_node(v))
    return sites


class ChangeImpact:
    """How far the effect of a local input change travelled.

    Attributes
    ----------
    changed_agents:
        Agents whose output differs (beyond ``tol``) between the two runs.
    max_distance:
        Largest graph distance from any changed agent to the nearest change
        site (0 when no output changed).
    horizon:
        The radius the algorithm is allowed to look at; locality demands
        ``max_distance ≤ horizon``.
    """

    __slots__ = ("changed_agents", "max_distance", "horizon", "distances")

    def __init__(
        self,
        changed_agents: Tuple[NodeId, ...],
        max_distance: int,
        horizon: int,
        distances: Dict[NodeId, int],
    ) -> None:
        self.changed_agents = changed_agents
        self.max_distance = max_distance
        self.horizon = horizon
        self.distances = distances

    @property
    def is_local(self) -> bool:
        """True when every affected agent lies within the declared horizon."""
        return self.max_distance <= self.horizon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChangeImpact(changed={len(self.changed_agents)}, "
            f"max_distance={self.max_distance}, horizon={self.horizon}, local={self.is_local})"
        )


def measure_change_impact(
    before: MaxMinInstance,
    after: MaxMinInstance,
    solver: Callable[[MaxMinInstance], Solution],
    horizon: int,
    tol: float = 1e-9,
) -> ChangeImpact:
    """Run ``solver`` on both instances and measure how far outputs moved.

    ``solver`` must be a deterministic function returning a
    :class:`Solution`; agents present in only one instance are ignored.
    """
    sites = changed_sites(before, after)
    if not sites:
        raise SimulationError("the two instances are identical; nothing to measure")

    solution_before = solver(before)
    solution_after = solver(after)

    common_agents = [v for v in before.agents if after.has_agent(v)]
    changed: List[NodeId] = [
        v
        for v in common_agents
        if abs(solution_before[v] - solution_after[v]) > tol
    ]

    # communication_graph() returns the instance's cached graph; copy before
    # adding the vanished nodes of the old topology.
    graph = after.communication_graph().copy()
    for node in before.communication_graph().nodes:
        if node not in graph:
            graph.add_node(node)

    distances: Dict[NodeId, int] = {}
    max_distance = 0
    if changed:
        # Multi-source BFS from every change site.
        lengths = nx.multi_source_dijkstra_path_length(graph, [s for s in sites if s in graph])
        for v in changed:
            dist = int(lengths.get(agent_node(v), len(graph)))
            distances[v] = dist
            max_distance = max(max_distance, dist)

    return ChangeImpact(tuple(changed), max_distance, horizon, distances)


class TickResult:
    """What one :meth:`DynamicNetwork.apply` tick did.

    Attributes
    ----------
    tick:
        1-based tick number.
    num_agents:
        Agents in the instance *after* the tick.
    dirty_agents:
        Agent positions (new indexing) whose adjacency or coefficients the
        delta touched — the seeds of the confined re-solve.
    recomputed_agents:
        Agent positions whose kernel state was actually recomputed (the
        ``6r+3``-hop ball around the seeds); everything else was reused.
    structural:
        Whether the delta changed the topology (not just coefficients).
    impact:
        The :class:`ChangeImpact` oracle measurement (``verify`` mode only).
    max_error:
        Max abs deviation of the incremental ``x`` from a from-scratch solve
        (``verify`` mode only; the invariant is bitwise, so this is 0.0).
    """

    __slots__ = (
        "tick",
        "num_agents",
        "dirty_agents",
        "recomputed_agents",
        "structural",
        "impact",
        "max_error",
    )

    def __init__(
        self,
        tick: int,
        num_agents: int,
        dirty_agents: np.ndarray,
        recomputed_agents: np.ndarray,
        structural: bool,
        impact: Optional[ChangeImpact] = None,
        max_error: Optional[float] = None,
    ) -> None:
        self.tick = tick
        self.num_agents = num_agents
        self.dirty_agents = dirty_agents
        self.recomputed_agents = recomputed_agents
        self.structural = structural
        self.impact = impact
        self.max_error = max_error

    @property
    def reused_agents(self) -> int:
        """Agents whose retained kernel state survived the tick untouched."""
        return self.num_agents - len(self.recomputed_agents)

    @property
    def is_local(self) -> bool:
        """True unless the verify oracle saw an output move beyond the horizon."""
        return self.impact is None or self.impact.is_local

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TickResult(tick={self.tick}, dirty={len(self.dirty_agents)}, "
            f"recomputed={len(self.recomputed_agents)}, reused={self.reused_agents}, "
            f"structural={self.structural})"
        )


class DynamicNetwork:
    """A special-form instance under churn, re-solved incrementally per tick.

    The streaming counterpart of the static solve pipeline: construction
    pays one full vectorized solve, after which every tick applies a
    :class:`~repro.core.compiled.CompiledDelta`, re-runs the kernels only on
    the dirty ``6r+3``-hop ball
    (:class:`~repro.algo.local_solver.IncrementalSolveState`) and carries
    the message plane across the delta when one has been built.  Per-tick
    cost is O(changed · r-ball) instead of O(n) — the paper's §1.3 dynamic
    graph property made operational.

    With ``verify=True`` every tick is checked two ways: the incremental
    state must match a from-scratch solve of the edited instance, and
    :func:`measure_change_impact` must confirm no output moved farther than
    ``horizon`` (default :func:`local_horizon_radius`).  Both violations
    raise :class:`SimulationError`.
    """

    def __init__(
        self,
        instance: MaxMinInstance,
        R: int = 3,
        *,
        tu_method: str = "recursion",
        tu_tol: Optional[float] = None,
        verify: bool = False,
        horizon: Optional[int] = None,
    ) -> None:
        from ..algo.local_solver import DEFAULT_BISECTION_TOL, IncrementalSolveState, SpecialFormLocalSolver

        self.solver = SpecialFormLocalSolver(
            R,
            tu_method=tu_method,
            tu_tol=DEFAULT_BISECTION_TOL if tu_tol is None else tu_tol,
        )
        self.state = IncrementalSolveState(self.solver, instance)
        self.verify = verify
        self.horizon = local_horizon_radius(R) if horizon is None else int(horizon)
        self.ticks = 0
        self._plane = None

    @property
    def instance(self) -> MaxMinInstance:
        """The current (post-churn) instance."""
        return self.state.instance

    @property
    def solution(self) -> Solution:
        """The current solution (a copy; the retained arrays keep evolving)."""
        return self.state.result().solution

    def result(self):
        """The full :class:`SpecialFormSolveResult` for the current instance."""
        return self.state.result()

    @property
    def plane(self):
        """The message plane of the current instance (built once, then patched)."""
        from .plane import MessagePlane

        if self._plane is None:
            self._plane = MessagePlane(self.instance)
        return self._plane

    def begin_delta(self) -> CompiledDelta:
        """A fresh :class:`CompiledDelta` against the current instance."""
        return self.state.comp.delta()

    def apply(self, delta: Union[CompiledDelta, DeltaResult]) -> TickResult:
        """Apply one churn delta and incrementally re-solve.

        Accepts either an unapplied :class:`CompiledDelta` (from
        :meth:`begin_delta`) or an already-applied :class:`DeltaResult`
        against the current instance.
        """
        before = self.state.instance
        result = delta.apply() if isinstance(delta, CompiledDelta) else delta
        recomputed = self.state.apply_delta(result)
        num_agents = self.state.comp.num_agents
        self.ticks += 1
        obs.count("dynamics.ticks")
        obs.count("dynamics.dirty_agents", len(result.dirty_agents))
        obs.count("dynamics.reused_agents", num_agents - len(recomputed))
        if self._plane is not None and not result.identity:
            self._plane = self._plane.updated(result)

        impact: Optional[ChangeImpact] = None
        max_error: Optional[float] = None
        if self.verify and not result.identity:
            from ..algo.local_solver import IncrementalSolveState

            fresh = IncrementalSolveState(self.solver, self.state.instance)
            max_error = (
                float(np.max(np.abs(fresh.x - self.state.x))) if num_agents else 0.0
            )
            if max_error > 1e-9:
                raise SimulationError(
                    f"incremental re-solve deviates from scratch solve by {max_error:.3e} "
                    f"at tick {self.ticks}"
                )
            impact = measure_change_impact(
                before,
                self.state.instance,
                lambda inst: self.solver.solve(inst).solution,
                self.horizon,
            )
            if not impact.is_local:
                raise SimulationError(
                    f"output moved {impact.max_distance} > horizon {impact.horizon} "
                    f"at tick {self.ticks}"
                )

        return TickResult(
            self.ticks,
            num_agents,
            result.dirty_agents,
            recomputed,
            result.structural,
            impact,
            max_error,
        )

    def random_tick(
        self,
        rng: np.random.Generator,
        *,
        edits: int = 1,
        structural_prob: float = 0.3,
    ) -> TickResult:
        """Apply one random special-form-preserving churn delta."""
        delta = random_churn_delta(
            self.instance, rng, edits=edits, structural_prob=structural_prob
        )
        return self.apply(delta)


def _fresh_ids(prefix: str, taken) -> Iterator[str]:
    """Yield ``~dyn…`` node ids that do not collide with ``taken``."""
    seq = 0
    while True:
        candidate = f"~dyn{prefix}{seq}"
        seq += 1
        if candidate not in taken:
            yield candidate


def random_churn_delta(
    instance: MaxMinInstance,
    rng: np.random.Generator,
    *,
    edits: int = 1,
    structural_prob: float = 0.3,
) -> CompiledDelta:
    """A random churn delta that keeps ``instance`` in §2 special form.

    Each of the ``edits`` operations is, with probability
    ``structural_prob``, a structural change (add a pairing constraint, drop
    a removable constraint, add an agent into an existing objective, or
    remove an agent together with its constraints) and otherwise a
    coefficient jitter (×[0.5, 2)).  All special-form invariants are
    preserved by construction: constraints keep exactly two members, every
    agent keeps ≥ 1 constraint and exactly one objective, objectives keep
    ≥ 2 members, objective coefficients stay 1.  Operations whose
    preconditions no instance node satisfies degrade to a jitter, so the
    returned delta always carries exactly ``edits`` operations (a structural
    operation may span several individual edge edits).
    """
    delta = instance.compiled().delta()

    # Local bookkeeping so several operations can stack inside one delta.
    a_co: Dict[Tuple[NodeId, NodeId], float] = dict(instance.a_coefficients)
    cons_of: Dict[NodeId, Set[NodeId]] = {
        v: set(instance.constraints_of_agent(v)) for v in instance.agents
    }
    members: Dict[NodeId, Tuple[NodeId, ...]] = {
        i: tuple(instance.agents_of_constraint(i)) for i in instance.constraints
    }
    obj_members: Dict[NodeId, Set[NodeId]] = {
        k: set(instance.agents_of_objective(k)) for k in instance.objectives
    }
    obj_of: Dict[NodeId, NodeId] = {
        v: instance.objectives_of_agent(v)[0] for v in instance.agents
    }
    live_agents: List[NodeId] = list(instance.agents)
    base_cons: List[NodeId] = list(instance.constraints)
    removable = set(base_cons)

    agent_ids = _fresh_ids("A", set(instance.agents))
    con_ids = _fresh_ids("C", set(instance.constraints))

    def pick(pool: List[NodeId]) -> NodeId:
        return pool[int(rng.integers(len(pool)))]

    def jitter() -> None:
        live_base = [i for i in base_cons if i in members]
        i = pick(live_base)
        v = members[i][int(rng.integers(len(members[i])))]
        new_coeff = a_co[(i, v)] * float(rng.uniform(0.5, 2.0))
        delta.set_constraint_coefficient(i, v, new_coeff)
        a_co[(i, v)] = new_coeff

    def add_constraint() -> bool:
        if len(live_agents) < 2:
            return False
        u = pick(live_agents)
        w = pick(live_agents)
        if u == w:
            w = live_agents[(live_agents.index(u) + 1) % len(live_agents)]
        i = next(con_ids)
        delta.set_constraint_coefficient(i, u, 1.0)
        delta.set_constraint_coefficient(i, w, 1.0)
        members[i] = (u, w)
        cons_of[u].add(i)
        cons_of[w].add(i)
        a_co[(i, u)] = 1.0
        a_co[(i, w)] = 1.0
        return True

    def drop_constraint() -> bool:
        candidates = [
            i
            for i in removable
            if all(len(cons_of[v]) >= 2 for v in members[i])
        ]
        if not candidates:
            return False
        i = sorted(candidates)[int(rng.integers(len(candidates)))]
        delta.remove_constraint(i)
        for v in members[i]:
            cons_of[v].discard(i)
            a_co.pop((i, v), None)
        removable.discard(i)
        del members[i]
        return True

    def add_agent() -> bool:
        k = pick(sorted(obj_members))
        w = pick(live_agents)
        v = next(agent_ids)
        delta.add_agent(v)
        delta.set_objective_coefficient(k, v, 1.0)
        i = next(con_ids)
        delta.set_constraint_coefficient(i, v, 1.0)
        delta.set_constraint_coefficient(i, w, 1.0)
        obj_members[k].add(v)
        obj_of[v] = k
        cons_of[v] = {i}
        cons_of[w].add(i)
        members[i] = (v, w)
        a_co[(i, v)] = 1.0
        a_co[(i, w)] = 1.0
        live_agents.append(v)
        return True

    def drop_agent() -> bool:
        base_live = [v for v in instance.agents if v in cons_of]
        rng.shuffle(base_live)
        for v in base_live:
            if len(obj_members[obj_of[v]]) < 3:
                continue
            # Every constraint of v must be removable (base, not delta-added)
            # and every partner must keep ≥ 1 constraint afterwards.
            if not all(i in removable for i in cons_of[v]):
                continue
            loss: Dict[NodeId, int] = {}
            for i in cons_of[v]:
                for w in members[i]:
                    if w != v:
                        loss[w] = loss.get(w, 0) + 1
            if any(len(cons_of[w]) - n <= 0 for w, n in loss.items()):
                continue
            for i in sorted(cons_of[v]):
                delta.remove_constraint(i)
                for w in members[i]:
                    if w != v:
                        cons_of[w].discard(i)
                    a_co.pop((i, w), None)
                removable.discard(i)
                del members[i]
            delta.remove_agent(v)
            obj_members[obj_of[v]].discard(v)
            del obj_of[v]
            del cons_of[v]
            live_agents.remove(v)
            return True
        return False

    structural_ops = [add_constraint, drop_constraint, add_agent, drop_agent]
    for _ in range(max(1, int(edits))):
        done = False
        if rng.random() < structural_prob:
            done = structural_ops[int(rng.integers(len(structural_ops)))]()
        if not done:
            jitter()
    return delta
