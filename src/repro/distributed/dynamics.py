"""Locality as a dynamic-graph property.

A local algorithm with horizon ``D`` is automatically a dynamic graph
algorithm: when the input changes at one node, only the outputs within
distance ``D`` of the change can be affected (paper §1.3).  This module
provides the utilities to *measure* that property: find where two instances
differ, re-run a solver on both, and report how far from the change any
output actually moved.  Experiment E5 and the ``dynamic_network`` example use
it; the tests assert that no output changes outside the algorithm's horizon.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

import networkx as nx

from .._types import GraphNode, NodeId, agent_node
from ..core.instance import MaxMinInstance
from ..core.solution import Solution
from ..exceptions import SimulationError

__all__ = ["ChangeImpact", "changed_sites", "measure_change_impact", "local_horizon_radius"]


def local_horizon_radius(R: int) -> int:
    """Graph-distance radius within which the output of the §5 algorithm may depend on the input.

    The distributed protocol runs ``12r + 7`` rounds, but information only
    has to travel along the three phases: view gathering (``4r + 2``),
    smoothing (``4r + 2``) and the ``g`` exchanges (``4r + 2`` edge hops).
    An input change at distance larger than the sum cannot influence an
    agent's output.
    """
    r = R - 2
    return 3 * (4 * r + 2)


def changed_sites(before: MaxMinInstance, after: MaxMinInstance) -> Set[GraphNode]:
    """Graph nodes incident to any structural or coefficient difference."""
    sites: Set[GraphNode] = set()

    before_a = before.a_coefficients
    after_a = after.a_coefficients
    for key in set(before_a) | set(after_a):
        if before_a.get(key) != after_a.get(key):
            i, v = key
            sites.add(agent_node(v))
    before_c = before.c_coefficients
    after_c = after.c_coefficients
    for key in set(before_c) | set(after_c):
        if before_c.get(key) != after_c.get(key):
            k, v = key
            sites.add(agent_node(v))

    for v in set(before.agents) ^ set(after.agents):
        sites.add(agent_node(v))
    return sites


class ChangeImpact:
    """How far the effect of a local input change travelled.

    Attributes
    ----------
    changed_agents:
        Agents whose output differs (beyond ``tol``) between the two runs.
    max_distance:
        Largest graph distance from any changed agent to the nearest change
        site (0 when no output changed).
    horizon:
        The radius the algorithm is allowed to look at; locality demands
        ``max_distance ≤ horizon``.
    """

    __slots__ = ("changed_agents", "max_distance", "horizon", "distances")

    def __init__(
        self,
        changed_agents: Tuple[NodeId, ...],
        max_distance: int,
        horizon: int,
        distances: Dict[NodeId, int],
    ) -> None:
        self.changed_agents = changed_agents
        self.max_distance = max_distance
        self.horizon = horizon
        self.distances = distances

    @property
    def is_local(self) -> bool:
        """True when every affected agent lies within the declared horizon."""
        return self.max_distance <= self.horizon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChangeImpact(changed={len(self.changed_agents)}, "
            f"max_distance={self.max_distance}, horizon={self.horizon}, local={self.is_local})"
        )


def measure_change_impact(
    before: MaxMinInstance,
    after: MaxMinInstance,
    solver: Callable[[MaxMinInstance], Solution],
    horizon: int,
    tol: float = 1e-9,
) -> ChangeImpact:
    """Run ``solver`` on both instances and measure how far outputs moved.

    ``solver`` must be a deterministic function returning a
    :class:`Solution`; agents present in only one instance are ignored.
    """
    sites = changed_sites(before, after)
    if not sites:
        raise SimulationError("the two instances are identical; nothing to measure")

    solution_before = solver(before)
    solution_after = solver(after)

    common_agents = [v for v in before.agents if after.has_agent(v)]
    changed: List[NodeId] = [
        v
        for v in common_agents
        if abs(solution_before[v] - solution_after[v]) > tol
    ]

    # communication_graph() returns the instance's cached graph; copy before
    # adding the vanished nodes of the old topology.
    graph = after.communication_graph().copy()
    for node in before.communication_graph().nodes:
        if node not in graph:
            graph.add_node(node)

    distances: Dict[NodeId, int] = {}
    max_distance = 0
    if changed:
        # Multi-source BFS from every change site.
        lengths = nx.multi_source_dijkstra_path_length(graph, [s for s in sites if s in graph])
        for v in changed:
            dist = int(lengths.get(agent_node(v), len(graph)))
            distances[v] = dist
            max_distance = max(max_distance, dist)

    return ChangeImpact(tuple(changed), max_distance, horizon, distances)
