"""Anonymous local views (unfoldings) gathered by message passing.

In the port-numbering model a node can learn, in ``D`` rounds, exactly the
radius-``D`` *view tree*: its own local input, plus (recursively) the views
its neighbours had one round earlier, labelled by the port the information
arrived on and the port on the neighbour's side of that edge.  This is the
standard view construction for anonymous networks (Angluin 1980; Yamashita &
Kameda 1996, both cited by the paper) and is precisely the unfolding of §3:
no node identifiers are ever exchanged.

The distributed realisation of the algorithm uses views for a single
purpose: after ``4r + 2`` rounds each agent holds a deep enough view to run
the ``f±`` recursion of §5.2 on its alternating tree ``A_u`` and hence to
compute ``t_u`` by local binary search.  The functions at the bottom of this
module evaluate that recursion directly on a view tree.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from .._types import NodeType
from ..exceptions import SimulationError
from .node import LocalInput

__all__ = [
    "ViewTree",
    "view_feasible_omega",
    "view_tree_optimum",
    "view_search_upper_limit",
]


class ViewTree:
    """The radius-``d`` view of one node, as a port-labelled tree.

    Attributes
    ----------
    kind:
        Node type at the root of this view.
    degree:
        Degree (number of ports) of the root.
    port_kinds / port_coefficients:
        The root's local input (see :class:`LocalInput`).
    children:
        Mapping ``port -> (child_view, remote_port)`` where ``child_view`` is
        the neighbour's view of depth ``d − 1`` and ``remote_port`` is the
        port on the *neighbour's* side of the connecting edge (needed to
        avoid walking straight back during recursion).  Empty for depth-0
        views.
    """

    __slots__ = ("kind", "degree", "port_kinds", "port_coefficients", "children")

    def __init__(
        self,
        kind: NodeType,
        degree: int,
        port_kinds: Dict[int, NodeType],
        port_coefficients: Dict[int, float],
        children: Optional[Dict[int, Tuple["ViewTree", int]]] = None,
    ) -> None:
        self.kind = kind
        self.degree = degree
        self.port_kinds = port_kinds
        self.port_coefficients = port_coefficients
        self.children = children or {}

    # ------------------------------------------------------------------
    @classmethod
    def leaf(cls, local_input: LocalInput) -> "ViewTree":
        """The depth-0 view: just the node's own local input."""
        return cls(
            kind=local_input.kind,
            degree=local_input.degree,
            port_kinds=dict(local_input.port_kinds),
            port_coefficients=dict(local_input.port_coefficients),
        )

    @classmethod
    def extend(
        cls,
        local_input: LocalInput,
        received: Dict[int, Tuple["ViewTree", int]],
    ) -> "ViewTree":
        """Combine the node's local input with the neighbours' previous views."""
        return cls(
            kind=local_input.kind,
            degree=local_input.degree,
            port_kinds=dict(local_input.port_kinds),
            port_coefficients=dict(local_input.port_coefficients),
            children=dict(received),
        )

    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Depth of the view tree (0 for a bare local input)."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child, _ in self.children.values())

    def size(self) -> int:
        """Total number of view-tree nodes."""
        return 1 + sum(child.size() for child, _ in self.children.values())

    def child(self, port: int) -> Tuple["ViewTree", int]:
        try:
            return self.children[port]
        except KeyError:
            raise SimulationError(
                f"view has no child on port {port} (depth too small for the requested recursion)"
            ) from None

    def constraint_ports(self) -> Tuple[int, ...]:
        return tuple(p for p, kind in self.port_kinds.items() if kind is NodeType.CONSTRAINT)

    def objective_ports(self) -> Tuple[int, ...]:
        return tuple(p for p, kind in self.port_kinds.items() if kind is NodeType.OBJECTIVE)

    def capacity(self) -> float:
        """``min_i 1/a_iv`` from the root's own coefficients (agent views only)."""
        caps = [1.0 / self.port_coefficients[p] for p in self.constraint_ports()]
        return min(caps) if caps else math.inf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ViewTree(kind={self.kind.short}, degree={self.degree}, depth={self.depth()})"


# ----------------------------------------------------------------------
# The f± recursion of §5.2 evaluated on a view tree.
# ----------------------------------------------------------------------
def _unique_objective_child(view: ViewTree) -> Tuple[ViewTree, int]:
    """The (objective view, back-port) below an agent view in special form."""
    ports = view.objective_ports()
    if len(ports) != 1:
        raise SimulationError(
            f"agent view has {len(ports)} objective ports; the distributed algorithm "
            "requires the special form (|K_v| = 1)"
        )
    return view.child(ports[0])


def _f_plus(view: ViewTree, omega: float, d: int) -> float:
    """``f⁺`` of an agent view reached from an objective (levels ≡ 1 mod 4)."""
    if d == 0:
        return view.capacity()
    best = math.inf
    for port in view.constraint_ports():
        constraint_view, back_port = view.child(port)
        # The degree-2 constraint has exactly one other port.
        other_ports = [p for p in range(1, constraint_view.degree + 1) if p != back_port]
        if len(other_ports) != 1:
            raise SimulationError(
                "constraint view does not have degree 2; the distributed algorithm "
                "requires the special form (|V_i| = 2)"
            )
        partner_view, partner_back = constraint_view.child(other_ports[0])
        a_in = partner_view.port_coefficients[partner_back]
        a_iv = view.port_coefficients[port]
        candidate = (1.0 - a_in * _f_minus(partner_view, omega, d - 1)) / a_iv
        if candidate < best:
            best = candidate
    return best


def _f_minus(view: ViewTree, omega: float, d: int) -> float:
    """``f⁻`` of an agent view above its objective (levels ≡ 3 mod 4 and the root)."""
    objective_view, back_port = _unique_objective_child(view)
    total = 0.0
    for port in range(1, objective_view.degree + 1):
        if port == back_port:
            continue
        sibling_view, _sibling_back = objective_view.child(port)
        total += _f_plus(sibling_view, omega, d)
    return max(0.0, omega - total)


def _min_f_plus(view: ViewTree, omega: float, d: int) -> float:
    """Minimum over all ``f⁺`` values in the recursion rooted at an agent view.

    Mirrors Eq. 8: every ``f⁺_{u,v,d}`` must be non-negative.  We recompute
    the recursion while tracking the minimum (the trees are small — their
    size is bounded by a function of Δ and R only).
    """
    if d == 0:
        return view.capacity()
    best = math.inf
    for port in view.constraint_ports():
        constraint_view, back_port = view.child(port)
        other_ports = [p for p in range(1, constraint_view.degree + 1) if p != back_port]
        partner_view, _partner_back = constraint_view.child(other_ports[0])
        objective_view, obj_back = _unique_objective_child(partner_view)
        for sibling_port in range(1, objective_view.degree + 1):
            if sibling_port == obj_back:
                continue
            sibling_view, _ = objective_view.child(sibling_port)
            best = min(best, _min_f_plus(sibling_view, omega, d - 1))
    own = _f_plus(view, omega, d)
    return min(best, own)


def view_feasible_omega(root_view: ViewTree, omega: float, r: int, tol: float = 0.0) -> bool:
    """Eqs. 8–9 evaluated on the root agent's view (is ``ω`` feasible?)."""
    # Eq. 9: the root's f⁻ at depth r must fit under its capacity.
    if _f_minus(root_view, omega, r) > root_view.capacity() + tol:
        return False
    # Eq. 8: every f⁺ below the root's objective must be non-negative.
    objective_view, back_port = _unique_objective_child(root_view)
    for port in range(1, objective_view.degree + 1):
        if port == back_port:
            continue
        sibling_view, _ = objective_view.child(port)
        if _min_f_plus(sibling_view, omega, r) < -tol:
            return False
    return True


def view_search_upper_limit(root_view: ViewTree) -> float:
    """Upper limit for the ``t_u`` binary search: total capacity of ``V_{k(u)}``."""
    objective_view, back_port = _unique_objective_child(root_view)
    total = root_view.capacity()
    for port in range(1, objective_view.degree + 1):
        if port == back_port:
            continue
        sibling_view, _ = objective_view.child(port)
        total += sibling_view.capacity()
    return total


def view_tree_optimum(
    root_view: ViewTree,
    r: int,
    tol: float = 1e-10,
    max_iterations: int = 200,
) -> float:
    """``t_u`` by binary search on the view (the paper's practical variant)."""
    hi = view_search_upper_limit(root_view)
    if hi <= 0.0:
        return 0.0
    if view_feasible_omega(root_view, hi, r):
        return hi
    lo = 0.0
    iterations = 0
    while hi - lo > tol and iterations < max_iterations:
        mid = 0.5 * (lo + hi)
        if view_feasible_omega(root_view, mid, r):
            lo = mid
        else:
            hi = mid
        iterations += 1
    return lo
