"""Exception hierarchy for :mod:`repro`.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "DegenerateInstanceError",
    "NotSpecialFormError",
    "InfeasibleSolutionError",
    "SolverError",
    "TransformError",
    "SimulationError",
    "SerializationError",
    "EngineError",
    "JobTimeoutError",
    "FaultInjectionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidInstanceError(ReproError):
    """Raised when a max-min LP instance violates structural requirements.

    Examples: non-positive coefficients, references to undeclared nodes,
    duplicate identifiers within a node class.
    """


class DegenerateInstanceError(ReproError):
    """Raised for degenerate instances the algorithm does not accept directly.

    The paper (Section 4) assumes every constraint and objective is adjacent
    to at least one agent and every agent is adjacent to at least one
    constraint and one objective.  :func:`repro.core.preprocess.preprocess`
    removes such degeneracies; solvers raise this error when asked to run on
    an instance that still contains them.
    """


class NotSpecialFormError(ReproError):
    """Raised when a special-form-only routine receives a general instance.

    The special form (paper Section 5) requires ``|V_i| = 2``, ``|V_k| ≥ 2``,
    ``|K_v| = 1``, ``|I_v| ≥ 1`` and ``c_kv = 1``.
    """


class InfeasibleSolutionError(ReproError):
    """Raised when a produced solution violates a constraint beyond tolerance."""


class SolverError(ReproError):
    """Raised when an exact LP solve fails (solver status not optimal)."""


class TransformError(ReproError):
    """Raised when a local transformation cannot be applied or inverted."""


class SimulationError(ReproError):
    """Raised by the distributed runtime on protocol violations.

    Examples: a node sending a message to a non-existent port, an algorithm
    exceeding its declared local horizon, or inconsistent round counts.
    """


class SerializationError(ReproError):
    """Raised when an instance or solution cannot be (de)serialized."""


class EngineError(ReproError):
    """Raised by the batch-execution engine (:mod:`repro.engine`).

    Examples: a job referencing an unregistered algorithm, a worker process
    dying mid-batch, or a corrupt result-cache entry that cannot be ignored.
    """


class JobTimeoutError(EngineError):
    """Raised when a job exceeds its ``timeout_s`` deadline.

    Counts as a failed attempt under the job's
    :class:`~repro.engine.resilience.RetryPolicy`; with retries exhausted it
    becomes the job's structured error.
    """


class FaultInjectionError(EngineError):
    """Raised by :mod:`repro.faults` for injected transient failures.

    Also stands in for an injected worker crash when the executor has no
    expendable worker process (serial execution).  Never raised unless a
    :class:`~repro.faults.FaultPlan` was explicitly plumbed into the run.
    """
