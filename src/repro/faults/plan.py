"""Fault *plans*: declarative, deterministically seeded failure scripts.

A :class:`FaultPlan` is a frozen, picklable description of every failure a
run should suffer: worker crashes, hangs, transient solver errors, cache
corruption and message loss.  Determinism is the design center — a plan
carries no live state, so the same plan produces the same failures whether
it is evaluated in the parent process, in a pool worker, or in a re-run:

* **Job faults** fire on *attempt numbers*, not on wall-clock or per-process
  counters.  "Crash on dispatch attempt 0" means the first time the engine
  ships the job to a worker, and never again after the engine re-dispatches
  it — no shared state needs to survive the worker's death for the retry to
  succeed.
* **Cache faults** count their firings inside the single process that owns
  the :class:`~repro.engine.cache.ResultCache` object.
* **Message faults** derive any sampled drop set from ``(seed, round)``, so
  two runs of the same plan drop the same slots.

Plans are plain data; the runtime half lives in
:class:`repro.faults.injector.FaultInjector`.  Everything here is stdlib
only, importable from pool workers without numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..exceptions import EngineError

__all__ = [
    "JobFault",
    "CacheFault",
    "MessageFault",
    "AgentFault",
    "FaultPlan",
    "crash",
    "hang",
    "transient",
]

#: ``attempts`` value meaning "fire on every attempt" (a poison job).
ALWAYS = None


@dataclass(frozen=True)
class JobFault:
    """One scripted failure on the job-execution path.

    Attributes
    ----------
    kind:
        ``"crash"`` — kill the worker process mid-chunk (``os._exit``; in a
        serial executor, where there is no expendable process, it raises
        :class:`~repro.exceptions.FaultInjectionError` instead).
        ``"hang"`` — sleep ``hang_s`` seconds before the solve, so a job
        with a ``timeout_s`` policy blows its deadline.
        ``"transient"`` — raise :class:`FaultInjectionError` before the
        solve (the classic first-k-attempts-fail error).
    algorithm / digest_prefix / params:
        Job matchers: registry algorithm name (``None`` = any), instance
        digest prefix (``""`` = any) and a required subset of the job's
        parameter pairs, e.g. ``(("backend", "vectorized"),)``.
    attempts:
        Which attempt numbers fire.  ``"crash"`` faults are matched against
        the *dispatch* attempt (how often the engine has shipped the job to
        a worker); ``"hang"``/``"transient"`` against the in-process retry
        attempt.  ``None`` fires on every attempt — that is a poison job.
    hang_s:
        Sleep duration for ``"hang"`` faults.
    """

    kind: str
    algorithm: Optional[str] = None
    digest_prefix: str = ""
    params: Tuple[Tuple[str, object], ...] = ()
    attempts: Optional[Tuple[int, ...]] = (0,)
    hang_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "hang", "transient"):
            raise EngineError(
                f"unknown job-fault kind {self.kind!r} "
                "(expected 'crash', 'hang' or 'transient')"
            )
        if self.kind == "hang" and self.hang_s <= 0:
            raise EngineError("hang faults need hang_s > 0")

    def matches(self, algorithm: str, digest: str, params: dict) -> bool:
        """Whether a job with these coordinates is targeted by this fault."""
        if self.algorithm is not None and algorithm != self.algorithm:
            return False
        if self.digest_prefix and not digest.startswith(self.digest_prefix):
            return False
        for key, value in self.params:
            if params.get(key) != value:
                return False
        return True

    def fires_on(self, attempt: int) -> bool:
        """Whether the fault fires on this attempt number."""
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class CacheFault:
    """Corrupt the bytes of a :class:`ResultCache` entry as it is written.

    ``mode="truncate"`` halves the payload (invalid JSON — models a crashed
    writer); ``mode="bitflip"`` XORs one deterministically chosen byte (the
    JSON may stay *parseable*, which is exactly what the per-entry checksum
    exists to catch).  The first ``times`` puts whose key starts with
    ``key_prefix`` are corrupted; firing state lives on the injector, i.e.
    in the process that owns the cache object.
    """

    key_prefix: str = ""
    mode: str = "truncate"
    times: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("truncate", "bitflip"):
            raise EngineError(
                f"unknown cache-fault mode {self.mode!r} (expected 'truncate' or 'bitflip')"
            )
        if self.times < 1:
            raise EngineError("cache faults need times >= 1")


@dataclass(frozen=True)
class MessageFault:
    """Drop a subset of directed-edge slots in one delivery round.

    ``slots`` are dropped verbatim; ``fraction`` additionally drops a
    deterministic sample of all slots, seeded by ``(plan.seed, round)``.
    Dropped messages count as sent (the sender paid for them) but never
    arrive — the receiving protocol sees an empty slot, exactly as if the
    link had failed.

    ``attempts`` mirrors :class:`JobFault`: which *transmission attempts* of
    the round are lossy.  Attempt 0 is the round's original delivery; higher
    attempts are the per-round retransmissions of the resilient runtime
    (:class:`repro.distributed.resilient.ResilientRuntime`).  The default
    ``(0,)`` models a transient glitch — the first retransmission gets
    through — while ``attempts=None`` fires on every attempt and models a
    persistently failed link that no retransmit budget can beat.  The
    plain :class:`~repro.distributed.runtime.SynchronousRuntime` only ever
    performs attempt 0.
    """

    round_number: int
    slots: Tuple[int, ...] = ()
    fraction: float = 0.0
    attempts: Optional[Tuple[int, ...]] = (0,)

    def __post_init__(self) -> None:
        if self.round_number < 1:
            raise EngineError("message faults target 1-based round numbers")
        if not 0.0 <= self.fraction <= 1.0:
            raise EngineError("message-fault fraction must be in [0, 1]")
        if self.attempts is not None and any(a < 0 for a in self.attempts):
            raise EngineError("message-fault attempts are 0-based transmission attempts")

    def fires_on(self, attempt: int) -> bool:
        """Whether this fault drops messages on this transmission attempt."""
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class AgentFault:
    """Make protocol *agents* misbehave, deterministically.

    Where :class:`MessageFault` models a bad link, an ``AgentFault`` models
    a bad node.  Kinds:

    ``"crash"``
        The agent dies at the start of ``round_number`` and never speaks
        again.  It produces no output — a resilient solver reports it as
        ``failed``.
    ``"silent"``
        The agent stops sending for rounds ``round_number … until_round``
        (inclusive; ``None`` = forever) but stays alive — its neighbours
        experience the silence exactly like a crash, yet the agent itself
        can still fall back to the safe baseline at the end.
    ``"babbling"``
        From ``round_number`` on, the agent's outgoing payloads are garbage
        (modelled as non-finite values).  Receivers detect and discard them
        — the runtime quarantines the babbler, which from then on behaves
        like a crashed node and is reported as ``failed``.

    ``agents`` lists agent *positions* (canonical agent order, the same
    indexing as :attr:`CompiledInstance.agents`); ``fraction`` additionally
    targets a deterministic sample of all agents, seeded by
    ``(plan.seed, fault index)`` so the same plan always afflicts the same
    agents, in every process, on every run.
    """

    kind: str
    round_number: int = 1
    agents: Tuple[int, ...] = ()
    fraction: float = 0.0
    until_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "silent", "babbling"):
            raise EngineError(
                f"unknown agent-fault kind {self.kind!r} "
                "(expected 'crash', 'silent' or 'babbling')"
            )
        if self.round_number < 1:
            raise EngineError("agent faults target 1-based round numbers")
        if not 0.0 <= self.fraction <= 1.0:
            raise EngineError("agent-fault fraction must be in [0, 1]")
        if self.until_round is not None:
            if self.kind != "silent":
                raise EngineError(
                    f"until_round is only meaningful for 'silent' faults "
                    f"(got kind={self.kind!r}); it would be silently ignored"
                )
            if self.until_round < self.round_number:
                raise EngineError("until_round must be >= round_number")

    def active_in(self, round_number: int) -> bool:
        """Whether the fault afflicts its agents in this round."""
        if round_number < self.round_number:
            return False
        if self.kind == "silent" and self.until_round is not None:
            return round_number <= self.until_round
        return True


@dataclass(frozen=True)
class FaultPlan:
    """The full failure script of one run: seed + faults per subsystem."""

    seed: int = 0
    job_faults: Tuple[JobFault, ...] = ()
    cache_faults: Tuple[CacheFault, ...] = ()
    message_faults: Tuple[MessageFault, ...] = ()
    agent_faults: Tuple[AgentFault, ...] = ()

    def injector(self, in_worker: bool = False) -> "FaultInjector":
        """A live injector evaluating this plan (see module docstring)."""
        from .injector import FaultInjector

        return FaultInjector(self, in_worker=in_worker)

    def describe(self) -> str:
        """One-line human-readable summary (for logs and smoke output)."""
        return (
            f"FaultPlan(seed={self.seed}, jobs={len(self.job_faults)}, "
            f"cache={len(self.cache_faults)}, messages={len(self.message_faults)}, "
            f"agents={len(self.agent_faults)})"
        )


# ----------------------------------------------------------------------
# Convenience constructors — the common cases in one call
# ----------------------------------------------------------------------


def crash(
    algorithm: Optional[str] = None,
    digest_prefix: str = "",
    params: Tuple[Tuple[str, object], ...] = (),
    attempts: Optional[Tuple[int, ...]] = (0,),
) -> JobFault:
    """A worker crash on the matched job (``attempts=None`` = poison job)."""
    return JobFault(
        kind="crash",
        algorithm=algorithm,
        digest_prefix=digest_prefix,
        params=params,
        attempts=attempts,
    )


def hang(
    hang_s: float,
    algorithm: Optional[str] = None,
    digest_prefix: str = "",
    params: Tuple[Tuple[str, object], ...] = (),
    attempts: Optional[Tuple[int, ...]] = (0,),
) -> JobFault:
    """A pre-solve sleep that makes the matched job blow its deadline."""
    return JobFault(
        kind="hang",
        algorithm=algorithm,
        digest_prefix=digest_prefix,
        params=params,
        attempts=attempts,
        hang_s=hang_s,
    )


def transient(
    algorithm: Optional[str] = None,
    digest_prefix: str = "",
    params: Tuple[Tuple[str, object], ...] = (),
    attempts: Optional[Tuple[int, ...]] = (0,),
) -> JobFault:
    """A transient error on the matched job's first ``attempts`` tries."""
    return JobFault(
        kind="transient",
        algorithm=algorithm,
        digest_prefix=digest_prefix,
        params=params,
        attempts=attempts,
    )
