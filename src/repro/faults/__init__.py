"""``repro.faults`` — deterministic fault injection for the execution layer.

The paper's algorithms tolerate partial views by construction; this package
makes the *execution* layer prove the same discipline.  A
:class:`FaultPlan` scripts failures — worker crashes, hangs, transient
solver errors, corrupted cache entries, dropped protocol messages — and a
:class:`FaultInjector` fires them at explicit injection points in the
engine registry, the :class:`~repro.engine.executors.ParallelExecutor`
workers, the :class:`~repro.engine.cache.ResultCache` and the vectorized
:class:`~repro.distributed.runtime.SynchronousRuntime`.

Everything is stdlib-only and deterministically seeded: the same plan
yields the same failures and, run through the resilient engine, the same
records as a fault-free run (the chaos-equivalence contract pinned by
``tests/test_faults.py`` and the CI chaos-smoke step).

Typical use::

    from repro import faults

    plan = faults.FaultPlan(
        seed=7,
        job_faults=(
            faults.crash(algorithm="local", digest_prefix=digest[:8]),
            faults.transient(algorithm="safe", attempts=(0, 1)),
        ),
        cache_faults=(faults.CacheFault(mode="bitflip"),),
    )
    result = run_batch(batch, jobs=4, retry=RetryPolicy(max_retries=2),
                       faults=plan, cache_dir="cache/")
"""

from .injector import FaultInjector
from .plan import (
    AgentFault,
    CacheFault,
    FaultPlan,
    JobFault,
    MessageFault,
    crash,
    hang,
    transient,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "JobFault",
    "CacheFault",
    "MessageFault",
    "AgentFault",
    "crash",
    "hang",
    "transient",
]
