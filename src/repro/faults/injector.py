"""The runtime half of fault injection: :class:`FaultInjector`.

An injector evaluates one :class:`~repro.faults.plan.FaultPlan` at the
engine's injection points.  It is plumbed explicitly — the engine registry
calls :meth:`on_job_attempt` before each solve attempt, the
:class:`~repro.engine.cache.ResultCache` passes written bytes through
:meth:`corrupt_put`, and :class:`~repro.distributed.runtime.SynchronousRuntime`
asks :meth:`dropped_slots` per delivery round.  No monkeypatching anywhere:
a run without an injector executes the exact same code with a handful of
``is None`` checks.

Injectors are cheap per-process objects.  Worker processes build their own
(``in_worker=True``) from the picklable plan, so a ``"crash"`` fault can
take the whole worker down with ``os._exit`` — the parent's recovery path
is then exercised for real, not simulated.  In a serial executor there is
no expendable process, so a crash fault degrades to raising
:class:`~repro.exceptions.FaultInjectionError` (visible, but survivable).
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, Optional, Set

from .. import obs
from ..exceptions import FaultInjectionError
from .plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at the engine's injection points."""

    def __init__(self, plan: FaultPlan, *, in_worker: bool = False) -> None:
        self.plan = plan
        self.in_worker = in_worker
        # Cache-fault firing counts: per-rule, per-process (the process that
        # owns the ResultCache object is the only one writing entries).
        self._cache_fired: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Job path
    # ------------------------------------------------------------------

    def on_job_attempt(
        self,
        algorithm: str,
        digest: str,
        params: Dict[str, object],
        attempt: int,
        dispatch_attempt: int,
    ) -> None:
        """Fire any job fault matching this attempt (called before a solve).

        ``attempt`` is the in-process retry attempt (0-based); it selects
        ``"hang"``/``"transient"`` faults.  ``dispatch_attempt`` counts how
        often the engine has shipped this job to a worker; it selects
        ``"crash"`` faults, so an injected crash survives nothing — the
        re-dispatched job simply runs clean.
        """
        for fault in self.plan.job_faults:
            if not fault.matches(algorithm, digest, params):
                continue
            which = dispatch_attempt if fault.kind == "crash" else attempt
            if not fault.fires_on(which):
                continue
            if fault.kind == "crash":
                if self.in_worker:
                    # A real worker death: no result, no snapshot, a broken
                    # pool on the parent side.  os._exit skips atexit and
                    # multiprocessing cleanup by design.
                    os._exit(17)
                raise FaultInjectionError(
                    f"injected worker crash on {algorithm}@{digest[:10]} "
                    f"(dispatch attempt {dispatch_attempt}; no expendable worker "
                    "process in a serial executor)"
                )
            if fault.kind == "hang":
                obs.count("faults.hangs")
                time.sleep(fault.hang_s)
                continue  # a hang delays; other faults may still fire
            obs.count("faults.transient")
            raise FaultInjectionError(
                f"injected transient failure on {algorithm}@{digest[:10]} "
                f"(attempt {attempt})"
            )

    # ------------------------------------------------------------------
    # Cache path
    # ------------------------------------------------------------------

    def corrupt_put(self, key: str, data: bytes) -> bytes:
        """Return the (possibly corrupted) bytes to actually write for ``key``."""
        for index, fault in enumerate(self.plan.cache_faults):
            if fault.key_prefix and not key.startswith(fault.key_prefix):
                continue
            fired = self._cache_fired.get(index, 0)
            if fired >= fault.times:
                continue
            self._cache_fired[index] = fired + 1
            obs.count("faults.cache_corruptions")
            if fault.mode == "truncate":
                return data[: max(1, len(data) // 2)]
            # bitflip: XOR one deterministically chosen byte.  0x20 flips
            # the case of an ASCII letter, so the JSON often stays valid —
            # the checksum, not the parser, has to catch it.
            position = int.from_bytes(
                f"{self.plan.seed}:{key}".encode("utf-8")[-8:], "big"
            ) % len(data)
            flipped = bytearray(data)
            flipped[position] ^= 0x20
            return bytes(flipped)
        return data

    # ------------------------------------------------------------------
    # Message plane path
    # ------------------------------------------------------------------

    def dropped_slots(
        self, round_number: int, num_slots: int, attempt: int = 0
    ) -> Optional[Set[int]]:
        """The slot set to drop in this delivery round (``None`` = nothing).

        ``attempt`` is the 0-based transmission attempt: 0 is the round's
        original delivery (the only attempt the plain runtime performs),
        higher values are the resilient runtime's retransmissions.  The
        attempt-0 sample key is unchanged from before retransmits existed,
        so a plan's original-delivery drop set is stable across runtimes.
        A fault with a finite ``attempts`` tuple models a lossy *channel* —
        each retry re-rolls an independent ``:retry{n}`` sample — while
        ``attempts=None`` models failed *links*: the same sampled slots
        drop on every attempt, so no retransmit budget can beat them.
        """
        dropped: Set[int] = set()
        for fault in self.plan.message_faults:
            if fault.round_number != round_number or not fault.fires_on(attempt):
                continue
            dropped.update(s for s in fault.slots if 0 <= s < num_slots)
            if fault.fraction > 0.0 and num_slots:
                key = f"{self.plan.seed}:{round_number}:{num_slots}"
                if attempt and fault.attempts is not None:
                    key = f"{key}:retry{attempt}"
                rng = random.Random(key)
                k = min(num_slots, int(round(fault.fraction * num_slots)))
                dropped.update(rng.sample(range(num_slots), k))
        return dropped or None

    # ------------------------------------------------------------------
    # Agent path
    # ------------------------------------------------------------------

    def agent_faults(self, round_number: int, num_agents: int) -> Dict[str, Set[int]]:
        """Agent positions afflicted per kind in this round.

        Returns ``{"crash": {...}, "silent": {...}, "babbling": {...}}``
        with empty sets for quiet kinds.  Fraction-based targets are
        sampled once per *fault rule* (keyed by the rule's index in the
        plan, not the round), so a fault afflicts the same agents for its
        whole active window — a crashed node does not resurrect and a
        different one crash the next round.
        """
        states: Dict[str, Set[int]] = {"crash": set(), "silent": set(), "babbling": set()}
        for index, fault in enumerate(self.plan.agent_faults):
            if not fault.active_in(round_number):
                continue
            afflicted = states[fault.kind]
            afflicted.update(a for a in fault.agents if 0 <= a < num_agents)
            if fault.fraction > 0.0 and num_agents:
                rng = random.Random(f"{self.plan.seed}:agent:{index}:{num_agents}")
                k = min(num_agents, int(round(fault.fraction * num_agents)))
                afflicted.update(rng.sample(range(num_agents), k))
        return states
