"""``repro.serve`` — resilient allocation-as-a-service.

A dependency-free asyncio JSON-over-HTTP server that keeps compiled
instances resident and answers solve / utility / ratio / info queries with
robustness as the first-class design:

* **Admission control** — a bounded request queue with load shedding: past
  ``max_pending`` in-flight requests the server answers a structured
  ``overloaded`` error immediately instead of queueing unboundedly.
* **Deadlines** — every request carries a deadline (its own ``deadline_s``
  or the server default) propagated into the solver via
  :func:`repro.engine.resilience.call_with_timeout`; a blown deadline is a
  structured ``deadline_exceeded`` response, never a hang.
* **Degradation ladder** — vectorized → reference → §1.3 safe baseline,
  guarded by per-backend circuit breakers.  The safe baseline is a
  constant-round *feasible* approximation, so a request that cannot finish
  a full §5/§4 solve inside its deadline still gets a provably feasible
  allocation, tagged ``degraded: true`` with the reason.
* **Micro-batching** — concurrent small solve requests arriving within a
  short window coalesce into one multi-instance kernel pass
  (:meth:`LocalMaxMinSolver.solve_many`), bitwise-equal to solo solves.
* **Observability + drain** — ``/healthz`` ``/readyz`` ``/metrics`` admin
  endpoints (counters, breaker states, ``obs.trace_payload()``,
  ``ResultCache.stats()``) and graceful drain on SIGTERM.

The synchronous pieces (:class:`InstanceRegistry`, :class:`CircuitBreaker`,
the ladder in :mod:`repro.serve.server`) are importable and testable without
an event loop; :class:`AllocationServer` is the asyncio shell around them.
"""

from .breaker import CircuitBreaker
from .protocol import (
    ERROR_STATUS,
    ServeError,
    error_response,
    ok_response,
)
from .registry import InstanceRegistry, ResidentInstance
from .server import AllocationServer, ServeConfig
from .harness import ServeClient, ServerHandle, chaos_barrage, classify_response

__all__ = [
    "AllocationServer",
    "ServeConfig",
    "CircuitBreaker",
    "InstanceRegistry",
    "ResidentInstance",
    "ServeClient",
    "ServerHandle",
    "chaos_barrage",
    "classify_response",
    "ServeError",
    "ERROR_STATUS",
    "ok_response",
    "error_response",
]
