"""Micro-batching: coalesce concurrent solve requests into one kernel pass.

Concurrent small solve requests that share one parameter set are the exact
shape the PR 4 batched-dispatch machinery was built for: stack the compiled
instances, run the §5 kernels once, split the outputs.  The batcher is the
request-side half — the first request of a parameter set opens a short
collection *window* (a few milliseconds); every compatible request arriving
inside the window joins the batch; at window close (or at ``max_batch``)
the whole group is flushed through one ``solve_many`` call.

Correctness contract: the batched kernels are **bitwise-equal** to solo
vectorized solves (pinned since PR 4), so coalescing is invisible in the
response payload apart from the ``coalesced`` envelope flag.  Robustness
contract: a failed flush never fails its members — the flush exception is
delivered to every waiter, and the server's solo fallback (the full
degradation ladder) takes over per request.

Single-event-loop discipline: all bookkeeping runs on the loop thread, so
no locks; only the flush callable itself may hop to an executor.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Hashable, List, Tuple

__all__ = ["MicroBatcher"]

#: The flush hook: ``(key, items) -> results`` (one result per item, in order).
FlushFn = Callable[[Hashable, List[object]], Awaitable[List[object]]]


class _Pending:
    __slots__ = ("items", "futures", "ready")

    def __init__(self) -> None:
        self.items: List[object] = []
        self.futures: List[asyncio.Future] = []
        self.ready = asyncio.Event()


class MicroBatcher:
    """Window-based request coalescer keyed by parameter set."""

    def __init__(self, flush: FlushFn, *, window_s: float = 0.002, max_batch: int = 64) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._flush = flush
        self.window_s = window_s
        self.max_batch = max_batch
        self._pending: Dict[Hashable, _Pending] = {}

    async def submit(self, key: Hashable, item: object) -> object:
        """Join (or open) the batch for ``key``; resolves with this item's result.

        Raises whatever the flush raised — the caller is expected to fall
        back to its solo path.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        pending = self._pending.get(key)
        if pending is None:
            pending = _Pending()
            self._pending[key] = pending
            loop.create_task(self._run_window(key, pending))
        pending.items.append(item)
        pending.futures.append(future)
        if len(pending.items) >= self.max_batch:
            # Full house: detach so new arrivals open a fresh window, and
            # wake the window task early.
            self._detach(key, pending)
            pending.ready.set()
        return await future

    def _detach(self, key: Hashable, pending: _Pending) -> None:
        if self._pending.get(key) is pending:
            del self._pending[key]

    async def _run_window(self, key: Hashable, pending: _Pending) -> None:
        if self.window_s > 0 and len(pending.items) < self.max_batch:
            try:
                await asyncio.wait_for(pending.ready.wait(), timeout=self.window_s)
            except asyncio.TimeoutError:
                pass  # window elapsed — flush whatever gathered
        self._detach(key, pending)
        items: Tuple[object, ...] = tuple(pending.items)
        try:
            results = await self._flush(key, list(items))
            if len(results) != len(items):
                raise RuntimeError(
                    f"batch flush returned {len(results)} results for {len(items)} items"
                )
        except Exception as exc:  # noqa: BLE001 - delivered to every waiter
            for future in pending.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, result in zip(pending.futures, results):
            if not future.done():
                future.set_result(result)
